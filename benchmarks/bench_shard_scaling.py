"""Sharded scatter-gather scaling — throughput vs ``shards`` (dense-large).

Runs the same dense-large workload (the Twitter profile, the paper's
densest graph) through :class:`repro.shard.ShardedBranchAndBoundSolver`
at ``shards`` in {1, 2, 4} — each shard served by its own process
fleet — and reports, per shard count:

* **cold latency**: the first solve through a fresh engine, paying the
  label-propagation partition, the boundary-ball replication and the
  per-shard pool spawn;
* **warm latency / aggregate throughput**: steady-state queries per
  second once the shard set and fleets are up;
* **replication cost**: replica vertices and snapshot bytes the
  boundary balls add on top of a 1-shard cut.

Every sharded run's ranked groups are asserted bit-identical to the
serial reference — the scaling curve is only meaningful because the
answer is exact.  The headline claim (>1.5x aggregate throughput at
``shards=4`` over 1) holds at full bench scale on a machine with at
least four cores; under ``--smoke`` or on smaller runners it is
softened to a warning like all other quantitative claims.
"""

from __future__ import annotations

import os
import time

from conftest import bench_runner, bench_workload, check_claim, register_bench_meta

register_bench_meta(
    "shard_scaling",
    title="sharded scatter-gather throughput vs shards (dense-large)",
)

from repro.shard import ShardedBranchAndBoundSolver
from repro.workloads.runner import ALGORITHMS
from repro.workloads.sweep import DEFAULTS

#: Match bench_fig7_dense_large: the dense profile at its fig7 scale.
DENSE_SCALE = 0.35
ALGORITHM = "KTG-VKC-DEG-NLRNL"

#: Serial reference + 1-shard throughput per workload key, measured
#: once and reused by every parametrization so all speedups share one
#: baseline.
_serial_reference: dict[tuple, list] = {}
_shard1_throughput: dict[tuple, float] = {}


def _workload_settings() -> dict:
    return dict(
        keyword_size=DEFAULTS["keyword_size"],
        group_size=4,  # deeper tree than the sweep default: more work to split
        tenuity=1,  # denser graph: k=1 keeps the grid feasible (as in fig7a)
        top_n=DEFAULTS["top_n"],
    )


def _serial_groups(runner, workload) -> list:
    key = (id(runner), tuple(q.keywords for q in workload))
    if key not in _serial_reference:
        spec = ALGORITHMS[ALGORITHM]
        solver = spec.build_solver(runner.graph, runner.oracle_for(spec))
        _serial_reference[key] = [solver.solve(query).groups for query in workload]
    return _serial_reference[key]


def test_shard_scaling_shards1(benchmark):
    _run_scaling_point(benchmark, shards=1)


def test_shard_scaling_shards2(benchmark):
    _run_scaling_point(benchmark, shards=2)


def test_shard_scaling_shards4(benchmark):
    _run_scaling_point(benchmark, shards=4)


def _run_scaling_point(benchmark, shards):
    runner = bench_runner("twitter", DENSE_SCALE)
    spec = ALGORITHMS[ALGORITHM]
    oracle = runner.oracle_for(spec)  # build outside timing
    queries = tuple(bench_workload("twitter", DENSE_SCALE, **_workload_settings()))
    serial_groups = _serial_groups(runner, queries)
    workload_key = (id(runner), tuple(q.keywords for q in queries))

    engine = ShardedBranchAndBoundSolver(
        runner.graph,
        oracle=oracle,
        strategy=spec.build_solver(runner.graph, oracle).strategy,
        num_shards=shards,
        executor="process" if shards > 1 else "inline",
    )
    try:
        # Cold latency: the first solve pays partition + replication +
        # per-shard pool spawn.  Timed separately from the steady state.
        cold_started = time.perf_counter()
        cold = engine.solve(queries[0])
        cold_seconds = time.perf_counter() - cold_started

        results = benchmark.pedantic(
            lambda: [engine.solve(query) for query in queries],
            rounds=1,
            iterations=1,
        )
        shard_set = engine.shard_set
        replica_vertices = shard_set.replica_vertices if shard_set else 0
        snapshot_bytes = shard_set.snapshot_bytes if shard_set else 0
        effective = shard_set.num_shards if shard_set else 1
    finally:
        engine.close()

    # Determinism: the sharded fleet returns serial's exact answer.
    assert cold.groups == serial_groups[0]
    assert [r.groups for r in results] == serial_groups

    mean_s = benchmark.stats.stats.mean
    throughput = len(queries) / mean_s if mean_s > 0 else 0.0
    if shards == 1:
        _shard1_throughput[workload_key] = throughput
    base_throughput = _shard1_throughput.get(workload_key, 0.0)
    speedup = throughput / base_throughput if base_throughput > 0 else 0.0

    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["effective_shards"] = effective
    benchmark.extra_info["cold_ms"] = round(cold_seconds * 1000.0, 3)
    benchmark.extra_info["warm_query_ms"] = round(
        mean_s * 1000.0 / len(queries), 3
    )
    benchmark.extra_info["throughput_qps"] = round(throughput, 3)
    benchmark.extra_info["speedup_vs_shards1"] = round(speedup, 3)
    benchmark.extra_info["replica_vertices"] = replica_vertices
    benchmark.extra_info["snapshot_bytes"] = snapshot_bytes
    # Only schedule-independent counters go into extras (see the
    # parallel-scaling bench): subproblem counts are schedule-invariant.
    benchmark.extra_info["subproblems"] = sum(r.subproblems for r in results)

    if shards == 4:
        cores = os.cpu_count() or 1
        check_claim(
            cores < 4 or speedup > 1.5,
            f"shards=4 aggregate throughput speedup {speedup:.2f}x <= 1.5x "
            f"over shards=1 on the dense-large workload ({cores} cores)",
        )
