"""Figure 5 — average latency vs query keyword size |W_Q| (range 4..8).

Expected shape (Section VII-A): KTG-VKC-DEG-NLRNL clearly below
KTG-VKC-NL / KTG-VKC-NLRNL, and "all the algorithms are very stable
when the query keyword size becomes larger because all the algorithms
have enough qualified users covering the query keywords to form top N
groups".  Panels (a)-(d) are Gowalla, Brightkite, Flickr, DBLP.
"""

from __future__ import annotations

import pytest

from conftest import register_bench_meta, run_point

register_bench_meta("fig5_keyword_size", figure="5", title="average latency vs query keyword size")
from repro.workloads.runner import ALGORITHMS
from repro.workloads.sweep import DEFAULTS, PARAMETER_TABLE

KEYWORD_SIZES = PARAMETER_TABLE["keyword_size"]


@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
@pytest.mark.parametrize("wq", KEYWORD_SIZES)
def test_fig5a_gowalla(benchmark, algorithm, wq):
    run_point(
        benchmark,
        "gowalla",
        algorithm,
        keyword_size=wq,
        group_size=DEFAULTS["group_size"],
        tenuity=DEFAULTS["tenuity"],
        top_n=DEFAULTS["top_n"],
    )


@pytest.mark.parametrize("dataset", ["brightkite", "flickr", "dblp"])
@pytest.mark.parametrize("algorithm", ["KTG-VKC-NLRNL", "KTG-VKC-DEG-NLRNL"])
@pytest.mark.parametrize("wq", [4, 6, 8])
def test_fig5bcd_other_datasets(benchmark, dataset, algorithm, wq):
    run_point(
        benchmark,
        dataset,
        algorithm,
        keyword_size=wq,
        group_size=DEFAULTS["group_size"],
        tenuity=DEFAULTS["tenuity"],
        top_n=DEFAULTS["top_n"],
    )
