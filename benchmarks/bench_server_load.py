"""Server load — open-loop HTTP serving under ramped arrival rates.

The serving front end (:mod:`repro.server`) promises two things the
bare service cannot: identical concurrent queries collapse onto one
solver run, and tail latency stays bounded as the arrival rate climbs
(requests overlap on the solver thread pool instead of queueing behind
a single caller).  This bench measures both over the real wire:

1. **Coalescing acceptance** — N identical concurrent requests against
   a cold canonical key must execute the solver exactly once (the obs
   counter ``server.solver_runs`` is the witness; it only counts
   non-cache-hit leader solves, so the invariant holds whether a
   request coalesced in flight or arrived late and hit the cache).
2. **Open-loop ramp** — a load generator fires a fixed request mix at
   three scheduled arrival rates (arrivals are *independent* of
   completions — the generator never waits for a response before
   sending the next request, so server slowdowns show up as latency,
   not as reduced offered load).  Per-step p50/p95/p99 client-observed
   latencies are the figure data.

The rate limiter is disabled and ``max_inflight`` is generous: every
request must succeed, keeping the non-time artifact metrics exactly
reproducible for baseline comparison.
"""

from __future__ import annotations

import threading

import asyncio

from conftest import bench_dataset, register_bench_meta, smoke_mode

register_bench_meta("server_load", title="open-loop HTTP serving under ramped load")
from repro.obs.instruments import InstrumentRegistry
from repro.server import KTGServer, ServerThread, arequest, http_request
from repro.service import QueryService
from repro.workloads.runner import percentile_nearest_rank

ALGORITHM = "KTG-VKC-NLRNL"
#: Arrival-rate ramp (requests/second) — the ISSUE's ">= 3 steps".
RATES_QPS = (10.0, 20.0, 40.0)
REQUESTS_PER_STEP = 24
SMOKE_REQUESTS_PER_STEP = 8
COALESCE_CLIENTS = 8
DISTINCT_QUERIES = 6


def _payloads(graph):
    """A deterministic request mix: distinct queries with repeats."""
    labels = tuple(sorted(graph.keyword_table))
    payloads = []
    for index in range(DISTINCT_QUERIES):
        size = 3 + index % 2
        start = index % max(1, len(labels) - size)
        payloads.append(
            {
                "keywords": list(labels[start : start + size]),
                "group_size": 2,
                "tenuity": 1 + index % 2,
                "top_n": 2,
            }
        )
    return payloads


async def _run_step(host, port, rate_qps, payloads, count):
    """Fire *count* requests at *rate_qps*, open-loop; return latencies."""
    loop = asyncio.get_running_loop()
    step_start = loop.time()

    async def one(index):
        delay = index / rate_qps - (loop.time() - step_start)
        if delay > 0:
            await asyncio.sleep(delay)
        started = loop.time()
        status, _ = await arequest(
            host, port, "POST", "/solve", payloads[index % len(payloads)]
        )
        return status, (loop.time() - started) * 1000.0

    return await asyncio.gather(*(one(i) for i in range(count)))


def _coalescing_phase(host, port, payloads, registry):
    """N identical concurrent cold requests -> exactly one solver run."""
    cold = dict(payloads[0], tenuity=3)  # key no ramp query will touch
    runs_before = registry.counter("server.solver_runs").value
    barrier = threading.Barrier(COALESCE_CLIENTS)
    statuses = []
    lock = threading.Lock()

    def fire(client):
        barrier.wait()
        status, _ = http_request(
            host, port, "POST", "/solve", cold,
            headers={"X-Client-Id": f"bench-coalesce-{client}"},
        )
        with lock:
            statuses.append(status)

    threads = [
        threading.Thread(target=fire, args=(i,))
        for i in range(COALESCE_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert statuses == [200] * COALESCE_CLIENTS
    return registry.counter("server.solver_runs").value - runs_before


def test_server_load_ramp(benchmark):
    graph, _ = bench_dataset("brightkite")
    payloads = _payloads(graph)
    per_step = SMOKE_REQUESTS_PER_STEP if smoke_mode() else REQUESTS_PER_STEP
    registry = InstrumentRegistry()
    service = QueryService(
        graph, ALGORITHM, max_workers=4, instruments=registry
    )
    server = KTGServer(
        service,
        max_inflight=256,
        solver_threads=8,
        instruments=registry,
    )
    with service, ServerThread(server) as handle:
        host, port = handle.address

        # Exact acceptance invariant, asserted hard at every scale.
        coalesce_runs = _coalescing_phase(host, port, payloads, registry)
        assert coalesce_runs == 1, (
            f"{COALESCE_CLIENTS} identical concurrent requests ran the "
            f"solver {coalesce_runs} times (expected exactly 1)"
        )

        def ramp():
            steps = []
            for rate in RATES_QPS:
                outcomes = asyncio.run(
                    _run_step(host, port, rate, payloads, per_step)
                )
                steps.append(outcomes)
            return steps

        steps = benchmark.pedantic(ramp, rounds=1, iterations=1)

    benchmark.extra_info["coalesce_clients"] = COALESCE_CLIENTS
    benchmark.extra_info["coalesce_solver_runs"] = coalesce_runs
    benchmark.extra_info["rate_steps"] = len(RATES_QPS)
    benchmark.extra_info["total_requests"] = per_step * len(RATES_QPS)

    for number, (rate, outcomes) in enumerate(zip(RATES_QPS, steps), start=1):
        statuses = [status for status, _ in outcomes]
        latencies = sorted(latency for _, latency in outcomes)
        # Open-loop, no limiter, generous inflight cap: every request
        # must succeed — and the artifact counts stay deterministic.
        assert statuses == [200] * per_step, f"step {number}: {statuses}"
        prefix = f"step{number}"
        benchmark.extra_info[f"{prefix}_rate_qps"] = rate
        benchmark.extra_info[f"{prefix}_sent"] = len(outcomes)
        benchmark.extra_info[f"{prefix}_ok"] = statuses.count(200)
        benchmark.extra_info[f"{prefix}_p50_ms"] = round(
            percentile_nearest_rank(latencies, 0.50), 3
        )
        benchmark.extra_info[f"{prefix}_p95_ms"] = round(
            percentile_nearest_rank(latencies, 0.95), 3
        )
        benchmark.extra_info[f"{prefix}_p99_ms"] = round(
            percentile_nearest_rank(latencies, 0.99), 3
        )
