"""Table I — parameter ranges and default values.

Not a latency figure: this bench regenerates the paper's Table I (the
evaluation grid every other figure sweeps over), checks that every cell
of the grid yields answerable workloads on the dataset profiles, and
times workload generation itself.
"""

from __future__ import annotations

import pytest

from conftest import bench_dataset, register_bench_meta

register_bench_meta("table1_parameters", table="I", title="parameter ranges and defaults")
from repro.analysis.tables import render_table
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.sweep import DEFAULTS, PARAMETER_TABLE


def test_table1_print_and_validate(benchmark, capsys):
    """Emit Table I in the paper's layout (run with ``-s`` to see it)."""
    rows = [
        {
            "Parameter": parameter,
            "Range": ", ".join(str(v) for v in values),
            "Default": DEFAULTS[parameter],
        }
        for parameter, values in PARAMETER_TABLE.items()
    ]
    text = benchmark.pedantic(
        lambda: render_table(rows, title="Table I: parameter ranges and defaults"),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(text)
    assert set(PARAMETER_TABLE) == set(DEFAULTS)


@pytest.mark.parametrize("dataset", ["dblp", "gowalla", "brightkite", "flickr"])
def test_table1_grid_answerable(benchmark, dataset):
    """Every Table I cell yields >= p qualified users on every dataset."""
    graph, vocabulary = bench_dataset(dataset)
    generator = WorkloadGenerator(graph, vocabulary, dataset_name=dataset)

    def sweep_grid():
        produced = 0
        for parameter, values in PARAMETER_TABLE.items():
            for value in values:
                settings = dict(DEFAULTS)
                settings[parameter] = value
                workload = generator.generate(
                    count=1,
                    keyword_size=settings["keyword_size"],
                    group_size=settings["group_size"],
                    tenuity=settings["tenuity"],
                    top_n=settings["top_n"],
                    seed=3,
                )
                produced += len(workload)
        return produced

    produced = benchmark.pedantic(sweep_grid, rounds=1, iterations=1)
    assert produced == sum(len(values) for values in PARAMETER_TABLE.values())


def test_table1_workload_generation_cost(benchmark):
    """Time 100-query workload generation at Table I defaults (Gowalla)."""
    graph, vocabulary = bench_dataset("gowalla")
    generator = WorkloadGenerator(graph, vocabulary, dataset_name="gowalla")
    workload = benchmark.pedantic(
        lambda: generator.generate(count=100, seed=5), rounds=1, iterations=1
    )
    assert len(workload) == 100
