"""Churn latency — query p50/p95 while edges stream into the graph.

The operational claim behind the epoch machinery
(:mod:`repro.core.epoch`): a serving deployment should not have to
choose between answering queries and accepting graph mutations.  Edits
are delta-buffered against the current CSR snapshot, indexes are
repaired incrementally, and snapshot rotation compacts the delta in the
background — so query latency under a mutation stream must stay within
a small constant of the no-churn latency, with zero failed requests.

Two phases over identical fresh-graph copies and the same workload:

* **no-churn** — a read-only :class:`QueryService` serves the workload;
* **churn** — an epoch-mode service serves the same workload while a
  deterministic stream of edge flips lands between queries, forcing at
  least three epoch rotations along the way.

Acceptance: churn p95 <= 2x no-churn p95 (soft under ``--smoke``),
zero failed requests, >= 3 rotations.  Caching is disabled in both
phases so every latency sample is a real solve.
"""

from __future__ import annotations

import random

from conftest import bench_dataset, bench_workload, check_claim, register_bench_meta

register_bench_meta("churn_latency", title="query latency under streaming mutations")
from repro.core.graph import AttributedGraph
from repro.service import QueryService

ALGORITHM = "KTG-VKC-DEG-NLRNL"
QUERIES = 18
#: Edge flips applied between consecutive queries in the churn phase.
MUTATIONS_PER_QUERY = 4


def _rotate_after(total_mutations: int) -> int:
    """Threshold sized so the stream always drives >= 4 rotations.

    ``--smoke`` truncates the workload to a single query (4 mutations),
    so the threshold must scale with the actual stream length rather
    than assume the full 18-query run.
    """
    return max(1, total_mutations // 4)


def _fresh_graph():
    """A private mutable copy of the bench dataset's graph.

    The churn phase mutates its graph in place; the session-cached
    dataset must stay pristine for every other bench in the run.
    """
    graph, _ = bench_dataset("brightkite")
    return AttributedGraph(
        graph.num_vertices,
        graph.edges(),
        keywords={v: graph.keyword_labels(v) for v in range(graph.num_vertices)},
    )


def _serve_all(service, workload):
    failures = 0
    for query in workload:
        try:
            service.submit(query)
        except Exception:
            failures += 1
    return failures


def _mutation_stream(seed: int):
    return random.Random(seed)


def test_latency_under_streaming_edges(benchmark):
    workload = list(bench_workload("brightkite", count=QUERIES, keyword_size=4))
    rotate_after = _rotate_after(len(workload) * MUTATIONS_PER_QUERY)

    # Phase 1 (untimed): the no-churn baseline percentiles.
    with QueryService(
        _fresh_graph(), ALGORITHM, cache_capacity=0
    ) as quiet_service:
        quiet_failures = _serve_all(quiet_service, workload)
        quiet_stats = quiet_service.stats()

    # Phase 2 (timed): the same workload with edge flips streaming in.
    def churn_pass():
        graph = _fresh_graph()
        rng = _mutation_stream(seed=0)
        n = graph.num_vertices
        failures = 0
        with QueryService(
            graph,
            ALGORITHM,
            cache_capacity=0,
            mutations=True,
            epoch_rotate_after=rotate_after,
            epoch_max_delta=4 * rotate_after,
            epoch_rotate_sync=True,  # deterministic rotation count
        ) as service:
            for query in workload:
                for _ in range(MUTATIONS_PER_QUERY):
                    u, v = rng.sample(range(n), 2)
                    try:
                        if graph.has_edge(u, v):
                            service.remove_edge(u, v)
                        else:
                            service.add_edge(u, v)
                    except Exception:
                        failures += 1
                try:
                    service.submit(query)
                except Exception:
                    failures += 1
            return failures, service.stats(), service.instrument_report()["epoch"]

    failures, churn_stats, epoch_report = benchmark.pedantic(
        churn_pass, rounds=1, iterations=1
    )

    benchmark.extra_info["queries"] = len(workload)
    benchmark.extra_info["mutations"] = len(workload) * MUTATIONS_PER_QUERY
    benchmark.extra_info["rotate_after"] = rotate_after
    benchmark.extra_info["quiet_p50_ms"] = round(quiet_stats.p50_ms, 3)
    benchmark.extra_info["quiet_p95_ms"] = round(quiet_stats.p95_ms, 3)
    benchmark.extra_info["churn_p50_ms"] = round(churn_stats.p50_ms, 3)
    benchmark.extra_info["churn_p95_ms"] = round(churn_stats.p95_ms, 3)
    benchmark.extra_info["rotations"] = epoch_report["rotations"]
    benchmark.extra_info["repairs"] = epoch_report["repairs"]
    benchmark.extra_info["delta_reads"] = epoch_report["delta_reads"]
    benchmark.extra_info["failed_requests"] = failures + quiet_failures

    # Hard guarantees: the mutation stream can never fail a request, and
    # the configured thresholds must have rotated the epoch >= 3 times.
    assert failures == 0 and quiet_failures == 0
    assert epoch_report["rotations"] >= 3, epoch_report

    # The latency claim (soft under --smoke, where tiny solves make the
    # percentiles noise-dominated): streaming mutations cost at most 2x
    # on tail latency.
    ratio = (
        churn_stats.p95_ms / quiet_stats.p95_ms if quiet_stats.p95_ms else 1.0
    )
    benchmark.extra_info["p95_ratio"] = round(ratio, 2)
    check_claim(
        ratio <= 2.0,
        f"churn p95 {churn_stats.p95_ms:.3f}ms > 2x quiet p95 "
        f"{quiet_stats.p95_ms:.3f}ms",
    )


def test_incremental_repair_beats_rebuild_serving(benchmark):
    """Epoch-mode mutation apply must beat mutate-and-rebuild serving.

    The alternative to incremental repair is what a pre-epoch service
    did implicitly: any graph edit invalidates the oracle and the next
    query pays a full index rebuild.  This measures the same
    mutate+query loop both ways; the epoch path must not be slower.
    (It is usually several times faster — the assertion is lenient
    because at smoke scale both are microseconds.)
    """
    import time

    workload = list(bench_workload("brightkite", count=6, keyword_size=4))
    flips = [(i, i + 1) for i in range(0, 12, 2)]

    def rebuild_pass():
        graph = _fresh_graph()
        with QueryService(graph, ALGORITHM, cache_capacity=0) as service:
            for (u, v), query in zip(flips, workload):
                if graph.has_edge(u, v):
                    graph.remove_edge(u, v)
                else:
                    graph.add_edge(u, v)
                # is_stale() trips: the oracle is rebuilt from scratch.
                service.submit(query)

    def epoch_pass():
        graph = _fresh_graph()
        with QueryService(
            graph,
            ALGORITHM,
            cache_capacity=0,
            mutations=True,
            epoch_rotate_sync=True,
        ) as service:
            for (u, v), query in zip(flips, workload):
                if graph.has_edge(u, v):
                    service.remove_edge(u, v)
                else:
                    service.add_edge(u, v)
                service.submit(query)

    start = time.perf_counter()
    rebuild_pass()
    rebuild_seconds = time.perf_counter() - start

    benchmark.pedantic(epoch_pass, rounds=1, iterations=1)
    epoch_seconds = benchmark.stats.stats.mean

    speedup = rebuild_seconds / epoch_seconds if epoch_seconds else float("inf")
    benchmark.extra_info["rebuild_seconds"] = round(rebuild_seconds, 4)
    benchmark.extra_info["speedup_vs_rebuild"] = round(speedup, 2)
    check_claim(
        speedup >= 1.0,
        f"epoch serving {epoch_seconds:.4f}s slower than rebuild "
        f"{rebuild_seconds:.4f}s",
    )
