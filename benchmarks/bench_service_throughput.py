"""Service throughput — batch serving vs one-at-a-time solving.

The operational case for :mod:`repro.service`: a production deployment
answers *streams* of queries in which popular queries repeat (the
paper's motivating scenario — recurring event-organisation queries over
a slowly changing social graph).  On such a workload the service
amortises repeats through its LRU result cache while the worker pool
keeps oracle-bound queries overlapping, so batch throughput must beat
the naive solve-every-query-from-scratch loop by at least 2x.

Workload shape: a small set of distinct queries, each repeated several
times and interleaved — the classic Zipf-flavoured request mix, reduced
to its essence (uniform repeats) to keep the bench deterministic.
"""

from __future__ import annotations

import time

from conftest import bench_runner, bench_workload, check_claim, register_bench_meta

register_bench_meta("service_throughput", title="batch serving vs sequential solving")
from repro.service import QueryService
from repro.workloads.runner import ALGORITHMS

ALGORITHM = "KTG-VKC-DEG-NLRNL"
DISTINCT_QUERIES = 6
REPEATS = 5


def _repeated_workload():
    distinct = list(
        bench_workload("brightkite", count=DISTINCT_QUERIES, keyword_size=4)
    )
    # Interleave rather than concatenate so cache hits are spread across
    # the batch instead of clustered at the tail.
    return distinct * REPEATS


def test_service_throughput_vs_sequential(benchmark):
    runner = bench_runner("brightkite")
    oracle = runner.oracle_for(ALGORITHMS[ALGORITHM])  # build outside timing
    workload = _repeated_workload()

    def baseline():
        # Cache off, one worker: the pre-service execution model.
        with QueryService(
            runner.graph, ALGORITHM, oracle=oracle, max_workers=1, cache_capacity=0
        ) as service:
            return service.run_batch(workload, parallel=False)

    def served():
        with QueryService(
            runner.graph, ALGORITHM, oracle=oracle, max_workers=4
        ) as service:
            results = service.run_batch(workload)
            return results, service.stats()

    start = time.perf_counter()
    sequential = baseline()
    baseline_seconds = time.perf_counter() - start

    (results, stats) = benchmark.pedantic(served, rounds=1, iterations=1)

    # Exactness under batching: identical member sets, query for query.
    assert [r.member_sets() for r in results] == [
        r.member_sets() for r in sequential
    ]

    wall = benchmark.stats.stats.mean
    speedup = baseline_seconds / wall if wall else float("inf")
    benchmark.extra_info["baseline_seconds"] = round(baseline_seconds, 4)
    benchmark.extra_info["speedup_vs_sequential"] = round(speedup, 2)
    benchmark.extra_info["cache_hit_rate"] = round(stats.cache_hit_rate, 3)
    benchmark.extra_info["queries_served"] = stats.queries_served

    # The acceptance bar: >=2x throughput on a repeated-query workload.
    # Soft under --smoke: at smoke scale, per-query work is too small for
    # pool/cache amortisation to dominate dispatch overhead.
    check_claim(speedup >= 2.0, f"service speedup {speedup:.2f}x < 2x")
    assert stats.cache_hits > 0


def test_second_pass_is_cache_resident(benchmark):
    """A second identical batch through a warm service is ~all cache hits."""
    runner = bench_runner("brightkite")
    oracle = runner.oracle_for(ALGORITHMS[ALGORITHM])
    workload = list(bench_workload("brightkite", count=DISTINCT_QUERIES, keyword_size=4))

    service = QueryService(runner.graph, ALGORITHM, oracle=oracle, max_workers=4)
    with service:
        service.run_batch(workload)  # warm pass, untimed
        results = benchmark.pedantic(
            lambda: service.run_batch(workload), rounds=1, iterations=1
        )
        stats = service.stats()

    assert all(r.from_cache for r in results)
    assert stats.cache_hit_rate > 0
    benchmark.extra_info["cache_hit_rate"] = round(stats.cache_hit_rate, 3)
    benchmark.extra_info["second_pass_hits"] = sum(r.from_cache for r in results)
