"""Parallel branch-and-bound scaling — speedup vs ``jobs`` (dense-large).

Runs the same dense-large workload (the Twitter profile, the paper's
densest graph) through :class:`repro.core.parallel.ParallelBranchAndBoundSolver`
at ``jobs`` in {1, 2, 4} and reports the speedup of each fleet size
over the serial :class:`BranchAndBoundSolver` reference.  Every
parallel run's ranked groups are asserted bit-identical to serial —
the scaling curve is only meaningful because the answer is exact.

The headline claim (>1.5x at ``jobs=4``) holds at full bench scale on
a machine with at least four cores; under ``--smoke`` (tiny datasets,
process-spawn overhead dominates) it is softened to a warning like all
other quantitative claims.
"""

from __future__ import annotations

import os
import time

from conftest import bench_runner, bench_workload, check_claim, register_bench_meta

register_bench_meta(
    "parallel_scaling",
    title="parallel branch-and-bound speedup vs jobs (dense-large)",
)

from repro.core.parallel import ParallelBranchAndBoundSolver
from repro.workloads.runner import ALGORITHMS
from repro.workloads.sweep import DEFAULTS

#: Match bench_fig7_dense_large: the dense profile at its fig7 scale.
DENSE_SCALE = 0.35
ALGORITHM = "KTG-VKC-DEG-NLRNL"

#: Serial reference per workload key, measured once and reused by every
#: parametrization so all speedups share one baseline.
_serial_reference: dict[tuple, tuple[float, list]] = {}


def _workload_settings() -> dict:
    return dict(
        keyword_size=DEFAULTS["keyword_size"],
        group_size=4,  # deeper tree than the sweep default: more work to split
        tenuity=1,  # denser graph: k=1 keeps the grid feasible (as in fig7a)
        top_n=DEFAULTS["top_n"],
    )


def _serial_baseline(runner, workload) -> tuple[float, list]:
    """Serial wall-clock and ranked groups for the workload (cached)."""
    key = (id(runner), tuple(q.keywords for q in workload))
    if key not in _serial_reference:
        spec = ALGORITHMS[ALGORITHM]
        solver = spec.build_solver(runner.graph, runner.oracle_for(spec))
        started = time.perf_counter()
        groups = [solver.solve(query).groups for query in workload]
        _serial_reference[key] = (time.perf_counter() - started, groups)
    return _serial_reference[key]


# One named test per fleet size (not a parametrize grid) so the smoke
# job — which keeps only the first parametrization per function — still
# emits the full speedup-vs-jobs curve in the artifact.
def test_parallel_scaling_jobs1(benchmark):
    _run_scaling_point(benchmark, jobs=1)


def test_parallel_scaling_jobs2(benchmark):
    _run_scaling_point(benchmark, jobs=2)


def test_parallel_scaling_jobs4(benchmark):
    _run_scaling_point(benchmark, jobs=4)


def _run_scaling_point(benchmark, jobs):
    runner = bench_runner("twitter", DENSE_SCALE)
    spec = ALGORITHMS[ALGORITHM]
    oracle = runner.oracle_for(spec)  # build outside timing
    queries = tuple(bench_workload("twitter", DENSE_SCALE, **_workload_settings()))
    serial_seconds, serial_groups = _serial_baseline(runner, queries)

    engine = ParallelBranchAndBoundSolver(
        runner.graph,
        oracle=oracle,
        strategy=spec.build_solver(runner.graph, oracle).strategy,
        jobs=jobs,
        executor="process" if jobs > 1 else "inline",
    )
    try:
        # Warm the pool outside the timed region (one-time spawn cost is
        # amortised over a service's lifetime, not paid per query).
        engine.solve(queries[0])

        results = benchmark.pedantic(
            lambda: [engine.solve(query) for query in queries],
            rounds=1,
            iterations=1,
        )
    finally:
        engine.close()

    # Determinism: the parallel fleet returns serial's exact answer.
    assert [r.groups for r in results] == serial_groups

    mean_s = benchmark.stats.stats.mean
    speedup = serial_seconds / mean_s if mean_s > 0 else 0.0
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["serial_ms"] = round(serial_seconds * 1000.0, 3)
    benchmark.extra_info["speedup_vs_serial"] = round(speedup, 3)
    # Only schedule-independent counters go into extras: with bound
    # broadcasting on, per-worker prune counts depend on broadcast
    # timing, and the baseline-compare CI job would flag that noise.
    benchmark.extra_info["subproblems"] = sum(r.subproblems for r in results)

    if jobs == 4:
        cores = os.cpu_count() or 1
        check_claim(
            cores < 4 or speedup > 1.5,
            f"jobs=4 speedup {speedup:.2f}x <= 1.5x on the dense-large "
            f"workload ({cores} cores)",
        )
