"""Figure 7 — denser graph (Twitter) and large graph (DBLP, 1M nodes).

Figure 7(a) varies the group size on the Twitter profile (the paper's
densest graph, avg degree ~43): "our KTG-VKC-DEG algorithm outperforms
KTG-VKC significantly".  Figure 7(b) varies the social constraint on
the large DBLP profile: "KTG-VKC-DEG-NLRNL shows good scalability on
the large graph, while KTG-VKC-NL is very slow ... with a large social
constraint" (the NL index pays on-demand expansion when k exceeds its
stored depth).
"""

from __future__ import annotations

import pytest

from conftest import register_bench_meta, run_point

register_bench_meta("fig7_dense_large", figure="7", title="dense (Twitter) and large (DBLP) graphs")
from repro.workloads.sweep import DEFAULTS

#: The large profile runs at a reduced scale to keep index build cost
#: inside the bench budget; it is still the largest graph in the suite.
LARGE_SCALE = 0.35
DENSE_SCALE = 0.35


@pytest.mark.parametrize(
    "algorithm", ["KTG-VKC-NLRNL", "KTG-VKC-DEG-NLRNL"]
)
@pytest.mark.parametrize("p", [3, 4, 5])
def test_fig7a_twitter_group_size(benchmark, algorithm, p):
    run_point(
        benchmark,
        "twitter",
        algorithm,
        scale=DENSE_SCALE,
        keyword_size=DEFAULTS["keyword_size"],
        group_size=p,
        tenuity=1,  # denser graph: k=1 keeps the grid feasible
        top_n=DEFAULTS["top_n"],
    )


@pytest.mark.parametrize(
    "algorithm", ["KTG-VKC-NL", "KTG-VKC-NLRNL", "KTG-VKC-DEG-NLRNL"]
)
@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_fig7b_dblp_large_social_constraint(benchmark, algorithm, k):
    run_point(
        benchmark,
        "dblp-large",
        algorithm,
        scale=LARGE_SCALE,
        keyword_size=DEFAULTS["keyword_size"],
        group_size=DEFAULTS["group_size"],
        tenuity=k,
        top_n=DEFAULTS["top_n"],
    )
