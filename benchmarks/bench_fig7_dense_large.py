"""Figure 7 — denser graph (Twitter) and large graph (DBLP, 1M nodes).

Figure 7(a) varies the group size on the Twitter profile (the paper's
densest graph, avg degree ~43): "our KTG-VKC-DEG algorithm outperforms
KTG-VKC significantly".  Figure 7(b) varies the social constraint on
the large DBLP profile: "KTG-VKC-DEG-NLRNL shows good scalability on
the large graph, while KTG-VKC-NL is very slow ... with a large social
constraint" (the NL index pays on-demand expansion when k exceeds its
stored depth).

The module also carries the kernel-backend comparison at whole-query
granularity: the dense Twitter point solved cold (fresh ball cache per
run) with the scalar python CSR kernels vs the numpy-vectorized twins,
same ranked groups, >= 1.5x faster end to end.
"""

from __future__ import annotations

import time

import pytest

from conftest import bench_runner, bench_workload, check_claim, register_bench_meta, run_point

register_bench_meta("fig7_dense_large", figure="7", title="dense (Twitter) and large (DBLP) graphs")
from repro.kernels.vec import numpy_available
from repro.workloads.runner import ALGORITHMS
from repro.workloads.sweep import DEFAULTS

#: The large profile runs at a reduced scale to keep index build cost
#: inside the bench budget; it is still the largest graph in the suite.
LARGE_SCALE = 0.35
DENSE_SCALE = 0.35


@pytest.mark.parametrize(
    "algorithm", ["KTG-VKC-NLRNL", "KTG-VKC-DEG-NLRNL"]
)
@pytest.mark.parametrize("p", [3, 4, 5])
def test_fig7a_twitter_group_size(benchmark, algorithm, p):
    run_point(
        benchmark,
        "twitter",
        algorithm,
        scale=DENSE_SCALE,
        keyword_size=DEFAULTS["keyword_size"],
        group_size=p,
        tenuity=1,  # denser graph: k=1 keeps the grid feasible
        top_n=DEFAULTS["top_n"],
    )


@pytest.mark.parametrize(
    "algorithm", ["KTG-VKC-NL", "KTG-VKC-NLRNL", "KTG-VKC-DEG-NLRNL"]
)
@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_fig7b_dblp_large_social_constraint(benchmark, algorithm, k):
    run_point(
        benchmark,
        "dblp-large",
        algorithm,
        scale=LARGE_SCALE,
        keyword_size=DEFAULTS["keyword_size"],
        group_size=DEFAULTS["group_size"],
        tenuity=k,
        top_n=DEFAULTS["top_n"],
    )


# ----------------------------------------------------------------------
# Kernel backend at whole-query granularity (dense Twitter, cold cache)
# ----------------------------------------------------------------------
BACKEND_ALGORITHM = "KTG-VKC-DEG-NLRNL"
BACKEND_SETTINGS = dict(
    keyword_size=DEFAULTS["keyword_size"],
    group_size=4,
    # The paper's "large social constraint" regime: k=3 balls span most
    # of the dense graph, so cold ball construction dominates the query
    # and the kernel backend is what the measurement isolates.
    tenuity=3,
    top_n=DEFAULTS["top_n"],
)

_backend_reference: dict[str, tuple[float, list]] = {}


def _backend_run(kernel_backend: str) -> list:
    """Solve the dense workload cold: a fresh solver (empty ball cache)
    per run, so ball construction is inside the measured region."""
    runner = bench_runner("twitter", DENSE_SCALE)
    spec = ALGORITHMS[BACKEND_ALGORITHM]
    oracle = runner.oracle_for(spec)
    workload = bench_workload("twitter", DENSE_SCALE, **BACKEND_SETTINGS)
    solver = spec.build_solver(
        runner.graph,
        oracle,
        distance_engine="bitset",
        graph_layout="csr",
        kernel_backend=kernel_backend,
    )
    return [solver.solve(query).groups for query in workload]


def _backend_python_baseline() -> tuple[float, list]:
    if "python" not in _backend_reference:
        _backend_run("python")  # warm graph/oracle/snapshot caches
        started = time.perf_counter()
        groups = _backend_run("python")
        _backend_reference["python"] = (time.perf_counter() - started, groups)
    return _backend_reference["python"]


def test_fig7_dense_whole_query_backend_python(benchmark):
    _backend_run("python")  # warm everything but the ball cache
    groups = benchmark.pedantic(
        lambda: _backend_run("python"), rounds=1, iterations=1
    )
    benchmark.extra_info["queries"] = len(groups)


@pytest.mark.skipif(not numpy_available(), reason="numpy not importable")
def test_fig7_dense_whole_query_backend_numpy(benchmark):
    python_seconds, reference_groups = _backend_python_baseline()
    groups = benchmark.pedantic(
        lambda: _backend_run("numpy"), rounds=1, iterations=1
    )

    # Bit-identical ranked groups across backends, per query.
    assert groups == reference_groups

    mean_s = benchmark.stats.stats.mean
    speedup = python_seconds / mean_s if mean_s > 0 else float("inf")
    benchmark.extra_info["queries"] = len(groups)
    benchmark.extra_info["python_ms"] = round(python_seconds * 1000.0, 3)
    benchmark.extra_info["speedup_vs_python"] = round(speedup, 2)

    # The acceptance bar: vectorized kernels lift the cold whole-query
    # path >= 1.5x on the dense profile.  Soft under --smoke.
    check_claim(
        speedup >= 1.5,
        f"whole-query backend speedup {speedup:.2f}x < 1.5x on dense Twitter",
    )
