"""Ablation A1 — degree tie-break direction in KTG-VKC-DEG.

Section IV-B contains contradictory sentences: "sorting by the vertex
degree in descending order" vs "the smaller the vertex degree is, the
higher priority".  The library defaults to *ascending* (the motivation
and the worked example); this bench measures both directions plus plain
VKC on tenuity-bound workloads where the tie-break matters, reporting
latency and the first-feasible-group node count (the quantity the
ordering is designed to minimise).
"""

from __future__ import annotations

import pytest

from conftest import bench_dataset, bench_workload, register_bench_meta

register_bench_meta("ablation_degree_order", ablation="A1", title="degree tie-break direction")
from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.strategies import VKCDegreeOrdering, VKCOrdering
from repro.index.nlrnl import NLRNLIndex

_oracles: dict[str, NLRNLIndex] = {}


def oracle_for(dataset: str, graph) -> NLRNLIndex:
    if dataset not in _oracles:
        _oracles[dataset] = NLRNLIndex(graph)
    return _oracles[dataset]


@pytest.mark.parametrize("dataset", ["gowalla", "dblp"])
@pytest.mark.parametrize("direction", ["ascending", "descending", "none"])
def test_ablation_degree_order(benchmark, dataset, direction):
    graph, _ = bench_dataset(dataset)
    oracle = oracle_for(dataset, graph)
    if direction == "none":
        strategy = VKCOrdering()
    else:
        strategy = VKCDegreeOrdering(graph.degrees(), direction)
    solver = BranchAndBoundSolver(graph, oracle=oracle, strategy=strategy)
    # Tenuity-bound setting: k=3 on these profiles makes feasibility
    # the bottleneck, which is where the tie-break earns its keep.
    workload = bench_workload(
        dataset, keyword_size=6, group_size=4, tenuity=3, top_n=3
    )

    def run():
        total_first = 0
        for query in workload:
            result = solver.solve(query)
            if result.stats.first_feasible_node is not None:
                total_first += result.stats.first_feasible_node
        return total_first

    total_first = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["first_feasible_nodes_total"] = total_first
