"""Figure 6 — average latency vs N (top-N size, Table I range 3..11).

Expected shape: latencies are near-flat in N (the result pool is tiny
relative to the search space and the threshold C_max behaves similarly
for small N), with the usual algorithm ordering — the paper's Figure 6
panels show exactly this stability.
"""

from __future__ import annotations

import pytest

from conftest import register_bench_meta, run_point

register_bench_meta("fig6_topn", figure="6", title="average latency vs top-N size")
from repro.workloads.runner import ALGORITHMS
from repro.workloads.sweep import DEFAULTS, PARAMETER_TABLE

TOP_NS = PARAMETER_TABLE["top_n"]


@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
@pytest.mark.parametrize("top_n", TOP_NS)
def test_fig6a_gowalla(benchmark, algorithm, top_n):
    run_point(
        benchmark,
        "gowalla",
        algorithm,
        keyword_size=DEFAULTS["keyword_size"],
        group_size=DEFAULTS["group_size"],
        tenuity=DEFAULTS["tenuity"],
        top_n=top_n,
    )


@pytest.mark.parametrize("dataset", ["brightkite", "dblp"])
@pytest.mark.parametrize("algorithm", ["KTG-VKC-NLRNL", "KTG-VKC-DEG-NLRNL"])
@pytest.mark.parametrize("top_n", [3, 7, 11])
def test_fig6bc_other_datasets(benchmark, dataset, algorithm, top_n):
    run_point(
        benchmark,
        dataset,
        algorithm,
        keyword_size=DEFAULTS["keyword_size"],
        group_size=DEFAULTS["group_size"],
        tenuity=DEFAULTS["tenuity"],
        top_n=top_n,
    )
