"""CSR snapshot fan-out — flat-array traversal and zero-copy pool init.

Quantifies the two effects ``graph_layout="csr"`` exists for, on the
dense-large profile (Twitter, the paper's densest graph):

* **Traversal throughput** — full BFS sweeps and ball-bitset builds over
  the snapshot's flat ``indptr``/``indices`` lists vs the per-vertex
  adjacency sets (claim: >1.2x at full bench scale).
* **Worker-state fan-out** — the cost of making per-worker solver state
  available to a process fleet.  The classic path serialises the graph
  *and* the prebuilt NLRNL oracle and every worker deserialises its own
  copy; the csr path copies one shared-memory segment and workers
  attach zero-copy (claim: >=2x faster pool init at full bench scale).
  Measured on the payload path directly because Linux ``fork`` pools
  inherit initargs copy-on-write — the pickle round-trip timed here is
  what every ``spawn`` pool, respawned worker, or cross-machine ship
  of the same state pays.
* **Pool spin-up, end to end** — engine construction through the first
  completed solve for a real ``jobs=2`` process fleet, both layouts.
  Informational (the solve dominates under fork); asserts identical
  ranked groups and the deterministic segment-release lifecycle, and
  lands the ``csr.*`` counters in the artifact's ``extra_info`` so the
  smoke baseline also guards the build/attach/release bookkeeping.
"""

from __future__ import annotations

import pickle
import time

from conftest import (
    bench_dataset,
    bench_workload,
    check_claim,
    register_bench_meta,
)

register_bench_meta(
    "csr_fanout",
    title="CSR snapshot traversal throughput and zero-copy pool spin-up",
)

from repro.core import csr as csr_module
from repro.core.parallel import ParallelBranchAndBoundSolver
from repro.index._traversal import bfs_levels, bfs_levels_csr
from repro.index.bfs import BFSOracle
from repro.index.nlrnl import NLRNLIndex
from repro.kernels import BallBitsetEngine
from repro.workloads.runner import ALGORITHMS
from repro.workloads.sweep import DEFAULTS

#: Match bench_parallel_scaling: the dense profile at its fig7 scale.
DENSE_SCALE = 0.35
ALGORITHM = "KTG-VKC-DEG-NLRNL"
BALL_K = 2
#: Fleet size for the state fan-out comparison: the deserialise side
#: pays per worker, the attach side is near-constant.
FANOUT_JOBS = 4

#: Cross-test state: the adjacency-side timings each csr test compares
#: against (file order puts the adjacency variant first).
_reference: dict[str, object] = {}


def _graph():
    graph, _ = bench_dataset("twitter", DENSE_SCALE)
    return graph


def _workload():
    return tuple(
        bench_workload(
            "twitter",
            DENSE_SCALE,
            keyword_size=DEFAULTS["keyword_size"],
            group_size=4,
            tenuity=1,
            top_n=DEFAULTS["top_n"],
        )
    )


# ----------------------------------------------------------------------
# BFS sweep throughput
# ----------------------------------------------------------------------
def test_bfs_sweep_adjacency(benchmark):
    graph = _graph()
    adjacency = graph.adjacency_view()

    def sweep():
        return [bfs_levels(adjacency, v) for v in graph.vertices()]

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    _reference["bfs_s"] = benchmark.stats.stats.mean
    benchmark.extra_info["vertices"] = graph.num_vertices


def test_bfs_sweep_csr(benchmark):
    graph = _graph()
    snapshot = graph.csr_snapshot()
    indptr, indices = snapshot.indptr, snapshot.indices
    adjacency = graph.adjacency_view()

    def sweep():
        return [bfs_levels_csr(indptr, indices, v) for v in graph.vertices()]

    levels = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Order within a level is kernel-specific; the level *sets* are not.
    probe = graph.num_vertices // 2
    assert [sorted(lv) for lv in levels[probe]] == [
        sorted(lv) for lv in bfs_levels(adjacency, probe)
    ]

    mean_s = benchmark.stats.stats.mean
    speedup = _reference["bfs_s"] / mean_s if mean_s > 0 else 0.0
    benchmark.extra_info["speedup_vs_adjacency"] = round(speedup, 3)
    benchmark.extra_info["snapshot_bytes"] = snapshot.nbytes
    check_claim(
        speedup > 1.2,
        f"csr BFS sweep speedup {speedup:.2f}x <= 1.2x on dense-large",
    )


# ----------------------------------------------------------------------
# Ball-bitset build throughput
# ----------------------------------------------------------------------
def test_ball_build_adjacency(benchmark):
    graph = _graph()

    def build():
        engine = BallBitsetEngine(BFSOracle(graph))
        return [engine.ball(v, BALL_K) for v in graph.vertices()]

    _reference["balls"] = benchmark.pedantic(build, rounds=1, iterations=1)
    _reference["ball_s"] = benchmark.stats.stats.mean


def test_ball_build_csr(benchmark):
    graph = _graph()
    graph.csr_snapshot()  # build outside timing, as solvers do

    def build():
        engine = BallBitsetEngine(BFSOracle(graph), graph_layout="csr")
        return [engine.ball(v, BALL_K) for v in graph.vertices()]

    balls = benchmark.pedantic(build, rounds=1, iterations=1)
    assert balls == _reference["balls"]  # bit-identical ball bitsets

    mean_s = benchmark.stats.stats.mean
    speedup = _reference["ball_s"] / mean_s if mean_s > 0 else 0.0
    benchmark.extra_info["speedup_vs_adjacency"] = round(speedup, 3)
    benchmark.extra_info["ball_k"] = BALL_K
    check_claim(
        speedup > 1.2,
        f"csr ball-build speedup {speedup:.2f}x <= 1.2x on dense-large",
    )


# ----------------------------------------------------------------------
# Worker-state fan-out: pickle round-trip vs shared-memory attach
# ----------------------------------------------------------------------
def test_worker_state_fanout_pickled(benchmark):
    graph = _graph()
    oracle = NLRNLIndex(graph)  # prebuilt once, shipped to every worker
    _reference["oracle"] = oracle

    def fan_out():
        payload = pickle.dumps((graph, oracle))
        return [pickle.loads(payload) for _ in range(FANOUT_JOBS)], len(payload)

    (copies, payload_bytes) = benchmark.pedantic(fan_out, rounds=1, iterations=1)
    assert copies[-1][0].num_edges == graph.num_edges
    _reference["fanout_s"] = benchmark.stats.stats.mean
    benchmark.extra_info["jobs"] = FANOUT_JOBS
    benchmark.extra_info["payload_bytes"] = payload_bytes
    benchmark.extra_info["oracle_entries"] = oracle.stats.entries


def test_worker_state_fanout_shared_memory(benchmark):
    graph = _graph()
    snapshot = graph.csr_snapshot()  # cached; built once per graph version
    csr_module.reset_counters()

    def fan_out():
        shared = snapshot.share()
        try:
            oracles = []
            for _ in range(FANOUT_JOBS):
                attached = csr_module.CsrSnapshot.attach(shared.name)
                oracles.append(BFSOracle(attached.view(), graph_layout="csr"))
            return oracles
        finally:
            for oracle in oracles:
                oracle.graph.snapshot.close()
            shared.release()

    oracles = benchmark.pedantic(fan_out, rounds=1, iterations=1)
    assert len(oracles) == FANOUT_JOBS

    mean_s = benchmark.stats.stats.mean
    speedup = _reference["fanout_s"] / mean_s if mean_s > 0 else 0.0
    totals = csr_module.counter_totals()
    assert totals["attaches"] == FANOUT_JOBS
    assert totals["segment_releases"] == 1
    benchmark.extra_info["jobs"] = FANOUT_JOBS
    benchmark.extra_info["segment_bytes"] = snapshot.nbytes
    benchmark.extra_info["speedup_vs_pickled"] = round(speedup, 3)
    benchmark.extra_info["csr_attaches"] = totals["attaches"]
    benchmark.extra_info["csr_segment_releases"] = totals["segment_releases"]
    check_claim(
        speedup >= 2.0,
        f"shared-memory pool-init fan-out speedup {speedup:.2f}x < 2x vs pickling",
    )


# ----------------------------------------------------------------------
# Pool spin-up, end to end: parity + lifecycle on a real process fleet
# ----------------------------------------------------------------------
def _spinup(graph, oracle, graph_layout):
    """Engine construction through first completed solve, in seconds."""
    query = _workload()[0]
    spec = ALGORITHMS[ALGORITHM]
    started = time.perf_counter()
    with ParallelBranchAndBoundSolver(
        graph,
        oracle=oracle,
        strategy=spec.build_solver(graph, oracle).strategy,
        jobs=2,
        executor="process",
        graph_layout=graph_layout,
    ) as engine:
        result = engine.solve(query)
    return time.perf_counter() - started, result.groups


def test_pool_spinup_pickled(benchmark):
    graph = _graph()
    oracle = _reference["oracle"]  # prebuilt by the fan-out test above

    outcome = benchmark.pedantic(
        lambda: _spinup(graph, oracle, "adjacency"), rounds=1, iterations=1
    )
    _reference["spinup_s"], _reference["groups"] = outcome
    benchmark.extra_info["jobs"] = 2


def test_pool_spinup_shared_memory(benchmark):
    graph = _graph()
    graph.csr_snapshot()  # cached snapshot: share() copies, workers attach
    csr_module.reset_counters()

    outcome = benchmark.pedantic(
        lambda: _spinup(graph, _reference["oracle"], "csr"), rounds=1, iterations=1
    )
    spinup_s, groups = outcome
    assert groups == _reference["groups"]  # zero-copy fan-out is exact

    # Informational: under fork both fleets inherit the parent cheaply
    # and the first solve dominates, so no threshold is claimed here —
    # the pool-init claim lives in the fan-out pair above.
    speedup = _reference["spinup_s"] / spinup_s if spinup_s > 0 else 0.0
    totals = csr_module.counter_totals()
    benchmark.extra_info["jobs"] = 2
    benchmark.extra_info["speedup_spinup_vs_pickled"] = round(speedup, 3)
    benchmark.extra_info["csr_builds"] = totals["builds"]
    benchmark.extra_info["csr_attaches"] = totals["attaches"]
    benchmark.extra_info["csr_bytes"] = totals["bytes"]
    benchmark.extra_info["csr_segment_releases"] = totals["segment_releases"]
    # Lifecycle invariant (holds at every scale): the engine released
    # its one owned segment when the context manager closed it.
    assert totals["segment_releases"] == 1
