"""Figure 8 — effectiveness case study: KTG-VKC-DEG vs DKTG-Greedy vs TAGQ.

Times the three algorithms on the reviewer-selection case-study graph
and re-asserts the paper's three qualitative findings that the figure
illustrates:

* TAGQ (maximising *average* coverage) returns members that carry no
  query keyword at all — the figure's red-line reviewers;
* both KTG algorithms guarantee every member covers a query keyword;
* DKTG-Greedy's top-N groups are pairwise disjoint (diversity 1.0)
  while plain KTG's groups overlap heavily.

Run with ``-s`` to see the rendered Figure 8-style report.
"""

from __future__ import annotations

import pytest

from repro.analysis.case_study import render_case_study, run_case_study
from repro.baselines.tagq import TAGQSolver
from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.dktg import DKTGGreedySolver
from repro.core.strategies import VKCDegreeOrdering
from repro.datasets.figure1 import case_study_graph, case_study_query
from repro.index.nlrnl import NLRNLIndex

from conftest import register_bench_meta

register_bench_meta("fig8_case_study", figure="8", title="effectiveness case study vs TAGQ")


@pytest.fixture(scope="module")
def setting():
    graph = case_study_graph()
    return graph, case_study_query(), NLRNLIndex(graph)


def test_fig8_ktg_vkc_deg(benchmark, setting):
    graph, query, oracle = setting
    solver = BranchAndBoundSolver(
        graph, oracle=oracle, strategy=VKCDegreeOrdering(graph.degrees())
    )
    result = benchmark.pedantic(
        lambda: solver.solve(query.base_query()), rounds=3, iterations=1
    )
    assert result.groups
    assert all(g.coverage > 0 for g in result.groups)


def test_fig8_dktg_greedy(benchmark, setting):
    graph, query, oracle = setting
    solver = DKTGGreedySolver(
        graph,
        inner_solver=BranchAndBoundSolver(
            graph, oracle=oracle, strategy=VKCDegreeOrdering(graph.degrees())
        ),
    )
    result = benchmark.pedantic(lambda: solver.solve(query), rounds=3, iterations=1)
    assert result.diversity == 1.0


def test_fig8_tagq(benchmark, setting):
    graph, query, oracle = setting
    solver = TAGQSolver(graph, oracle=oracle)
    result = benchmark.pedantic(
        lambda: solver.solve(query.base_query()), rounds=3, iterations=1
    )
    assert result.groups


def test_fig8_report_and_findings(benchmark, capsys):
    outcome = benchmark.pedantic(
        lambda: run_case_study(case_study_graph(), case_study_query()),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(render_case_study(outcome))
    assert outcome.quality["TAGQ"].zero_coverage_members > 0
    assert outcome.quality["KTG-VKC-DEG"].zero_coverage_members == 0
    assert outcome.quality["DKTG-Greedy"].zero_coverage_members == 0
    assert outcome.quality["DKTG-Greedy"].diversity == 1.0
    assert outcome.overlap["KTG-VKC-DEG"] > outcome.overlap["DKTG-Greedy"]
