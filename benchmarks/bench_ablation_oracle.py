"""Ablation A3 — distance-oracle micro-costs: BFS vs NL vs NLRNL.

Isolates the oracle from the search: times raw ``is_tenuous`` probes
and bulk ``filter_candidates`` calls on identical probe sets, at a k
below (k=2) and above (k=4) the NL index's typical stored depth — the
regime boundary where NL starts paying on-demand expansion and NLRNL's
whole-distance-range coverage wins (the Section V motivation).

The PLL oracle (2-hop labels, the [37] technique that inspired
Section V) joins the comparison as a library extension: exact at every
k with a footprint far below either paper index.
"""

from __future__ import annotations

import random

import pytest

from conftest import bench_dataset, register_bench_meta

register_bench_meta("ablation_oracle", ablation="A3", title="distance oracle micro-costs")
from repro.index.bfs import BFSOracle
from repro.index.nl import NLIndex
from repro.index.nlrnl import NLRNLIndex
from repro.index.pll import PLLIndex

_oracles: dict[str, object] = {}


def oracle_for(kind: str):
    graph, _ = bench_dataset("gowalla")
    if kind not in _oracles:
        factory = {
            "bfs": BFSOracle,
            "nl": NLIndex,
            "nlrnl": NLRNLIndex,
            "pll": PLLIndex,
        }[kind]
        _oracles[kind] = factory(graph)
    return graph, _oracles[kind]


def probe_pairs(graph, count=4000, seed=2):
    rng = random.Random(seed)
    n = graph.num_vertices
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


@pytest.mark.parametrize("kind", ["bfs", "nl", "nlrnl", "pll"])
@pytest.mark.parametrize("k", [2, 4])
def test_ablation_pairwise_probes(benchmark, kind, k):
    graph, oracle = oracle_for(kind)
    pairs = probe_pairs(graph)

    def run():
        hits = 0
        for u, v in pairs:
            if oracle.is_tenuous(u, v, k):
                hits += 1
        return hits

    hits = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["tenuous_fraction"] = round(hits / len(pairs), 3)


@pytest.mark.parametrize("kind", ["bfs", "nl", "nlrnl", "pll"])
@pytest.mark.parametrize("k", [2, 4])
def test_ablation_bulk_filtering(benchmark, kind, k):
    graph, oracle = oracle_for(kind)
    rng = random.Random(7)
    candidates = list(graph.vertices())
    members = [rng.randrange(graph.num_vertices) for _ in range(30)]

    def run():
        surviving = 0
        for member in members:
            surviving += len(oracle.filter_candidates(candidates, member, k))
        return surviving

    surviving = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["surviving_total"] = surviving
