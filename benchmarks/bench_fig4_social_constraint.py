"""Figure 4 — average latency vs social constraint k (Table I range 1..4).

The paper's panels (a)-(d) are Gowalla, Brightkite, Flickr and DBLP;
here each gets the full algorithm line-up at k in {1..4}.

Expected shape (Section VII-A): KTG-VKC-DEG-NLRNL < KTG-VKC-NLRNL <
KTG-VKC-NL, with DKTG-Greedy between NLRNL variants.  The paper sees
latency grow with k throughout; at our scaled-down graph sizes the
growth holds for k=1..2 and then *inverts* for k=3..4 because a k-hop
ball covers a large fraction of a 500-vertex graph (diameter
compression), so k-line filtering empties the candidate set instead of
merely thinning it — EXPERIMENTS.md discusses this boundary effect.
"""

from __future__ import annotations

import pytest

from conftest import register_bench_meta, run_point

register_bench_meta("fig4_social_constraint", figure="4", title="average latency vs social constraint k")
from repro.workloads.runner import ALGORITHMS
from repro.workloads.sweep import DEFAULTS, PARAMETER_TABLE

TENUITIES = PARAMETER_TABLE["tenuity"]
DATASETS = ["gowalla", "brightkite", "flickr", "dblp"]


@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
@pytest.mark.parametrize("k", TENUITIES)
def test_fig4a_gowalla(benchmark, algorithm, k):
    run_point(
        benchmark,
        "gowalla",
        algorithm,
        keyword_size=DEFAULTS["keyword_size"],
        group_size=DEFAULTS["group_size"],
        tenuity=k,
        top_n=DEFAULTS["top_n"],
    )


@pytest.mark.parametrize("dataset", ["brightkite", "flickr", "dblp"])
@pytest.mark.parametrize("algorithm", ["KTG-VKC-NL", "KTG-VKC-NLRNL", "KTG-VKC-DEG-NLRNL"])
@pytest.mark.parametrize("k", [1, 2, 4])
def test_fig4bcd_other_datasets(benchmark, dataset, algorithm, k):
    run_point(
        benchmark,
        dataset,
        algorithm,
        keyword_size=DEFAULTS["keyword_size"],
        group_size=DEFAULTS["group_size"],
        tenuity=k,
        top_n=DEFAULTS["top_n"],
    )
