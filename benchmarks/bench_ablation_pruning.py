"""Ablation A2 — the value of keyword pruning and k-line filtering.

Algorithm 1's two accelerators, toggled independently (DESIGN.md calls
these out as the design choices to ablate):

* ``full``      — both on (the paper's configuration);
* ``no-prune``  — Theorem 2 off: every branch explored to feasibility;
* ``no-filter`` — Theorem 3 off: tenuity checked pairwise on complete
  groups only;
* ``union``     — Theorem 2 tightened with the union-of-masks bound
  (library extension).

All four are exact (the property tests prove it); the bench shows what
each buys in nodes expanded and wall clock.
"""

from __future__ import annotations

import pytest

from conftest import bench_dataset, bench_workload, register_bench_meta

register_bench_meta("ablation_pruning", ablation="A2", title="keyword pruning and k-line filtering")
from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.strategies import VKCDegreeOrdering
from repro.index.nlrnl import NLRNLIndex

CONFIGS = {
    "full": {},
    "no-prune": {"keyword_pruning": False},
    "no-filter": {"kline_filtering": False},
    "union": {"use_union_bound": True},
}

_oracle = {}


@pytest.mark.parametrize("config", list(CONFIGS))
def test_ablation_pruning(benchmark, config):
    graph, _ = bench_dataset("gowalla")
    if "oracle" not in _oracle:
        _oracle["oracle"] = NLRNLIndex(graph)
    solver = BranchAndBoundSolver(
        graph,
        oracle=_oracle["oracle"],
        strategy=VKCDegreeOrdering(graph.degrees()),
        **CONFIGS[config],
    )
    workload = bench_workload(
        "gowalla", keyword_size=6, group_size=3, tenuity=2, top_n=3
    )

    def run():
        nodes = 0
        for query in workload:
            nodes += solver.solve(query).stats.nodes_expanded
        return nodes

    nodes = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["nodes_expanded"] = nodes
