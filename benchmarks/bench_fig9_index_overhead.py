"""Figure 9 — index space cost (a) and construction time (b), NL vs NLRNL.

The paper's findings on all four datasets:

* **space**: NLRNL < NL, because NL materialises the (largest) level-c
  neighbour lists and stores every relationship twice, while NLRNL
  skips level c entirely and id-halves its storage;
* **construction**: NLRNL > NL, because NLRNL must run BFS to the
  graph's eccentricity to fill the reverse lists while NL stops at its
  stored depth.

One benchmark row = one (dataset, index) build; ``extra_info`` carries
the entry counts for the space comparison.
"""

from __future__ import annotations

import pytest

from conftest import bench_dataset, check_claim, register_bench_meta

register_bench_meta("fig9_index_overhead", figure="9", title="index space and construction time")
from repro.index.nl import NLIndex
from repro.index.nlrnl import NLRNLIndex
from repro.index.stats import measure_footprint

DATASETS = ["gowalla", "brightkite", "flickr", "dblp"]


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig9_build_nl(benchmark, dataset):
    graph, _ = bench_dataset(dataset)
    index = benchmark.pedantic(lambda: NLIndex(graph), rounds=1, iterations=1)
    benchmark.extra_info["entries"] = index.stats.entries
    benchmark.extra_info["depth"] = index.depth
    assert index.stats.entries > 0


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig9_build_nlrnl(benchmark, dataset):
    graph, _ = bench_dataset(dataset)
    index = benchmark.pedantic(lambda: NLRNLIndex(graph), rounds=1, iterations=1)
    benchmark.extra_info["entries"] = index.stats.entries
    assert index.stats.entries > 0


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig9a_space_shape(benchmark, dataset):
    """The headline space relation: NLRNL entries < NL entries."""
    graph, _ = bench_dataset(dataset)

    def both():
        return (
            measure_footprint(graph, "nl"),
            measure_footprint(graph, "nlrnl"),
        )

    nl, nlrnl = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["nl_entries"] = nl.entries
    benchmark.extra_info["nlrnl_entries"] = nlrnl.entries
    benchmark.extra_info["space_ratio"] = round(nl.entries / max(nlrnl.entries, 1), 2)
    # Soft under --smoke: the space relation is a full-scale property —
    # on a tiny clamped graph level populations can degenerate.
    check_claim(nlrnl.entries < nl.entries, "expected NLRNL entries < NL entries")
