"""Ablation A5 — index persistence: load-from-disk vs rebuild.

The operational argument for :mod:`repro.index.serialize`: NLRNL (and
PLL) construction is BFS-per-vertex, so a service answering query
batches should build once and reload.  This bench times build vs save
vs load for each serialisable oracle on one dataset profile and records
the on-disk footprint.
"""

from __future__ import annotations

import pytest

from conftest import bench_dataset, register_bench_meta

register_bench_meta("index_serialization", ablation="A5", title="index persistence vs rebuild")
from repro.index.nl import NLIndex
from repro.index.nlrnl import NLRNLIndex
from repro.index.pll import PLLIndex
from repro.index.serialize import load_index, save_index

FACTORIES = {
    "nl": NLIndex,
    "nlrnl": NLRNLIndex,
    "pll": PLLIndex,
}


@pytest.mark.parametrize("kind", list(FACTORIES))
def test_serialization_build(benchmark, kind):
    graph, _ = bench_dataset("brightkite")
    index = benchmark.pedantic(lambda: FACTORIES[kind](graph), rounds=1, iterations=1)
    benchmark.extra_info["entries"] = index.stats.entries


@pytest.mark.parametrize("kind", list(FACTORIES))
def test_serialization_save(benchmark, kind, tmp_path):
    graph, _ = bench_dataset("brightkite")
    index = FACTORIES[kind](graph)
    path = tmp_path / f"{kind}.json"
    benchmark.pedantic(lambda: save_index(index, path), rounds=1, iterations=1)
    benchmark.extra_info["bytes_on_disk"] = path.stat().st_size


@pytest.mark.parametrize("kind", list(FACTORIES))
def test_serialization_load(benchmark, kind, tmp_path):
    graph, _ = bench_dataset("brightkite")
    index = FACTORIES[kind](graph)
    path = tmp_path / f"{kind}.json"
    save_index(index, path)
    loaded = benchmark.pedantic(lambda: load_index(graph, path), rounds=1, iterations=1)
    assert loaded.stats.entries == index.stats.entries
    # Loading must beat rebuilding for the BFS-heavy indexes; assert the
    # qualitative claim for NLRNL (the paper's slow-build index).
    if kind == "nlrnl":
        benchmark.extra_info["build_seconds"] = round(index.stats.build_seconds, 4)
