"""Ablation A4 — DKTG-Greedy vs the exact optimum (Section VI-C in vivo).

The paper proves DKTG-Greedy achieves ``1 - gamma*(|W_Q|-1)/|W_Q|`` of
the *idealised* optimum (score 1).  This bench measures the much
stronger empirical statement: how close the greedy lands to the *true*
optimum computed by exhaustive subset search, across the gamma range —
and at what fraction of the exact solver's cost.

``extra_info`` per row carries the achieved scores and the empirical
ratio; the guarantee must hold on every row (asserted).
"""

from __future__ import annotations

import pytest

from repro.core.dktg import DKTGGreedySolver, greedy_approximation_ratio
from repro.core.dktg_exact import DKTGExactSolver
from repro.datasets.figure1 import case_study_graph, case_study_query

from conftest import register_bench_meta

register_bench_meta("ablation_dktg", ablation="A4", title="DKTG greedy vs exact")


@pytest.fixture(scope="module")
def graph():
    return case_study_graph()


@pytest.mark.parametrize("gamma", [0.1, 0.3, 0.5, 0.7, 0.9])
def test_ablation_dktg_greedy(benchmark, graph, gamma):
    query = case_study_query(gamma=gamma)
    solver = DKTGGreedySolver(graph)
    result = benchmark.pedantic(lambda: solver.solve(query), rounds=3, iterations=1)
    benchmark.extra_info["score"] = round(result.score, 4)
    benchmark.extra_info["diversity"] = round(result.diversity, 4)
    assert result.groups


@pytest.mark.parametrize("gamma", [0.1, 0.5, 0.9])
def test_ablation_dktg_exact(benchmark, graph, gamma):
    query = case_study_query(gamma=gamma)
    solver = DKTGExactSolver(graph)
    result = benchmark.pedantic(lambda: solver.solve(query), rounds=1, iterations=1)
    benchmark.extra_info["score"] = round(result.score, 4)
    assert result.groups


@pytest.mark.parametrize("gamma", [0.1, 0.5, 0.9])
def test_ablation_dktg_quality_gap(benchmark, graph, gamma):
    query = case_study_query(gamma=gamma)
    greedy_solver = DKTGGreedySolver(graph)
    exact_solver = DKTGExactSolver(graph)

    def both():
        return greedy_solver.solve(query), exact_solver.solve(query)

    greedy, exact = benchmark.pedantic(both, rounds=1, iterations=1)
    ratio = greedy.score / exact.score if exact.score else 1.0
    benchmark.extra_info["empirical_ratio"] = round(ratio, 4)
    benchmark.extra_info["guarantee"] = round(
        greedy_approximation_ratio(len(query.keywords), gamma), 4
    )
    assert exact.score >= greedy.score - 1e-9
    assert ratio >= greedy_approximation_ratio(len(query.keywords), gamma) - 1e-9
