"""Figure 3 — average latency vs group size p (Table I range 3..7).

The paper plots, per dataset, the mean latency of KTG-QKC-NLRNL,
KTG-VKC-NL, KTG-VKC-NLRNL, KTG-VKC-DEG-NLRNL and DKTG-Greedy as the
group size grows; Figure 3(a) is Gowalla and "the results on [the]
other three datasets are similar".

Cost control: search cost is exponential in p (the problem is NP-hard),
so the full five-algorithm line-up runs at p in {3, 4, 5} and the
growth tail p in {6, 7} is traced with the fastest algorithm only
(KTG-VKC-DEG-NLRNL, 2 queries per point) — enough to exhibit the
paper's steep-growth shape without hour-long benches.

Expected shape (Section VII-A): latency rises sharply with p for every
algorithm ("more users need to be examined and the number of
combinations becomes larger"); KTG-QKC-NLRNL trails the VKC orderings;
DKTG-Greedy sits near KTG-VKC-DEG-NLRNL.
"""

from __future__ import annotations

import pytest

from conftest import register_bench_meta, run_point

register_bench_meta("fig3_group_size", figure="3", title="average latency vs group size p")
from repro.workloads.runner import ALGORITHMS
from repro.workloads.sweep import DEFAULTS

#: Smaller graph than the other figures: p is the explosive dimension.
FIG3_SCALE = 0.2


@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
@pytest.mark.parametrize("p", [3, 4, 5])
def test_fig3a_gowalla(benchmark, algorithm, p):
    run_point(
        benchmark,
        "gowalla",
        algorithm,
        scale=FIG3_SCALE,
        keyword_size=DEFAULTS["keyword_size"],
        group_size=p,
        tenuity=DEFAULTS["tenuity"],
        top_n=DEFAULTS["top_n"],
    )


@pytest.mark.parametrize("p", [6, 7])
def test_fig3a_gowalla_growth_tail(benchmark, p):
    run_point(
        benchmark,
        "gowalla",
        "KTG-VKC-DEG-NLRNL",
        scale=FIG3_SCALE,
        count=2,
        keyword_size=DEFAULTS["keyword_size"],
        group_size=p,
        tenuity=DEFAULTS["tenuity"],
        top_n=DEFAULTS["top_n"],
    )


@pytest.mark.parametrize("algorithm", ["KTG-VKC-NLRNL", "KTG-VKC-DEG-NLRNL"])
@pytest.mark.parametrize("p", [3, 4, 5])
def test_fig3b_brightkite(benchmark, algorithm, p):
    run_point(
        benchmark,
        "brightkite",
        algorithm,
        scale=FIG3_SCALE,
        keyword_size=DEFAULTS["keyword_size"],
        group_size=p,
        tenuity=DEFAULTS["tenuity"],
        top_n=DEFAULTS["top_n"],
    )
