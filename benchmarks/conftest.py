"""Shared infrastructure for the figure-reproduction benchmarks.

Each benchmark file regenerates one table/figure of the paper.  Bench
names encode the series coordinates (dataset, algorithm, parameter
value), so the pytest-benchmark output table *is* the figure data: one
row per plotted point.

Datasets and oracles are cached per session — the paper also builds each
index once and reuses it across queries (index build cost is reported
separately, in Figure 9 / ``bench_fig9_index_overhead``).

Scale notes: profiles are instantiated at ``BENCH_SCALE`` of their
already-scaled-down default sizes and each point averages
``QUERIES_PER_POINT`` queries (the paper uses 100; pure Python trades
repetitions for coverage of the full parameter grid).

Smoke mode (``--smoke``)
------------------------
The CI smoke job runs ``pytest benchmarks --smoke``: one parametrization
per test function, datasets clamped to ``SMOKE_SCALE``, one query per
workload, and quantitative claims (see :func:`check_claim`) softened to
warnings — the job verifies that every benchmark *runs* and emits a
schema-valid artifact, not that full-scale performance claims hold on a
shared CI runner.

BENCH JSON emission
-------------------
At session end every benchmark module's measurements are written to
``BENCH_<name>.json`` (schema ``ktg-bench/1``, see
:mod:`repro.obs.bench`).  Emission is centralised here: a bench module
only declares its provenance via :func:`register_bench_meta` and
everything it records through the ``benchmark`` fixture is exported
automatically.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

from repro.datasets.registry import load_dataset
from repro.obs.bench import bench_entry, write_bench_report
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.runner import ALGORITHMS, ExperimentRunner

#: Fraction of each profile's default (already scaled) vertex count.
BENCH_SCALE = 0.35
#: Queries averaged per plotted point.
QUERIES_PER_POINT = 3
#: Dataset scale cap under ``--smoke``.
SMOKE_SCALE = 0.12

_dataset_cache: dict[str, tuple] = {}
_runner_cache: dict[str, ExperimentRunner] = {}
_workload_cache: dict[tuple, object] = {}

#: Artifact name -> meta dict, filled by register_bench_meta at import.
_BENCH_META: dict[str, dict] = {}

_SMOKE = False


# ----------------------------------------------------------------------
# Smoke mode
# ----------------------------------------------------------------------
def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help=(
            "fast CI mode: one parametrization per benchmark, clamped "
            "dataset scale, soft quantitative claims"
        ),
    )


def pytest_configure(config):
    global _SMOKE
    _SMOKE = bool(config.getoption("--smoke", default=False))


def pytest_collection_modifyitems(config, items):
    """Under --smoke keep only the first parametrization per function."""
    if not config.getoption("--smoke", default=False):
        return
    kept, deselected, seen = [], [], set()
    for item in items:
        module = item.nodeid.split("::", 1)[0]
        key = (module, getattr(item, "originalname", item.name))
        if key in seen:
            deselected.append(item)
        else:
            seen.add(key)
            kept.append(item)
    if deselected:
        config.hook.pytest_deselected(items=deselected)
        items[:] = kept


def smoke_mode() -> bool:
    """Whether this session runs under ``--smoke``."""
    return _SMOKE


def check_claim(condition: bool, message: str) -> None:
    """Assert a quantitative claim — softened to a warning under smoke.

    Shape/exactness claims that hold at any scale should stay plain
    ``assert``s; this is for thresholds (speedup factors, entry-count
    comparisons) that only hold at full bench scale.
    """
    if condition:
        return
    if _SMOKE:
        warnings.warn(f"smoke mode: claim not enforced: {message}", stacklevel=2)
        return
    raise AssertionError(message)


# ----------------------------------------------------------------------
# Cached datasets / runners / workloads
# ----------------------------------------------------------------------
def bench_dataset(name: str, scale: float = BENCH_SCALE):
    """Load-and-cache one dataset profile at bench scale."""
    if _SMOKE:
        scale = min(scale, SMOKE_SCALE)
    key = f"{name}@{scale}"
    if key not in _dataset_cache:
        _dataset_cache[key] = load_dataset(name, scale=scale)
    return _dataset_cache[key]


def bench_runner(name: str, scale: float = BENCH_SCALE) -> ExperimentRunner:
    """Runner (with cached oracles) for one dataset profile."""
    if _SMOKE:
        scale = min(scale, SMOKE_SCALE)
    key = f"{name}@{scale}"
    if key not in _runner_cache:
        graph, _ = bench_dataset(name, scale)
        _runner_cache[key] = ExperimentRunner(graph, dataset_name=name)
    return _runner_cache[key]


def bench_workload(
    dataset: str,
    scale: float = BENCH_SCALE,
    count: int = QUERIES_PER_POINT,
    **settings,
):
    """Deterministic workload for one parameter point (cached)."""
    if _SMOKE:
        scale = min(scale, SMOKE_SCALE)
        count = 1
    key = (dataset, scale, count, tuple(sorted(settings.items())))
    if key not in _workload_cache:
        graph, vocabulary = bench_dataset(dataset, scale)
        generator = WorkloadGenerator(graph, vocabulary, dataset_name=dataset)
        _workload_cache[key] = generator.generate(count=count, seed=17, **settings)
    return _workload_cache[key]


def run_point(benchmark, dataset: str, algorithm: str, scale: float = BENCH_SCALE, **settings):
    """Measure one figure point: mean-of-workload latency for one algorithm.

    The oracle is prebuilt outside the timed region; the measured value
    is the full workload execution (the paper's 'average latency' times
    ``QUERIES_PER_POINT``).
    """
    runner = bench_runner(dataset, scale)
    runner.oracle_for(ALGORITHMS[algorithm])  # build outside timing
    workload = bench_workload(dataset, scale, **settings)

    report = benchmark.pedantic(
        lambda: runner.run(algorithm, workload), rounds=1, iterations=1
    )
    benchmark.extra_info["mean_ms"] = round(report.mean_ms, 3)
    benchmark.extra_info["empty_results"] = report.empty_results
    benchmark.extra_info["keyword_prunes"] = report.total_keyword_prunes
    benchmark.extra_info["kline_removed"] = report.total_kline_removed
    return report


@pytest.fixture(scope="session")
def paper_algorithms():
    """The paper's Section VII line-up."""
    return list(ALGORITHMS)


# ----------------------------------------------------------------------
# BENCH_<name>.json emission
# ----------------------------------------------------------------------
def register_bench_meta(name: str, **meta) -> None:
    """Declare a bench module's artifact provenance.

    Call at module import, e.g.
    ``register_bench_meta("fig3_group_size", figure="3", title="...")``.
    *name* must match the module filename without the ``bench_`` prefix;
    the meta dict lands verbatim in the artifact's ``meta`` object.
    """
    _BENCH_META[name] = dict(meta)


def _artifact_name(fullname: str) -> str:
    """``benchmarks/bench_fig3_group_size.py::test[x]`` -> ``fig3_group_size``."""
    module = fullname.split("::", 1)[0]
    stem = Path(module).stem
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    return repr(value)


def pytest_sessionfinish(session, exitstatus):
    """Write one schema-valid BENCH_<name>.json per benchmark module."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    grouped: dict[str, list] = {}
    for record in bench_session.benchmarks:
        grouped.setdefault(_artifact_name(record.fullname), []).append(record)

    for name, records in sorted(grouped.items()):
        entries = []
        for record in records:
            stats = None
            if getattr(record, "stats", None) is not None:
                # Fixture-side this is Metadata.stats.stats; session-side
                # the record's .stats already is the Stats object.
                raw = record.stats
                raw = getattr(raw, "stats", raw)
                stats = {
                    "mean_s": raw.mean,
                    "min_s": raw.min,
                    "max_s": raw.max,
                    "stddev_s": raw.stddev if raw.rounds > 1 else 0.0,
                    "rounds": int(raw.rounds),
                }
            entries.append(
                bench_entry(
                    test=record.name,
                    stats=stats,
                    extra=_jsonable(dict(record.extra_info)),
                    group=record.group,
                    params=_jsonable(record.params) if record.params else None,
                    error=stats is None,
                )
            )
        path = write_bench_report(
            name,
            entries,
            directory=session.config.rootpath,
            smoke=_SMOKE,
            meta=_BENCH_META.get(name),
        )
        tw = session.config.get_terminal_writer()
        tw.line(f"bench artifact written: {path}")
