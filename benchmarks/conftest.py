"""Shared infrastructure for the figure-reproduction benchmarks.

Each benchmark file regenerates one table/figure of the paper.  Bench
names encode the series coordinates (dataset, algorithm, parameter
value), so the pytest-benchmark output table *is* the figure data: one
row per plotted point.

Datasets and oracles are cached per session — the paper also builds each
index once and reuses it across queries (index build cost is reported
separately, in Figure 9 / ``bench_fig9_index_overhead``).

Scale notes: profiles are instantiated at ``BENCH_SCALE`` of their
already-scaled-down default sizes and each point averages
``QUERIES_PER_POINT`` queries (the paper uses 100; pure Python trades
repetitions for coverage of the full parameter grid).
"""

from __future__ import annotations

import pytest

from repro.datasets.registry import load_dataset
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.runner import ALGORITHMS, ExperimentRunner

#: Fraction of each profile's default (already scaled) vertex count.
BENCH_SCALE = 0.35
#: Queries averaged per plotted point.
QUERIES_PER_POINT = 3

_dataset_cache: dict[str, tuple] = {}
_runner_cache: dict[str, ExperimentRunner] = {}
_workload_cache: dict[tuple, object] = {}


def bench_dataset(name: str, scale: float = BENCH_SCALE):
    """Load-and-cache one dataset profile at bench scale."""
    key = f"{name}@{scale}"
    if key not in _dataset_cache:
        _dataset_cache[key] = load_dataset(name, scale=scale)
    return _dataset_cache[key]


def bench_runner(name: str, scale: float = BENCH_SCALE) -> ExperimentRunner:
    """Runner (with cached oracles) for one dataset profile."""
    key = f"{name}@{scale}"
    if key not in _runner_cache:
        graph, _ = bench_dataset(name, scale)
        _runner_cache[key] = ExperimentRunner(graph, dataset_name=name)
    return _runner_cache[key]


def bench_workload(
    dataset: str,
    scale: float = BENCH_SCALE,
    count: int = QUERIES_PER_POINT,
    **settings,
):
    """Deterministic workload for one parameter point (cached)."""
    key = (dataset, scale, count, tuple(sorted(settings.items())))
    if key not in _workload_cache:
        graph, vocabulary = bench_dataset(dataset, scale)
        generator = WorkloadGenerator(graph, vocabulary, dataset_name=dataset)
        _workload_cache[key] = generator.generate(count=count, seed=17, **settings)
    return _workload_cache[key]


def run_point(benchmark, dataset: str, algorithm: str, scale: float = BENCH_SCALE, **settings):
    """Measure one figure point: mean-of-workload latency for one algorithm.

    The oracle is prebuilt outside the timed region; the measured value
    is the full workload execution (the paper's 'average latency' times
    ``QUERIES_PER_POINT``).
    """
    runner = bench_runner(dataset, scale)
    runner.oracle_for(ALGORITHMS[algorithm])  # build outside timing
    workload = bench_workload(dataset, scale, **settings)

    report = benchmark.pedantic(
        lambda: runner.run(algorithm, workload), rounds=1, iterations=1
    )
    benchmark.extra_info["mean_ms"] = round(report.mean_ms, 3)
    benchmark.extra_info["empty_results"] = report.empty_results
    return report


@pytest.fixture(scope="session")
def paper_algorithms():
    """The paper's Section VII line-up."""
    return list(ALGORITHMS)
