"""Ball-bitset kernels — mask filtering vs the per-candidate oracle path.

The dense smoke config throughout: the fig7 Twitter profile (the
paper's densest graph) at its fig7 scale, social constraint ``k = 2``.

The engine's headline claim targets the primitive it replaces: k-line
filtering a candidate pool against one member.  A warm
:class:`~repro.kernels.BallBitsetEngine` answers that with one big-int
``AND`` plus a popcount, while the oracle path walks the candidate
list probing per vertex — O(words) vs O(candidates).  End-to-end solve
latency improves by a smaller factor (ordering, pruning and node
bookkeeping are engine-independent and dominate the remainder), so the
solve pair records its speedup without a hard claim while asserting
the results are bit-identical.

Six views, one config:

* ``filter``  — the filtering primitive, oracle vs bitset (>= 3x claim);
* ``vec``     — cold ball construction over the CSR arrays, scalar
  python kernel vs the numpy-vectorized twin (>= 3x claim);
* ``node_expansion`` — one full root-node expansion per query, the
  scalar per-candidate loop vs the batched solver core's bulk
  elimination + lexsort re-score (>= 2x claim, children asserted
  bit-identical outside the timed region);
* ``solve``   — end-to-end branch and bound, bit-identical top-N;
* ``jobs4``   — a 4-thread fleet sharing one kernel, bit-identical;
* ``service`` — :class:`QueryService` batch over a repeated-k workload
  (result cache off, so ball reuse across queries is what is measured).
"""

from __future__ import annotations

import time

from conftest import bench_runner, bench_workload, check_claim, register_bench_meta

register_bench_meta(
    "kernels",
    title="ball-bitset engine vs oracle path (dense Twitter, k=2)",
)

import pytest

from repro.core.coverage import CoverageContext
from repro.core.parallel import ParallelBranchAndBoundSolver
from repro.kernels import BallBitsetEngine
from repro.kernels.vec import numpy_available
from repro.service import QueryService
from repro.workloads.runner import ALGORITHMS

DENSE_SCALE = 0.35
#: KTG-VKC-NL: the fig7b algorithm whose oracle pays a per-filter level
#: union — the cost profile the kernel's cached balls amortise.
ALGORITHM = "KTG-VKC-NL"
K = 2

#: Repeated-k service mix: distinct queries sharing one tenuity, so a
#: resident kernel reuses balls across queries the result cache cannot.
DISTINCT_QUERIES = 4
REPEATS = 3


def _workload_settings() -> dict:
    return dict(keyword_size=6, group_size=4, tenuity=K, top_n=3)


def _queries() -> tuple:
    return tuple(bench_workload("twitter", DENSE_SCALE, **_workload_settings()))


def _spec_and_oracle():
    runner = bench_runner("twitter", DENSE_SCALE)
    spec = ALGORITHMS[ALGORITHM]
    return runner, spec, runner.oracle_for(spec)


# ----------------------------------------------------------------------
# Shared references (measured once, reused by every test in the module)
# ----------------------------------------------------------------------
_filter_reference: dict[tuple, tuple[float, int]] = {}
_solve_reference: dict[tuple, tuple[float, list]] = {}
_service_reference: dict[tuple, tuple[float, list]] = {}


def _pools() -> list[list[int]]:
    """Qualified candidate pools (vertices covering >= 1 query keyword),
    one per workload query — what the solver's root level filters."""
    runner, _, _ = _spec_and_oracle()
    pools = []
    for query in _queries():
        masks = CoverageContext(runner.graph, query.keywords).masks
        pools.append([v for v in range(runner.graph.num_vertices) if masks[v]])
    return pools


def _oracle_filter_sweep(oracle, pools) -> None:
    for pool in pools:
        filter_candidates = oracle.filter_candidates
        for member in pool:
            filter_candidates(pool, member, K)


def _filter_baseline(oracle, pools) -> tuple[float, int]:
    """Warm oracle sweep wall-clock and total filter count (cached)."""
    key = (id(oracle), sum(map(len, pools)))
    if key not in _filter_reference:
        _oracle_filter_sweep(oracle, pools)  # warm (NL level memo, BFS resume)
        started = time.perf_counter()
        _oracle_filter_sweep(oracle, pools)
        elapsed = time.perf_counter() - started
        _filter_reference[key] = (elapsed, sum(len(p) for p in pools))
    return _filter_reference[key]


def _solve_baseline(runner, spec, oracle) -> tuple[float, list]:
    """Warm oracle-path solve wall-clock and ranked groups (cached)."""
    key = (id(oracle), tuple(q.keywords for q in _queries()))
    if key not in _solve_reference:
        solver = spec.build_solver(runner.graph, oracle)
        queries = _queries()
        groups = [solver.solve(query).groups for query in queries]  # warm
        started = time.perf_counter()
        groups = [solver.solve(query).groups for query in queries]
        _solve_reference[key] = (time.perf_counter() - started, groups)
    return _solve_reference[key]


def _service_workload() -> list:
    distinct = list(
        bench_workload(
            "twitter", DENSE_SCALE, count=DISTINCT_QUERIES, **_workload_settings()
        )
    )
    # Interleave repeats so kernel reuse is spread across the batch.
    return distinct * REPEATS


def _service_baseline(runner, oracle) -> tuple[float, list]:
    """Oracle-engine service batch wall-clock and member sets (cached)."""
    workload = _service_workload()
    key = (id(oracle), len(workload))
    if key not in _service_reference:
        with QueryService(
            runner.graph, ALGORITHM, oracle=oracle, max_workers=1, cache_capacity=0
        ) as service:
            service.run_batch(workload, parallel=False)  # warm
            started = time.perf_counter()
            results = service.run_batch(workload, parallel=False)
            elapsed = time.perf_counter() - started
        _service_reference[key] = (elapsed, [r.member_sets() for r in results])
    return _service_reference[key]


# ----------------------------------------------------------------------
# Filter primitive
# ----------------------------------------------------------------------
def test_kernels_filter_oracle(benchmark):
    _, _, oracle = _spec_and_oracle()
    pools = _pools()
    _oracle_filter_sweep(oracle, pools)  # warm outside timing

    benchmark.pedantic(
        lambda: _oracle_filter_sweep(oracle, pools), rounds=1, iterations=1
    )
    benchmark.extra_info["filters"] = sum(len(p) for p in pools)
    benchmark.extra_info["pool_sizes"] = [len(p) for p in pools]


def test_kernels_filter_bitset(benchmark):
    _, _, oracle = _spec_and_oracle()
    pools = _pools()
    kernel = BallBitsetEngine(oracle)
    encoded = [(pool, kernel.encode(pool)) for pool in pools]

    def sweep():
        for pool, pool_mask in encoded:
            filter_mask = kernel.filter_mask
            for member in pool:
                filter_mask(pool_mask, member, K).bit_count()

    # Bit-identical semantics, checked outside the timed region: the
    # surviving mask decodes to exactly the oracle's filtered list.
    for pool, pool_mask in encoded:
        for member in pool:
            assert kernel.decode(kernel.filter_mask(pool_mask, member, K)) == set(
                oracle.filter_candidates(pool, member, K)
            )

    oracle_seconds, filters = _filter_baseline(oracle, pools)
    benchmark.pedantic(sweep, rounds=1, iterations=1)

    mean_s = benchmark.stats.stats.mean
    speedup = oracle_seconds / mean_s if mean_s > 0 else float("inf")
    benchmark.extra_info["filters"] = filters
    benchmark.extra_info["oracle_ms"] = round(oracle_seconds * 1000.0, 3)
    benchmark.extra_info["speedup_vs_oracle"] = round(speedup, 2)
    benchmark.extra_info["ball_builds"] = kernel.ball_builds
    benchmark.extra_info["ball_evictions"] = kernel.ball_evictions

    # The acceptance bar: the warm engine beats the oracle path's
    # filtering >= 3x on the dense k=2 config.  Soft under --smoke
    # (tiny pools leave mostly per-call overhead on both sides).
    check_claim(
        speedup >= 3.0,
        f"bitset filter speedup {speedup:.2f}x < 3x over {ALGORITHM} oracle",
    )


# ----------------------------------------------------------------------
# Vectorized kernels: cold ball construction over the CSR arrays
# ----------------------------------------------------------------------
_vec_reference: dict[tuple, float] = {}


def _scalar_ball_sweep(oracle) -> BallBitsetEngine:
    """Build every vertex's k-ball through the scalar python CSR kernel
    (``_build_ball_csr``), cache bypassed — the primitive itself."""
    kernel = BallBitsetEngine(oracle, graph_layout="csr", kernel_backend="python")
    build = kernel._build_ball_csr
    for vertex in range(oracle.graph.num_vertices):
        build(vertex, K)
    return kernel


def _vec_ball_sweep(oracle) -> int:
    """The numpy twin of :func:`_scalar_ball_sweep`: one
    ``vec.ball_bits_csr`` call per vertex over the same CSR arrays."""
    from repro.kernels import vec

    np = vec.numpy_or_none()
    snapshot = oracle.graph.csr_snapshot()
    indptr = np.asarray(snapshot.indptr, dtype=np.int64)
    indices = np.asarray(snapshot.indices, dtype=np.int64)
    ball_bits_csr = vec.ball_bits_csr
    balls = 0
    for vertex in range(oracle.graph.num_vertices):
        ball_bits_csr(indptr, indices, vertex, K)
        balls += 1
    return balls


def _vec_python_baseline(oracle) -> float:
    """Warm scalar-kernel sweep wall-clock (cached across tests)."""
    key = (id(oracle), oracle.graph.num_vertices)
    if key not in _vec_reference:
        _scalar_ball_sweep(oracle)  # warm (CSR snapshot build)
        started = time.perf_counter()
        _scalar_ball_sweep(oracle)
        _vec_reference[key] = time.perf_counter() - started
    return _vec_reference[key]


def test_kernels_vec_build_python(benchmark):
    _, _, oracle = _spec_and_oracle()
    _scalar_ball_sweep(oracle)  # warm the CSR snapshot

    benchmark.pedantic(lambda: _scalar_ball_sweep(oracle), rounds=1, iterations=1)
    benchmark.extra_info["balls"] = oracle.graph.num_vertices


@pytest.mark.skipif(not numpy_available(), reason="numpy not importable")
def test_kernels_vec_build_numpy(benchmark):
    _, _, oracle = _spec_and_oracle()

    # Bit-identical balls through the engine, checked outside timing.
    scalar = BallBitsetEngine(oracle, graph_layout="csr", kernel_backend="python")
    vectorized = BallBitsetEngine(oracle, graph_layout="csr", kernel_backend="numpy")
    for vertex in range(0, oracle.graph.num_vertices, 7):
        assert vectorized.ball(vertex, K) == scalar.ball(vertex, K)

    python_seconds = _vec_python_baseline(oracle)
    _vec_ball_sweep(oracle)  # warm the numpy CSR arrays
    balls = benchmark.pedantic(
        lambda: _vec_ball_sweep(oracle), rounds=1, iterations=1
    )

    mean_s = benchmark.stats.stats.mean
    speedup = python_seconds / mean_s if mean_s > 0 else float("inf")
    benchmark.extra_info["balls"] = balls
    benchmark.extra_info["python_ms"] = round(python_seconds * 1000.0, 3)
    benchmark.extra_info["speedup_vs_python"] = round(speedup, 2)

    # The acceptance bar: the vectorized frontier gathers beat the
    # scalar python CSR sweep >= 3x at the dense k=2 config.  Soft
    # under --smoke (tiny frontiers leave mostly per-call overhead).
    check_claim(
        speedup >= 3.0,
        f"vectorized ball build speedup {speedup:.2f}x < 3x over python CSR path",
    )


# ----------------------------------------------------------------------
# Node expansion: scalar per-candidate loop vs the batched solver core
# ----------------------------------------------------------------------
_expand_reference: dict[tuple, float] = {}

#: The expansion pair runs at full fig7 scale with wide queries: the
#: batched core's bulk primitives amortise per-call dispatch over the
#: frontier, so the contrast is measured where frontiers are hundreds
#: of candidates (the regime deep solves spend their time in), not the
#: small-frontier config the rest of the module shares.
EXPAND_SCALE = 1.0
EXPAND_KEYWORDS = 10


def _expansion_inputs():
    """Root frontiers and contexts for every workload query — the node
    family both expansion sweeps walk, one child per frontier member."""
    runner = bench_runner("twitter", EXPAND_SCALE)
    spec = ALGORITHMS[ALGORITHM]
    oracle = runner.oracle_for(spec)
    strategy = spec.build_solver(runner.graph, oracle).strategy
    queries = bench_workload(
        "twitter",
        EXPAND_SCALE,
        keyword_size=EXPAND_KEYWORDS,
        group_size=4,
        tenuity=K,
        top_n=3,
    )
    contexts = [CoverageContext(runner.graph, q.keywords) for q in queries]
    frontiers = [
        strategy.initial_order(ctx.qualified_vertices(), ctx) for ctx in contexts
    ]
    return runner, strategy, oracle, contexts, frontiers


def _scalar_expand_sweep(kernel, strategy, contexts, frontiers):
    """One full root-node expansion per query through the scalar
    primitives, exactly as ``_search`` runs them on the python backend:
    threaded tail bitset, per-child ``filter_mask`` + ``select``, then
    the strategy's python ``sorted`` re-order."""
    out = []
    for context, frontier in zip(contexts, frontiers):
        masks = context.masks
        tail_mask = kernel.encode(frontier)
        for position, vertex in enumerate(frontier):
            tail_mask &= ~(1 << vertex)
            rest_mask = kernel.filter_mask(tail_mask, vertex, K)
            rest = frontier[position + 1 :]
            if rest_mask.bit_count() != len(rest):
                rest = kernel.select(rest, tail_mask, rest_mask)
            out.append(strategy.reorder(rest, masks[vertex], context))
    return out


def _batched_expand_sweep(solver, contexts, frontiers):
    """The batched twin: one ``make_node`` per frontier, then per child
    a bulk keep-vector elimination plus one lexsort re-score."""
    out = []
    for context, frontier in zip(contexts, frontiers):
        batch = solver._solve_batch(context)
        masks = context.masks
        node = batch.make_node(frontier, 0)
        for position, vertex in enumerate(frontier):
            keep, survivors = batch.eliminate(node, position, vertex, K)
            if survivors == len(frontier) - position - 1:
                child = batch.child_tail(node, position, False)
            else:
                child = batch.child_after_elimination(node, position, keep, False)
            rest, _ = batch.reorder(child, masks[vertex])
            out.append(rest)
    return out


def _expand_scalar_baseline(kernel, strategy, contexts, frontiers) -> float:
    key = (id(kernel), sum(map(len, frontiers)))
    if key not in _expand_reference:
        _scalar_expand_sweep(kernel, strategy, contexts, frontiers)  # warm balls
        started = time.perf_counter()
        _scalar_expand_sweep(kernel, strategy, contexts, frontiers)
        _expand_reference[key] = time.perf_counter() - started
    return _expand_reference[key]


def test_kernels_node_expansion_python(benchmark):
    _, strategy, oracle, contexts, frontiers = _expansion_inputs()
    kernel = BallBitsetEngine(oracle, kernel_backend="python")
    _scalar_expand_sweep(kernel, strategy, contexts, frontiers)  # warm balls

    benchmark.pedantic(
        lambda: _scalar_expand_sweep(kernel, strategy, contexts, frontiers),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["expansions"] = sum(map(len, frontiers))
    benchmark.extra_info["frontier_sizes"] = [len(f) for f in frontiers]


@pytest.mark.skipif(not numpy_available(), reason="numpy not importable")
def test_kernels_node_expansion_numpy(benchmark):
    runner, strategy, oracle, contexts, frontiers = _expansion_inputs()
    scalar_kernel = BallBitsetEngine(oracle, kernel_backend="python")
    solver = ALGORITHMS[ALGORITHM].build_solver(
        runner.graph, oracle, distance_engine="bitset", kernel_backend="numpy"
    )

    # Bit-identical children, checked outside the timed region: every
    # child's surviving candidate list, in final strategy order.
    expected = _scalar_expand_sweep(scalar_kernel, strategy, contexts, frontiers)
    assert _batched_expand_sweep(solver, contexts, frontiers) == expected

    python_seconds = _expand_scalar_baseline(
        scalar_kernel, strategy, contexts, frontiers
    )
    _batched_expand_sweep(solver, contexts, frontiers)  # warm byte balls
    benchmark.pedantic(
        lambda: _batched_expand_sweep(solver, contexts, frontiers),
        rounds=1,
        iterations=1,
    )

    mean_s = benchmark.stats.stats.mean
    speedup = python_seconds / mean_s if mean_s > 0 else float("inf")
    benchmark.extra_info["expansions"] = sum(map(len, frontiers))
    benchmark.extra_info["python_ms"] = round(python_seconds * 1000.0, 3)
    benchmark.extra_info["speedup_vs_python"] = round(speedup, 2)

    # The acceptance bar: batched expansion (bulk elimination + lexsort
    # re-score) beats the scalar per-candidate loop >= 2x on the dense
    # config.  Soft under --smoke (tiny frontiers are all dispatch).
    check_claim(
        speedup >= 2.0,
        f"batched node expansion speedup {speedup:.2f}x < 2x over scalar path",
    )


# ----------------------------------------------------------------------
# End-to-end solve
# ----------------------------------------------------------------------
def test_kernels_solve_oracle(benchmark):
    runner, spec, oracle = _spec_and_oracle()
    solver = spec.build_solver(runner.graph, oracle)
    queries = _queries()
    _, reference_groups = _solve_baseline(runner, spec, oracle)  # warms

    results = benchmark.pedantic(
        lambda: [solver.solve(query) for query in queries], rounds=1, iterations=1
    )
    assert [r.groups for r in results] == reference_groups
    benchmark.extra_info["queries"] = len(queries)
    benchmark.extra_info["nodes_expanded"] = sum(
        r.stats.nodes_expanded for r in results
    )


def test_kernels_solve_bitset(benchmark):
    runner, spec, oracle = _spec_and_oracle()
    kernel = BallBitsetEngine(oracle)
    solver = spec.build_solver(
        runner.graph, oracle, distance_engine="bitset", kernel=kernel
    )
    queries = _queries()
    oracle_seconds, reference_groups = _solve_baseline(runner, spec, oracle)

    [solver.solve(query) for query in queries]  # warm the ball cache
    results = benchmark.pedantic(
        lambda: [solver.solve(query) for query in queries], rounds=1, iterations=1
    )

    # Bit-identical top-N: exact groups in exact order, oracle vs bitset.
    assert [r.groups for r in results] == reference_groups

    mean_s = benchmark.stats.stats.mean
    speedup = oracle_seconds / mean_s if mean_s > 0 else float("inf")
    benchmark.extra_info["oracle_ms"] = round(oracle_seconds * 1000.0, 3)
    benchmark.extra_info["speedup_vs_oracle"] = round(speedup, 2)
    benchmark.extra_info["mask_filters"] = kernel.mask_filters
    benchmark.extra_info["ball_builds"] = kernel.ball_builds
    benchmark.extra_info["ball_hits"] = kernel.ball_hits
    # No hard factor here: solve latency includes ordering/pruning work
    # the engine does not touch.  The exactness assert above is the bar.
    check_claim(
        speedup >= 1.0,
        f"bitset solve slower than oracle path ({speedup:.2f}x)",
    )


def test_kernels_solve_bitset_jobs4(benchmark):
    runner, spec, oracle = _spec_and_oracle()
    queries = _queries()
    oracle_seconds, reference_groups = _solve_baseline(runner, spec, oracle)

    with ParallelBranchAndBoundSolver(
        runner.graph,
        oracle=oracle,
        strategy=spec.build_solver(runner.graph, oracle).strategy,
        jobs=4,
        executor="thread",
        distance_engine="bitset",
    ) as engine:
        engine.solve(queries[0])  # warm pool and ball cache
        results = benchmark.pedantic(
            lambda: [engine.solve(query) for query in queries],
            rounds=1,
            iterations=1,
        )

    assert [r.groups for r in results] == reference_groups
    mean_s = benchmark.stats.stats.mean
    speedup = oracle_seconds / mean_s if mean_s > 0 else float("inf")
    benchmark.extra_info["jobs"] = 4
    benchmark.extra_info["oracle_serial_ms"] = round(oracle_seconds * 1000.0, 3)
    benchmark.extra_info["speedup_vs_oracle_serial"] = round(speedup, 2)


# ----------------------------------------------------------------------
# Service batch over a repeated-k workload
# ----------------------------------------------------------------------
def test_kernels_service_repeat_oracle(benchmark):
    runner, _, oracle = _spec_and_oracle()
    workload = _service_workload()
    _, reference_sets = _service_baseline(runner, oracle)  # warms

    with QueryService(
        runner.graph, ALGORITHM, oracle=oracle, max_workers=1, cache_capacity=0
    ) as service:
        service.run_batch(workload, parallel=False)  # warm
        results = benchmark.pedantic(
            lambda: service.run_batch(workload, parallel=False),
            rounds=1,
            iterations=1,
        )
    assert [r.member_sets() for r in results] == reference_sets
    benchmark.extra_info["batch_size"] = len(workload)


def test_kernels_service_repeat_bitset(benchmark):
    runner, _, oracle = _spec_and_oracle()
    workload = _service_workload()
    oracle_seconds, reference_sets = _service_baseline(runner, oracle)

    with QueryService(
        runner.graph,
        ALGORITHM,
        oracle=oracle,
        max_workers=1,
        cache_capacity=0,
        distance_engine="bitset",
    ) as service:
        service.run_batch(workload, parallel=False)  # warm the ball cache
        results = benchmark.pedantic(
            lambda: service.run_batch(workload, parallel=False),
            rounds=1,
            iterations=1,
        )
        report = service.instrument_report()

    assert [r.member_sets() for r in results] == reference_sets

    mean_s = benchmark.stats.stats.mean
    speedup = oracle_seconds / mean_s if mean_s > 0 else float("inf")
    throughput = len(workload) / mean_s if mean_s > 0 else float("inf")
    benchmark.extra_info["batch_size"] = len(workload)
    benchmark.extra_info["oracle_batch_ms"] = round(oracle_seconds * 1000.0, 3)
    benchmark.extra_info["speedup_vs_oracle"] = round(speedup, 2)
    benchmark.extra_info["speedup_qps"] = round(throughput, 1)
    benchmark.extra_info["kernel_balls_cached"] = report["kernel"]["balls_cached"]
    benchmark.extra_info["kernel_ball_builds"] = report["kernel"]["ball_builds"]

    # Repeated-k batches must not regress: ball reuse pays for the
    # engine's overhead and then some.
    check_claim(
        speedup >= 1.1,
        f"service repeated-k batch speedup {speedup:.2f}x < 1.1x",
    )
