#!/usr/bin/env python3
"""Tenuity-model comparison: k-distance groups vs the related work.

The paper's Section II surveys how prior work measures "tenuous":
Li [2] minimises the number of *k-lines*, Shen et al. [1] count
*k-triangles*, Li et al. [18] bound the *k-tenuity* ratio.  The paper
argues its own *k-distance group* model (no k-line at all) is the only
one that guarantees pairwise separation.

This example makes that argument quantitative on the Figure 1 network:
it runs KTG, MinLine and TAGQ on the same query and scores every
returned group under *all* the metrics, showing

* KTG groups: zero k-lines, zero k-triangles, zero k-tenuity — by
  construction;
* MinLine groups: zero k-lines when achievable, graceful degradation
  when not (where KTG returns nothing);
* TAGQ groups: may contain k-lines when the tenuity cap is positive,
  and contain off-topic members regardless.

Run:  python examples/model_comparison.py
"""

from repro import BranchAndBoundSolver, KTGQuery
from repro.analysis import render_table
from repro.analysis.tenuity import tenuity_report
from repro.baselines import MinLineSolver, TAGQSolver
from repro.core.strategies import VKCDegreeOrdering
from repro.datasets import figure1_example, figure1_query


def main() -> None:
    graph = figure1_example()
    query = figure1_query()
    print(f"Network: {graph}")
    print(f"Query:   {query.describe()}\n")

    ktg = BranchAndBoundSolver(
        graph, strategy=VKCDegreeOrdering(graph.degrees())
    ).solve(query)
    minline = MinLineSolver(graph).solve(query)
    tagq = TAGQSolver(graph, max_tenuity=1 / 3).solve(query)

    rows = []
    for model, groups in (
        ("KTG", [(g.members, g.coverage) for g in ktg.groups]),
        ("MinLine", [(g.members, g.coverage) for g in minline.groups]),
        ("TAGQ(cap=1/3)", [(g.members, g.coverage) for g in tagq.groups]),
    ):
        for members, coverage in groups:
            report = tenuity_report(graph, members, query.tenuity)
            rows.append(
                {
                    "model": model,
                    "group": ", ".join(f"u{m}" for m in members),
                    "coverage": coverage,
                    "k_lines": report["k_lines"],
                    "k_triangles": report["k_triangles"],
                    "k_tenuity": report["k_tenuity"],
                    "min_distance": report["group_tenuity"],
                }
            )
    print(render_table(rows, title=f"All models, all tenuity metrics (k={query.tenuity})"))

    # ------------------------------------------------------------------
    # The degradation regime: a constraint so strict no k-distance group
    # exists.  KTG answers honestly (empty); MinLine returns the least
    # entangled group instead.
    # ------------------------------------------------------------------
    strict = KTGQuery(
        keywords=query.keywords, group_size=4, tenuity=3, top_n=1
    )
    ktg_strict = BranchAndBoundSolver(graph).solve(strict)
    minline_strict = MinLineSolver(graph).solve(strict)
    print(f"\nStrict query {strict.describe()}:")
    print(f"  KTG:     {len(ktg_strict.groups)} groups (no 3-distance 4-group exists)")
    best = minline_strict.groups[0]
    print(f"  MinLine: falls back to {best}")
    print(
        "\nThe k-distance model trades availability for a hard guarantee;"
        "\nMinLine trades the guarantee for availability — Section II's point."
    )


if __name__ == "__main__":
    main()
