#!/usr/bin/env python3
"""Dynamic social networks: keeping results fresh as friendships change.

Social graphs are not static — the paper's Section V-B sketches how the
NLRNL index absorbs edge insertions and deletions.  This example runs a
small "live" scenario:

1. answer a KTG query on the initial network;
2. two result members become acquainted (edge insert) — the old answer
   is now *invalid*, and the incrementally maintained index reflects
   that immediately;
3. re-answer the query on the updated graph without rebuilding;
4. the friendship ends (edge delete) and the original answer is valid
   again.

Every step cross-checks the maintained index against a from-scratch
rebuild.

Run:  python examples/dynamic_network.py
"""

from repro import BranchAndBoundSolver, NLRNLIndex
from repro.analysis import verify_tenuity
from repro.core.strategies import VKCDegreeOrdering
from repro.datasets import figure1_example, figure1_query


def answer(graph, oracle, query):
    solver = BranchAndBoundSolver(
        graph, oracle=oracle, strategy=VKCDegreeOrdering(graph.degrees())
    )
    return solver.solve(query)


def main() -> None:
    graph = figure1_example()
    query = figure1_query()
    oracle = NLRNLIndex(graph)

    result = answer(graph, oracle, query)
    first = result.groups[0]
    u, v = first.members[0], first.members[1]
    print(f"Initial answer: {result.groups[0]} and {result.groups[1]}")

    # ------------------------------------------------------------------
    # Two members of the winning group become friends.
    # ------------------------------------------------------------------
    print(f"\n>>> u{u} and u{v} connect (edge insert, incremental update)")
    oracle.insert_edge(u, v)
    assert not oracle.is_tenuous(u, v, query.tenuity)
    assert not verify_tenuity(oracle, [first], query.tenuity)
    print(f"    the old group {first.members} is no longer a {query.tenuity}-distance group")

    updated = answer(graph, oracle, query)
    print(f"    fresh answer: {updated.groups[0]}")
    assert verify_tenuity(oracle, updated.groups, query.tenuity)

    # Cross-check the maintained index against a full rebuild.
    rebuilt = NLRNLIndex(graph)
    for a in graph.vertices():
        for b in graph.vertices():
            assert oracle.is_tenuous(a, b, 2) == rebuilt.is_tenuous(a, b, 2)
    print("    (incremental index verified against a from-scratch rebuild)")

    # ------------------------------------------------------------------
    # The friendship ends.
    # ------------------------------------------------------------------
    print(f"\n>>> u{u} and u{v} disconnect (edge delete, incremental update)")
    oracle.delete_edge(u, v)
    restored = answer(graph, oracle, query)
    print(f"    answer restored: {restored.groups[0]} and {restored.groups[1]}")
    assert [g.coverage for g in restored.groups] == [g.coverage for g in result.groups]

    entries = oracle.stats.entries
    print(f"\nIndex carried {entries} entries throughout; no rebuild was needed.")


if __name__ == "__main__":
    main()
