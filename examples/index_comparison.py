#!/usr/bin/env python3
"""Distance-index comparison: BFS vs NL vs NLRNL (Section V in action).

Builds all three distance oracles on one synthetic dataset, verifies
they agree, and compares:

* build time and stored entries (the Figure 9 trade-off);
* query latency of the same KTG workload under each oracle;
* dynamic maintenance — NLRNL absorbs edge insertions/deletions
  incrementally, while NL must rebuild.

Run:  python examples/index_comparison.py
"""

import random
import time

from repro import BranchAndBoundSolver, BFSOracle, NLIndex, NLRNLIndex
from repro.analysis import render_table
from repro.core.strategies import VKCDegreeOrdering
from repro.datasets import load_dataset
from repro.index.stats import measure_footprint
from repro.workloads import WorkloadGenerator


def main() -> None:
    graph, vocabulary = load_dataset("brightkite", scale=0.4)
    print(f"Dataset: {graph}\n")

    # ------------------------------------------------------------------
    # Build cost and footprint (Figure 9).
    # ------------------------------------------------------------------
    rows = [measure_footprint(graph, kind).row() for kind in ("bfs", "nl", "nlrnl")]
    print(render_table(rows, title="Index footprint and build cost"))
    print()

    # ------------------------------------------------------------------
    # Same workload under each oracle.
    # ------------------------------------------------------------------
    generator = WorkloadGenerator(graph, vocabulary, dataset_name="brightkite")
    workload = generator.generate(count=5, keyword_size=6, group_size=3, tenuity=3, seed=1)

    latency_rows = []
    reference_profiles = None
    for oracle in (BFSOracle(graph), NLIndex(graph), NLRNLIndex(graph)):
        solver = BranchAndBoundSolver(
            graph, oracle=oracle, strategy=VKCDegreeOrdering(graph.degrees())
        )
        started = time.perf_counter()
        profiles = []
        for query in workload:
            result = solver.solve(query)
            profiles.append([round(g.coverage, 9) for g in result.groups])
        elapsed_ms = (time.perf_counter() - started) * 1000 / len(workload)
        latency_rows.append(
            {"oracle": oracle.name, "mean_query_ms": elapsed_ms, "probes": oracle.stats.probes}
        )
        if reference_profiles is None:
            reference_profiles = profiles
        else:
            assert profiles == reference_profiles, "oracles disagree!"
    print(render_table(latency_rows, title="KTG workload latency per oracle (k=3)"))
    print("(all oracles returned identical coverage profiles)\n")

    # ------------------------------------------------------------------
    # Dynamic maintenance: NLRNL vs rebuild-from-scratch.
    # ------------------------------------------------------------------
    nlrnl = NLRNLIndex(graph)
    rng = random.Random(3)
    edits = []
    for _ in range(5):
        u = rng.randrange(graph.num_vertices)
        v = rng.randrange(graph.num_vertices)
        if u != v and not graph.has_edge(u, v):
            edits.append((u, v))

    started = time.perf_counter()
    for u, v in edits:
        nlrnl.insert_edge(u, v)
    for u, v in edits:
        nlrnl.delete_edge(u, v)
    incremental_ms = (time.perf_counter() - started) * 1000

    started = time.perf_counter()
    for _ in range(2 * len(edits)):
        NLRNLIndex(graph)
    rebuild_ms = (time.perf_counter() - started) * 1000

    print(
        f"Dynamic maintenance over {2 * len(edits)} edge edits:\n"
        f"  incremental NLRNL updates: {incremental_ms:8.1f} ms\n"
        f"  full rebuilds instead:     {rebuild_ms:8.1f} ms\n"
        f"  speedup: {rebuild_ms / max(incremental_ms, 1e-9):.1f}x"
    )


if __name__ == "__main__":
    main()
