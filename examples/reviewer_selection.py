#!/usr/bin/env python3
"""Reviewer selection: the paper's motivating application, end to end.

Scenario: a program chair must staff review panels for a submission
whose keywords are {social network, database, community search, graph,
query}.  Reviewers with expertise matching the paper should be picked,
but no two panellists may be close collaborators (social distance must
exceed k=2), and — to keep panels available when someone declines —
alternative panels should not reuse the same people.

This example contrasts three selection policies on the case-study
network of the paper's Figure 8:

* **KTG-VKC-DEG** — exact top-N by joint coverage.  Every panellist is
  on-topic, but alternates overlap heavily.
* **DKTG-Greedy** — diversified panels: disjoint alternates.
* **TAGQ** (Li et al. [18]) — maximises *average* coverage; happily
  drafts reviewers with zero topical overlap (the paper's red lines).

It also shows the multi-query-vertex extension: excluding the authors'
collaborators from the candidate pool.

Run:  python examples/reviewer_selection.py
"""

from repro import BranchAndBoundSolver, DKTGGreedySolver, NLRNLIndex
from repro.analysis import render_case_study, run_case_study
from repro.core.multi_vertex import anchored_query
from repro.core.strategies import VKCDegreeOrdering
from repro.datasets import case_study_graph, case_study_query


def main() -> None:
    graph = case_study_graph()
    query = case_study_query()

    # ------------------------------------------------------------------
    # Three policies side by side (the paper's Figure 8).
    # ------------------------------------------------------------------
    outcome = run_case_study(graph, query)
    print(render_case_study(outcome))

    print("Summary:")
    for name, quality in outcome.quality.items():
        print(
            f"  {name:12s} best coverage={quality.best_coverage:.2f}  "
            f"diversity={quality.diversity:.2f}  "
            f"off-topic members={quality.zero_coverage_members}"
        )

    # ------------------------------------------------------------------
    # Conflict-of-interest handling: the submitting author is vertex 1
    # (a well-connected junior colleague of half the community).  All
    # reviewers within k hops of the author are excluded.
    # ------------------------------------------------------------------
    author = 1
    coi_query = anchored_query(query.base_query(), authors=[author])
    oracle = NLRNLIndex(graph)
    solver = BranchAndBoundSolver(
        graph, oracle=oracle, strategy=VKCDegreeOrdering(graph.degrees())
    )
    result = solver.solve(coi_query)

    print(f"\nWith conflicts of u{author} excluded ({coi_query.describe()}):")
    for rank, group in enumerate(result.groups, 1):
        members = ", ".join(f"u{m}" for m in group.members)
        print(f"  panel {rank}: {members} (coverage {group.coverage:.2f})")
        for member in group.members:
            distance = graph.hop_distance(author, member)
            assert distance is None or distance > coi_query.tenuity
    print("  (all panellists verified > k hops from the author)")

    # ------------------------------------------------------------------
    # Backup panels with DKTG: three panels, no shared members, so the
    # chair can fall through panel 1 -> 2 -> 3 as reviewers decline.
    # ------------------------------------------------------------------
    dktg = DKTGGreedySolver(graph, inner_solver=solver)
    backups = dktg.solve(query)
    print(f"\nDisjoint backup panels (diversity={backups.diversity:.2f}):")
    for rank, group in enumerate(backups.groups, 1):
        members = ", ".join(f"u{m}" for m in group.members)
        print(f"  panel {rank}: {members} (coverage {group.coverage:.2f})")


if __name__ == "__main__":
    main()
