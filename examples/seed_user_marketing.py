#!/usr/bin/env python3
"""Social-advertising seed selection — the paper's second motivation.

"For social advertising in marketing campaigns, it is preferable to
have seed users not familiar with each other so as to increase the
propagation influence.  Moreover, the seed users should cover the
keywords associated with the product."

This example generates a synthetic location-based social network (the
Gowalla profile), picks a product keyword set, and selects seed-user
groups with growing social separation k.  It then *measures* why
tenuity matters for seeding: the union of the seeds' k-hop
neighbourhoods (a standard proxy for first-wave reach) grows as the
seeds spread out, because tenuous seeds waste no reach on overlapping
audiences.

Run:  python examples/seed_user_marketing.py
"""

from repro import BranchAndBoundSolver, KTGQuery, NLRNLIndex
from repro.core.strategies import VKCDegreeOrdering
from repro.datasets import load_dataset
from repro.workloads import WorkloadGenerator


def reach(graph, seeds, hops=2):
    """Distinct users within *hops* of any seed — first-wave audience."""
    audience = set()
    for seed in seeds:
        audience |= set(graph.bfs_distances(seed, hops))
    return len(audience)


def main() -> None:
    graph, vocabulary = load_dataset("gowalla", scale=0.4)
    print(f"Campaign network: {graph}")

    # Product keywords: drawn from the same vocabulary users carry, so
    # the campaign matches real interests in the network.
    generator = WorkloadGenerator(graph, vocabulary, dataset_name="gowalla")
    product_keywords = generator.generate(
        count=1, keyword_size=6, group_size=4, seed=42
    ).queries[0].keywords
    print(f"Product keywords: {', '.join(product_keywords)}\n")

    oracle = NLRNLIndex(graph)
    solver = BranchAndBoundSolver(
        graph, oracle=oracle, strategy=VKCDegreeOrdering(graph.degrees())
    )

    print(f"{'k':>2} | {'coverage':>8} | {'audience reach':>14} | seeds")
    print("-" * 60)
    for k in (0, 1, 2, 3):
        query = KTGQuery(
            keywords=product_keywords, group_size=4, tenuity=k, top_n=1
        )
        result = solver.solve(query)
        if not result.groups:
            print(f"{k:>2} | {'-':>8} | {'-':>14} | (no tenuous group exists)")
            continue
        seeds = result.groups[0].members
        audience = reach(graph, seeds)
        seed_text = ", ".join(f"u{s}" for s in seeds)
        print(
            f"{k:>2} | {result.groups[0].coverage:>8.2f} | "
            f"{audience:>14d} | {seed_text}"
        )

    print(
        "\nTenuous seeds (larger k) reach a wider first-wave audience for "
        "the same keyword coverage:\nseparated seeds do not compete for "
        "the same friends."
    )


if __name__ == "__main__":
    main()
