#!/usr/bin/env python3
"""Quickstart: answer a KTG query on the paper's running example.

Builds the attributed social network of the paper's Figure 1 (twelve
reviewers profiled with database-conference keywords), then asks the
running query of Example 1: *find the top-2 groups of 3 reviewers, none
of whom are direct acquaintances (k=1), jointly covering as many of
{SN, QP, DQ, GQ, GD} as possible*.

Run:  python examples/quickstart.py
"""

from repro import (
    AttributedGraph,
    BranchAndBoundSolver,
    KTGQuery,
    NLRNLIndex,
)
from repro.datasets import figure1_example, figure1_query


def main() -> None:
    # --- 1. The attributed social network -----------------------------
    # figure1_example() reconstructs the paper's Figure 1; building your
    # own graph is one constructor call:
    #
    #   graph = AttributedGraph(
    #       num_vertices=3,
    #       edges=[(0, 1)],
    #       keywords={0: ["SN"], 1: ["QP"], 2: ["SN", "DQ"]},
    #   )
    graph = figure1_example()
    print(f"Graph: {graph}")
    for vertex in graph.vertices():
        print(f"  u{vertex}: {', '.join(graph.keyword_labels(vertex))}")

    # --- 2. The query --------------------------------------------------
    query = figure1_query()
    print(f"\nQuery: {query.describe()}")

    # --- 3. Solve ------------------------------------------------------
    # The default solver is KTG-VKC (Algorithm 1).  Attaching an NLRNL
    # index and the degree tie-break gives the paper's fastest variant,
    # KTG-VKC-DEG-NLRNL.
    solver = BranchAndBoundSolver(graph, oracle=NLRNLIndex(graph))
    result = solver.solve(query)

    print(f"\n{result}")
    print(
        f"\nSearch visited {result.stats.nodes_expanded} nodes, "
        f"pruned {result.stats.keyword_prunes} branches by keyword bound, "
        f"dropped {result.stats.kline_removed} candidates by k-line filtering."
    )

    # --- 4. Inspect the winning group ----------------------------------
    best = result.groups[0]
    print(f"\nBest group {best}:")
    for member in best.members:
        print(f"  u{member} contributes {graph.keyword_labels(member)}")
    for i, u in enumerate(best.members):
        for v in best.members[i + 1 :]:
            print(f"  social distance u{u} - u{v}: {graph.hop_distance(u, v)} hops")


if __name__ == "__main__":
    main()
