"""Run the executable examples embedded in module docstrings.

Doc examples rot silently unless executed; every module whose API docs
carry ``>>>`` examples is doctested here.  Modules get the commonly
needed names injected so examples stay short.
"""

import doctest

import pytest

import repro.core.coverage
import repro.core.dktg
import repro.core.graph
import repro.core.multi_vertex
import repro.core.query
import repro.core.results
import repro.core.validate
import repro.datasets.keywords
import repro.index.nl
import repro.index.nlrnl
import repro.index.pll
import repro.service.service
from repro.core.graph import AttributedGraph

MODULES = [
    repro.core.graph,
    repro.core.coverage,
    repro.core.query,
    repro.core.results,
    repro.core.dktg,
    repro.core.multi_vertex,
    repro.core.validate,
    repro.datasets.keywords,
    repro.index.nl,
    repro.index.nlrnl,
    repro.index.pll,
    repro.service.service,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(
        module,
        extraglobs={"AttributedGraph": AttributedGraph},
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
    )
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"
