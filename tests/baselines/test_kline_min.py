"""Unit tests for the MinLine comparator (Li [2]'s model)."""

import pytest

from repro.analysis.tenuity import kline_count
from repro.baselines.kline_min import MinLineSolver
from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.graph import AttributedGraph
from repro.core.query import KTGQuery
from repro.index.nlrnl import NLRNLIndex


class TestMinLineSolver:
    def test_zero_kline_optimum_matches_ktg_feasibility(self, figure1, figure1_q):
        result = MinLineSolver(figure1).solve(figure1_q)
        assert result.best_kline_count == 0
        # With zero k-lines achievable, the top MinLine group is a valid
        # KTG group (and at the KTG-optimal coverage, since ties break
        # by coverage).
        best = result.groups[0]
        assert best.coverage == pytest.approx(0.8)
        assert kline_count(figure1, best.members, figure1_q.tenuity) == 0

    def test_exactness_by_enumeration(self, figure1):
        query = KTGQuery(keywords=("SN", "GD"), group_size=3, tenuity=2, top_n=1)
        result = MinLineSolver(figure1).solve(query)
        from itertools import combinations

        from repro.core.coverage import CoverageContext

        context = CoverageContext(figure1, query.keywords)
        qualified = context.qualified_vertices()
        best = min(
            (
                (
                    kline_count(figure1, combo, query.tenuity),
                    -context.group_coverage(combo),
                )
                for combo in combinations(qualified, query.group_size)
            ),
        )
        assert (result.groups[0].kline_count, -result.groups[0].coverage) == pytest.approx(best)

    def test_degrades_when_no_tenuous_group_exists(self, path_graph):
        # All vertices on a 5-path: no pair of 3 at pairwise distance > 2
        # among qualified {a..e}?  With k=4 nothing is tenuous, KTG is
        # empty, MinLine still returns the least-connected group.
        query = KTGQuery(
            keywords=("a", "b", "c", "d", "e"), group_size=3, tenuity=4, top_n=1
        )
        ktg = BranchAndBoundSolver(path_graph).solve(query)
        assert ktg.groups == ()
        minline = MinLineSolver(path_graph).solve(query)
        assert minline.groups
        assert minline.best_kline_count > 0

    def test_ranking_prefers_fewer_klines_then_coverage(self):
        # Star with the only "b"-holder at the centre: every
        # full-coverage pair contains the centre and is a k-line, while
        # leaf pairs are 0-k-line with half coverage.  MinLine must
        # prefer fewer k-lines over higher coverage.
        graph = AttributedGraph(
            4, [(1, 0), (1, 2), (1, 3)], {0: ["a"], 1: ["b"], 2: ["a"], 3: ["a"]}
        )
        query = KTGQuery(keywords=("a", "b"), group_size=2, tenuity=1, top_n=1)
        result = MinLineSolver(graph).solve(query)
        best = result.groups[0]
        assert best.kline_count == 0
        assert best.coverage == pytest.approx(0.5)
        assert 1 not in best.members

    def test_top_n_ordering(self, figure1, figure1_q):
        result = MinLineSolver(figure1).solve(figure1_q.with_(top_n=5))
        ranks = [
            (group.kline_count, -group.coverage) for group in result.groups
        ]
        assert ranks == sorted(ranks)
        assert len(result.groups) == 5

    def test_members_all_qualified(self, figure1, figure1_q):
        from repro.core.coverage import CoverageContext

        context = CoverageContext(figure1, figure1_q.keywords)
        result = MinLineSolver(figure1).solve(figure1_q)
        for group in result.groups:
            for member in group.members:
                assert context.masks[member]

    def test_works_with_index_oracle(self, figure1, figure1_q):
        result = MinLineSolver(figure1, oracle=NLRNLIndex(figure1)).solve(figure1_q)
        assert result.algorithm == "MINLINE-NLRNL"
        assert result.best_kline_count == 0

    def test_str_rendering(self, figure1, figure1_q):
        group = MinLineSolver(figure1).solve(figure1_q).groups[0]
        assert "k-lines=0" in str(group)
