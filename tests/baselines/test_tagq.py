"""Unit tests for the TAGQ comparator."""

import pytest

from repro.baselines.tagq import TAGQSolver, k_tenuity
from repro.core.coverage import CoverageContext
from repro.core.graph import AttributedGraph
from repro.core.query import KTGQuery
from repro.datasets.figure1 import case_study_graph, case_study_query
from repro.index.bfs import BFSOracle


class TestKTenuity:
    def test_all_pairs_distant(self, figure1):
        # u10, u1, u4 pairwise distance > 1.
        assert k_tenuity(figure1, [10, 1, 4], 1) == 0.0

    def test_all_pairs_close(self, figure1):
        # Triangle u6, u7, u8 with pairwise distance <= 2.
        assert k_tenuity(figure1, [6, 7, 8], 2) == 1.0

    def test_fractional(self, figure1):
        # u0-u1 are adjacent; u0-u10 and u1-u10 are 2+ hops at k=1.
        value = k_tenuity(figure1, [0, 1, 10], 1)
        assert value == pytest.approx(1 / 3)

    def test_small_groups(self, figure1):
        assert k_tenuity(figure1, [0], 2) == 0.0
        assert k_tenuity(figure1, [], 2) == 0.0

    def test_accepts_oracle(self, figure1):
        oracle = BFSOracle(figure1)
        assert k_tenuity(oracle, [6, 7], 1) == 1.0


class TestSolver:
    def test_invalid_max_tenuity_rejected(self, figure1):
        with pytest.raises(ValueError):
            TAGQSolver(figure1, max_tenuity=1.5)

    def test_maximises_average_coverage(self, figure1):
        query = KTGQuery(
            keywords=("SN", "QP", "DQ", "GQ", "GD"), group_size=2, tenuity=1, top_n=1
        )
        result = TAGQSolver(figure1).solve(query)
        context = CoverageContext(figure1, query.keywords)
        best = result.groups[0]
        # Verify optimality by brute force over all tenuous pairs.
        expected = 0.0
        for u in figure1.vertices():
            for v in range(u + 1, figure1.num_vertices):
                distance = figure1.hop_distance(u, v)
                if distance is not None and distance <= 1:
                    continue
                average = (
                    context.masks[u].bit_count() + context.masks[v].bit_count()
                ) / (2 * 5)
                expected = max(expected, average)
        assert best.coverage == pytest.approx(expected)

    def test_zero_coverage_members_allowed(self):
        graph = case_study_graph()
        query = case_study_query().base_query()
        result = TAGQSolver(graph).solve(query)
        context = CoverageContext(graph, query.keywords)
        zero_members = [
            member
            for group in result.groups
            for member in group.members
            if context.masks[member] == 0
        ]
        assert zero_members, "case study should surface TAGQ's red-line members"

    def test_respects_tenuity_cap_zero(self):
        graph = case_study_graph()
        query = case_study_query().base_query()
        result = TAGQSolver(graph, max_tenuity=0.0).solve(query)
        for group in result.groups:
            assert k_tenuity(graph, group.members, query.tenuity) == 0.0

    def test_positive_cap_admits_close_pairs(self, figure1):
        query = KTGQuery(keywords=("SN", "QP", "DQ"), group_size=3, tenuity=2, top_n=1)
        strict = TAGQSolver(figure1, max_tenuity=0.0).solve(query)
        relaxed = TAGQSolver(figure1, max_tenuity=1.0).solve(query)
        # Relaxing the cap can only improve the objective.
        assert relaxed.best_coverage >= strict.best_coverage
        # With no constraint the best trio is simply the 3 best vertices.
        context = CoverageContext(figure1, query.keywords)
        top3 = sorted(
            (context.masks[v].bit_count() for v in figure1.vertices()), reverse=True
        )[:3]
        assert relaxed.best_coverage == pytest.approx(sum(top3) / (3 * 3))

    def test_algorithm_name(self, figure1):
        assert TAGQSolver(figure1).algorithm_name == "TAGQ-BFS"

    def test_empty_when_group_too_large(self):
        graph = AttributedGraph(3, [], {0: ["a"]})
        query = KTGQuery(keywords=("a",), group_size=5, tenuity=1)
        assert TAGQSolver(graph).solve(query).groups == ()
