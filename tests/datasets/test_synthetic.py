"""Unit tests for the synthetic graph generators."""

import random

import pytest

from repro.core.errors import DatasetError
from repro.datasets.synthetic import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    watts_strogatz_graph,
)


class TestBarabasiAlbert:
    def test_sizes(self):
        graph = barabasi_albert_graph(100, 3, rng=0)
        assert graph.num_vertices == 100
        # Star start: 3 edges; each later vertex adds exactly 3.
        assert graph.num_edges == 3 + 96 * 3

    def test_deterministic(self):
        a = barabasi_albert_graph(60, 2, rng=5)
        b = barabasi_albert_graph(60, 2, rng=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = barabasi_albert_graph(60, 2, rng=1)
        b = barabasi_albert_graph(60, 2, rng=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_connected(self):
        graph = barabasi_albert_graph(80, 2, rng=3)
        components = set(graph.connected_components())
        assert len(components) == 1

    def test_heavy_tail(self):
        graph = barabasi_albert_graph(400, 2, rng=7)
        degrees = sorted(graph.degrees(), reverse=True)
        # The hub should dwarf the median degree.
        assert degrees[0] >= 4 * degrees[len(degrees) // 2]

    @pytest.mark.parametrize("n,m", [(3, 3), (5, 0)])
    def test_invalid_parameters(self, n, m):
        with pytest.raises(DatasetError):
            barabasi_albert_graph(n, m)


class TestPowerlawCluster:
    def test_sizes_and_connectivity(self):
        graph = powerlaw_cluster_graph(120, 3, 0.5, rng=0)
        assert graph.num_vertices == 120
        assert len(set(graph.connected_components())) == 1
        # Triad steps count toward the per-vertex budget, so the edge
        # count matches plain preferential attachment: a 3-edge star,
        # then 3 edges for each of the 116 remaining vertices.
        assert graph.num_edges == 3 + 116 * 3

    def test_triangles_increase_with_probability(self):
        def triangle_count(graph):
            adjacency = graph.adjacency_view()
            count = 0
            for u, v in graph.edges():
                count += len(adjacency[u] & adjacency[v])
            return count // 3

        low = powerlaw_cluster_graph(250, 3, 0.0, rng=11)
        high = powerlaw_cluster_graph(250, 3, 0.9, rng=11)
        assert triangle_count(high) > triangle_count(low)

    def test_deterministic(self):
        a = powerlaw_cluster_graph(70, 2, 0.4, rng=9)
        b = powerlaw_cluster_graph(70, 2, 0.4, rng=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_invalid_probability(self):
        with pytest.raises(DatasetError):
            powerlaw_cluster_graph(10, 2, 1.5)


class TestWattsStrogatz:
    def test_ring_structure_at_zero_rewiring(self):
        graph = watts_strogatz_graph(20, 4, 0.0, rng=0)
        assert graph.num_edges == 20 * 2
        assert all(degree == 4 for degree in graph.degrees())

    def test_rewiring_preserves_edge_count(self):
        graph = watts_strogatz_graph(40, 4, 0.3, rng=1)
        assert graph.num_edges == 40 * 2

    def test_full_rewiring_changes_ring(self):
        ring = watts_strogatz_graph(30, 2, 0.0, rng=2)
        rewired = watts_strogatz_graph(30, 2, 1.0, rng=2)
        assert sorted(ring.edges()) != sorted(rewired.edges())

    @pytest.mark.parametrize("n,k,beta", [(10, 3, 0.1), (10, 0, 0.1), (4, 4, 0.1), (10, 2, 2.0)])
    def test_invalid_parameters(self, n, k, beta):
        with pytest.raises(DatasetError):
            watts_strogatz_graph(n, k, beta)


class TestErdosRenyi:
    def test_zero_probability(self):
        assert erdos_renyi_graph(50, 0.0, rng=0).num_edges == 0

    def test_full_probability(self):
        graph = erdos_renyi_graph(10, 1.0, rng=0)
        assert graph.num_edges == 45

    def test_expected_density(self):
        graph = erdos_renyi_graph(200, 0.05, rng=3)
        expected = 0.05 * 200 * 199 / 2
        assert expected * 0.7 < graph.num_edges < expected * 1.3

    def test_deterministic(self):
        a = erdos_renyi_graph(100, 0.04, rng=8)
        b = erdos_renyi_graph(100, 0.04, rng=8)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_invalid_probability(self):
        with pytest.raises(DatasetError):
            erdos_renyi_graph(10, -0.1)

    def test_accepts_random_instance(self):
        rng = random.Random(4)
        graph = erdos_renyi_graph(30, 0.1, rng=rng)
        assert graph.num_vertices == 30
