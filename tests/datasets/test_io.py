"""Unit tests for dataset file I/O."""

import pytest

from repro.core.errors import DatasetError
from repro.datasets.io import read_edge_list, read_graph, read_keyword_table, write_graph


class TestReadEdgeList:
    def test_basic_parsing(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# comment\n0\t1\n1 2\n\n2,3\n")
        assert read_edge_list(path) == [(0, 1), (1, 2), (2, 3)]

    def test_duplicates_and_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("0 1\n1 0\n2 2\n")
        assert read_edge_list(path) == [(0, 1)]

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("0 1 2\n")
        with pytest.raises(DatasetError, match="expected 'u v'"):
            read_edge_list(path)

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("a b\n")
        with pytest.raises(DatasetError, match="non-integer"):
            read_edge_list(path)

    def test_negative_id_rejected(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("-1 2\n")
        with pytest.raises(DatasetError, match="negative"):
            read_edge_list(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="cannot read"):
            read_edge_list(tmp_path / "nope.edges")


class TestReadKeywordTable:
    def test_basic_parsing(self, tmp_path):
        path = tmp_path / "g.kw"
        path.write_text("# header\n0\ta,b\n2\tc\n")
        assert read_keyword_table(path) == {0: ["a", "b"], 2: ["c"]}

    def test_space_separator_fallback(self, tmp_path):
        path = tmp_path / "g.kw"
        path.write_text("1 x,y\n")
        assert read_keyword_table(path) == {1: ["x", "y"]}

    def test_bad_vertex_rejected(self, tmp_path):
        path = tmp_path / "g.kw"
        path.write_text("abc\tx\n")
        with pytest.raises(DatasetError, match="non-integer"):
            read_keyword_table(path)


class TestRoundTrip:
    def test_write_then_read_preserves_graph(self, figure1, tmp_path):
        edges = tmp_path / "f.edges"
        keywords = tmp_path / "f.kw"
        write_graph(figure1, edges, keywords)
        loaded, mapping = read_graph(edges, keywords)
        assert loaded.num_vertices == figure1.num_vertices
        assert sorted(loaded.edges()) == sorted(figure1.edges())
        for vertex in figure1.vertices():
            assert loaded.keyword_labels(mapping[vertex]) == figure1.keyword_labels(
                vertex
            )

    def test_sparse_ids_compacted(self, tmp_path):
        edges = tmp_path / "s.edges"
        edges.write_text("10 20\n20 30\n")
        graph, mapping = read_graph(edges)
        assert graph.num_vertices == 3
        assert mapping == {10: 0, 20: 1, 30: 2}
        assert graph.has_edge(0, 1)

    def test_keyword_only_vertices_included(self, tmp_path):
        edges = tmp_path / "s.edges"
        keywords = tmp_path / "s.kw"
        edges.write_text("0 1\n")
        keywords.write_text("5\tlonely\n")
        graph, mapping = read_graph(edges, keywords)
        assert graph.num_vertices == 3
        assert graph.keyword_labels(mapping[5]) == ["lonely"]
        assert graph.degree(mapping[5]) == 0

    def test_write_without_keywords(self, figure1, tmp_path):
        edges = tmp_path / "f.edges"
        write_graph(figure1, edges)
        graph, _ = read_graph(edges)
        assert graph.num_edges == figure1.num_edges
