"""Unit tests for the curated example graphs (Figure 1 + case study)."""

import pytest

from repro.core.bruteforce import BruteForceSolver
from repro.core.coverage import CoverageContext
from repro.datasets.figure1 import (
    CASE_STUDY_KEYWORDS,
    case_study_graph,
    case_study_query,
    figure1_example,
    figure1_query,
)


class TestFigure1DocumentedFacts:
    """Every structural fact the paper's text states about Figure 1."""

    def test_u0_one_hop_neighbours(self, figure1):
        assert sorted(figure1.neighbors(0)) == [1, 2, 3, 4, 9, 11]

    def test_u3_one_hop_neighbours(self, figure1):
        assert sorted(figure1.neighbors(3)) == [0, 2, 4, 9]

    def test_u3_u5_distance_is_three(self, figure1):
        assert figure1.hop_distance(3, 5) == 3

    def test_u8_two_hop_ball(self, figure1):
        ball = {
            v
            for v in figure1.vertices()
            if v != 8 and (d := figure1.hop_distance(8, v)) is not None and d <= 2
        }
        assert ball == {0, 3, 4, 6, 7}

    def test_u6_u7_directly_connected(self, figure1):
        assert figure1.has_edge(6, 7)

    def test_running_query_optimum_is_08(self, figure1, figure1_q):
        result = BruteForceSolver(figure1).solve(figure1_q)
        assert result.best_coverage == pytest.approx(0.8)

    def test_paper_reported_groups_are_optimal_and_feasible(self, figure1, figure1_q):
        context = CoverageContext(figure1, figure1_q.keywords)
        for members in [(10, 1, 4), (10, 1, 5)]:
            assert context.group_coverage(members) == pytest.approx(0.8)
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    assert figure1.hop_distance(u, v) > figure1_q.tenuity

    def test_no_feasible_group_covers_everything(self, figure1, figure1_q):
        # GQ is only on u6, and u6 conflicts (k=1) with every vertex
        # that could supply QP, so full coverage is unreachable.
        result = BruteForceSolver(figure1).solve(figure1_q.with_(top_n=50))
        context = CoverageContext(figure1, figure1_q.keywords)
        for group in result.groups:
            assert context.union_mask(group.members) != context.full_mask

    def test_factory_functions_fresh_instances(self):
        assert figure1_example() is not figure1_example()
        assert figure1_query() == figure1_query()


class TestCaseStudyGraph:
    def test_shape(self):
        graph = case_study_graph()
        assert graph.num_vertices == 29
        assert len(set(graph.connected_components())) == 1

    def test_senior_covers_everything(self):
        graph = case_study_graph()
        context = CoverageContext(graph, CASE_STUDY_KEYWORDS)
        assert context.vertex_coverage(0) == 1.0

    def test_outsiders_cover_nothing(self):
        graph = case_study_graph()
        context = CoverageContext(graph, CASE_STUDY_KEYWORDS)
        for outsider in (13, 14, 15):
            assert context.vertex_coverage(outsider) == 0.0

    def test_outsiders_are_socially_distant(self):
        graph = case_study_graph()
        query = case_study_query()
        for outsider in (13, 14, 15):
            assert graph.hop_distance(0, outsider) > query.tenuity
        assert graph.hop_distance(13, 14) > query.tenuity
        assert graph.hop_distance(13, 15) > query.tenuity
        assert graph.hop_distance(14, 15) > query.tenuity

    def test_satellites_conflict_with_senior(self):
        graph = case_study_graph()
        query = case_study_query()
        for satellite in (2, 3, 4, 16, 18, 20, 22):
            assert graph.hop_distance(0, satellite) <= query.tenuity

    def test_query_defaults(self):
        query = case_study_query()
        assert query.group_size == 3
        assert query.tenuity == 2
        assert query.top_n == 3
        assert query.gamma == 0.5

    def test_gamma_override(self):
        assert case_study_query(gamma=0.2).gamma == 0.2
