"""Unit tests for Zipfian keyword assignment."""

import random
from collections import Counter

import pytest

from repro.core.errors import DatasetError
from repro.core.graph import AttributedGraph
from repro.datasets.keywords import (
    KeywordModel,
    ZipfVocabulary,
    assign_keywords,
    default_vocabulary,
)


class TestDefaultVocabulary:
    def test_labels_are_unique_and_sized(self):
        labels = default_vocabulary(50)
        assert len(labels) == 50
        assert len(set(labels)) == 50

    def test_zero_padding(self):
        assert default_vocabulary(5)[0] == "kw000"

    def test_invalid_size(self):
        with pytest.raises(DatasetError):
            default_vocabulary(0)


class TestZipfVocabulary:
    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            ZipfVocabulary([])

    def test_negative_exponent_rejected(self):
        with pytest.raises(DatasetError):
            ZipfVocabulary(["a"], exponent=-1)

    def test_sampling_respects_rank_order(self):
        vocabulary = ZipfVocabulary(default_vocabulary(20), exponent=1.2)
        rng = random.Random(0)
        counts = Counter(vocabulary.sample(rng) for _ in range(20000))
        # Rank-1 keyword is sampled far more than a deep-tail keyword.
        assert counts["kw000"] > 5 * counts.get("kw015", 1)

    def test_uniform_at_zero_exponent(self):
        vocabulary = ZipfVocabulary(["a", "b", "c", "d"], exponent=0.0)
        rng = random.Random(1)
        counts = Counter(vocabulary.sample(rng) for _ in range(8000))
        for label in "abcd":
            assert 0.8 * 2000 < counts[label] < 1.2 * 2000

    def test_sample_distinct(self):
        vocabulary = ZipfVocabulary(default_vocabulary(10), exponent=1.0)
        picked = vocabulary.sample_distinct(10, random.Random(2))
        assert sorted(picked) == default_vocabulary(10)

    def test_sample_distinct_overdraw_rejected(self):
        vocabulary = ZipfVocabulary(["a", "b"])
        with pytest.raises(DatasetError):
            vocabulary.sample_distinct(3, random.Random(0))

    def test_frequency_of(self):
        vocabulary = ZipfVocabulary(["a", "b"], exponent=1.0)
        assert vocabulary.frequency_of("a") == pytest.approx(2 / 3)
        assert vocabulary.frequency_of("b") == pytest.approx(1 / 3)
        assert vocabulary.frequency_of("zz") == 0.0

    def test_len(self):
        assert len(ZipfVocabulary(["a", "b", "c"])) == 3


class TestKeywordModel:
    def test_invalid_ranges_rejected(self):
        with pytest.raises(DatasetError):
            KeywordModel(min_keywords=3, max_keywords=2)
        with pytest.raises(DatasetError):
            KeywordModel(vocabulary_size=3, max_keywords=5)

    def test_build_vocabulary_default_labels(self):
        vocabulary = KeywordModel(vocabulary_size=7).build_vocabulary()
        assert len(vocabulary) == 7

    def test_build_vocabulary_custom_labels(self):
        vocabulary = KeywordModel(vocabulary_size=2, max_keywords=2).build_vocabulary(["x", "y"])
        assert vocabulary.labels == ("x", "y")


class TestAssignKeywords:
    def test_every_vertex_in_range(self):
        graph = AttributedGraph(50, [(i, i + 1) for i in range(49)])
        model = KeywordModel(vocabulary_size=30, min_keywords=1, max_keywords=4)
        assign_keywords(graph, model, rng=0)
        for vertex in graph.vertices():
            count = len(graph.keywords_of(vertex))
            assert 1 <= count <= 4

    def test_zero_keywords_allowed(self):
        graph = AttributedGraph(30)
        model = KeywordModel(vocabulary_size=10, min_keywords=0, max_keywords=0)
        assign_keywords(graph, model, rng=0)
        assert all(not graph.keywords_of(v) for v in graph.vertices())

    def test_deterministic(self):
        graphs = []
        for _ in range(2):
            graph = AttributedGraph(20)
            assign_keywords(graph, KeywordModel(vocabulary_size=15), rng=9)
            graphs.append([graph.keyword_labels(v) for v in graph.vertices()])
        assert graphs[0] == graphs[1]

    def test_returns_vocabulary(self):
        graph = AttributedGraph(5)
        vocabulary = assign_keywords(graph, KeywordModel(vocabulary_size=12), rng=1)
        assert len(vocabulary) == 12

    def test_shared_vocabulary_reused(self):
        shared = ZipfVocabulary(["a", "b", "c", "d", "e"])
        graph = AttributedGraph(5)
        returned = assign_keywords(
            graph, KeywordModel(vocabulary_size=5), rng=1, vocabulary=shared
        )
        assert returned is shared
        for vertex in graph.vertices():
            assert set(graph.keyword_labels(vertex)) <= set("abcde")
