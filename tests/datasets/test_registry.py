"""Unit tests for the dataset profile registry."""

import pytest

from repro.core.errors import DatasetError
from repro.datasets.registry import PROFILES, load_dataset, profile_names


class TestRegistryContents:
    def test_all_paper_datasets_present(self):
        assert set(profile_names()) == {
            "dblp",
            "gowalla",
            "brightkite",
            "flickr",
            "twitter",
            "dblp-large",
        }

    def test_paper_sizes_recorded(self):
        assert PROFILES["dblp"].paper_vertices == 200_000
        assert PROFILES["gowalla"].paper_edges == 559_200
        assert PROFILES["twitter"].paper_vertices == 81_306

    def test_relative_density_ordering_preserved(self):
        # Twitter is the paper's densest graph, Brightkite the sparsest.
        assert (
            PROFILES["twitter"].edges_per_vertex
            > PROFILES["gowalla"].edges_per_vertex
            > PROFILES["brightkite"].edges_per_vertex
        )

    def test_paper_average_degree(self):
        assert PROFILES["brightkite"].paper_average_degree == pytest.approx(
            2 * 214_038 / 58_288
        )


class TestInstantiation:
    def test_load_dataset_shapes(self):
        graph, vocabulary = load_dataset("brightkite", scale=0.2)
        assert graph.num_vertices == 280
        assert graph.num_edges > 0
        assert len(vocabulary) == 300

    def test_unknown_name_rejected_with_listing(self):
        with pytest.raises(DatasetError, match="available:"):
            load_dataset("facebook")

    def test_case_insensitive(self):
        graph, _ = load_dataset("BRIGHTKITE", scale=0.1)
        assert graph.num_vertices == 140

    def test_deterministic_by_default(self):
        a, _ = load_dataset("gowalla", scale=0.1)
        b, _ = load_dataset("gowalla", scale=0.1)
        assert sorted(a.edges()) == sorted(b.edges())
        assert all(
            a.keyword_labels(v) == b.keyword_labels(v) for v in a.vertices()
        )

    def test_seed_override_changes_graph(self):
        a, _ = load_dataset("gowalla", scale=0.1)
        b, _ = load_dataset("gowalla", scale=0.1, seed=999)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_invalid_scale_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("dblp", scale=0)

    def test_tiny_scale_clamped_to_generator_minimum(self):
        graph, _ = load_dataset("twitter", scale=0.001)
        assert graph.num_vertices >= PROFILES["twitter"].edges_per_vertex + 2

    def test_every_vertex_has_keywords(self):
        graph, _ = load_dataset("flickr", scale=0.1)
        assert all(graph.keywords_of(v) for v in graph.vertices())

    def test_denser_profile_is_denser(self):
        twitter, _ = load_dataset("twitter", scale=0.25)
        brightkite, _ = load_dataset("brightkite", scale=0.25)
        assert twitter.average_degree() > 2 * brightkite.average_degree()
