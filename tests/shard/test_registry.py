"""Unit tests for the graph registry and graph_id cache isolation."""

from __future__ import annotations

import pytest

from repro.core.errors import ShardError, UnknownGraphError
from repro.core.query import KTGQuery
from repro.datasets.registry import load_dataset
from repro.shard import GraphRegistry
from repro.service import QueryService
from tests.conftest import make_random_attributed_graph


def _query() -> KTGQuery:
    return KTGQuery(
        keywords=("kw000", "kw001"), group_size=2, tenuity=2, top_n=2
    )


def test_load_get_drop_lifecycle():
    graph = make_random_attributed_graph(num_vertices=20, seed=1)
    with GraphRegistry(max_workers=1) as registry:
        entry = registry.load("alpha", graph=graph)
        assert entry.graph_id == "alpha#1"
        assert registry.names() == ["alpha"]
        assert "alpha" in registry
        assert len(registry) == 1
        assert registry.get("alpha") is entry.service
        rows = registry.describe()
        assert rows[0]["graph_id"] == "alpha#1"
        assert rows[0]["vertices"] == graph.num_vertices
        registry.drop("alpha")
        assert registry.names() == []
        with pytest.raises(UnknownGraphError):
            registry.get("alpha")
        with pytest.raises(UnknownGraphError):
            registry.drop("alpha")


def test_load_requires_profile_or_graph_and_a_name():
    with GraphRegistry() as registry:
        with pytest.raises(ShardError):
            registry.load("nameless")
        with pytest.raises(ShardError):
            registry.load("")


def test_reload_bumps_generation_and_swaps_service():
    graph = make_random_attributed_graph(num_vertices=20, seed=1)
    with GraphRegistry(max_workers=1) as registry:
        first = registry.load("alpha", graph=graph)
        second = registry.load("alpha", graph=graph)
        assert second.graph_id == "alpha#2"
        assert registry.get("alpha") is second.service
        assert second.service is not first.service
        # A third incarnation after a drop keeps counting upward, so a
        # dropped-and-reloaded name can never reuse an old graph_id.
        registry.drop("alpha")
        third = registry.load("alpha", graph=graph)
        assert third.graph_id == "alpha#3"


def test_load_from_dataset_profile():
    with GraphRegistry(max_workers=1) as registry:
        entry = registry.load("bk", "brightkite", scale=0.08, seed=0)
        assert entry.profile == "brightkite"
        assert entry.graph.num_vertices > 0
        served = entry.service.submit(_query())
        assert served.result is not None


def test_same_version_graphs_get_distinct_cache_keys():
    """The graph_id regression: two tenants must never share a cache slot.

    Both graphs sit at the same version with the same algorithm spec, so
    before graph_id entered the cache key their canonical queries
    collided — one tenant would be served the other's groups.
    """
    graph_a, _ = load_dataset("brightkite", scale=0.08)
    graph_b, _ = load_dataset("brightkite", scale=0.08)
    assert graph_a.version == graph_b.version
    query = _query()
    with QueryService(graph_a, "KTG-VKC-NLRNL", max_workers=1, graph_id="a#1") as sa:
        with QueryService(graph_b, "KTG-VKC-NLRNL", max_workers=1, graph_id="b#1") as sb:
            assert sa.cache_key(query) != sb.cache_key(query)
            first = sa.submit(query)
            second = sb.submit(query)
            # Identical datasets: same answer, but each from its own solve.
            assert not first.from_cache and not second.from_cache
            assert [g.members for g in first.result.groups] == [
                g.members for g in second.result.groups
            ]
            assert sa.submit(query).from_cache
            assert sb.submit(query).from_cache


def test_registry_tenants_are_cache_isolated():
    with GraphRegistry(max_workers=1, algorithm="KTG-VKC-NLRNL") as registry:
        registry.load("t1", "brightkite", scale=0.08)
        registry.load("t2", "brightkite", scale=0.08)
        query = _query()
        s1, s2 = registry.get("t1"), registry.get("t2")
        assert s1.cache_key(query) != s2.cache_key(query)
        assert not s1.submit(query).from_cache
        assert not s2.submit(query).from_cache


def test_sharded_tenant_matches_plain_tenant():
    with GraphRegistry(max_workers=1, algorithm="KTG-VKC-NLRNL") as registry:
        registry.load("plain", "brightkite", scale=0.08)
        registry.load("sharded", "brightkite", scale=0.08, shards=2)
        query = _query()
        plain = registry.get("plain").submit(query)
        sharded = registry.get("sharded").submit(query)
        assert [g.members for g in plain.result.groups] == [
            g.members for g in sharded.result.groups
        ]
        report = registry.get("sharded").instrument_report()
        assert report["shard"][0]["num_shards"] == 2
        assert report["shard"][0]["built"] is True


def test_mutable_service_rejects_sharding():
    graph = make_random_attributed_graph(num_vertices=16, seed=2)
    with pytest.raises(ValueError):
        QueryService(graph, mutations=True, shards=2)
    with pytest.raises(ValueError):
        QueryService(graph, shards=0)
    with pytest.raises(ValueError):
        QueryService(graph, graph_id="")
