"""Unit tests for the partitioner and the shard-set lifecycle."""

from __future__ import annotations

import glob

import pytest

from repro.core.errors import ShardError
from repro.shard import (
    ShardRouter,
    ShardUnionView,
    build_shard_set,
    partition_vertices,
    propagate_labels,
)
from tests.conftest import make_random_attributed_graph


def _shm_segments() -> set[str]:
    return set(glob.glob("/dev/shm/psm_*"))


def test_label_propagation_is_deterministic():
    graph = make_random_attributed_graph(num_vertices=30, seed=3)
    first = propagate_labels(graph)
    second = propagate_labels(graph)
    assert first == second
    assert len(first) == graph.num_vertices


@pytest.mark.parametrize("num_shards", [1, 2, 3, 4, 7])
def test_partition_covers_disjointly_and_balances(num_shards):
    graph = make_random_attributed_graph(num_vertices=40, seed=11)
    bins = partition_vertices(graph, num_shards)
    assert 1 <= len(bins) <= num_shards
    flat = [v for bin_ in bins for v in bin_]
    assert sorted(flat) == list(range(graph.num_vertices))
    assert len(set(flat)) == len(flat)
    # Communities are split to chunks of at most ceil(n / num_shards)
    # before packing, so no bin can run away with the whole graph.
    target = -(-graph.num_vertices // num_shards)
    assert max(len(bin_) for bin_ in bins) <= 2 * target
    # Determinism: the same graph partitions the same way every time.
    assert partition_vertices(graph, num_shards) == bins


def test_partition_validates_inputs():
    graph = make_random_attributed_graph(num_vertices=10, seed=0)
    with pytest.raises(ShardError):
        partition_vertices(graph, 0)
    with pytest.raises(ShardError):
        build_shard_set(graph, 2, radius=0)
    with pytest.raises(ShardError):
        build_shard_set(object(), 2)  # type: ignore[arg-type]


def test_more_shards_than_vertices_drops_empty_bins():
    graph = make_random_attributed_graph(num_vertices=5, seed=2)
    with build_shard_set(graph, 16) as shard_set:
        assert 1 <= shard_set.num_shards <= 5
        homes = [v for shard in shard_set.shards for v in shard.home]
        assert sorted(homes) == list(range(5))


def test_shards_share_the_global_keyword_table():
    graph = make_random_attributed_graph(num_vertices=24, seed=7)
    with build_shard_set(graph, 3) as shard_set:
        union = ShardUnionView(shard_set.views(), shard_set.shard_map)
        assert sorted(union.keyword_table) == sorted(graph.keyword_table)
        for vertex in graph.vertices():
            assert union.keywords_of(vertex) == graph.keywords_of(vertex)
            assert union.degree(vertex) == graph.degree(vertex)
            assert union.neighbors(vertex) == graph.neighbors(vertex)
        assert union.num_edges == graph.num_edges


def test_share_and_release_are_idempotent():
    baseline = _shm_segments()
    graph = make_random_attributed_graph(num_vertices=20, seed=5)
    shard_set = build_shard_set(graph, 2)
    names = shard_set.share()
    assert len(names) == shard_set.num_shards
    assert shard_set.share() == names  # second share is a no-op
    live = _shm_segments() - baseline
    assert len(live) == shard_set.num_shards
    shard_set.release()
    shard_set.release()  # double release must be safe
    assert _shm_segments() == baseline


def test_context_manager_releases_segments():
    baseline = _shm_segments()
    graph = make_random_attributed_graph(num_vertices=20, seed=5)
    with build_shard_set(graph, 2) as shard_set:
        shard_set.share()
        assert _shm_segments() != baseline
    assert _shm_segments() == baseline


def test_router_backstop_rejects_k_beyond_radius():
    graph = make_random_attributed_graph(num_vertices=16, seed=9)
    with build_shard_set(graph, 2, radius=1) as shard_set:
        union = ShardUnionView(shard_set.views(), shard_set.shard_map)
        router = ShardRouter(union, shard_set.views(), shard_set.shard_map)
        assert router.is_tenuous(0, 0, 1) is False
        with pytest.raises(ShardError):
            router.is_tenuous(0, 1, 2)
        with pytest.raises(ShardError):
            router.within_k(0, 2)


def test_union_view_validates_shard_count():
    graph = make_random_attributed_graph(num_vertices=12, seed=4)
    with build_shard_set(graph, 2) as shard_set:
        with pytest.raises(ShardError):
            ShardUnionView(shard_set.views()[:1], shard_set.shard_map)
