"""QueryService ``distance_engine="bitset"``: equivalence and reuse."""

import pytest

from repro.core.query import KTGQuery
from repro.service import QueryService
from tests.conftest import make_random_attributed_graph


@pytest.fixture(scope="module")
def graph():
    return make_random_attributed_graph(num_vertices=40, seed=5)


@pytest.fixture(scope="module")
def queries(graph):
    labels = sorted(graph.keyword_table)
    return [
        KTGQuery(keywords=tuple(labels[i : i + 3]), group_size=3, tenuity=2, top_n=n)
        for i, n in [(0, 3), (2, 2), (4, 3), (0, 1)]
    ]


def serve_all(service, queries, **kwargs):
    with service:
        return [r.member_sets() for r in service.run_batch(queries, **kwargs)]


class TestValidation:
    def test_bad_engine_rejected(self, graph):
        with pytest.raises(ValueError, match="distance_engine"):
            QueryService(graph, distance_engine="quantum")


class TestEquivalence:
    def test_serial_identical_to_oracle(self, graph, queries):
        base = serve_all(
            QueryService(graph, cache_capacity=0), queries, parallel=False
        )
        fast = serve_all(
            QueryService(graph, cache_capacity=0, distance_engine="bitset"),
            queries,
            parallel=False,
        )
        assert fast == base

    def test_thread_batch_identical(self, graph, queries):
        base = serve_all(
            QueryService(graph, cache_capacity=0), queries, parallel=False
        )
        fast = serve_all(
            QueryService(
                graph,
                cache_capacity=0,
                distance_engine="bitset",
                executor="thread",
                max_workers=4,
            ),
            queries,
        )
        assert fast == base

    def test_per_query_jobs_identical(self, graph, queries):
        base = serve_all(
            QueryService(graph, cache_capacity=0), queries, parallel=False
        )
        fast = serve_all(
            QueryService(
                graph,
                cache_capacity=0,
                distance_engine="bitset",
                jobs=2,
                jobs_executor="inline",
            ),
            queries,
        )
        assert fast == base


class TestKernelReuse:
    def test_ball_cache_survives_across_queries(self, graph, queries):
        """The second same-k query reuses balls built by the first."""
        with QueryService(
            graph, cache_capacity=0, distance_engine="bitset"
        ) as service:
            service.submit(queries[0])
            kernel = service._kernel
            assert kernel is not None
            builds_after_first = kernel.ball_builds
            assert builds_after_first > 0
            service.submit(queries[0])
            assert kernel.ball_builds == builds_after_first
            assert kernel.ball_hits > 0
            # The kernel object itself persists (no rebuild per query).
            assert service._kernel is kernel

    def test_kernel_retired_with_oracle_on_mutation(self, graph, queries):
        with QueryService(
            graph, cache_capacity=0, distance_engine="bitset"
        ) as service:
            service.submit(queries[0])
            stale = service._kernel
            other = next(
                v
                for v in range(1, graph.num_vertices)
                if v not in graph.neighbors(0)
            )
            service.graph.add_edge(0, other)
            try:
                service.submit(queries[0])
                assert service._kernel is not stale
                assert service._kernel.oracle is service._oracle
            finally:
                service.graph.remove_edge(0, other)

    def test_instrument_report_includes_kernel(self, graph, queries):
        with QueryService(
            graph, cache_capacity=0, distance_engine="bitset"
        ) as service:
            service.submit(queries[0])
            report = service.instrument_report()
        kernel = report["kernel"]
        assert kernel["ball_builds"] > 0
        assert kernel["balls_cached"] > 0
        assert set(kernel) == {
            "balls_cached",
            "backend",
            "ball_builds",
            "ball_hits",
            "ball_evictions",
            "mask_filters",
            "vec_sweeps",
            "node_batches",
            "batched_scores",
            "bulk_eliminations",
        }
        assert kernel["backend"] in ("numpy", "python")

    def test_oracle_mode_reports_no_kernel(self, graph, queries):
        with QueryService(graph, cache_capacity=0) as service:
            service.submit(queries[0])
            report = service.instrument_report()
        assert "kernel" not in report


def test_process_batch_identical_once(graph, queries):
    """One real process-pool batch (pool spawn is too slow per-case)."""
    base = serve_all(QueryService(graph, cache_capacity=0), queries, parallel=False)
    fast = serve_all(
        QueryService(
            graph,
            cache_capacity=0,
            distance_engine="bitset",
            executor="process",
            max_workers=2,
        ),
        queries,
    )
    assert fast == base
