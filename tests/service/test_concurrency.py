"""Concurrency coverage for the query service.

The acceptance bar: parallel execution returns identical ``member_sets``
to sequential execution on a fixed workload (exactness preserved under
concurrency), graph mutations invalidate cached answers through the
version counter, and racing callers converge on exactly one lazily
built engine/pool per key (the unsynchronized race used to leak whole
process fleets and their /dev/shm segments).
"""

import glob
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import pytest

import repro.service.service as service_module
from repro.core.query import KTGQuery
from repro.index.bfs import BFSOracle
from repro.index.nl import NLIndex
from repro.service import QueryService
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.runner import AlgorithmSpec
from tests.conftest import make_random_attributed_graph


@pytest.fixture(scope="module")
def graph():
    return make_random_attributed_graph(num_vertices=45, seed=9)


@pytest.fixture(scope="module")
def workload(graph):
    generator = WorkloadGenerator(graph, dataset_name="conc")
    return generator.generate(count=10, keyword_size=4, seed=21)


class TestSequentialParallelParity:
    def test_thread_pool_matches_sequential(self, graph, workload):
        sequential = QueryService(
            graph, "KTG-VKC-NLRNL", cache_capacity=0
        ).run_batch(workload, parallel=False)
        with QueryService(
            graph, "KTG-VKC-NLRNL", max_workers=4, cache_capacity=0
        ) as service:
            parallel = service.run_batch(workload)
        assert [r.member_sets() for r in parallel] == [
            r.member_sets() for r in sequential
        ]
        assert all(r.is_exact for r in parallel)

    def test_process_pool_matches_sequential(self, graph, workload):
        queries = list(workload)[:5]
        sequential = QueryService(
            graph, "KTG-VKC-NLRNL", cache_capacity=0
        ).run_batch(queries, parallel=False)
        with QueryService(
            graph,
            "KTG-VKC-NLRNL",
            max_workers=2,
            executor="process",
            cache_capacity=0,
        ) as service:
            parallel = service.run_batch(queries)
        assert [r.member_sets() for r in parallel] == [
            r.member_sets() for r in sequential
        ]

    def test_bfs_oracle_memo_safe_under_concurrency(self, graph, workload):
        # The BFS memo is the one mutable structure shared by worker
        # threads; hammer it from many threads and cross-check results.
        spec = AlgorithmSpec("KTG-VKC-BFS", "vkc", "bfs")
        sequential = QueryService(graph, spec, cache_capacity=0).run_batch(
            workload, parallel=False
        )
        with QueryService(
            graph, spec, max_workers=8, cache_capacity=0
        ) as service:
            parallel = service.run_batch(list(workload) * 3)
        expected = [r.member_sets() for r in sequential] * 3
        assert [r.member_sets() for r in parallel] == expected

    def test_nl_on_demand_expansion_safe_under_concurrency(self, graph):
        # Deep tenuity probes force on-demand level expansion; run the
        # same deep probes from many threads and compare to BFS truth.
        nl = NLIndex(graph, depth=1)
        bfs = BFSOracle(graph)
        pairs = [(u, v) for u in range(0, 40, 3) for v in range(1, 40, 7)]
        outcomes = {}
        lock = threading.Lock()

        def probe(worker):
            local = []
            for u, v in pairs:
                local.append(nl.is_tenuous(u, v, 4))
            with lock:
                outcomes[worker] = local

        threads = [threading.Thread(target=probe, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        truth = [bfs.is_tenuous(u, v, 4) for u, v in pairs]
        for worker, local in outcomes.items():
            assert local == truth, f"worker {worker} diverged"


class TestCacheInvalidation:
    def test_add_edge_invalidates_cached_answers(self):
        graph = make_random_attributed_graph(num_vertices=40, seed=13)
        labels = tuple(sorted(graph.keyword_table)[:4])
        query = KTGQuery(keywords=labels, group_size=3, tenuity=2, top_n=3)
        service = QueryService(graph, "KTG-VKC-NLRNL")

        first = service.submit(query)
        assert service.submit(query).from_cache

        non_edge = next(
            (u, v)
            for u in graph.vertices()
            for v in graph.vertices()
            if u < v and not graph.has_edge(u, v)
        )
        graph.add_edge(*non_edge)

        after = service.submit(query)
        assert not after.from_cache  # version changed -> key changed
        # The answer is recomputed against the mutated graph with a
        # freshly rebuilt oracle; it must match a from-scratch service.
        fresh = QueryService(graph, "KTG-VKC-NLRNL").submit(query)
        assert after.member_sets() == fresh.member_sets()
        assert first.is_exact and after.is_exact

    def test_mutation_recycles_process_pool(self):
        graph = make_random_attributed_graph(num_vertices=30, seed=17)
        labels = tuple(sorted(graph.keyword_table)[:3])
        queries = [
            KTGQuery(keywords=labels, group_size=2, tenuity=t, top_n=2)
            for t in (1, 2)
        ]
        with QueryService(
            graph, "KTG-VKC-NLRNL", max_workers=2, executor="process"
        ) as service:
            before = service.run_batch(queries)
            non_edge = next(
                (u, v)
                for u in graph.vertices()
                for v in graph.vertices()
                if u < v and not graph.has_edge(u, v)
            )
            graph.add_edge(*non_edge)
            after = service.run_batch(queries)
            fresh = QueryService(graph, "KTG-VKC-NLRNL").run_batch(
                queries, parallel=False
            )
            assert [r.member_sets() for r in after] == [
                r.member_sets() for r in fresh
            ]
        assert all(r.is_exact for r in before)


class TestConcurrentSubmission:
    def test_racing_submits_agree(self, graph, workload):
        # Many client threads submitting overlapping queries against one
        # service: every answer must equal the sequential ground truth.
        truth = {
            id(q): r.member_sets()
            for q, r in zip(
                workload,
                QueryService(graph, "KTG-VKC-NLRNL", cache_capacity=0).run_batch(
                    workload, parallel=False
                ),
            )
        }
        service = QueryService(graph, "KTG-VKC-NLRNL")
        failures = []

        def client(worker):
            for q in workload:
                served = service.submit(q)
                if served.member_sets() != truth[id(q)]:
                    failures.append((worker, q))

        threads = [threading.Thread(target=client, args=(i,)) for i in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        stats = service.stats()
        assert stats.queries_served == 5 * len(workload)
        assert stats.cache_hits > 0  # repeats must be amortised


class TestLazyInitRaces:
    """Racing callers must converge on one engine/pool per key.

    The lazy initializers used to be unsynchronized: two threads could
    both observe "no engine yet", both build one, and the loser's fleet
    leaked (worker threads or processes, and with process fleets the
    /dev/shm snapshot segments too).  The constructors are counted via
    monkeypatched stand-ins so the tests assert *creations*, not just
    the final dict size.
    """

    def _hammer(self, n_threads, work):
        barrier = threading.Barrier(n_threads)
        errors = []

        def runner(worker):
            barrier.wait()
            try:
                work(worker)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append((worker, exc))

        threads = [
            threading.Thread(target=runner, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_racing_jobs_submits_build_exactly_one_engine(self, monkeypatch):
        graph = make_random_attributed_graph(num_vertices=30, seed=5)
        labels = tuple(sorted(graph.keyword_table)[:3])
        query = KTGQuery(keywords=labels, group_size=2, tenuity=2, top_n=2)

        real_engine = service_module.ParallelBranchAndBoundSolver
        built = []

        def counting_engine(*args, **kwargs):
            engine = real_engine(*args, **kwargs)
            built.append(engine)
            return engine

        monkeypatch.setattr(
            service_module, "ParallelBranchAndBoundSolver", counting_engine
        )
        with QueryService(
            graph, "KTG-VKC-NLRNL", jobs_executor="thread", cache_capacity=0
        ) as service:
            self._hammer(8, lambda worker: service.submit(query, jobs=2))
            assert len(built) == 1  # exactly one construction, no leaked loser
            assert set(service._engines) == {
                (service.graph_id, "jobs", 2, graph.version)
            }

    def test_distinct_fleet_sizes_get_distinct_engines(self, monkeypatch):
        graph = make_random_attributed_graph(num_vertices=30, seed=5)
        labels = tuple(sorted(graph.keyword_table)[:3])
        query = KTGQuery(keywords=labels, group_size=2, tenuity=2, top_n=2)

        real_engine = service_module.ParallelBranchAndBoundSolver
        built = []

        def counting_engine(*args, **kwargs):
            engine = real_engine(*args, **kwargs)
            built.append(engine)
            return engine

        monkeypatch.setattr(
            service_module, "ParallelBranchAndBoundSolver", counting_engine
        )
        with QueryService(
            graph, "KTG-VKC-NLRNL", jobs_executor="thread", cache_capacity=0
        ) as service:
            # Half the hammer asks for a 2-wide fleet, half for 3-wide:
            # exactly one engine per (jobs, version) key may be built.
            self._hammer(
                8, lambda worker: service.submit(query, jobs=2 + worker % 2)
            )
            assert len(built) == 2
            assert set(service._engines) == {
                (service.graph_id, "jobs", 2, graph.version),
                (service.graph_id, "jobs", 3, graph.version),
            }

    def test_racing_thread_batches_share_one_pool(self, monkeypatch):
        graph = make_random_attributed_graph(num_vertices=30, seed=6)
        labels = tuple(sorted(graph.keyword_table)[:3])
        queries = [
            KTGQuery(keywords=labels, group_size=2, tenuity=t, top_n=2)
            for t in (1, 2)
        ]
        created = []

        class CountingThreadPool(ThreadPoolExecutor):
            def __init__(self, *args, **kwargs):
                created.append(self)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(
            service_module, "ThreadPoolExecutor", CountingThreadPool
        )
        with QueryService(graph, "KTG-VKC-NLRNL", max_workers=2) as service:
            self._hammer(8, lambda worker: service.run_batch(queries))
            assert len(created) == 1

    def test_racing_process_batches_share_one_pool_and_leak_no_shm(
        self, monkeypatch
    ):
        # The high-stakes variant: a leaked loser pool would hold worker
        # processes and (with the CSR layout) /dev/shm snapshot segments.
        baseline_shm = set(glob.glob("/dev/shm/psm_*"))
        graph = make_random_attributed_graph(num_vertices=25, seed=7)
        labels = tuple(sorted(graph.keyword_table)[:3])
        queries = [
            KTGQuery(keywords=labels, group_size=2, tenuity=t, top_n=2)
            for t in (1, 2)
        ]
        created = []

        class CountingProcessPool(ProcessPoolExecutor):
            def __init__(self, *args, **kwargs):
                created.append(self)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(
            service_module, "ProcessPoolExecutor", CountingProcessPool
        )
        with QueryService(
            graph,
            "KTG-VKC-NLRNL",
            max_workers=2,
            executor="process",
            graph_layout="csr",
            cache_capacity=0,
        ) as service:
            self._hammer(4, lambda worker: service.run_batch(queries))
            assert len(created) == 1
        leaked = set(glob.glob("/dev/shm/psm_*")) - baseline_shm
        assert not leaked, f"leaked /dev/shm segments: {sorted(leaked)}"

    def test_racing_process_fleet_submits_leak_no_shm(self, monkeypatch):
        # Process fleets with the CSR layout attach workers to a
        # shared-memory graph snapshot; a duplicate engine built by a
        # race loser used to orphan that segment.  One engine may be
        # built, and closing the service must return /dev/shm to its
        # baseline.
        baseline_shm = set(glob.glob("/dev/shm/psm_*"))
        graph = make_random_attributed_graph(num_vertices=25, seed=8)
        labels = tuple(sorted(graph.keyword_table)[:3])
        query = KTGQuery(keywords=labels, group_size=2, tenuity=2, top_n=2)

        real_engine = service_module.ParallelBranchAndBoundSolver
        built = []

        def counting_engine(*args, **kwargs):
            engine = real_engine(*args, **kwargs)
            built.append(engine)
            return engine

        monkeypatch.setattr(
            service_module, "ParallelBranchAndBoundSolver", counting_engine
        )
        with QueryService(
            graph,
            "KTG-VKC-NLRNL",
            jobs_executor="process",
            graph_layout="csr",
            cache_capacity=0,
        ) as service:
            self._hammer(4, lambda worker: service.submit(query, jobs=2))
            assert len(built) == 1
            assert set(service._engines) == {
                (service.graph_id, "jobs", 2, graph.version)
            }
        leaked = set(glob.glob("/dev/shm/psm_*")) - baseline_shm
        assert not leaked, f"leaked /dev/shm segments: {sorted(leaked)}"


class TestMixedInterleavings:
    """Per-query fleets and batch pools interleaving from many threads."""

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_submit_jobs_and_run_batch_interleave(
        self, graph, workload, executor
    ):
        queries = list(workload)[:5]
        truth = [
            r.member_sets()
            for r in QueryService(
                graph, "KTG-VKC-NLRNL", cache_capacity=0
            ).run_batch(queries, parallel=False)
        ]
        failures = []
        # cache_capacity=0 keeps every path honest: each call really
        # solves, so the batch pool and the jobs fleet are both built
        # and exercised no matter how the threads interleave.
        with QueryService(
            graph,
            "KTG-VKC-NLRNL",
            max_workers=2,
            executor=executor,
            jobs_executor="thread",
            cache_capacity=0,
        ) as service:
            barrier = threading.Barrier(4)

            def submitter(worker):
                barrier.wait()
                for position, query in enumerate(queries):
                    served = service.submit(query, jobs=2)
                    if served.member_sets() != truth[position]:
                        failures.append(("submit", worker, position))

            def batcher(worker):
                barrier.wait()
                results = service.run_batch(queries)
                for position, served in enumerate(results):
                    if served.member_sets() != truth[position]:
                        failures.append(("batch", worker, position))

            threads = [
                threading.Thread(target=submitter, args=(0,)),
                threading.Thread(target=submitter, args=(1,)),
                threading.Thread(target=batcher, args=(2,)),
                threading.Thread(target=batcher, args=(3,)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures
            # Both lazy layers were exercised: the jobs fleet registry
            # holds exactly one engine, and the batch pool exists.
            assert set(service._engines) == {
                (service.graph_id, "jobs", 2, graph.version)
            }
            assert service._pool is not None
