"""QueryService instrumentation: live registry vs the null default."""

import pytest

from repro.core.query import KTGQuery
from repro.obs.instruments import NULL_REGISTRY, InstrumentRegistry
from repro.service import QueryService
from tests.conftest import make_random_attributed_graph


@pytest.fixture(scope="module")
def graph():
    return make_random_attributed_graph(num_vertices=40, seed=5)


@pytest.fixture(scope="module")
def query(graph):
    labels = tuple(sorted(graph.keyword_table)[:4])
    return KTGQuery(keywords=labels, group_size=3, tenuity=2, top_n=3)


class TestLiveRegistry:
    def test_counters_track_hits_and_misses(self, graph, query):
        registry = InstrumentRegistry()
        with QueryService(graph, "KTG-VKC-NLRNL", instruments=registry) as service:
            service.submit(query)
            service.submit(query)
        counters = registry.report()["counters"]
        assert counters["service.cache_misses"] == 1
        assert counters["service.cache_hits"] == 1

    def test_timers_observe_each_phase(self, graph, query):
        registry = InstrumentRegistry()
        with QueryService(graph, "KTG-VKC-NLRNL", instruments=registry) as service:
            service.submit(query)
            service.submit(query)
        timers = registry.report()["timers"]
        assert timers["service.cache_lookup_ms"]["count"] == 2
        assert timers["service.solve_ms"]["count"] == 1  # miss only
        assert timers["service.serve_ms"]["count"] == 2
        assert timers["service.serve_ms"]["total_ms"] >= timers["service.solve_ms"]["total_ms"]

    def test_batch_path_is_instrumented(self, graph, query):
        registry = InstrumentRegistry()
        with QueryService(graph, "KTG-VKC-NLRNL", instruments=registry) as service:
            service.run_batch([query, query, query])
        counters = registry.report()["counters"]
        assert counters["service.cache_misses"] == 1
        assert counters["service.cache_hits"] == 2

    def test_instrument_report_structure(self, graph, query):
        registry = InstrumentRegistry()
        with QueryService(graph, "KTG-VKC-NLRNL", instruments=registry) as service:
            service.submit(query)
            report = service.instrument_report()
        assert report["service"]["queries_served"] == 1
        cache = report["cache"]
        assert cache["lookups"] == cache["hits"] + cache["misses"]
        assert "oracle" in report
        assert report["instruments"]["counters"]["service.cache_misses"] == 1


class TestNullDefault:
    def test_default_sink_collects_nothing(self, graph, query):
        with QueryService(graph, "KTG-VKC-NLRNL") as service:
            service.submit(query)
            report = service.instrument_report()
        assert "instruments" not in report
        assert NULL_REGISTRY.report() == {"counters": {}, "timers": {}}

    def test_service_stats_unaffected_by_sink_choice(self, graph, query):
        with QueryService(graph, "KTG-VKC-NLRNL") as null_service:
            null_service.submit(query)
            null_stats = null_service.stats()
        with QueryService(
            graph, "KTG-VKC-NLRNL", instruments=InstrumentRegistry()
        ) as live_service:
            live_service.submit(query)
            live_stats = live_service.stats()
        assert null_stats.cache_misses == live_stats.cache_misses == 1
