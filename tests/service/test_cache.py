"""Unit tests for the service result cache and query canonicalisation."""

import pytest

from repro.core.query import DKTGQuery, KTGQuery
from repro.service import ResultCache, canonical_query_key


class TestCanonicalQueryKey:
    def test_keyword_order_and_duplicates_erased(self):
        a = KTGQuery(keywords=("x", "y"), group_size=3, tenuity=2, top_n=3)
        b = KTGQuery(keywords=("y", "x", "y"), group_size=3, tenuity=2, top_n=3)
        assert canonical_query_key(a) == canonical_query_key(b)

    def test_answer_affecting_fields_distinguish(self):
        base = KTGQuery(keywords=("x",), group_size=3, tenuity=2, top_n=3)
        for changed in (
            base.with_(group_size=4),
            base.with_(tenuity=1),
            base.with_(top_n=1),
            base.with_(keywords=("x", "z")),
            base.with_(excluded_anchors=(7,)),
        ):
            assert canonical_query_key(base) != canonical_query_key(changed)

    def test_anchor_order_erased(self):
        a = KTGQuery(keywords=("x",), excluded_anchors=(3, 1))
        b = KTGQuery(keywords=("x",), excluded_anchors=(1, 3))
        assert canonical_query_key(a) == canonical_query_key(b)

    def test_dktg_distinct_from_ktg(self):
        ktg = KTGQuery(keywords=("x",), group_size=3, tenuity=2, top_n=3)
        dktg = DKTGQuery(keywords=("x",), group_size=3, tenuity=2, top_n=3)
        assert canonical_query_key(ktg) != canonical_query_key(dktg)

    def test_gamma_distinguishes_dktg(self):
        a = DKTGQuery(keywords=("x",), gamma=0.5)
        b = DKTGQuery(keywords=("x",), gamma=0.9)
        assert canonical_query_key(a) != canonical_query_key(b)


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get("k") is None
        cache.put("k", "value")
        assert cache.get("k") == "value"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_overwrite_does_not_evict(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.stats.evictions == 0
        assert cache.get("a") == 10

    def test_zero_capacity_disables_storage(self):
        cache = ResultCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(-1)

    def test_none_not_cacheable(self):
        cache = ResultCache(2)
        with pytest.raises(ValueError):
            cache.put("a", None)

    def test_clear_keeps_counters(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert cache.get("a") is None
        assert cache.stats.hits == 1
        assert len(cache) == 0

    def test_snapshot_is_independent(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.get("a")
        snap = cache.stats.snapshot()
        cache.get("a")
        assert snap.hits == 1
        assert cache.stats.hits == 2
