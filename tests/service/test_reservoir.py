"""Unit tests for the bounded latency reservoir (Algorithm R)."""

import random

import pytest

from repro.service.reservoir import DEFAULT_RESERVOIR_CAPACITY, LatencyReservoir
from repro.workloads.runner import percentile_nearest_rank


class TestBelowCapacity:
    def test_sample_is_exact_until_capacity(self):
        reservoir = LatencyReservoir(capacity=8)
        values = [5.0, 1.0, 3.0, 2.0]
        for value in values:
            reservoir.observe(value)
        assert reservoir.count == 4
        assert reservoir.sample_size == 4
        assert reservoir.sorted_sample() == sorted(values)
        assert reservoir.mean == pytest.approx(sum(values) / 4)

    def test_empty_reservoir(self):
        reservoir = LatencyReservoir(capacity=4)
        assert reservoir.count == 0
        assert reservoir.mean == 0.0
        assert reservoir.sorted_sample() == []
        assert len(reservoir) == 0


class TestBeyondCapacity:
    def test_count_and_mean_stay_exact(self):
        reservoir = LatencyReservoir(capacity=16)
        stream = [float(i) for i in range(1, 1001)]
        for value in stream:
            reservoir.observe(value)
        assert reservoir.count == 1000
        assert reservoir.sample_size == 16  # bounded memory
        assert reservoir.mean == pytest.approx(sum(stream) / 1000)
        assert reservoir.total == pytest.approx(sum(stream))

    def test_sample_values_come_from_the_stream(self):
        reservoir = LatencyReservoir(capacity=8)
        stream = {float(i) * 0.5 for i in range(200)}
        for value in stream:
            reservoir.observe(value)
        assert set(reservoir.sorted_sample()) <= stream

    def test_seeded_runs_are_deterministic(self):
        first = LatencyReservoir(capacity=32)
        second = LatencyReservoir(capacity=32)
        stream = [random.Random(7).uniform(0, 100) for _ in range(500)]
        for value in stream:
            first.observe(value)
            second.observe(value)
        assert first.sorted_sample() == second.sorted_sample()

    def test_percentile_estimate_converges(self):
        # Uniform stream 0..9999: the p50 sample estimate must land
        # near 5000 with the default 4096-slot reservoir.
        reservoir = LatencyReservoir()
        shuffled = list(range(10_000))
        random.Random(3).shuffle(shuffled)
        for value in shuffled:
            reservoir.observe(float(value))
        assert reservoir.sample_size == DEFAULT_RESERVOIR_CAPACITY
        p50 = percentile_nearest_rank(reservoir.sorted_sample(), 0.50)
        assert 4500 <= p50 <= 5500
        p99 = percentile_nearest_rank(reservoir.sorted_sample(), 0.99)
        assert 9700 <= p99 <= 10_000


class TestValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LatencyReservoir(capacity=0)

    def test_repr_mentions_state(self):
        reservoir = LatencyReservoir(capacity=2)
        reservoir.observe(1.0)
        assert "count=1" in repr(reservoir)
