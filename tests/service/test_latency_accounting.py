"""Latency-accounting semantics: queue wait is serve latency.

``_run_batch_processes`` used to stamp ``latency_ms`` with the
worker-side solve time alone, hiding pool queue wait from every serving
percentile.  These tests pin the fixed semantics with a deliberately
slow fake solver behind a single-worker pool: tasks queue behind each
other, so submission-to-completion wall time must grow linearly while
the pure solve timer stays flat.
"""

import time
from concurrent.futures import ThreadPoolExecutor
from types import SimpleNamespace

import pytest

import repro.service.service as service_module
from repro.core.query import KTGQuery
from repro.obs.instruments import InstrumentRegistry
from repro.service import QueryService
from tests.conftest import make_random_attributed_graph

SOLVE_S = 0.05


def fake_result():
    return SimpleNamespace(
        stats=SimpleNamespace(budget_exhausted=False), groups=()
    )


@pytest.fixture
def service_with_slow_workers(monkeypatch):
    """A process-executor service whose pool is a 1-thread stand-in
    running a sleeping fake solve, so queue wait is deterministic."""
    graph = make_random_attributed_graph(num_vertices=20, seed=3)
    registry = InstrumentRegistry()
    service = QueryService(
        graph,
        "KTG-VKC-NLRNL",
        executor="process",
        max_workers=2,
        cache_capacity=0,
        instruments=registry,
    )
    stub_pool = ThreadPoolExecutor(max_workers=1)

    def slow_solve(query, time_budget, node_budget):
        time.sleep(SOLVE_S)
        return fake_result(), SOLVE_S * 1000.0

    # _run_batch_processes resolves both names at call time: the module
    # global does the solving and the bound pool getter hands out the
    # single-lane stand-in.
    monkeypatch.setattr(service_module, "_process_solve", slow_solve)
    monkeypatch.setattr(service, "_process_pool", lambda: stub_pool)
    try:
        yield service, registry, graph
    finally:
        stub_pool.shutdown(wait=True)
        service.close()


class TestQueueWaitAccounting:
    def test_serve_latency_includes_queue_wait(self, service_with_slow_workers):
        service, registry, graph = service_with_slow_workers
        labels = tuple(sorted(graph.keyword_table)[:3])
        queries = [
            KTGQuery(keywords=labels, group_size=2, tenuity=t, top_n=1)
            for t in (1, 2, 3)
        ]
        results = service.run_batch(queries)

        # The single-lane pool serializes the three 50ms solves, so the
        # three submission-to-completion latencies must be staircased:
        # roughly 1x, 2x and 3x the solve time.
        latencies = sorted(r.latency_ms for r in results)
        assert latencies[0] >= SOLVE_S * 1000.0 * 0.9
        assert latencies[1] >= SOLVE_S * 2 * 1000.0 * 0.9
        assert latencies[2] >= SOLVE_S * 3 * 1000.0 * 0.9

        # The pure solve timer keeps the worker-side cost: every
        # observation is the flat fake solve time, no queue wait.
        solve_timer = registry.timer("service.solve_ms")
        assert solve_timer.count == 3
        assert solve_timer.max_ms == pytest.approx(SOLVE_S * 1000.0)

        # The gap between the two *is* the queueing delay the client saw.
        serve_timer = registry.timer("service.serve_ms")
        assert serve_timer.total_ms > solve_timer.total_ms * 1.5

    def test_stats_percentiles_see_the_queue_wait(self, service_with_slow_workers):
        service, _, graph = service_with_slow_workers
        labels = tuple(sorted(graph.keyword_table)[:3])
        queries = [
            KTGQuery(keywords=labels, group_size=2, tenuity=t, top_n=1)
            for t in (1, 2, 3, 4)
        ]
        service.run_batch(queries)
        stats = service.stats()
        assert stats.queries_served == 4
        # Worst-case latency (last in the queue) is ~4 solves deep; the
        # old accounting would have reported ~SOLVE_S for every query.
        assert stats.p99_ms >= SOLVE_S * 3 * 1000.0 * 0.9
        assert stats.mean_ms >= SOLVE_S * 1000.0 * 1.2
