"""Unit tests for QueryService serving semantics (single-threaded paths).

Concurrency behaviour (thread/process parity, invalidation under
mutation) lives in ``test_concurrency.py``.
"""

import pytest

from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.dktg import DKTGResult
from repro.core.query import DKTGQuery, KTGQuery
from repro.service import QueryService, ServiceResult
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.runner import ALGORITHMS, ExperimentRunner
from tests.conftest import make_random_attributed_graph


@pytest.fixture(scope="module")
def graph():
    return make_random_attributed_graph(num_vertices=40, seed=5)


@pytest.fixture(scope="module")
def query(graph):
    labels = tuple(sorted(graph.keyword_table)[:4])
    return KTGQuery(keywords=labels, group_size=3, tenuity=2, top_n=3)


class TestValidation:
    def test_bad_worker_count_rejected(self, graph):
        with pytest.raises(ValueError):
            QueryService(graph, max_workers=0)

    def test_bad_executor_rejected(self, graph):
        with pytest.raises(ValueError):
            QueryService(graph, executor="fibers")


class TestSubmit:
    def test_miss_then_hit(self, graph, query):
        service = QueryService(graph, "KTG-VKC-NLRNL")
        first = service.submit(query)
        assert not first.from_cache
        assert first.is_exact and not first.degraded
        second = service.submit(query)
        assert second.from_cache
        assert second.member_sets() == first.member_sets()
        assert second.result is first.result  # the cached object itself

    def test_matches_direct_solver(self, graph, query):
        service = QueryService(graph, "KTG-VKC-NLRNL")
        served = service.submit(query)
        direct = BranchAndBoundSolver(
            graph, oracle=service._ensure_oracle()
        ).solve(query)
        assert served.member_sets() == direct.member_sets()

    def test_canonically_equal_queries_share_cache_line(self, graph, query):
        service = QueryService(graph, "KTG-VKC-NLRNL")
        service.submit(query)
        shuffled = query.with_(keywords=tuple(reversed(query.keywords)))
        assert service.submit(shuffled).from_cache

    def test_diversified_spec_lifts_plain_queries(self, graph, query):
        service = QueryService(graph, "DKTG-GREEDY")
        served = service.submit(query)
        assert isinstance(served.result, DKTGResult)
        assert isinstance(served.query, DKTGQuery)
        # The lifted query hits the same cache line as an explicit DKTG.
        explicit = DKTGQuery(
            keywords=query.keywords,
            group_size=query.group_size,
            tenuity=query.tenuity,
            top_n=query.top_n,
        )
        assert service.submit(explicit).from_cache


class TestGracefulDegradation:
    def test_degraded_answers_flagged_and_uncached(self, graph, query):
        service = QueryService(graph, "KTG-VKC-NLRNL", node_budget=5)
        served = service.submit(query)
        assert served.degraded and not served.is_exact
        # Degraded answers must not be served to later callers.
        again = service.submit(query)
        assert not again.from_cache
        assert service.stats().degraded_answers == 2

    def test_per_call_budget_overrides_default(self, graph, query):
        service = QueryService(graph, "KTG-VKC-NLRNL", node_budget=5)
        exact = service.submit(query, node_budget=10_000_000)
        assert exact.is_exact

    def test_unbudgeted_service_is_exact(self, graph, query):
        service = QueryService(graph, "KTG-VKC-NLRNL")
        assert service.submit(query).is_exact

    def test_degraded_dktg_propagates_from_inner_rounds(self, graph, query):
        service = QueryService(graph, "DKTG-GREEDY", node_budget=5)
        served = service.submit(query)
        assert served.degraded


class TestStats:
    def test_counters_accumulate(self, graph, query):
        service = QueryService(graph, "KTG-VKC-NLRNL")
        service.submit(query)
        service.submit(query)
        service.submit(query.with_(tenuity=1))
        stats = service.stats()
        assert stats.queries_served == 3
        assert stats.cache_hits == 1
        assert stats.cache_misses == 2
        assert stats.cache_hit_rate == pytest.approx(1 / 3)
        assert stats.degraded_answers == 0
        assert stats.p50_ms <= stats.p95_ms <= stats.p99_ms
        assert stats.mean_ms > 0

    def test_as_dict_is_flat(self, graph, query):
        service = QueryService(graph, "KTG-VKC-NLRNL")
        service.submit(query)
        row = service.stats().as_dict()
        assert set(row) == {
            "queries_served",
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "cache_hit_rate",
            "degraded_answers",
            "mean_ms",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "latency_sample_size",
        }
        assert all(isinstance(value, (int, float)) for value in row.values())

    def test_empty_service_stats(self, graph):
        stats = QueryService(graph).stats()
        assert stats.queries_served == 0
        assert stats.mean_ms == 0.0
        assert stats.cache_hit_rate == 0.0


class TestCacheCapacity:
    def test_disabled_cache_never_hits(self, graph, query):
        service = QueryService(graph, "KTG-VKC-NLRNL", cache_capacity=0)
        service.submit(query)
        assert not service.submit(query).from_cache

    def test_eviction_counted(self, graph, query):
        service = QueryService(graph, "KTG-VKC-NLRNL", cache_capacity=1)
        service.submit(query)
        service.submit(query.with_(tenuity=1))  # evicts the first entry
        assert service.stats().cache_evictions == 1
        assert not service.submit(query).from_cache


class TestRunnerIntegration:
    @pytest.fixture(scope="class")
    def workload(self, graph):
        generator = WorkloadGenerator(graph, dataset_name="svc")
        return generator.generate(count=6, keyword_size=3, seed=3)

    def test_run_batched_matches_run(self, graph, workload):
        runner = ExperimentRunner(graph, "svc")
        sequential = runner.run("KTG-VKC-NLRNL", workload)
        results = []
        batched = runner.run_batched(
            "KTG-VKC-NLRNL",
            workload,
            max_workers=3,
            result_hook=results.append,
        )
        assert batched.algorithm == sequential.algorithm
        assert batched.query_count == sequential.query_count
        assert len(results) == len(workload)
        assert [r.member_sets() for r in results] == [
            BranchAndBoundSolver(
                graph, oracle=runner.oracle_for(ALGORITHMS["KTG-VKC-NLRNL"])
            ).solve(q).member_sets()
            for q in workload
        ]

    def test_run_batched_report_shape(self, graph, workload):
        report = ExperimentRunner(graph, "svc").run_batched(
            "KTG-VKC-NLRNL", workload, max_workers=2
        )
        assert report.query_count == len(workload)
        assert len(report.latencies_ms) == len(workload)
        assert report.total_nodes_expanded > 0


class TestServiceResult:
    def test_member_sets_best_first(self, graph, query):
        served = QueryService(graph, "KTG-VKC-NLRNL").submit(query)
        assert isinstance(served, ServiceResult)
        coverages = [group.coverage for group in served.result.groups]
        assert coverages == sorted(coverages, reverse=True)
