"""QueryService parallel serving: per-query ``jobs`` plumbing.

Engine-level correctness is covered by ``tests/core/test_parallel.py``
and the property sweep; this module checks the *service* surface —
answers match serial, engines are cached per ``(jobs, graph.version)``,
stale engines retire on mutation, and ``close()`` tears them down.
"""

import pytest

from repro.core.parallel import ParallelKTGResult
from repro.core.query import DKTGQuery, KTGQuery
from repro.service import QueryService
from tests.conftest import make_random_attributed_graph


@pytest.fixture(scope="module")
def graph():
    return make_random_attributed_graph(num_vertices=40, seed=5)


@pytest.fixture(scope="module")
def query(graph):
    labels = tuple(sorted(graph.keyword_table)[:4])
    return KTGQuery(keywords=labels, group_size=3, tenuity=2, top_n=3)


def test_jobs_validation(graph):
    with pytest.raises(ValueError):
        QueryService(graph, jobs=0)
    with pytest.raises(ValueError):
        QueryService(graph, jobs_executor="fibers")


def test_parallel_service_matches_serial(graph, query):
    with QueryService(graph, "KTG-VKC-DEG-NLRNL", cache_capacity=0) as serial:
        expected = serial.submit(query)
    with QueryService(
        graph, "KTG-VKC-DEG-NLRNL", cache_capacity=0, jobs=2
    ) as service:
        answer = service.submit(query)
    assert answer.member_sets() == expected.member_sets()
    assert isinstance(answer.result, ParallelKTGResult)
    assert answer.result.jobs == 2


def test_per_call_jobs_overrides_service_default(graph, query):
    with QueryService(graph, "KTG-VKC-NLRNL", cache_capacity=0) as service:
        serial = service.submit(query)
        boosted = service.submit(query, jobs=3)
    assert isinstance(boosted.result, ParallelKTGResult)
    assert boosted.result.jobs == 3
    assert not isinstance(serial.result, ParallelKTGResult)
    assert boosted.member_sets() == serial.member_sets()


def test_cache_hit_skips_parallel_engine(graph, query):
    with QueryService(graph, "KTG-VKC-NLRNL", jobs=2) as service:
        first = service.submit(query)
        second = service.submit(query)
    assert not first.from_cache
    assert second.from_cache
    assert second.member_sets() == first.member_sets()


def test_engines_cached_per_jobs_and_retired_on_mutation(query):
    local = make_random_attributed_graph(num_vertices=30, seed=7)
    labels = tuple(sorted(local.keyword_table)[:3])
    q = KTGQuery(keywords=labels, group_size=3, tenuity=2, top_n=2)
    service = QueryService(local, "KTG-VKC-NLRNL", cache_capacity=0)
    try:
        service.submit(q, jobs=2)
        service.submit(q, jobs=2)
        service.submit(q, jobs=3)
        assert len(service._engines) == 2
        old_keys = set(service._engines)
        if local.has_edge(0, 1):
            local.remove_edge(0, 1)
        else:
            local.add_edge(0, 1)
        service.submit(q, jobs=2)
        assert all(key not in service._engines for key in old_keys)
        assert len(service._engines) == 1
    finally:
        service.close()
    assert service._engines == {}


def test_batch_with_jobs_serves_sequentially_and_matches(graph, query):
    other = KTGQuery(
        keywords=query.keywords[:3], group_size=3, tenuity=1, top_n=2
    )
    with QueryService(graph, "KTG-VKC-NLRNL", cache_capacity=0) as service:
        expected = [r.member_sets() for r in service.run_batch([query, other])]
        got = service.run_batch([query, other], jobs=2)
    assert [r.member_sets() for r in got] == expected
    assert all(isinstance(r.result, ParallelKTGResult) for r in got)


def test_diversified_spec_falls_back_to_serial(graph, query):
    dquery = DKTGQuery(
        keywords=query.keywords,
        group_size=3,
        tenuity=2,
        top_n=2,
        gamma=0.5,
    )
    with QueryService(graph, "DKTG-GREEDY", jobs=2) as service:
        answer = service.submit(dquery)
    # Diversified serving stays on the serial path (no parallel engine).
    assert not isinstance(answer.result, ParallelKTGResult)
    assert service._engines == {}
