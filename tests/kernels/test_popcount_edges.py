"""Edge cases of the popcount / mask-packing kernels.

The batched solver core leans on these primitives for every score and
bound, so the edges — empty buffers, lengths that are not a multiple of
8, buffer types, too-narrow widths — are pinned here for BOTH backends:
numpy presence must change speed, never values or error behaviour.
"""

from __future__ import annotations

import pytest

from repro.kernels import vec

needs_numpy = pytest.mark.skipif(
    not vec.numpy_available(), reason="numpy not importable"
)

BACKENDS = ["numpy", "python"] if vec.numpy_available() else ["python"]


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    """Run the decorated test once per available backend."""
    if request.param == "python":
        monkeypatch.setattr(vec, "_np", None)
    return request.param


class TestPopcountBytes:
    def test_empty_buffers(self, backend):
        assert vec.popcount_bytes(b"") == 0
        assert vec.popcount_bytes(bytearray()) == 0
        assert vec.popcount_bytes(memoryview(b"")) == 0

    def test_non_multiple_of_eight_lengths(self, backend):
        for length in range(1, 18):
            data = bytes((7 * i + 3) % 256 for i in range(length))
            expected = sum(b.bit_count() for b in data)
            assert vec.popcount_bytes(data) == expected, length

    def test_buffer_types_agree(self, backend):
        data = bytes(range(256)) * 5 + b"\xff"
        expected = sum(b.bit_count() for b in data)
        assert vec.popcount_bytes(data) == expected
        assert vec.popcount_bytes(bytearray(data)) == expected
        assert vec.popcount_bytes(memoryview(data)) == expected

    def test_all_ones_and_zeros(self, backend):
        assert vec.popcount_bytes(b"\x00" * 129) == 0
        assert vec.popcount_bytes(b"\xff" * 129) == 129 * 8

    def test_python_chunk_boundaries(self, monkeypatch):
        # Exactly one chunk, one byte short, one byte over.
        monkeypatch.setattr(vec, "_np", None)
        for length in (
            vec._POPCOUNT_CHUNK - 1,
            vec._POPCOUNT_CHUNK,
            vec._POPCOUNT_CHUNK + 1,
        ):
            data = b"\x81" * length  # 2 bits per byte
            assert vec.popcount_bytes(data) == 2 * length


class TestBulkPopcount:
    MASKS = [0, 1, 0b1011, 255, 256, (1 << 63), (1 << 64) - 1, (1 << 100) - 1]

    def test_matches_bit_count(self, backend):
        assert vec.bulk_popcount(self.MASKS) == [m.bit_count() for m in self.MASKS]

    def test_empty_sequence(self, backend):
        assert vec.bulk_popcount([]) == []
        assert vec.bulk_popcount([], mask_bytes=4) == []

    def test_explicit_width_wider_than_needed(self, backend):
        assert vec.bulk_popcount([1, 3], mask_bytes=64) == [1, 2]

    def test_exact_width_boundary(self, backend):
        # 8 bits exactly fill 1 byte; bit 8 needs 2.
        assert vec.bulk_popcount([255], mask_bytes=1) == [8]
        assert vec.bulk_popcount([256], mask_bytes=2) == [1]

    def test_too_narrow_width_rejected(self, backend):
        with pytest.raises(ValueError, match="does not fit"):
            vec.bulk_popcount([256], mask_bytes=1)

    def test_nonpositive_width_rejected(self, backend):
        with pytest.raises(ValueError, match="mask_bytes"):
            vec.bulk_popcount([1], mask_bytes=0)

    def test_negative_mask_rejected(self, backend):
        with pytest.raises(ValueError):
            vec.bulk_popcount([3, -1])
        with pytest.raises(ValueError):
            vec.bulk_popcount([3, -1], mask_bytes=4)


@needs_numpy
class TestPackMasks:
    def test_narrow_fast_path_layout(self):
        np = vec.numpy_or_none()
        matrix = vec.pack_masks([0b1, 0b100000000, 0], mask_bytes=2)
        assert matrix.shape == (3, 2)
        assert matrix.dtype == np.uint8
        assert matrix[0].tolist() == [1, 0]
        assert matrix[1].tolist() == [0, 1]  # bit 8 -> byte 1, bit 0
        assert matrix[2].tolist() == [0, 0]

    def test_wide_path_roundtrip(self):
        masks = [(1 << 75) | 5, 0, (1 << 95) - 1]
        matrix = vec.pack_masks(masks, mask_bytes=12)
        assert matrix.shape == (3, 12)
        for row, mask in zip(matrix, masks):
            assert int.from_bytes(row.tobytes(), "little") == mask

    def test_rows_popcount_like_ints(self):
        masks = [0, 7, 1 << 40, (1 << 48) - 1]
        counts = vec.popcount_rows(vec.pack_masks(masks, mask_bytes=6))
        assert counts.tolist() == [m.bit_count() for m in masks]

    def test_overflow_rejected_both_paths(self):
        with pytest.raises(ValueError, match="does not fit"):
            vec.pack_masks([1 << 16], mask_bytes=2)  # narrow path
        with pytest.raises(ValueError, match="does not fit"):
            vec.pack_masks([1 << 96], mask_bytes=12)  # wide path
        with pytest.raises(ValueError, match="does not fit"):
            vec.pack_masks([1 << 80], mask_bytes=4)  # > uint64 on narrow path

    def test_negative_mask_rejected(self):
        with pytest.raises(ValueError):
            vec.pack_masks([-1], mask_bytes=2)
        with pytest.raises(ValueError):
            vec.pack_masks([-1], mask_bytes=12)

    def test_nonpositive_width_rejected(self):
        with pytest.raises(ValueError, match="mask_bytes"):
            vec.pack_masks([1], mask_bytes=0)

    def test_empty_masks(self):
        assert vec.pack_masks([], mask_bytes=3).shape == (0, 3)
