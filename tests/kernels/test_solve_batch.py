"""Unit tests for the batched expansion core (``repro.kernels.solve``).

The property suite pins whole-solver bit-identity; these tests pin the
individual primitives against their scalar twins, the engine's byte-ball
cache invalidation, the new observability counters, and the opt-in /
opt-out rules of :meth:`SolveBatch.for_solver`.
"""

from __future__ import annotations

import pickle

import pytest

import repro.kernels.solve as solve_mod
from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.coverage import CoverageContext
from repro.core.query import KTGQuery
from repro.core.strategies import VKCDegreeOrdering, VKCOrdering
from repro.index.bfs import BFSOracle
from repro.kernels import BallBitsetEngine, SolveBatch, vec
from repro.obs.instruments import InstrumentRegistry

from tests.conftest import make_random_attributed_graph

pytestmark = pytest.mark.skipif(
    not vec.numpy_available(), reason="numpy not importable"
)

KEYWORDS = ("kw000", "kw001", "kw002", "kw003")


@pytest.fixture(scope="module")
def graph():
    return make_random_attributed_graph(num_vertices=40, seed=11)


@pytest.fixture()
def solver(graph):
    return BranchAndBoundSolver(
        graph,
        strategy=VKCDegreeOrdering(graph.degrees()),
        distance_engine="bitset",
        kernel_backend="numpy",
        use_union_bound=True,
    )


@pytest.fixture()
def context(graph):
    return CoverageContext(graph, KEYWORDS)


def make_batch(solver, context):
    batch = SolveBatch.for_solver(solver, context)
    assert batch is not None
    return batch


class TestForSolver:
    def test_numpy_backend_opts_in(self, solver, context):
        assert SolveBatch.for_solver(solver, context) is not None

    def test_python_backend_opts_out(self, graph, context):
        scalar = BranchAndBoundSolver(
            graph, distance_engine="bitset", kernel_backend="python"
        )
        assert SolveBatch.for_solver(scalar, context) is None

    def test_oracle_engine_opts_out(self, graph, context):
        oracle_solver = BranchAndBoundSolver(graph)
        assert SolveBatch.for_solver(oracle_solver, context) is None

    def test_custom_strategy_opts_out(self, graph, context):
        class ReversedVKC(VKCOrdering):
            def reorder(self, candidates, covered_mask, context):
                return super().reorder(candidates, covered_mask, context)[::-1]

        custom = BranchAndBoundSolver(
            graph,
            strategy=ReversedVKC(),
            distance_engine="bitset",
            kernel_backend="numpy",
        )
        assert SolveBatch.for_solver(custom, context) is None

    def test_custom_strategy_still_solves(self, graph):
        """An opted-out strategy runs the scalar path end to end."""

        class ReversedVKC(VKCOrdering):
            def initial_order(self, candidates, context):
                return super().initial_order(candidates, context)[::-1]

            def reorder(self, candidates, covered_mask, context):
                return super().reorder(candidates, covered_mask, context)[::-1]

        query = KTGQuery(keywords=KEYWORDS[:3], group_size=3, tenuity=1, top_n=2)
        results = [
            BranchAndBoundSolver(
                graph,
                strategy=ReversedVKC(),
                distance_engine="bitset",
                kernel_backend=backend,
            ).solve(query)
            for backend in ("python", "numpy")
        ]
        assert [g.members for g in results[0].groups] == [
            g.members for g in results[1].groups
        ]

    def test_solver_caches_batch_per_context(self, solver, context):
        first = solver._solve_batch(context)
        assert solver._solve_batch(context) is first
        other = CoverageContext(solver.graph, KEYWORDS[:2])
        assert solver._solve_batch(other) is not first


class TestPrimitiveTwins:
    """Each batched primitive against its scalar twin on one frontier."""

    def test_make_node_scores_match_scalar(self, solver, context):
        batch = make_batch(solver, context)
        frontier = context.qualified_vertices()
        covered = context.masks[frontier[0]]
        node = batch.make_node(frontier, covered)
        expected = [
            (context.masks[v] & ~covered).bit_count() for v in frontier
        ]
        assert node.gains.tolist() == expected

    def test_reorder_matches_strategy(self, solver, context):
        batch = make_batch(solver, context)
        frontier = context.qualified_vertices()
        covered = context.masks[frontier[0]]
        node = batch.make_node(frontier, 0)
        ids, child = batch.reorder(node, covered)
        assert ids == solver.strategy.reorder(frontier, covered, context)
        assert child.ids.tolist() == ids

    def test_reorder_is_stable_like_sorted(self, graph, context):
        # Plain VKC: many equal gains, stability is the whole contract.
        solver = BranchAndBoundSolver(
            graph,
            strategy=VKCOrdering(),
            distance_engine="bitset",
            kernel_backend="numpy",
        )
        batch = make_batch(solver, context)
        frontier = context.qualified_vertices()
        node = batch.make_node(frontier, 0)
        covered = context.masks[frontier[0]]
        ids, _ = batch.reorder(node, covered)
        assert ids == solver.strategy.reorder(frontier, covered, context)

    def test_eliminate_matches_filter_mask(self, solver, context):
        batch = make_batch(solver, context)
        kernel = solver.kernel
        frontier = context.qualified_vertices()
        node = batch.make_node(frontier, 0)
        member, k = frontier[0], 2
        keep, survivors = batch.eliminate(node, 0, member, k)
        tail = frontier[1:]
        tail_mask = kernel.encode(tail)
        rest_mask = kernel.filter_mask(tail_mask, member, k)
        scalar_survivors = kernel.select(tail, tail_mask, rest_mask)
        assert survivors == len(scalar_survivors)
        assert [v for v, keep_it in zip(tail, keep) if keep_it] == scalar_survivors

    def test_prune_decision_matches_scalar(self, solver, context):
        from repro.core.pruning import keyword_prune_decision

        batch = make_batch(solver, context)
        frontier = solver.strategy.initial_order(
            context.qualified_vertices(), context
        )
        node = batch.make_node(frontier, 0)
        for slots in (1, 2, 3, len(frontier) + 1):
            assert batch.prune_decision(0, node, slots) == keyword_prune_decision(
                0,
                frontier,
                slots,
                context,
                presorted_by_vkc=True,
                use_union_bound=True,
            )

    def test_tail_union_matches_suffix(self, solver, context):
        batch = make_batch(solver, context)
        frontier = context.qualified_vertices()
        node = batch.make_node(frontier, 0)
        for position in range(len(frontier) - 1):
            row = batch._tail_union(node, position)
            expected = 0
            for v in frontier[position + 1 :]:
                expected |= context.masks[v]
            assert int.from_bytes(row.tobytes(), "little") == expected

    def test_leaf_gains_are_python_ints(self, solver, context):
        batch = make_batch(solver, context)
        frontier = context.qualified_vertices()
        node = batch.make_node(frontier, 0)
        gains = batch.leaf_gains(node, 0)
        assert all(type(g) is int for g in gains)

    def test_child_views_inherit_only_valid_gains(self, solver, context):
        batch = make_batch(solver, context)
        frontier = context.qualified_vertices()
        node = batch.make_node(frontier, 0)
        same = batch.child_tail(node, 0, True)
        assert same.gains is not None
        assert same.gains.tolist() == node.gains[1:].tolist()
        changed = batch.child_tail(node, 0, False)
        assert changed.gains is None


class TestBatchCutoff:
    def test_small_frontiers_run_scalar(self, graph, monkeypatch):
        """Below BATCH_MIN_CANDIDATES no node batches are created."""
        monkeypatch.setattr(solve_mod, "BATCH_MIN_CANDIDATES", 10_000)
        solver = BranchAndBoundSolver(
            graph, distance_engine="bitset", kernel_backend="numpy"
        )
        query = KTGQuery(keywords=KEYWORDS[:3], group_size=3, tenuity=1)
        solver.solve(query)
        assert solver.kernel.node_batches == 0

    def test_batched_run_counts_batches(self, graph, monkeypatch):
        monkeypatch.setattr(solve_mod, "BATCH_MIN_CANDIDATES", 0)
        solver = BranchAndBoundSolver(
            graph, distance_engine="bitset", kernel_backend="numpy"
        )
        query = KTGQuery(keywords=KEYWORDS[:3], group_size=3, tenuity=1)
        solver.solve(query)
        kernel = solver.kernel
        assert kernel.node_batches > 0
        assert kernel.batched_scores > 0
        assert kernel.bulk_eliminations > 0


class TestCounters:
    def test_counters_surface_everywhere(self, graph):
        registry = InstrumentRegistry()
        kernel = BallBitsetEngine(
            BFSOracle(graph), kernel_backend="numpy", instruments=registry
        )
        kernel.note_batch(nodes=2, scores=3, eliminations=4)
        counters = kernel.counters()
        assert counters["node_batches"] == 2
        assert counters["batched_scores"] == 3
        assert counters["bulk_eliminations"] == 4
        # A bulk elimination IS a mask filter: one batched pass stands
        # in for one scalar filter_mask call.
        assert counters["mask_filters"] == 4
        report = registry.report()["counters"]
        assert report["kernels.node_batches"] == 2
        assert report["kernels.batched_scores"] == 3
        assert report["kernels.bulk_eliminations"] == 4


class TestBallBytesCache:
    def test_matches_big_int_ball(self, graph):
        kernel = BallBitsetEngine(BFSOracle(graph), kernel_backend="numpy")
        nbytes = (graph.num_vertices + 7) >> 3
        for vertex in (0, 5, 17):
            for k in (1, 2):
                arr = kernel.ball_bytes(vertex, k, nbytes)
                assert int.from_bytes(arr.tobytes(), "little") == kernel.ball(
                    vertex, k
                )

    def test_cached_until_version_bump(self, graph):
        kernel = BallBitsetEngine(BFSOracle(graph), kernel_backend="numpy")
        nbytes = (graph.num_vertices + 7) >> 3
        first = kernel.ball_bytes(0, 2, nbytes)
        assert kernel.ball_bytes(0, 2, nbytes) is first

    def test_invalidated_by_mutation(self, graph):
        oracle = BFSOracle(graph)
        kernel = BallBitsetEngine(oracle, kernel_backend="numpy")
        nbytes = (graph.num_vertices + 7) >> 3
        stale = kernel.ball_bytes(0, 2, nbytes)
        other = next(
            v for v in range(1, graph.num_vertices) if v not in graph.neighbors(0)
        )
        graph.add_edge(0, other)
        try:
            oracle.rebuild()
            fresh = kernel.ball_bytes(0, 2, nbytes)
            assert fresh is not stale
            assert int.from_bytes(fresh.tobytes(), "little") == kernel.ball(0, 2)
        finally:
            graph.remove_edge(0, other)
            oracle.rebuild()

    def test_apply_edge_update_drops_byte_cache(self, graph):
        oracle = BFSOracle(graph)
        kernel = BallBitsetEngine(oracle, kernel_backend="numpy")
        nbytes = (graph.num_vertices + 7) >> 3
        stale = kernel.ball_bytes(0, 2, nbytes)
        other = next(
            v for v in range(1, graph.num_vertices) if v not in graph.neighbors(0)
        )
        graph.add_edge(0, other)
        try:
            oracle.rebuild()
            kernel.apply_edge_update(0, other)
            fresh = kernel.ball_bytes(0, 2, nbytes)
            assert fresh is not stale
            assert int.from_bytes(fresh.tobytes(), "little") == kernel.ball(0, 2)
        finally:
            graph.remove_edge(0, other)
            oracle.rebuild()

    def test_pickle_drops_byte_cache(self, graph):
        kernel = BallBitsetEngine(BFSOracle(graph), kernel_backend="numpy")
        nbytes = (graph.num_vertices + 7) >> 3
        kernel.ball_bytes(0, 2, nbytes)
        clone = pickle.loads(pickle.dumps(kernel))
        assert len(clone._ball_bytes) == 0
        arr = clone.ball_bytes(0, 2, nbytes)
        assert int.from_bytes(arr.tobytes(), "little") == kernel.ball(0, 2)


class TestCachedContext:
    def test_memo_hit_same_graph_version(self, graph):
        query = KTGQuery(keywords=KEYWORDS[:2])
        first = query.cached_context(graph)
        assert query.cached_context(graph) is first

    def test_memo_miss_on_version_bump(self, graph):
        query = KTGQuery(keywords=KEYWORDS[:2])
        first = query.cached_context(graph)
        other = next(
            v for v in range(1, graph.num_vertices) if v not in graph.neighbors(0)
        )
        graph.add_edge(0, other)
        try:
            assert query.cached_context(graph) is not first
        finally:
            graph.remove_edge(0, other)

    def test_memo_not_pickled(self, graph):
        query = KTGQuery(keywords=KEYWORDS[:2])
        keep = query.cached_context(graph)
        clone = pickle.loads(pickle.dumps(query))
        assert clone == query
        assert "_context_memo" not in clone.__dict__
        assert keep is not None

    def test_packed_matrix_cached_on_context(self, graph):
        context = CoverageContext(graph, KEYWORDS)
        matrix = context.packed_masks()
        assert context.packed_masks() is matrix
        assert context.packed_masks(8) is not matrix
