"""Unit tests for the ball-bitset distance engine."""

from __future__ import annotations

import pickle
import random
import threading

import pytest

from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.graph import AttributedGraph
from repro.index.bfs import BFSOracle
from repro.kernels import BallBitsetEngine, DEFAULT_MAX_BALLS, resolve_distance_engine
from repro.obs.instruments import InstrumentRegistry

from tests.conftest import make_random_attributed_graph


@pytest.fixture
def graph():
    return make_random_attributed_graph(seed=11)


@pytest.fixture
def engine(graph):
    return BallBitsetEngine(BFSOracle(graph))


class TestBalls:
    def test_ball_matches_within_k(self, graph, engine):
        oracle = BFSOracle(graph)
        for vertex in range(graph.num_vertices):
            for k in (1, 2, 3):
                assert engine.decode(engine.ball(vertex, k)) == oracle.within_k(
                    vertex, k
                )

    def test_ball_excludes_center(self, engine):
        assert not (engine.ball(0, 2) >> 0) & 1

    def test_blocked_mask_includes_center(self, engine):
        assert (engine.blocked_mask(0, 2) >> 0) & 1

    def test_nonpositive_k_is_empty(self, engine):
        assert engine.ball(3, 0) == 0
        assert engine.ball(3, -1) == 0

    def test_encode_decode_roundtrip(self, engine):
        vertices = {0, 3, 17, 21}
        assert engine.decode(engine.encode(vertices)) == vertices
        assert engine.decode(0) == set()

    def test_graph_property(self, graph, engine):
        assert engine.graph is graph


class TestCache:
    def test_hit_counting(self, engine):
        engine.ball(0, 2)
        engine.ball(0, 2)
        assert engine.ball_builds == 1
        assert engine.ball_hits == 1
        assert len(engine) == 1

    def test_lru_eviction(self, graph):
        engine = BallBitsetEngine(BFSOracle(graph), max_balls=2)
        engine.ball(0, 1)
        engine.ball(1, 1)
        engine.ball(0, 1)  # refresh 0 — 1 is now LRU
        engine.ball(2, 1)  # evicts (1, 1)
        assert engine.ball_evictions == 1
        assert len(engine) == 2
        engine.ball(1, 1)
        assert engine.ball_builds == 4  # (1,1) had to be rebuilt

    def test_zero_budget_disables_caching(self, graph):
        engine = BallBitsetEngine(BFSOracle(graph), max_balls=0)
        first = engine.ball(0, 2)
        assert engine.ball(0, 2) == first
        assert engine.ball_builds == 2
        assert engine.ball_hits == 0
        assert len(engine) == 0

    def test_negative_budget_rejected(self, graph):
        with pytest.raises(ValueError, match="max_balls"):
            BallBitsetEngine(BFSOracle(graph), max_balls=-1)

    def test_version_bump_invalidates(self):
        g = AttributedGraph(4, [(0, 1), (2, 3)], {v: ["a"] for v in range(4)})
        engine = BallBitsetEngine(BFSOracle(g))
        assert engine.decode(engine.ball(0, 1)) == {1}
        g.add_edge(0, 2)
        # The oracle rebuild is the caller's concern; a fresh oracle on
        # the mutated graph shows the kernel dropping its stale balls.
        engine = BallBitsetEngine(BFSOracle(g))
        assert engine.decode(engine.ball(0, 1)) == {1, 2}

    def test_stale_version_detected_inline(self):
        g = AttributedGraph(4, [(0, 1), (2, 3)], {v: ["a"] for v in range(4)})
        oracle = BFSOracle(g)
        engine = BallBitsetEngine(oracle)
        engine.ball(0, 1)
        g.add_edge(0, 2)
        oracle.rebuild()
        assert engine.decode(engine.ball(0, 1)) == {1, 2}
        assert engine.ball_builds == 2

    def test_counters_dict(self, engine):
        engine.ball(0, 2)
        engine.ball(0, 2)
        counts = engine.counters()
        assert counts["ball_builds"] == 1
        assert counts["ball_hits"] == 1
        assert counts["ball_evictions"] == 0
        assert counts["mask_filters"] == 0

    def test_registry_counters(self, graph):
        registry = InstrumentRegistry()
        engine = BallBitsetEngine(BFSOracle(graph), instruments=registry)
        engine.ball(0, 2)
        engine.ball(0, 2)
        engine.filter_list([1, 2], engine.encode([1, 2]), 0, 2)
        report = registry.report()["counters"]
        assert report["kernels.ball_builds"] == 1
        # One direct re-read plus the filter's own ball lookup.
        assert report["kernels.ball_hits"] == 2
        assert report["kernels.mask_filters"] == 1


class TestCounterThreadSafety:
    def test_thread_hammer_counters_match_registry(self, graph):
        """Bare ``+= 1`` on the stat counters loses increments under a
        thread fleet; with the lock-protected bumps the local mirrors,
        the registry totals and the exact call count all agree."""
        registry = InstrumentRegistry()
        engine = BallBitsetEngine(
            BFSOracle(graph), max_balls=8, instruments=registry
        )
        threads = 8
        rounds = 300
        barrier = threading.Barrier(threads)
        failures: list[BaseException] = []

        def hammer(seed: int) -> None:
            rng = random.Random(seed)
            barrier.wait()
            try:
                for _ in range(rounds):
                    vertex = rng.randrange(graph.num_vertices)
                    k = rng.choice((1, 2, 3))
                    engine.ball(vertex, k)
                    engine.filter_mask(1 << vertex, (vertex + 1) % graph.num_vertices, k)
            except BaseException as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        fleet = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(threads)
        ]
        for thread in fleet:
            thread.start()
        for thread in fleet:
            thread.join()
        assert not failures

        counts = engine.counters()
        report = registry.report()["counters"]
        for name, value in counts.items():
            assert report.get(f"kernels.{name}", 0) == value
        # Every iteration calls ball() twice (once directly, once inside
        # filter_mask), so a single lost increment breaks this total.
        assert counts["ball_builds"] + counts["ball_hits"] == threads * rounds * 2
        assert counts["mask_filters"] == threads * rounds
        # The tiny budget forces heavy eviction churn under contention.
        assert counts["ball_evictions"] > 0
        assert len(engine) <= 8


class TestFiltering:
    def test_filter_list_preserves_order(self, graph, engine):
        oracle = BFSOracle(graph)
        candidates = list(range(graph.num_vertices))
        mask = engine.encode(candidates)
        filtered, filtered_mask = engine.filter_list(candidates, mask, 0, 2)
        assert filtered == oracle.filter_candidates(candidates, 0, 2)
        assert engine.decode(filtered_mask) == set(filtered)

    def test_filter_list_noop_returns_same_list(self, engine):
        # A candidate set already disjoint from the ball is returned
        # as-is (no copy) — the hot-path fast exit.
        ball = engine.ball(0, 1)
        far = [v for v in range(40) if not (ball >> v) & 1 and v != 0][:4]
        mask = engine.encode(far)
        filtered, filtered_mask = engine.filter_list(far, mask, 0, 1)
        assert filtered is far
        assert filtered_mask == mask

    def test_filter_candidates_matches_oracle(self, graph, engine):
        oracle = BFSOracle(graph)
        candidates = list(range(0, graph.num_vertices, 2))
        assert engine.filter_candidates(candidates, 1, 2) == oracle.filter_candidates(
            candidates, 1, 2
        )

    def test_exclusion_mask(self, graph, engine):
        mask = engine.exclusion_mask([0, 5], 2)
        expected = engine.blocked_mask(0, 2) | engine.blocked_mask(5, 2)
        assert mask == expected


class TestTenuity:
    def test_is_tenuous_matches_oracle(self, graph, engine):
        oracle = BFSOracle(graph)
        for u in range(0, graph.num_vertices, 3):
            for v in range(1, graph.num_vertices, 4):
                for k in (1, 2):
                    assert engine.is_tenuous(u, v, k) == oracle.is_tenuous(u, v, k)

    def test_pairwise_tenuous_matches_oracle(self, graph, engine):
        oracle = BFSOracle(graph)
        groups = [[0, 7, 19], [2, 3], [1, 12, 25, 33], [5]]
        for members in groups:
            for k in (1, 2):
                expected = all(
                    oracle.is_tenuous(a, b, k)
                    for i, a in enumerate(members)
                    for b in members[i + 1 :]
                )
                assert engine.pairwise_tenuous(members, k) == expected

    def test_new_member_tenuous(self, graph, engine):
        oracle = BFSOracle(graph)
        members = [0, 19]
        members_mask = engine.encode(members)
        for vertex in range(graph.num_vertices):
            if vertex in members:
                continue
            expected = all(oracle.is_tenuous(vertex, m, 2) for m in members)
            assert engine.new_member_tenuous(members_mask, vertex, 2) == expected


class TestResolveAndPickle:
    def test_resolve_rejects_unknown_engine(self, graph):
        with pytest.raises(ValueError, match="distance_engine"):
            resolve_distance_engine("quantum", BFSOracle(graph), None)

    def test_resolve_rejects_foreign_kernel(self, graph):
        kernel = BallBitsetEngine(BFSOracle(graph))
        with pytest.raises(ValueError, match="different oracle"):
            resolve_distance_engine("bitset", BFSOracle(graph), kernel)

    def test_resolve_builds_default(self, graph):
        oracle = BFSOracle(graph)
        kernel = resolve_distance_engine("bitset", oracle, None)
        assert isinstance(kernel, BallBitsetEngine)
        assert kernel.oracle is oracle
        assert kernel.max_balls == DEFAULT_MAX_BALLS
        assert resolve_distance_engine("oracle", oracle, None) is None

    def test_pickle_drops_balls_keeps_config(self, graph):
        engine = BallBitsetEngine(BFSOracle(graph), max_balls=17)
        engine.ball(0, 2)
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.max_balls == 17
        assert len(clone) == 0
        # The clone is fully usable (lock restored, balls rebuilt).
        assert clone.ball(0, 2) == engine.ball(0, 2)

    def test_solver_accepts_kernel_instance(self, graph):
        oracle = BFSOracle(graph)
        kernel = BallBitsetEngine(oracle)
        solver = BranchAndBoundSolver(graph, oracle=oracle, kernel=kernel)
        assert solver.kernel is kernel
        assert solver.distance_engine == "bitset"

    def test_solver_rejects_mismatched_kernel(self, graph):
        kernel = BallBitsetEngine(BFSOracle(graph))
        with pytest.raises(ValueError, match="different oracle"):
            BranchAndBoundSolver(graph, oracle=BFSOracle(graph), kernel=kernel)
