"""Tests for the numpy-vectorized kernel twins (``repro.kernels.vec``).

Every vectorized kernel has a scalar twin; these tests pin the two
bit-identical, exercise backend resolution (including a simulated
numpy-absent environment via the module-global ``_np`` cache), and
check the ``kernels.vec_sweeps`` accounting on the engine.
"""

from __future__ import annotations

import pytest

from repro.core.errors import KernelBackendError
from repro.core.graph import AttributedGraph
from repro.index._traversal import (
    UNREACHABLE,
    bfs_distance_array_csr,
    bfs_levels_csr,
)
from repro.index.bfs import BFSOracle
from repro.index.nl import NLIndex
from repro.kernels import BallBitsetEngine, vec
from repro.kernels import engine as engine_mod
from repro.obs.instruments import InstrumentRegistry

from tests.conftest import make_random_attributed_graph

needs_numpy = pytest.mark.skipif(
    not vec.numpy_available(), reason="numpy not importable"
)


@pytest.fixture(scope="module")
def graph():
    return make_random_attributed_graph(num_vertices=60, seed=23)


@pytest.fixture(scope="module")
def csr(graph):
    snapshot = graph.csr_snapshot()
    return snapshot.indptr, snapshot.indices


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_validate_accepts_known(self):
        for backend in vec.KERNEL_BACKENDS:
            assert vec.validate_kernel_backend(backend) == backend

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="kernel_backend"):
            vec.validate_kernel_backend("fortran")

    def test_python_always_resolves(self):
        assert vec.resolve_kernel_backend("python") == "python"

    @needs_numpy
    def test_auto_and_forced_prefer_numpy(self):
        assert vec.resolve_kernel_backend("auto") == "numpy"
        assert vec.resolve_kernel_backend("numpy") == "numpy"

    def test_auto_falls_back_without_numpy(self, monkeypatch):
        monkeypatch.setattr(vec, "_np", None)
        assert not vec.numpy_available()
        assert vec.resolve_kernel_backend("auto") == "python"

    def test_forced_numpy_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(vec, "_np", None)
        with pytest.raises(KernelBackendError, match="kernel_backend='numpy'"):
            vec.resolve_kernel_backend("numpy")

    def test_vec_kernels_refuse_to_run_without_numpy(self, monkeypatch):
        monkeypatch.setattr(vec, "_np", None)
        with pytest.raises(KernelBackendError, match="numpy"):
            vec.bfs_levels_csr([0, 0], [], 0)


# ----------------------------------------------------------------------
# Traversal twins
# ----------------------------------------------------------------------
@needs_numpy
class TestTraversalTwins:
    def test_levels_match_scalar(self, graph, csr):
        indptr, indices = csr
        for source in range(graph.num_vertices):
            scalar = bfs_levels_csr(indptr, indices, source)
            fast = vec.bfs_levels_csr(indptr, indices, source)
            # The vectorized kernel sorts within a level; the level
            # *sets* must agree exactly.
            assert [set(level) for level in scalar] == [set(level) for level in fast]
            assert all(level == sorted(level) for level in fast)

    def test_levels_respect_max_depth(self, graph, csr):
        indptr, indices = csr
        for max_depth in (0, 1, 2, 3, None):
            scalar = bfs_levels_csr(indptr, indices, 0, max_depth)
            fast = vec.bfs_levels_csr(indptr, indices, 0, max_depth)
            assert [set(level) for level in scalar] == [set(level) for level in fast]

    def test_distances_match_scalar(self, graph, csr):
        indptr, indices = csr
        for source in range(graph.num_vertices):
            assert vec.bfs_distance_array_csr(
                indptr, indices, source
            ) == bfs_distance_array_csr(indptr, indices, source)

    def test_distances_respect_max_depth(self, csr):
        indptr, indices = csr
        full = vec.bfs_distance_array_csr(indptr, indices, 0)
        for max_depth in (0, 1, 2, 3):
            bounded = vec.bfs_distance_array_csr(indptr, indices, 0, max_depth)
            assert bounded == [
                d if 0 <= d <= max_depth else UNREACHABLE for d in full
            ]
            assert bounded == bfs_distance_array_csr(indptr, indices, 0, max_depth)

    def test_isolated_vertex(self):
        g = AttributedGraph(3, [(0, 1)])
        snapshot = g.csr_snapshot()
        assert vec.bfs_levels_csr(snapshot.indptr, snapshot.indices, 2) == []
        assert vec.bfs_distance_array_csr(snapshot.indptr, snapshot.indices, 2) == [
            UNREACHABLE,
            UNREACHABLE,
            0,
        ]


# ----------------------------------------------------------------------
# Bitset helpers
# ----------------------------------------------------------------------
@needs_numpy
class TestBitsetHelpers:
    def test_ball_bits_matches_scalar_engine(self, graph, csr):
        engine = BallBitsetEngine(
            BFSOracle(graph), graph_layout="csr", kernel_backend="python"
        )
        indptr, indices = csr
        for vertex in range(0, graph.num_vertices, 3):
            for k in (1, 2, 3):
                assert vec.ball_bits_csr(indptr, indices, vertex, k) == engine.ball(
                    vertex, k
                )

    def test_ball_bits_nonpositive_k_is_empty(self, csr):
        indptr, indices = csr
        assert vec.ball_bits_csr(indptr, indices, 0, 0) == 0
        assert vec.ball_bits_csr(indptr, indices, 0, -1) == 0

    def test_pack_vertices_matches_encode(self):
        vertices = [0, 3, 17, 39]
        assert vec.pack_vertices(vertices, 40) == BallBitsetEngine.encode(vertices)
        assert vec.pack_vertices([], 40) == 0

    def test_decode_mask_matches_decode(self):
        mask = BallBitsetEngine.encode([0, 1, 63, 64, 511, 513])
        assert vec.decode_mask(mask) == BallBitsetEngine.decode(mask)
        assert vec.decode_mask(0) == set()


# ----------------------------------------------------------------------
# Popcount ladder
# ----------------------------------------------------------------------
class TestPopcount:
    MASKS = [0, 1, 0b1011, (1 << 100) - 1, (1 << 513) | 7, 1 << 9000]

    @staticmethod
    def _raw(mask):
        return mask.to_bytes(max(1, (mask.bit_length() + 7) >> 3), "little")

    def test_popcount_bytes_matches_bit_count(self):
        for mask in self.MASKS:
            assert vec.popcount_bytes(self._raw(mask)) == mask.bit_count()

    def test_popcount_bytes_python_fallback(self, monkeypatch):
        monkeypatch.setattr(vec, "_np", None)
        # Longer than _POPCOUNT_CHUNK so the chunk loop runs >1 round.
        data = bytes(range(256)) * 17
        assert vec.popcount_bytes(data) == sum(b.bit_count() for b in data)
        assert vec.popcount_bytes(b"") == 0

    def test_bulk_popcount_matches_bit_count(self):
        assert vec.bulk_popcount(self.MASKS) == [m.bit_count() for m in self.MASKS]
        assert vec.bulk_popcount([]) == []

    def test_bulk_popcount_python_fallback(self, monkeypatch):
        monkeypatch.setattr(vec, "_np", None)
        assert vec.bulk_popcount(self.MASKS) == [m.bit_count() for m in self.MASKS]

    def test_bulk_popcount_explicit_width(self):
        assert vec.bulk_popcount([1, 3], mask_bytes=16) == [1, 2]


# ----------------------------------------------------------------------
# Engine backend integration
# ----------------------------------------------------------------------
class TestEngineBackends:
    def test_backend_attributes(self, graph):
        engine = BallBitsetEngine(BFSOracle(graph), kernel_backend="python")
        assert engine.kernel_backend == "python"
        assert engine.backend == "python"

    def test_bad_backend_rejected(self, graph):
        with pytest.raises(ValueError, match="kernel_backend"):
            BallBitsetEngine(BFSOracle(graph), kernel_backend="fortran")

    @needs_numpy
    def test_balls_identical_across_backends(self, graph):
        for layout in ("adjacency", "csr"):
            engines = [
                BallBitsetEngine(
                    BFSOracle(graph), graph_layout=layout, kernel_backend=backend
                )
                for backend in ("python", "numpy")
            ]
            for vertex in range(0, graph.num_vertices, 5):
                for k in (1, 2, 3):
                    balls = {engine.ball(vertex, k) for engine in engines}
                    assert len(balls) == 1

    @needs_numpy
    def test_vec_sweeps_counted(self, graph):
        registry = InstrumentRegistry()
        engine = BallBitsetEngine(
            BFSOracle(graph),
            graph_layout="csr",
            kernel_backend="numpy",
            instruments=registry,
        )
        engine.ball(0, 2)
        engine.ball(0, 2)  # cache hit: no extra sweep
        assert engine.vec_sweeps == 1
        assert engine.counters()["vec_sweeps"] == 1
        assert registry.report()["counters"]["kernels.vec_sweeps"] == 1

    def test_python_backend_never_sweeps(self, graph):
        engine = BallBitsetEngine(
            BFSOracle(graph), graph_layout="csr", kernel_backend="python"
        )
        candidates = list(range(graph.num_vertices))
        engine.filter_list(candidates, engine.encode(candidates), 0, 2)
        assert engine.vec_sweeps == 0

    @needs_numpy
    def test_wide_mask_decode_routes_through_vec(self, graph, monkeypatch):
        # Force every decode through the vectorized path regardless of
        # mask width, then check the filter output is bit-identical to
        # the scalar backend's.
        monkeypatch.setattr(engine_mod, "VEC_DECODE_MIN_BITS", 1)
        fast = BallBitsetEngine(BFSOracle(graph), kernel_backend="numpy")
        base = BallBitsetEngine(BFSOracle(graph), kernel_backend="python")
        candidates = list(range(graph.num_vertices))
        mask = fast.encode(candidates)
        assert fast.filter_list(candidates, mask, 0, 2) == base.filter_list(
            candidates, mask, 0, 2
        )
        # One sweep for the ball pack, one for the decode.
        assert fast.vec_sweeps >= 2

    def test_forced_numpy_engine_without_numpy_raises(self, graph, monkeypatch):
        monkeypatch.setattr(vec, "_np", None)
        with pytest.raises(KernelBackendError, match="kernel_backend='numpy'"):
            BallBitsetEngine(BFSOracle(graph), kernel_backend="numpy")

    def test_auto_engine_falls_back_without_numpy(self, graph, monkeypatch):
        monkeypatch.setattr(vec, "_np", None)
        engine = BallBitsetEngine(
            BFSOracle(graph), graph_layout="csr", kernel_backend="auto"
        )
        assert engine.backend == "python"
        reference = BallBitsetEngine(BFSOracle(graph), kernel_backend="python")
        assert engine.ball(0, 2) == reference.ball(0, 2)
        assert engine.vec_sweeps == 0


# ----------------------------------------------------------------------
# NL index backend parity
# ----------------------------------------------------------------------
@needs_numpy
def test_nl_csr_build_identical_across_backends(graph):
    base = NLIndex(graph, graph_layout="csr", kernel_backend="python")
    fast = NLIndex(graph, graph_layout="csr", kernel_backend="numpy")
    assert fast.depth == base.depth
    assert fast.stats.entries == base.stats.entries
    for vertex in range(graph.num_vertices):
        assert fast.level_sets(vertex) == base.level_sets(vertex)


# ----------------------------------------------------------------------
# Validation at the solver / service layers
# ----------------------------------------------------------------------
class TestLayerValidation:
    def test_solver_rejects_bad_backend(self, graph):
        from repro.core.branch_and_bound import BranchAndBoundSolver

        with pytest.raises(ValueError, match="kernel_backend"):
            BranchAndBoundSolver(graph, kernel_backend="fortran")

    def test_service_rejects_bad_backend(self, graph):
        from repro.service import QueryService

        with pytest.raises(ValueError, match="kernel_backend"):
            QueryService(graph, kernel_backend="fortran")

    def test_nl_rejects_bad_backend(self, graph):
        with pytest.raises(ValueError, match="kernel_backend"):
            NLIndex(graph, graph_layout="csr", kernel_backend="fortran")
