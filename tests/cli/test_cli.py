"""Unit tests for the ``ktg`` command-line interface."""

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "facebook", "--edges", "e", "--keywords", "k"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "ktg" in capsys.readouterr().out


class TestDatasetsCommand:
    def test_lists_profiles(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("dblp", "gowalla", "brightkite", "flickr", "twitter"):
            assert name in out


class TestGenerateCommand:
    def test_writes_files(self, tmp_path, capsys):
        edges = tmp_path / "g.edges"
        keywords = tmp_path / "g.kw"
        code = main(
            [
                "generate",
                "brightkite",
                "--scale",
                "0.05",
                "--edges",
                str(edges),
                "--keywords",
                str(keywords),
            ]
        )
        assert code == 0
        assert edges.exists() and keywords.exists()
        assert "wrote" in capsys.readouterr().out


class TestQueryCommand:
    def test_runs_query(self, capsys):
        code = main(
            [
                "query",
                "brightkite",
                "--scale",
                "0.1",
                "--keywords",
                "kw000,kw001,kw002",
                "-p",
                "2",
                "-k",
                "1",
                "-n",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "KTG-VKC-DEG-NLRNL" in out
        assert "latency" in out

    def test_dktg_algorithm(self, capsys):
        code = main(
            [
                "query",
                "brightkite",
                "--scale",
                "0.1",
                "--keywords",
                "kw000,kw001",
                "-p",
                "2",
                "--algorithm",
                "DKTG-GREEDY",
            ]
        )
        assert code == 0
        assert "DKTG" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        code = main(
            [
                "sweep",
                "brightkite",
                "--parameter",
                "top_n",
                "--scale",
                "0.1",
                "--queries",
                "1",
                "--algorithms",
                "KTG-VKC-NLRNL",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        out = capsys.readouterr().out
        assert "mean latency" in out


class TestBatchCommand:
    def test_second_pass_served_from_cache(self, capsys):
        code = main(
            [
                "batch",
                "brightkite",
                "--scale",
                "0.1",
                "--queries",
                "4",
                "--keyword-size",
                "3",
                "--workers",
                "2",
                "--passes",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batch serving" in out and "from_cache" in out
        assert "service metrics" in out and "cache_hit_rate" in out

    def test_sequential_flag(self, capsys):
        code = main(
            [
                "batch",
                "brightkite",
                "--scale",
                "0.1",
                "--queries",
                "2",
                "--keyword-size",
                "3",
                "--sequential",
                "--passes",
                "1",
            ]
        )
        assert code == 0
        assert "queries_served" in capsys.readouterr().out


class TestCaseStudyCommand:
    def test_prints_report(self, capsys):
        assert main(["case-study"]) == 0
        out = capsys.readouterr().out
        assert "TAGQ" in out and "no query keyword" in out


class TestIndexStatsCommand:
    def test_prints_footprints(self, capsys):
        assert main(["index-stats", "brightkite", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "nl" in out and "nlrnl" in out and "entries" in out


class TestStatsCommand:
    def test_prints_statistics(self, capsys):
        assert main(["stats", "brightkite", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "avg_degree" in out
        assert "hop-ball fractions" in out

    def test_solve_report_with_keywords(self, capsys):
        code = main(
            [
                "stats",
                "brightkite",
                "--scale",
                "0.1",
                "--keywords",
                "music,travel,food",
                "-p",
                "3",
                "-k",
                "2",
                "-n",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "search counters" in out
        assert "oracle usage" in out
        assert "instrument counters" in out
        assert "solver.nodes_entered" in out

    def test_solve_report_algorithm_flag(self, capsys):
        code = main(
            [
                "stats",
                "brightkite",
                "--scale",
                "0.1",
                "--keywords",
                "music,travel",
                "--algorithm",
                "KTG-VKC-NL",
            ]
        )
        assert code == 0
        assert "KTG-VKC-NL" in capsys.readouterr().out


class TestTraceCommand:
    def test_renders_tree(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "{root}" in out
        assert "nodes=" in out

    def test_strategy_and_depth_flags(self, capsys):
        assert main(["trace", "--strategy", "vkc-deg", "--max-depth", "1"]) == 0
        out = capsys.readouterr().out
        assert "{root}" in out


class TestIndexStatsAllOracles:
    def test_includes_pll_and_bfs(self, capsys):
        assert main(["index-stats", "brightkite", "--scale", "0.1", "--all-oracles"]) == 0
        out = capsys.readouterr().out
        assert "pll" in out and "bfs" in out


class TestReproduceCommand:
    def test_fig8_reports_findings(self, capsys):
        code = main(["reproduce", "--experiment", "fig8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[HELD" in out
        assert "## fig8" in out

    def test_fig9_exit_code_tracks_findings(self, capsys):
        code = main(["reproduce", "--experiment", "fig9", "--scale", "0.15"])
        out = capsys.readouterr().out
        assert "nlrnl_entries" in out
        assert code in (0, 2)  # 2 when a timing-based claim diverges


class TestParallelFlags:
    QUERY_ARGS = [
        "brightkite",
        "--scale",
        "0.1",
        "--keywords",
        "kw000,kw001,kw002",
        "-p",
        "3",
        "-k",
        "1",
        "-n",
        "2",
    ]

    def test_solve_alias_parses_like_query(self):
        parser = build_parser()
        args = parser.parse_args(["solve", *self.QUERY_ARGS, "--jobs", "4"])
        assert args.command == "solve"
        assert args.jobs == 4
        assert args.jobs_executor == "process"

    def test_jobs_executor_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", *self.QUERY_ARGS, "--jobs-executor", "fibers"]
            )

    def test_query_with_jobs_reports_fleet(self, capsys):
        code = main(
            ["solve", *self.QUERY_ARGS, "--jobs", "2", "--jobs-executor", "thread"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs=2" in out
        assert "executor=thread" in out
        assert "subproblems=" in out

    def test_parallel_query_groups_match_serial(self, capsys):
        assert main(["query", *self.QUERY_ARGS]) == 0
        serial_out = capsys.readouterr().out
        assert (
            main(
                ["query", *self.QUERY_ARGS, "--jobs", "3", "--jobs-executor", "inline"]
            )
            == 0
        )
        parallel_out = capsys.readouterr().out
        serial_groups = [ln for ln in serial_out.splitlines() if "coverage" in ln]
        parallel_groups = [
            ln for ln in parallel_out.splitlines() if "coverage" in ln
        ]
        assert serial_groups and serial_groups == parallel_groups

    def test_batch_with_jobs(self, capsys):
        code = main(
            [
                "batch",
                "brightkite",
                "--scale",
                "0.1",
                "--queries",
                "2",
                "--keyword-size",
                "3",
                "--jobs",
                "2",
                "--passes",
                "1",
            ]
        )
        assert code == 0
        assert "jobs=2 per query" in capsys.readouterr().out


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "brightkite"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.workers == 4
        assert args.rate_limit == 0.0
        assert args.max_inflight == 64
        assert args.cache_capacity == 1024

    def test_parser_full_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "brightkite",
                "--scale",
                "0.1",
                "--port",
                "0",
                "--rate-limit",
                "25",
                "--burst",
                "50",
                "--max-inflight",
                "8",
                "--pressure-threshold",
                "4",
                "--pressure-time-budget",
                "0.02",
                "--workers",
                "2",
                "--algorithm",
                "KTG-VKC-NLRNL",
            ]
        )
        assert args.port == 0 and args.rate_limit == 25.0
        assert args.pressure_threshold == 4
        assert args.algorithm == "KTG-VKC-NLRNL"

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "orkut"])
