"""Documentation must not rot: every tutorial code block executes.

The blocks share one namespace in file order, exactly as a reader
following along in a REPL would experience them.
"""

import re
from pathlib import Path

import pytest

DOCS_DIR = Path(__file__).resolve().parents[2] / "docs"


def python_blocks(path: Path) -> list[str]:
    return re.findall(r"```python\n(.*?)```", path.read_text(), re.S)


def test_docs_directory_populated():
    names = {path.name for path in DOCS_DIR.glob("*.md")}
    assert {"tutorial.md", "algorithms.md", "indexes.md"} <= names


def test_tutorial_blocks_execute(capsys):
    blocks = python_blocks(DOCS_DIR / "tutorial.md")
    assert len(blocks) >= 8, "tutorial should walk through the whole API"
    namespace: dict = {}
    for index, block in enumerate(blocks):
        exec(compile(block, f"<tutorial block {index}>", "exec"), namespace)
    # The walkthrough ends with experiment tooling in scope.
    assert "reproduce" in namespace


def test_docs_reference_real_modules():
    """Module paths mentioned in the design docs must import."""
    import importlib

    pattern = re.compile(r"`(repro(?:\.[a-z_]+)+)`")
    for name in ("algorithms.md", "indexes.md"):
        text = (DOCS_DIR / name).read_text()
        for dotted in set(pattern.findall(text)):
            module_path = dotted
            # Trim trailing attribute names until the module imports.
            while True:
                try:
                    importlib.import_module(module_path)
                    break
                except ModuleNotFoundError:
                    if "." not in module_path:
                        pytest.fail(f"{name} references unknown module {dotted}")
                    module_path = module_path.rsplit(".", 1)[0]
