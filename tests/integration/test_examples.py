"""Every example script must run clean as a subprocess.

Examples are the public face of the library; a broken example is a
broken deliverable, so they are executed end to end (the marketing and
index-comparison examples load scaled datasets — a few seconds each).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {script.name for script in EXAMPLE_SCRIPTS}
    assert "quickstart.py" in names
    assert len(EXAMPLE_SCRIPTS) >= 3


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[script.stem for script in EXAMPLE_SCRIPTS]
)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples should narrate what they do"
