"""End-to-end integration tests: datasets -> workloads -> solvers -> analysis."""

import pytest

from repro.analysis.metrics import assess_result, verify_tenuity
from repro.analysis.tables import render_series
from repro.core.dktg import DKTGGreedySolver
from repro.datasets.io import read_graph, write_graph
from repro.datasets.registry import load_dataset
from repro.index.nlrnl import NLRNLIndex
from repro.index.stats import measure_footprint
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.runner import ALGORITHMS, ExperimentRunner
from repro.workloads.sweep import run_parameter_sweep


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("gowalla", scale=0.15)


class TestFullPipeline:
    def test_all_algorithms_complete_a_workload(self, dataset):
        graph, vocabulary = dataset
        generator = WorkloadGenerator(graph, vocabulary, dataset_name="gowalla")
        workload = generator.generate(count=3, keyword_size=4, group_size=3, tenuity=2, seed=0)
        runner = ExperimentRunner(graph, "gowalla")
        oracle = NLRNLIndex(graph)
        for name in ALGORITHMS:
            results = []
            report = runner.run(name, workload, result_hook=results.append)
            assert report.query_count == 3
            for query, result in zip(workload, results):
                assert verify_tenuity(oracle, result.groups, query.tenuity)

    def test_exact_algorithms_agree_on_workload(self, dataset):
        graph, vocabulary = dataset
        generator = WorkloadGenerator(graph, vocabulary, dataset_name="gowalla")
        workload = generator.generate(count=3, keyword_size=4, group_size=3, tenuity=2, seed=1)
        runner = ExperimentRunner(graph, "gowalla")
        per_algorithm = {}
        for name in ("KTG-QKC-NLRNL", "KTG-VKC-NL", "KTG-VKC-NLRNL", "KTG-VKC-DEG-NLRNL"):
            collected = []
            runner.run(name, workload, result_hook=collected.append)
            per_algorithm[name] = [
                [round(group.coverage, 9) for group in result.groups]
                for result in collected
            ]
        baseline = per_algorithm.pop("KTG-QKC-NLRNL")
        for name, profiles in per_algorithm.items():
            assert profiles == baseline, name

    def test_dktg_beats_ktg_on_diversity(self, dataset):
        graph, vocabulary = dataset
        generator = WorkloadGenerator(graph, vocabulary)
        workload = generator.generate(count=3, keyword_size=5, group_size=3, tenuity=1, top_n=3, seed=4)
        runner = ExperimentRunner(graph)
        ktg_results, dktg_results = [], []
        runner.run("KTG-VKC-DEG-NLRNL", workload, result_hook=ktg_results.append)
        runner.run("DKTG-GREEDY", workload, result_hook=dktg_results.append)
        for query, ktg, dktg in zip(workload, ktg_results, dktg_results):
            ktg_quality = assess_result(graph, query.keywords, ktg.groups)
            dktg_quality = assess_result(graph, query.keywords, dktg.groups)
            assert dktg_quality.diversity >= ktg_quality.diversity

    def test_sweep_to_rendered_figure(self, dataset):
        graph, vocabulary = dataset
        result = run_parameter_sweep(
            graph,
            "group_size",
            vocabulary=vocabulary,
            dataset_name="gowalla",
            values=[3, 4],
            algorithms=["KTG-VKC-NLRNL", "KTG-VKC-DEG-NLRNL"],
            queries_per_setting=2,
        )
        series = {name: result.series(name) for name in result.algorithms()}
        text = render_series(series, x_label="group_size")
        assert "KTG-VKC-NLRNL" in text
        assert "3" in text and "4" in text

    def test_round_trip_dataset_still_solvable(self, dataset, tmp_path):
        graph, vocabulary = dataset
        write_graph(graph, tmp_path / "g.edges", tmp_path / "g.kw")
        loaded, _ = read_graph(tmp_path / "g.edges", tmp_path / "g.kw")
        generator = WorkloadGenerator(loaded, dataset_name="reloaded")
        workload = generator.generate(count=2, keyword_size=3, group_size=2, seed=2)
        report = ExperimentRunner(loaded).run("KTG-VKC-DEG-NLRNL", workload)
        assert report.query_count == 2

    def test_index_footprints_follow_figure9(self, dataset):
        graph, _ = dataset
        nl = measure_footprint(graph, "nl")
        nlrnl = measure_footprint(graph, "nlrnl")
        assert nlrnl.entries < nl.entries

    def test_dktg_solver_directly(self, dataset):
        graph, vocabulary = dataset
        generator = WorkloadGenerator(graph, vocabulary)
        workload = generator.generate(count=1, keyword_size=5, group_size=3, tenuity=1, top_n=3, seed=9)
        query = workload.as_dktg().queries[0]
        result = DKTGGreedySolver(graph).solve(query)
        member_sets = [set(group.members) for group in result.groups]
        for i, a in enumerate(member_sets):
            for b in member_sets[i + 1 :]:
                assert not a & b
