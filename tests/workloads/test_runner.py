"""Unit tests for the experiment runner and algorithm registry."""

import pytest

from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.dktg import DKTGGreedySolver, DKTGResult
from repro.core.strategies import QKCOrdering, VKCDegreeOrdering, VKCOrdering
from repro.datasets.figure1 import figure1_example
from repro.index.bfs import BFSOracle
from repro.index.nl import NLIndex
from repro.index.nlrnl import NLRNLIndex
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.runner import ALGORITHMS, AlgorithmSpec, ExperimentRunner


@pytest.fixture
def graph():
    return figure1_example()


@pytest.fixture
def workload(graph):
    generator = WorkloadGenerator(graph, dataset_name="fig1")
    return generator.generate(count=4, keyword_size=3, group_size=2, tenuity=1, seed=0)


class TestRegistry:
    def test_paper_lineup_registered(self):
        assert set(ALGORITHMS) == {
            "KTG-QKC-NLRNL",
            "KTG-VKC-NL",
            "KTG-VKC-NLRNL",
            "KTG-VKC-DEG-NLRNL",
            "DKTG-GREEDY",
        }

    @pytest.mark.parametrize(
        "name,oracle_cls,strategy_cls",
        [
            ("KTG-QKC-NLRNL", NLRNLIndex, QKCOrdering),
            ("KTG-VKC-NL", NLIndex, VKCOrdering),
            ("KTG-VKC-NLRNL", NLRNLIndex, VKCOrdering),
            ("KTG-VKC-DEG-NLRNL", NLRNLIndex, VKCDegreeOrdering),
        ],
    )
    def test_spec_builds_expected_components(self, graph, name, oracle_cls, strategy_cls):
        spec = ALGORITHMS[name]
        oracle = spec.build_oracle(graph)
        assert isinstance(oracle, oracle_cls)
        solver = spec.build_solver(graph, oracle)
        assert isinstance(solver, BranchAndBoundSolver)
        assert isinstance(solver.strategy, strategy_cls)

    def test_dktg_spec_builds_greedy(self, graph):
        spec = ALGORITHMS["DKTG-GREEDY"]
        solver = spec.build_solver(graph, spec.build_oracle(graph))
        assert isinstance(solver, DKTGGreedySolver)

    def test_bfs_spec(self, graph):
        spec = AlgorithmSpec("X", "vkc", "bfs")
        assert isinstance(spec.build_oracle(graph), BFSOracle)

    def test_unknown_kind_rejected(self, graph):
        with pytest.raises(ValueError):
            AlgorithmSpec("X", "vkc", "hash").build_oracle(graph)
        with pytest.raises(ValueError):
            AlgorithmSpec("X", "mystery", "bfs").build_solver(graph, BFSOracle(graph))


class TestRunner:
    def test_report_shape(self, graph, workload):
        runner = ExperimentRunner(graph, "fig1")
        report = runner.run("KTG-VKC-NLRNL", workload)
        assert report.algorithm == "KTG-VKC-NLRNL"
        assert report.dataset == "fig1"
        assert report.query_count == 4
        assert len(report.latencies_ms) == 4
        assert report.mean_ms > 0
        assert report.median_ms > 0
        assert report.p95_ms >= report.median_ms
        assert report.total_nodes_expanded > 0

    def test_oracle_cached_across_runs(self, graph, workload):
        runner = ExperimentRunner(graph)
        first = runner.oracle_for(ALGORITHMS["KTG-VKC-NLRNL"])
        second = runner.oracle_for(ALGORITHMS["KTG-VKC-DEG-NLRNL"])
        assert first is second  # same oracle kind -> same instance

    def test_stale_oracle_rebuilt(self, graph, workload):
        runner = ExperimentRunner(graph)
        first = runner.oracle_for(ALGORITHMS["KTG-VKC-NLRNL"])
        graph.add_edge(5, 9)
        second = runner.oracle_for(ALGORITHMS["KTG-VKC-NLRNL"])
        assert first is not second

    def test_dktg_queries_lifted(self, graph, workload):
        runner = ExperimentRunner(graph, "fig1")
        results = []
        report = runner.run("DKTG-GREEDY", workload, result_hook=results.append)
        assert report.query_count == 4
        assert all(isinstance(result, DKTGResult) for result in results)

    def test_result_hook_called_per_query(self, graph, workload):
        runner = ExperimentRunner(graph)
        seen = []
        runner.run("KTG-VKC-NL", workload, result_hook=seen.append)
        assert len(seen) == 4

    def test_empty_results_counted(self, graph):
        generator = WorkloadGenerator(graph, dataset_name="fig1", ensure_answerable=False)
        workload = generator.generate(
            count=2, keyword_size=2, group_size=9, tenuity=1, seed=0
        )
        report = ExperimentRunner(graph).run("KTG-VKC-NLRNL", workload)
        assert report.empty_results == 2

    def test_report_row(self, graph, workload):
        row = ExperimentRunner(graph, "fig1").run("KTG-VKC-NL", workload).row()
        assert row["algorithm"] == "KTG-VKC-NL"
        assert set(row) >= {"dataset", "queries", "mean_ms", "median_ms", "p95_ms"}

    def test_empty_report_statistics(self):
        from repro.workloads.runner import LatencyReport

        report = LatencyReport(algorithm="X", dataset="d", query_count=0)
        assert report.mean_ms == 0.0
        assert report.median_ms == 0.0
        assert report.p95_ms == 0.0


class TestP95NearestRank:
    """Regression: p95 must use ceiling nearest-rank, not banker's
    rounding of ``0.95 * (n - 1)`` (which under-indexes some sizes)."""

    @staticmethod
    def _report(latencies):
        from repro.workloads.runner import LatencyReport

        return LatencyReport(
            algorithm="X",
            dataset="d",
            query_count=len(latencies),
            latencies_ms=list(latencies),
        )

    def test_single_sample_is_its_own_p95(self):
        assert self._report([42.0]).p95_ms == 42.0

    def test_n20_picks_19th_smallest(self):
        # ceil(0.95 * 20) - 1 = 18 -> the 19th smallest value.
        latencies = [float(i) for i in range(1, 21)]
        assert self._report(latencies).p95_ms == 19.0

    def test_n21_picks_20th_smallest(self):
        # ceil(0.95 * 21) - 1 = 19 -> the 20th smallest value.
        latencies = [float(i) for i in range(1, 22)]
        assert self._report(latencies).p95_ms == 20.0

    def test_n31_banker_rounding_regression(self):
        # The old int(round(0.95 * 30)) = 28 under-indexed; the ceiling
        # nearest-rank index is ceil(0.95 * 31) - 1 = 29.
        latencies = [float(i) for i in range(1, 32)]
        assert self._report(latencies).p95_ms == 30.0

    def test_order_independent(self):
        latencies = [float(i) for i in range(21, 0, -1)]
        assert self._report(latencies).p95_ms == 20.0


class TestPLLSpec:
    def test_pll_oracle_kind(self, graph):
        from repro.index.pll import PLLIndex

        spec = AlgorithmSpec("KTG-VKC-DEG-PLL", "vkc-deg", "pll")
        oracle = spec.build_oracle(graph)
        assert isinstance(oracle, PLLIndex)

    def test_custom_spec_runs_workload(self, graph, workload):
        spec = AlgorithmSpec("KTG-VKC-DEG-PLL", "vkc-deg", "pll")
        report = ExperimentRunner(graph).run(spec, workload)
        assert report.algorithm == "KTG-VKC-DEG-PLL"
        assert report.query_count == len(workload)
