"""Unit tests for the one-call experiment reproduction module."""

import pytest

from repro.core.errors import WorkloadError
from repro.workloads.experiments import (
    ExperimentOutcome,
    Finding,
    experiment_ids,
    reproduce,
)


class TestRegistry:
    def test_all_paper_figures_covered(self):
        assert experiment_ids() == [
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
        ]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(WorkloadError, match="unknown experiment"):
            reproduce("fig99")


class TestFindingRendering:
    def test_held_marker(self):
        assert "[HELD" in Finding(claim="x", held=True).render()

    def test_diverged_marker_and_detail(self):
        text = Finding(claim="x", held=False, detail="42 vs 7").render()
        assert "DIVERGED" in text and "42 vs 7" in text

    def test_outcome_render_structure(self):
        outcome = ExperimentOutcome(
            experiment_id="figX",
            title="a title",
            table="tbl",
            findings=[Finding(claim="c", held=True)],
        )
        text = outcome.render()
        assert text.startswith("## figX: a title")
        assert "tbl" in text and "[HELD" in text
        assert outcome.all_held

    def test_all_held_false_when_any_diverges(self):
        outcome = ExperimentOutcome(
            "figX",
            "t",
            "tbl",
            [Finding("a", True), Finding("b", False)],
        )
        assert not outcome.all_held


class TestFastExperiments:
    """The cheap experiments run inside the unit-test budget."""

    def test_fig8_reproduces_case_study(self):
        outcome = reproduce("fig8")
        assert outcome.experiment_id == "fig8"
        assert outcome.all_held
        assert "TAGQ" in outcome.table

    def test_fig9_reproduces_index_shape(self):
        outcome = reproduce("fig9", scale=0.15)
        # The space claim is deterministic; the build-time claim is
        # timing-based and asserted only in the benchmark suite where
        # graphs are big enough for stable measurements.
        space_finding = next(
            finding for finding in outcome.findings if "space" in finding.claim
        )
        assert space_finding.held
        assert "nlrnl_entries" in outcome.table

    def test_fig6_structure(self):
        outcome = reproduce("fig6", scale=0.12, queries=1)
        assert outcome.findings
        assert "top_n" in outcome.table
        # Every algorithm column is present in the rendered figure.
        for name in (
            "KTG-QKC-NLRNL",
            "KTG-VKC-NL",
            "KTG-VKC-NLRNL",
            "KTG-VKC-DEG-NLRNL",
            "DKTG-GREEDY",
        ):
            assert name in outcome.table

    def test_fig4_nl_vs_nlrnl_finding_present(self):
        outcome = reproduce("fig4", scale=0.12, queries=1)
        claims = [finding.claim for finding in outcome.findings]
        assert any("NLRNL beats NL" in claim for claim in claims)


class TestSweepExperimentsAtTinyScale:
    """The expensive sweep experiments, smoke-tested at minimal scale."""

    def test_fig3_structure_and_growth_finding(self):
        outcome = reproduce("fig3", scale=0.1, queries=1)
        assert outcome.experiment_id == "fig3"
        claims = [finding.claim for finding in outcome.findings]
        assert any("group size" in claim for claim in claims)
        assert "group_size" in outcome.table

    def test_fig5_stability_finding_present(self):
        outcome = reproduce("fig5", scale=0.1, queries=1)
        claims = [finding.claim for finding in outcome.findings]
        assert any("stable" in claim for claim in claims)

    def test_fig7_runs_both_panels(self):
        outcome = reproduce("fig7", scale=0.06, queries=1)
        assert "twitter" in outcome.table
        assert "dblp-large" in outcome.table
        claims = [finding.claim for finding in outcome.findings]
        assert any("large-graph" in claim for claim in claims)
