"""Unit tests for the query-workload generator."""

import pytest

from repro.core.coverage import CoverageContext
from repro.core.errors import WorkloadError
from repro.core.graph import AttributedGraph
from repro.core.query import DKTGQuery
from repro.datasets.registry import load_dataset
from repro.workloads.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("brightkite", scale=0.2)


class TestGeneration:
    def test_shape_of_generated_queries(self, dataset):
        graph, vocabulary = dataset
        generator = WorkloadGenerator(graph, vocabulary, dataset_name="bk")
        workload = generator.generate(
            count=10, keyword_size=5, group_size=4, tenuity=3, top_n=7, seed=1
        )
        assert len(workload) == 10
        assert workload.dataset == "bk"
        for query in workload:
            assert len(query.keywords) == 5
            assert query.group_size == 4
            assert query.tenuity == 3
            assert query.top_n == 7

    def test_deterministic_per_seed(self, dataset):
        graph, vocabulary = dataset
        generator = WorkloadGenerator(graph, vocabulary)
        a = generator.generate(count=5, seed=3)
        b = generator.generate(count=5, seed=3)
        assert a.queries == b.queries

    def test_seeds_vary_queries(self, dataset):
        graph, vocabulary = dataset
        generator = WorkloadGenerator(graph, vocabulary)
        a = generator.generate(count=5, seed=1)
        b = generator.generate(count=5, seed=2)
        assert a.queries != b.queries

    def test_answerability_guarantee(self, dataset):
        graph, vocabulary = dataset
        generator = WorkloadGenerator(graph, vocabulary)
        workload = generator.generate(count=20, keyword_size=4, group_size=3, seed=5)
        for query in workload:
            context = CoverageContext(graph, query.keywords)
            assert len(context.qualified_vertices()) >= query.group_size

    def test_keywords_distinct_within_query(self, dataset):
        graph, vocabulary = dataset
        workload = WorkloadGenerator(graph, vocabulary).generate(count=10, seed=2)
        for query in workload:
            assert len(set(query.keywords)) == len(query.keywords)


class TestValidation:
    def test_bad_count_rejected(self, dataset):
        graph, vocabulary = dataset
        with pytest.raises(WorkloadError):
            WorkloadGenerator(graph, vocabulary).generate(count=0)

    def test_bad_keyword_size_rejected(self, dataset):
        graph, vocabulary = dataset
        with pytest.raises(WorkloadError):
            WorkloadGenerator(graph, vocabulary).generate(keyword_size=0)

    def test_oversized_keyword_size_rejected(self, dataset):
        graph, vocabulary = dataset
        with pytest.raises(WorkloadError, match="exceeds vocabulary"):
            WorkloadGenerator(graph, vocabulary).generate(keyword_size=10_000)

    def test_keywordless_graph_rejected(self):
        graph = AttributedGraph(5, [(0, 1)])
        with pytest.raises(WorkloadError, match="no keywords"):
            WorkloadGenerator(graph)

    def test_unanswerable_raises_after_redraws(self):
        # Only one vertex carries keywords: groups of 3 are impossible.
        graph = AttributedGraph(5, [], {0: ["a", "b"]})
        generator = WorkloadGenerator(graph)
        with pytest.raises(WorkloadError, match="answerable"):
            generator.generate(count=1, keyword_size=1, group_size=3)

    def test_unanswerable_allowed_when_disabled(self):
        graph = AttributedGraph(5, [], {0: ["a", "b"]})
        generator = WorkloadGenerator(graph, ensure_answerable=False)
        workload = generator.generate(count=1, keyword_size=1, group_size=3)
        assert len(workload) == 1


class TestFallbackVocabulary:
    def test_uses_graph_labels_when_no_vocabulary(self):
        graph = AttributedGraph(6, [], {i: ["a", "b", "c"] for i in range(6)})
        generator = WorkloadGenerator(graph)
        workload = generator.generate(count=4, keyword_size=2, group_size=2, seed=0)
        for query in workload:
            assert set(query.keywords) <= {"a", "b", "c"}


class TestDKTGLift:
    def test_as_dktg(self, dataset):
        graph, vocabulary = dataset
        workload = WorkloadGenerator(graph, vocabulary).generate(count=3, seed=1)
        lifted = workload.as_dktg(gamma=0.25)
        assert len(lifted) == 3
        for original, query in zip(workload, lifted):
            assert isinstance(query, DKTGQuery)
            assert query.gamma == 0.25
            assert query.keywords == original.keywords
