"""Unit tests for Table I parameter sweeps."""

import pytest

from repro.core.errors import WorkloadError
from repro.datasets.registry import load_dataset
from repro.workloads.sweep import (
    DEFAULTS,
    PARAMETER_TABLE,
    run_parameter_sweep,
)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("brightkite", scale=0.15)


class TestTableI:
    def test_ranges_match_paper(self):
        assert PARAMETER_TABLE["group_size"] == [3, 4, 5, 6, 7]
        assert PARAMETER_TABLE["tenuity"] == [1, 2, 3, 4]
        assert PARAMETER_TABLE["keyword_size"] == [4, 5, 6, 7, 8]
        assert PARAMETER_TABLE["top_n"] == [3, 5, 7, 9, 11]

    def test_defaults_inside_ranges(self):
        for parameter, value in DEFAULTS.items():
            assert value in PARAMETER_TABLE[parameter]


class TestSweep:
    def test_points_cover_grid(self, dataset):
        graph, vocabulary = dataset
        result = run_parameter_sweep(
            graph,
            "tenuity",
            vocabulary=vocabulary,
            dataset_name="bk",
            values=[1, 2],
            algorithms=["KTG-VKC-NLRNL", "KTG-VKC-DEG-NLRNL"],
            queries_per_setting=2,
        )
        assert len(result.points) == 4  # 2 values x 2 algorithms
        assert result.parameter == "tenuity"
        assert result.dataset == "bk"

    def test_series_sorted_by_value(self, dataset):
        graph, vocabulary = dataset
        result = run_parameter_sweep(
            graph,
            "group_size",
            vocabulary=vocabulary,
            values=[4, 3],
            algorithms=["KTG-VKC-NLRNL"],
            queries_per_setting=2,
        )
        series = result.series("KTG-VKC-NLRNL")
        assert [value for value, _ in series] == [3, 4]
        assert all(latency > 0 for _, latency in series)

    def test_algorithms_listed(self, dataset):
        graph, vocabulary = dataset
        result = run_parameter_sweep(
            graph,
            "top_n",
            vocabulary=vocabulary,
            values=[3],
            algorithms=["KTG-VKC-NL", "KTG-QKC-NLRNL"],
            queries_per_setting=1,
        )
        assert result.algorithms() == ["KTG-QKC-NLRNL", "KTG-VKC-NL"]

    def test_rows_carry_parameter_column(self, dataset):
        graph, vocabulary = dataset
        result = run_parameter_sweep(
            graph,
            "keyword_size",
            vocabulary=vocabulary,
            values=[4],
            algorithms=["KTG-VKC-NLRNL"],
            queries_per_setting=1,
        )
        rows = result.rows()
        assert rows and all(row["keyword_size"] == 4 for row in rows)

    def test_overrides_apply(self, dataset):
        graph, vocabulary = dataset
        result = run_parameter_sweep(
            graph,
            "top_n",
            vocabulary=vocabulary,
            values=[3],
            algorithms=["KTG-VKC-NLRNL"],
            queries_per_setting=1,
            overrides={"group_size": 2},
        )
        assert result.points  # simply runs with the overridden default

    def test_unknown_parameter_rejected(self, dataset):
        graph, vocabulary = dataset
        with pytest.raises(WorkloadError, match="unknown sweep parameter"):
            run_parameter_sweep(graph, "zoom", vocabulary=vocabulary)

    def test_same_workload_across_algorithms(self, dataset):
        """Algorithms at the same parameter value see identical queries —
        the paper's compare-on-the-same-batch methodology."""
        graph, vocabulary = dataset
        captured = {}

        from repro.workloads import generator as generator_module

        original = generator_module.WorkloadGenerator.generate

        def recording(self, **kwargs):
            workload = original(self, **kwargs)
            captured.setdefault(kwargs.get("tenuity"), []).append(workload.queries)
            return workload

        generator_module.WorkloadGenerator.generate = recording
        try:
            run_parameter_sweep(
                graph,
                "tenuity",
                vocabulary=vocabulary,
                values=[1],
                algorithms=["KTG-VKC-NLRNL", "KTG-VKC-DEG-NLRNL"],
                queries_per_setting=2,
            )
        finally:
            generator_module.WorkloadGenerator.generate = original
        # One workload generated per value, shared across algorithms.
        assert len(captured[1]) == 1
