"""Unit tests for the exception hierarchy."""

import pytest

from repro.core.errors import (
    DatasetError,
    GraphConstructionError,
    IndexBuildError,
    IndexUpdateError,
    InfeasibleQueryError,
    QueryValidationError,
    ReproError,
    UnknownVertexError,
    WorkloadError,
)


@pytest.mark.parametrize(
    "error_cls",
    [
        GraphConstructionError,
        QueryValidationError,
        InfeasibleQueryError,
        IndexBuildError,
        IndexUpdateError,
        DatasetError,
        WorkloadError,
    ],
)
def test_all_derive_from_repro_error(error_cls):
    assert issubclass(error_cls, ReproError)


def test_unknown_vertex_is_keyerror_and_repro_error():
    error = UnknownVertexError(42)
    assert isinstance(error, KeyError)
    assert isinstance(error, ReproError)
    assert error.vertex == 42
    assert "42" in str(error)


def test_query_validation_is_value_error():
    assert issubclass(QueryValidationError, ValueError)


def test_catching_base_class_catches_all():
    with pytest.raises(ReproError):
        raise DatasetError("boom")
