"""Unit tests for the branch-and-bound solver (Algorithm 1 variants)."""

import pytest

from repro.core.branch_and_bound import BranchAndBoundSolver, make_solver
from repro.core.bruteforce import BruteForceSolver
from repro.core.coverage import CoverageContext
from repro.core.query import KTGQuery
from repro.core.strategies import QKCOrdering, VKCDegreeOrdering, VKCOrdering
from repro.index.bfs import BFSOracle
from repro.index.nl import NLIndex
from repro.index.nlrnl import NLRNLIndex


def coverages(result):
    return [round(group.coverage, 9) for group in result.groups]


def assert_valid_result(graph, query, result):
    """Structural invariants every KTG result must satisfy."""
    context = CoverageContext(graph, query.keywords)
    for group in result.groups:
        assert len(group.members) == query.group_size
        assert group.coverage == pytest.approx(context.group_coverage(group.members))
        for member in group.members:
            assert context.masks[member] != 0, "member covers no query keyword"
        for i, u in enumerate(group.members):
            for v in group.members[i + 1 :]:
                distance = graph.hop_distance(u, v)
                assert distance is None or distance > query.tenuity


class TestRunningExample:
    def test_figure1_optimum(self, figure1, figure1_q):
        result = BranchAndBoundSolver(figure1).solve(figure1_q)
        assert coverages(result) == [0.8, 0.8]
        assert_valid_result(figure1, figure1_q, result)

    @pytest.mark.parametrize("oracle_cls", [BFSOracle, NLIndex, NLRNLIndex])
    @pytest.mark.parametrize(
        "strategy_factory",
        [
            lambda g: QKCOrdering(),
            lambda g: VKCOrdering(),
            lambda g: VKCDegreeOrdering(g.degrees()),
        ],
    )
    def test_all_variants_agree_on_coverage(
        self, figure1, figure1_q, oracle_cls, strategy_factory
    ):
        solver = BranchAndBoundSolver(
            figure1, oracle=oracle_cls(figure1), strategy=strategy_factory(figure1)
        )
        result = solver.solve(figure1_q)
        assert coverages(result) == [0.8, 0.8]
        assert_valid_result(figure1, figure1_q, result)

    def test_matches_brute_force(self, figure1, figure1_q):
        brute = BruteForceSolver(figure1).solve(figure1_q)
        fast = BranchAndBoundSolver(figure1).solve(figure1_q)
        assert coverages(fast) == coverages(brute)


class TestPruningToggles:
    @pytest.mark.parametrize("keyword_pruning", [True, False])
    @pytest.mark.parametrize("kline_filtering", [True, False])
    @pytest.mark.parametrize("use_union_bound", [True, False])
    def test_toggles_preserve_exactness(
        self, figure1, figure1_q, keyword_pruning, kline_filtering, use_union_bound
    ):
        solver = BranchAndBoundSolver(
            figure1,
            keyword_pruning=keyword_pruning,
            kline_filtering=kline_filtering,
            use_union_bound=use_union_bound,
        )
        result = solver.solve(figure1_q)
        assert coverages(result) == [0.8, 0.8]
        assert_valid_result(figure1, figure1_q, result)

    def test_pruning_reduces_nodes(self, figure1, figure1_q):
        pruned = BranchAndBoundSolver(figure1).solve(figure1_q)
        unpruned = BranchAndBoundSolver(figure1, keyword_pruning=False).solve(figure1_q)
        assert pruned.stats.nodes_expanded <= unpruned.stats.nodes_expanded
        assert pruned.stats.keyword_prunes > 0

    def test_kline_filtering_counts_removals(self, figure1, figure1_q):
        result = BranchAndBoundSolver(figure1).solve(figure1_q)
        assert result.stats.kline_removed > 0

    def test_leaf_completion_probes_prefix_once(self):
        # With k-line filtering off, the leaf completion certifies the
        # p-1 prefix once and checks only the p-1 new pairs per
        # candidate.  On an edgeless graph every pair is tenuous and
        # nothing short-circuits, so re-certifying the prefix per
        # candidate (the old behaviour) would cost exactly
        # C(p,2) probes per visited leaf candidate.
        from math import comb

        from repro.core.graph import AttributedGraph

        n, p = 7, 4
        graph = AttributedGraph(n, [], {v: ["a"] for v in range(n)})
        query = KTGQuery(keywords=("a",), group_size=p, tenuity=1, top_n=50)
        oracle = BFSOracle(graph)
        solver = BranchAndBoundSolver(graph, oracle=oracle, kline_filtering=False)
        result = solver.solve(query)
        leaves = comb(n, p)
        assert len(result.groups) == min(50, leaves)
        old_cost = leaves * comb(p, 2)
        assert oracle.stats.probes < old_cost


class TestEdgeCases:
    def test_group_size_one(self, figure1):
        query = KTGQuery(keywords=("SN", "QP"), group_size=1, tenuity=1, top_n=2)
        result = BranchAndBoundSolver(figure1).solve(query)
        assert len(result.groups) == 2
        assert result.best_coverage == pytest.approx(1.0)  # u10 covers both

    def test_infeasible_group_size_returns_empty(self, figure1):
        query = KTGQuery(keywords=("SN",), group_size=9, tenuity=1, top_n=1)
        result = BranchAndBoundSolver(figure1).solve(query)
        assert result.groups == ()
        assert result.best_coverage == 0.0

    def test_no_qualified_vertices(self, figure1):
        query = KTGQuery(keywords=("UNKNOWN-KW",), group_size=2, tenuity=1)
        result = BranchAndBoundSolver(figure1).solve(query)
        assert result.groups == ()

    def test_tenuity_zero_allows_neighbors(self, path_graph):
        query = KTGQuery(
            keywords=("a", "b", "c", "d", "e"), group_size=5, tenuity=0, top_n=1
        )
        result = BranchAndBoundSolver(path_graph).solve(query)
        assert len(result.groups) == 1
        assert result.best_coverage == pytest.approx(1.0)

    def test_large_tenuity_blocks_everything(self, path_graph):
        query = KTGQuery(keywords=("a", "e"), group_size=2, tenuity=4, top_n=1)
        result = BranchAndBoundSolver(path_graph).solve(query)
        assert result.groups == ()

    def test_disconnected_components_are_tenuous(self, disconnected_graph):
        query = KTGQuery(keywords=("x", "y", "z"), group_size=3, tenuity=3, top_n=1)
        result = BranchAndBoundSolver(disconnected_graph).solve(query)
        # One vertex per component: e.g. {0 or 2, 3 or 4, 5}.
        assert len(result.groups) == 1
        assert_valid_result(disconnected_graph, query, result)

    def test_candidate_restriction(self, figure1, figure1_q):
        solver = BranchAndBoundSolver(figure1)
        result = solver.solve(figure1_q, candidates=[0, 1, 2, 3])
        for group in result.groups:
            assert set(group.members) <= {0, 1, 3}  # 2 has no query keyword


class TestAnchors:
    def test_anchor_excludes_neighbourhood(self, figure1):
        query = KTGQuery(
            keywords=("SN", "QP", "DQ", "GQ", "GD"),
            group_size=3,
            tenuity=1,
            top_n=2,
            excluded_anchors=(10,),
        )
        result = BranchAndBoundSolver(figure1).solve(query)
        blocked = {10, 6, 11}  # u10 and its 1-hop neighbours
        for group in result.groups:
            assert not blocked & set(group.members)
        assert_valid_result(figure1, query, result)

    def test_anchor_itself_never_in_result(self, figure1):
        query = KTGQuery(
            keywords=("SN", "GD"), group_size=2, tenuity=1, excluded_anchors=(0,)
        )
        result = BranchAndBoundSolver(figure1).solve(query)
        for group in result.groups:
            assert 0 not in group.members


class TestInstrumentation:
    def test_stats_populated(self, figure1, figure1_q):
        result = BranchAndBoundSolver(figure1).solve(figure1_q)
        stats = result.stats
        assert stats.nodes_expanded > 0
        assert stats.feasible_groups >= 2
        assert stats.offers_accepted >= 2
        assert stats.elapsed_seconds > 0
        assert stats.first_feasible_node is not None

    def test_algorithm_name_composition(self, figure1):
        solver = BranchAndBoundSolver(
            figure1,
            oracle=NLRNLIndex(figure1),
            strategy=VKCDegreeOrdering(figure1.degrees()),
        )
        assert solver.algorithm_name == "KTG-VKC-DEG-NLRNL"

    def test_result_str_lists_groups(self, figure1, figure1_q):
        result = BranchAndBoundSolver(figure1).solve(figure1_q)
        text = str(result)
        assert "1." in text and "coverage" in text

    def test_result_str_empty(self, figure1):
        query = KTGQuery(keywords=("UNKNOWN",), group_size=2)
        result = BranchAndBoundSolver(figure1).solve(query)
        assert "no feasible group" in str(result)

    def test_member_sets(self, figure1, figure1_q):
        result = BranchAndBoundSolver(figure1).solve(figure1_q)
        assert len(result.member_sets()) == 2


class TestFactory:
    def test_make_solver_defaults_to_vkc_deg(self, figure1):
        solver = make_solver(figure1)
        assert isinstance(solver.strategy, VKCDegreeOrdering)

    def test_make_solver_forwards_options(self, figure1):
        solver = make_solver(figure1, "vkc", keyword_pruning=False)
        assert isinstance(solver.strategy, VKCOrdering)
        assert solver.keyword_pruning is False
