"""CSR snapshot tests: layout, view parity, shared-memory lifecycle.

The lifecycle section covers the edge cases the shared-memory protocol
promises to survive: isolated vertices, version invalidation, double
close/release, and attaching after the owner released the segment.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.csr import (
    CsrSnapshot,
    adjacency_footprint_bytes,
    counter_totals,
    reset_counters,
    validate_graph_layout,
)
from repro.core.errors import SnapshotAttachError, SnapshotError
from repro.core.graph import AttributedGraph
from repro.obs.instruments import InstrumentRegistry
from tests.conftest import make_random_attributed_graph


@pytest.fixture
def graph():
    return AttributedGraph(
        6,
        [(0, 1), (1, 2), (0, 2), (3, 4)],
        {0: ["x"], 1: ["y"], 2: ["x", "y"], 3: ["z"], 4: ["x"], 5: ["z"]},
    )


class TestLayoutSwitch:
    def test_accepts_both_layouts(self):
        assert validate_graph_layout("adjacency") == "adjacency"
        assert validate_graph_layout("csr") == "csr"

    def test_rejects_unknown_layout(self):
        with pytest.raises(ValueError, match="graph_layout"):
            validate_graph_layout("soa")


class TestSnapshotStructure:
    def test_rows_are_sorted_neighbour_lists(self, graph):
        snapshot = CsrSnapshot.from_graph(graph)
        indptr, indices = snapshot.indptr, snapshot.indices
        assert len(indptr) == graph.num_vertices + 1
        assert len(indices) == 2 * graph.num_edges
        for v in graph.vertices():
            row = indices[indptr[v] : indptr[v + 1]]
            assert row == sorted(graph.neighbors(v))

    def test_isolated_vertices_get_empty_rows(self, graph):
        snapshot = CsrSnapshot.from_graph(graph)
        indptr = snapshot.indptr
        assert indptr[5 + 1] - indptr[5] == 0
        assert snapshot.neighbors_list(5) == []

    def test_graph_of_only_isolated_vertices(self):
        lonely = AttributedGraph(4, [], {0: ["a"]})
        snapshot = CsrSnapshot.from_graph(lonely)
        assert snapshot.indices == []
        assert snapshot.indptr == [0, 0, 0, 0, 0]
        view = snapshot.view()
        assert view.degrees() == [0, 0, 0, 0]
        assert view.hop_distance(0, 1) is None

    def test_empty_graph(self):
        snapshot = CsrSnapshot.from_graph(AttributedGraph(0, []))
        assert snapshot.num_vertices == 0
        assert snapshot.indptr == [0]
        assert list(snapshot.view().vertices()) == []

    def test_keyword_masks_round_trip(self, graph):
        snapshot = CsrSnapshot.from_graph(graph)
        view = snapshot.view()
        for v in graph.vertices():
            assert view.keywords_of(v) == graph.keywords_of(v)
            assert sorted(view.keyword_labels(v)) == sorted(graph.keyword_labels(v))

    def test_cached_snapshot_reused_until_version_bump(self, graph):
        first = graph.csr_snapshot()
        assert graph.csr_snapshot() is first
        graph.add_edge(2, 3)
        second = graph.csr_snapshot()
        assert second is not first
        assert second.graph_version == graph.version
        assert second.view().has_edge(2, 3)

    def test_set_keywords_also_invalidates(self, graph):
        first = graph.csr_snapshot()
        graph.set_keywords(5, ["x", "w"])
        second = graph.csr_snapshot()
        assert second is not first
        assert second.view().keywords_of(5) == graph.keywords_of(5)


class TestViewParity:
    def test_view_matches_graph_read_api(self):
        graph = make_random_attributed_graph(num_vertices=30, seed=3)
        view = graph.csr_snapshot().view()
        assert view.num_vertices == graph.num_vertices
        assert view.num_edges == graph.num_edges
        assert view.version == graph.version
        assert view.degrees() == graph.degrees()
        assert sorted(view.edges()) == sorted(graph.edges())
        for v in graph.vertices():
            assert view.neighbors(v) == graph.neighbors(v)
            assert view.bfs_distances(v) == graph.bfs_distances(v)
        for u in range(0, 30, 5):
            for v in range(0, 30, 7):
                assert view.has_edge(u, v) == graph.has_edge(u, v)
                assert view.hop_distance(u, v) == graph.hop_distance(u, v)

    def test_vertices_with_any_keyword(self, graph):
        view = graph.csr_snapshot().view()
        table = graph.keyword_table
        wanted = frozenset({table.intern("x"), table.intern("z")})
        assert view.vertices_with_any_keyword(wanted) == [0, 2, 3, 4, 5]

    def test_view_is_read_only(self, graph):
        view = graph.csr_snapshot().view()
        with pytest.raises(SnapshotError):
            view.add_edge(0, 5)
        with pytest.raises(SnapshotError):
            view.remove_edge(0, 1)
        with pytest.raises(SnapshotError):
            view.set_keywords(0, ["q"])


class TestSharedLifecycle:
    def test_share_attach_round_trip(self, graph):
        local = CsrSnapshot.from_graph(graph)
        shared = local.share()
        try:
            attached = CsrSnapshot.attach(shared.name)
            assert attached.indptr == local.indptr
            assert attached.indices == local.indices
            assert attached.keyword_masks == local.keyword_masks
            assert attached.keyword_labels == local.keyword_labels
            attached.close()
        finally:
            shared.release()

    def test_double_close_and_double_release_are_idempotent(self, graph):
        shared = CsrSnapshot.from_graph(graph).share()
        attached = CsrSnapshot.attach(shared.name)
        attached.close()
        attached.close()
        shared.release()
        shared.release()
        assert shared.closed

    def test_attach_after_release_raises(self, graph):
        shared = CsrSnapshot.from_graph(graph).share()
        name = shared.name
        shared.release()
        assert shared.name is None
        with pytest.raises(SnapshotAttachError, match="already released"):
            CsrSnapshot.attach(name)

    def test_attach_unknown_name_raises(self):
        with pytest.raises(SnapshotAttachError):
            CsrSnapshot.attach("psm_no_such_segment")

    def test_attach_corrupt_segment_closes_handle(self, monkeypatch):
        """A failed attach must close the segment handle it opened.

        An attacher dying between open and view construction would
        otherwise keep the mapping alive after the owner unlinks the
        name, leaving ``/dev/shm`` populated (the CI leak check catches
        exactly this).  The zero-filled segment has the wrong magic, so
        ``_load_header`` rejects it after the handle is already open.
        """
        import repro.core.csr as csr_mod
        from multiprocessing import shared_memory

        owner = shared_memory.SharedMemory(create=True, size=128)
        closes: list[bool] = []
        real_attach = csr_mod._attach_segment

        def recording_attach(name):
            shm = real_attach(name)
            original_close = shm.close

            def close():
                closes.append(True)
                original_close()

            shm.close = close
            return shm

        monkeypatch.setattr(csr_mod, "_attach_segment", recording_attach)
        try:
            with pytest.raises(
                SnapshotAttachError, match="does not hold a CSR snapshot"
            ):
                CsrSnapshot.attach(owner.name)
            assert closes == [True]
        finally:
            owner.close()
            owner.unlink()

    def test_closed_snapshot_rejects_reads(self, graph):
        shared = CsrSnapshot.from_graph(graph).share()
        attached = CsrSnapshot.attach(shared.name)
        attached.close()
        with pytest.raises(SnapshotError, match="closed"):
            attached.materialize()
        shared.release()

    def test_materialize_detaches_from_segment(self, graph):
        shared = CsrSnapshot.from_graph(graph).share()
        local = shared.materialize()
        shared.release()
        # The copy survives the segment: reads hit process-local bytes.
        assert local.view().neighbors(0) == graph.neighbors(0)

    def test_snapshot_is_not_picklable(self, graph):
        with pytest.raises(SnapshotError):
            pickle.dumps(CsrSnapshot.from_graph(graph))

    def test_graph_pickles_without_its_snapshot_cache(self, graph):
        graph.csr_snapshot()
        clone = pickle.loads(pickle.dumps(graph))
        assert clone._csr_cache is None
        assert clone.csr_snapshot().indices == graph.csr_snapshot().indices


class TestCounters:
    def test_module_totals_and_registry(self, graph):
        reset_counters()
        registry = InstrumentRegistry()
        shared = CsrSnapshot.from_graph(graph, instruments=registry).share(
            instruments=registry
        )
        CsrSnapshot.attach(shared.name, instruments=registry).close()
        shared.release(instruments=registry)
        totals = counter_totals()
        assert totals["builds"] == 1
        assert totals["attaches"] == 1
        assert totals["segment_releases"] == 1
        assert totals["bytes"] == 2 * shared.nbytes
        report = registry.report()["counters"]
        assert report["csr.builds"] == 1
        assert report["csr.attaches"] == 1
        assert report["csr.segment_releases"] == 1

    def test_release_counts_only_real_unlinks(self, graph):
        reset_counters()
        shared = CsrSnapshot.from_graph(graph).share()
        shared.release()
        shared.release()
        assert counter_totals()["segment_releases"] == 1

    def test_adjacency_footprint_positive(self, graph):
        footprint = adjacency_footprint_bytes(graph)
        assert footprint > CsrSnapshot.from_graph(graph).nbytes
