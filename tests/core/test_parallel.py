"""Unit tests for the parallel branch-and-bound engine.

The heavy serial-vs-parallel equivalence sweep lives in
``tests/properties/test_prop_parallel.py``; this module covers the
engine's mechanics: frontier splitting, the recording pool, executor
plumbing, budgets, counters and the degenerate paths.
"""

from __future__ import annotations

import pytest

from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.errors import IndexBuildError
from repro.core.parallel import (
    EXECUTORS,
    ParallelBranchAndBoundSolver,
    ParallelKTGResult,
    _RecordingFloorPool,
    make_parallel_solver,
    root_frontier,
)
from repro.core.query import KTGQuery
from repro.core.strategies import VKCDegreeOrdering
from repro.index.bfs import BFSOracle
from repro.obs.instruments import InstrumentRegistry

from tests.conftest import make_random_attributed_graph


@pytest.fixture(scope="module")
def graph():
    return make_random_attributed_graph(num_vertices=36, seed=5)


@pytest.fixture(scope="module")
def query():
    return KTGQuery(
        keywords=("kw000", "kw001", "kw002"), group_size=3, tenuity=2, top_n=3
    )


def serial_result(graph, query, **options):
    solver = BranchAndBoundSolver(
        graph,
        oracle=BFSOracle(graph),
        strategy=VKCDegreeOrdering(graph.degrees()),
        **options,
    )
    return solver.solve(query)


# ----------------------------------------------------------------------
# Frontier splitting
# ----------------------------------------------------------------------
def test_root_frontier_matches_serial_root_loop():
    # Serial iterates positions 0 .. len(initial) - group_size.
    assert list(root_frontier([1, 2, 3, 4, 5], 3)) == [0, 1, 2]
    assert list(root_frontier([1, 2, 3], 3)) == [0]


def test_root_frontier_empty_when_too_few_candidates():
    assert list(root_frontier([1, 2], 3)) == []
    assert list(root_frontier([], 1)) == []


# ----------------------------------------------------------------------
# Recording floor pool
# ----------------------------------------------------------------------
def test_recording_pool_floors_threshold_and_records_offers():
    floor = 0.0
    pool = _RecordingFloorPool(2, lambda: floor)
    assert pool.offer((1, 2), 0.5)
    assert pool.offer((3, 4), 0.8)
    assert pool.threshold == 0.5  # full: Nth best
    # An offer at or below the local threshold is rejected and NOT recorded.
    assert not pool.offer((5, 6), 0.5)
    assert [(members, cov) for members, cov in pool.offers] == [
        ((1, 2), 0.5),
        ((3, 4), 0.8),
    ]


def test_recording_pool_respects_broadcast_floor():
    floor = 0.9
    pool = _RecordingFloorPool(2, lambda: floor)
    # Below the broadcast floor: pruned fleet-wide, never recorded.
    assert not pool.would_admit(0.5)
    assert not pool.offer((1, 2), 0.5)
    assert pool.offers == []
    assert pool.threshold >= 0.9
    # Above the floor: admitted locally.
    assert pool.offer((3, 4), 0.95)


# ----------------------------------------------------------------------
# Engine equivalence across executors (the smoke version; the property
# sweep drives many graphs/strategies)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("jobs", [2, 3])
def test_engine_matches_serial(graph, query, executor, jobs):
    serial = serial_result(graph, query)
    with ParallelBranchAndBoundSolver(
        graph,
        oracle=BFSOracle(graph),
        strategy=VKCDegreeOrdering(graph.degrees()),
        jobs=jobs,
        executor=executor,
    ) as engine:
        result = engine.solve(query)
    assert isinstance(result, ParallelKTGResult)
    assert result.groups == serial.groups
    assert result.stats.offers_accepted == serial.stats.offers_accepted
    assert result.jobs == jobs
    assert result.subproblems > 0


def test_jobs_one_downgrades_to_inline_and_matches_serial(graph, query):
    engine = ParallelBranchAndBoundSolver(
        graph, oracle=BFSOracle(graph), jobs=1, executor="process"
    )
    assert engine.executor_kind == "inline"
    serial = BranchAndBoundSolver(graph, oracle=BFSOracle(graph)).solve(query)
    result = engine.solve(query)
    assert result.groups == serial.groups


def test_invalid_construction(graph):
    with pytest.raises(ValueError):
        ParallelBranchAndBoundSolver(graph, jobs=0)
    with pytest.raises(ValueError):
        ParallelBranchAndBoundSolver(graph, executor="fibers")


def test_stale_oracle_rejected(query):
    local = make_random_attributed_graph(num_vertices=20, seed=9)
    oracle = BFSOracle(local)
    engine = ParallelBranchAndBoundSolver(local, oracle=oracle, jobs=2, executor="inline")
    if local.has_edge(0, 1):
        local.remove_edge(0, 1)
    else:
        local.add_edge(0, 1)
    with pytest.raises(IndexBuildError):
        engine.solve(query)


# ----------------------------------------------------------------------
# Budgets
# ----------------------------------------------------------------------
def test_node_budget_flags_exhaustion(graph, query):
    with ParallelBranchAndBoundSolver(
        graph,
        oracle=BFSOracle(graph),
        strategy=VKCDegreeOrdering(graph.degrees()),
        jobs=2,
        executor="inline",
        node_budget=3,
    ) as engine:
        result = engine.solve(query)
    assert result.stats.budget_exhausted


def test_per_solve_budget_override(graph, query):
    with ParallelBranchAndBoundSolver(
        graph,
        oracle=BFSOracle(graph),
        strategy=VKCDegreeOrdering(graph.degrees()),
        jobs=2,
        executor="inline",
    ) as engine:
        unbounded = engine.solve(query)
        capped = engine.solve(query, node_budget=3)
    assert not unbounded.stats.budget_exhausted
    assert capped.stats.budget_exhausted


def test_node_budget_is_jobs_invariant_without_broadcast(graph, query):
    outcomes = []
    for jobs in (1, 2, 4):
        with ParallelBranchAndBoundSolver(
            graph,
            oracle=BFSOracle(graph),
            strategy=VKCDegreeOrdering(graph.degrees()),
            jobs=jobs,
            executor="inline",
            node_budget=20,
            bound_broadcast=False,
        ) as engine:
            result = engine.solve(query)
        outcomes.append((result.groups, result.stats.nodes_expanded))
    assert outcomes[0] == outcomes[1] == outcomes[2]


# ----------------------------------------------------------------------
# Degenerate paths
# ----------------------------------------------------------------------
def test_group_size_one_takes_serial_path(graph):
    single = KTGQuery(keywords=("kw000", "kw001"), group_size=1, tenuity=2, top_n=2)
    serial = BranchAndBoundSolver(graph, oracle=BFSOracle(graph)).solve(single)
    with ParallelBranchAndBoundSolver(
        graph, oracle=BFSOracle(graph), jobs=2, executor="inline"
    ) as engine:
        result = engine.solve(single)
    assert result.groups == serial.groups
    assert result.subproblems == 0


def test_infeasible_query_empty_result(graph):
    query = KTGQuery(keywords=("zzz",), group_size=3, tenuity=2, top_n=2)
    with ParallelBranchAndBoundSolver(
        graph, oracle=BFSOracle(graph), jobs=2, executor="inline"
    ) as engine:
        result = engine.solve(query)
    assert result.groups == ()


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
def test_instrument_counters(graph, query):
    registry = InstrumentRegistry()
    with ParallelBranchAndBoundSolver(
        graph,
        oracle=BFSOracle(graph),
        strategy=VKCDegreeOrdering(graph.degrees()),
        jobs=2,
        executor="inline",
        instruments=registry,
    ) as engine:
        engine.solve(query)
    report = registry.report()
    counters = report["counters"]
    assert counters["parallel.tasks"] >= 1
    assert counters["parallel.subproblems"] >= 1
    assert "parallel.bound_broadcasts" in counters
    assert "parallel.steals" in counters


def test_worker_stats_partition_totals(graph, query):
    with ParallelBranchAndBoundSolver(
        graph,
        oracle=BFSOracle(graph),
        strategy=VKCDegreeOrdering(graph.degrees()),
        jobs=2,
        executor="inline",
        bound_broadcast=False,
    ) as engine:
        result = engine.solve(query)
    # Aggregate nodes = root + per-subproblem sums.
    assert result.worker_stats
    assert result.stats.nodes_expanded == 1 + sum(
        stats.nodes_expanded for stats in result.worker_stats
    )


def test_worker_init_failure_closes_attached_snapshot(graph, monkeypatch):
    """A csr worker dying during init must close the snapshot it
    attached, or the mapping outlives the owner's unlink and the
    segment leaks in /dev/shm."""
    from repro.core import parallel as parallel_mod
    from repro.core.csr import CsrSnapshot

    shared = graph.csr_snapshot().share()
    attached: list[CsrSnapshot] = []
    real_attach = CsrSnapshot.attach

    def recording_attach(name, **kwargs):
        snapshot = real_attach(name, **kwargs)
        attached.append(snapshot)
        return snapshot

    monkeypatch.setattr(CsrSnapshot, "attach", recording_attach)
    try:
        with pytest.raises(ValueError, match="distance_engine"):
            parallel_mod._parallel_worker_init_csr(
                shared.name,
                None,
                ("vkc", {}),
                {"distance_engine": "bogus"},
                None,
            )
        assert len(attached) == 1
        assert attached[0].closed
    finally:
        shared.release()


def test_pool_construction_failure_releases_segment(graph, monkeypatch):
    """If the process pool cannot even be constructed, the freshly
    shared CSR segment must be unlinked eagerly instead of stranding
    until close()."""
    from repro.core import parallel as parallel_mod

    def refuse_spawn(*args, **kwargs):
        raise RuntimeError("spawn refused")

    monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", refuse_spawn)
    engine = ParallelBranchAndBoundSolver(
        graph, jobs=2, executor="process", graph_layout="csr"
    )
    try:
        with pytest.raises(RuntimeError, match="spawn refused"):
            engine._ensure_pool()
        assert engine._shared_snapshot is None
    finally:
        engine.close()


def test_factory_and_repr(graph, query):
    engine = make_parallel_solver(graph, "vkc", jobs=2, executor="inline")
    try:
        assert "jobs=2" in repr(engine)
        serial = BranchAndBoundSolver(
            graph, oracle=engine.oracle, strategy=engine.strategy
        ).solve(query)
        assert engine.solve(query).groups == serial.groups
    finally:
        engine.close()
