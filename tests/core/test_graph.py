"""Unit tests for the attributed-graph substrate."""

import pytest

from repro.core.errors import GraphConstructionError, UnknownVertexError
from repro.core.graph import AttributedGraph, KeywordTable


class TestKeywordTable:
    def test_intern_assigns_dense_ids(self):
        table = KeywordTable()
        assert table.intern("SN") == 0
        assert table.intern("QP") == 1
        assert table.intern("SN") == 0
        assert len(table) == 2

    def test_label_round_trip(self):
        table = KeywordTable(["a", "b"])
        assert table.label(table.id_of("b")) == "b"

    def test_labels_sorted_by_id(self):
        table = KeywordTable(["z", "a", "m"])
        assert table.labels({2, 0}) == ["z", "m"]

    def test_get_returns_none_for_unknown(self):
        table = KeywordTable()
        assert table.get("missing") is None

    def test_id_of_raises_for_unknown(self):
        with pytest.raises(KeyError):
            KeywordTable().id_of("missing")

    def test_contains_and_iter(self):
        table = KeywordTable(["a", "b"])
        assert "a" in table
        assert "c" not in table
        assert list(table) == ["a", "b"]


class TestConstruction:
    def test_empty_graph(self):
        graph = AttributedGraph(0)
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert graph.average_degree() == 0.0

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphConstructionError):
            AttributedGraph(-1)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphConstructionError, match="self-loop"):
            AttributedGraph(2, [(0, 0)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphConstructionError, match="duplicate"):
            AttributedGraph(2, [(0, 1), (1, 0)])

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(UnknownVertexError):
            AttributedGraph(2, [(0, 5)])

    def test_non_int_vertex_rejected(self):
        with pytest.raises(GraphConstructionError):
            AttributedGraph(2, [("a", 1)])

    def test_bool_vertex_rejected(self):
        with pytest.raises(GraphConstructionError):
            AttributedGraph(2, [(True, 0)])

    def test_keyword_mapping(self):
        graph = AttributedGraph(3, [], {0: ["a", "b"], 2: ["a"]})
        assert graph.keyword_labels(0) == ["a", "b"]
        assert graph.keyword_labels(1) == []
        assert graph.keyword_labels(2) == ["a"]

    def test_keyword_sequence(self):
        graph = AttributedGraph(2, [], [["a"], ["b"]])
        assert graph.keyword_labels(1) == ["b"]

    def test_keyword_sequence_length_mismatch_rejected(self):
        with pytest.raises(GraphConstructionError, match="length"):
            AttributedGraph(3, [], [["a"], ["b"]])

    def test_keyword_unknown_vertex_rejected(self):
        with pytest.raises(UnknownVertexError):
            AttributedGraph(2, [], {5: ["a"]})

    def test_shared_keyword_table(self):
        table = KeywordTable(["a"])
        graph = AttributedGraph(1, [], {0: ["b"]}, keyword_table=table)
        assert graph.keyword_table is table
        assert table.id_of("b") == 1


class TestTopology:
    def test_neighbors_and_degree(self, figure1):
        assert sorted(figure1.neighbors(0)) == [1, 2, 3, 4, 9, 11]
        assert figure1.degree(0) == 6
        assert sorted(figure1.neighbors(3)) == [0, 2, 4, 9]

    def test_degrees_table(self, path_graph):
        assert path_graph.degrees() == [1, 2, 2, 2, 1]

    def test_has_edge_symmetric(self, path_graph):
        assert path_graph.has_edge(0, 1)
        assert path_graph.has_edge(1, 0)
        assert not path_graph.has_edge(0, 2)

    def test_edges_iterates_once_each(self, figure1):
        edges = list(figure1.edges())
        assert len(edges) == figure1.num_edges
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == len(edges)

    def test_average_degree(self, path_graph):
        assert path_graph.average_degree() == pytest.approx(2 * 4 / 5)

    def test_unknown_vertex_probes_raise(self, path_graph):
        with pytest.raises(UnknownVertexError):
            path_graph.neighbors(99)
        with pytest.raises(UnknownVertexError):
            path_graph.degree(-1)


class TestDistances:
    def test_hop_distance_basic(self, path_graph):
        assert path_graph.hop_distance(0, 0) == 0
        assert path_graph.hop_distance(0, 1) == 1
        assert path_graph.hop_distance(0, 4) == 4

    def test_hop_distance_cutoff(self, path_graph):
        assert path_graph.hop_distance(0, 4, cutoff=3) is None
        assert path_graph.hop_distance(0, 3, cutoff=3) == 3

    def test_hop_distance_unreachable(self, disconnected_graph):
        assert disconnected_graph.hop_distance(0, 3) is None
        assert disconnected_graph.hop_distance(5, 0) is None

    def test_bfs_distances_full(self, path_graph):
        assert path_graph.bfs_distances(0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_bfs_distances_truncated(self, path_graph):
        assert path_graph.bfs_distances(0, max_depth=2) == {0: 0, 1: 1, 2: 2}

    def test_eccentricity(self, path_graph):
        assert path_graph.eccentricity(0) == 4
        assert path_graph.eccentricity(2) == 2

    def test_figure1_documented_distances(self, figure1):
        assert figure1.hop_distance(3, 5) == 3
        within2_of_8 = {
            v
            for v in figure1.vertices()
            if v != 8 and (d := figure1.hop_distance(8, v)) is not None and d <= 2
        }
        assert within2_of_8 == {0, 3, 4, 6, 7}


class TestMutation:
    def test_add_edge_bumps_version(self, path_graph):
        version = path_graph.version
        path_graph.add_edge(0, 4)
        assert path_graph.version == version + 1
        assert path_graph.has_edge(0, 4)
        assert path_graph.num_edges == 5

    def test_add_duplicate_edge_rejected(self, path_graph):
        with pytest.raises(GraphConstructionError):
            path_graph.add_edge(0, 1)

    def test_remove_edge(self, path_graph):
        path_graph.remove_edge(1, 2)
        assert not path_graph.has_edge(1, 2)
        assert path_graph.hop_distance(0, 4) is None

    def test_remove_missing_edge_rejected(self, path_graph):
        with pytest.raises(GraphConstructionError, match="does not exist"):
            path_graph.remove_edge(0, 3)

    def test_set_keywords(self, path_graph):
        path_graph.set_keywords(0, ["x", "y"])
        assert path_graph.keyword_labels(0) == ["x", "y"]


class TestDerived:
    def test_connected_components(self, disconnected_graph):
        component = disconnected_graph.connected_components()
        assert component[0] == component[1] == component[2]
        assert component[3] == component[4]
        assert component[0] != component[3]
        assert component[5] not in (component[0], component[3])

    def test_vertices_with_any_keyword(self, disconnected_graph):
        table = disconnected_graph.keyword_table
        x_id = table.id_of("x")
        assert disconnected_graph.vertices_with_any_keyword(frozenset({x_id})) == [0, 2, 4]

    def test_subgraph_structure(self, figure1):
        sub = figure1.subgraph([0, 1, 2, 11])
        assert sub.num_vertices == 4
        # 0-1, 0-2, 1-2, 0-11 survive with remapped ids.
        assert sub.num_edges == 4
        assert sub.keyword_labels(3) == figure1.keyword_labels(11)

    def test_subgraph_duplicate_rejected(self, figure1):
        with pytest.raises(GraphConstructionError, match="duplicates"):
            figure1.subgraph([0, 0])

    def test_networkx_round_trip(self, figure1):
        nx_graph = figure1.to_networkx()
        back = AttributedGraph.from_networkx(nx_graph)
        assert back.num_vertices == figure1.num_vertices
        assert sorted(back.edges()) == sorted(figure1.edges())
        for vertex in figure1.vertices():
            assert back.keyword_labels(vertex) == figure1.keyword_labels(vertex)

    def test_repr_mentions_sizes(self, figure1):
        assert "|V|=12" in repr(figure1)
