"""Unit tests for the exact DKTG solver and greedy-vs-exact comparisons."""

import pytest

from repro.core.dktg import (
    DKTGGreedySolver,
    dktg_score,
    greedy_approximation_ratio,
)
from repro.core.dktg_exact import DKTGExactSolver
from repro.core.graph import AttributedGraph
from repro.core.query import DKTGQuery
from repro.datasets.figure1 import case_study_graph, case_study_query, figure1_example


class TestExactSolver:
    def test_invalid_cap_rejected(self, figure1):
        with pytest.raises(ValueError):
            DKTGExactSolver(figure1, max_groups=0)

    def test_score_matches_equation4(self, figure1):
        query = DKTGQuery(
            keywords=("SN", "QP", "DQ", "GQ", "GD"), group_size=3, tenuity=1, top_n=2
        )
        result = DKTGExactSolver(figure1).solve(query)
        assert result.score == pytest.approx(
            dktg_score(
                [g.coverage for g in result.groups],
                [g.members for g in result.groups],
                query.gamma,
            )
        )

    def test_exact_dominates_greedy(self):
        for gamma in (0.2, 0.5, 0.8):
            graph = case_study_graph()
            query = case_study_query(gamma=gamma)
            exact = DKTGExactSolver(graph).solve(query)
            greedy = DKTGGreedySolver(graph).solve(query)
            assert exact.score >= greedy.score - 1e-9, gamma

    def test_exact_beats_naive_topn_when_diversity_matters(self):
        # Three high-coverage overlapping groups vs disjoint ones: the
        # exact solver must prefer the disjoint set at low gamma.
        graph = figure1_example()
        query = DKTGQuery(
            keywords=("SN", "QP", "DQ", "GQ", "GD"),
            group_size=3,
            tenuity=1,
            top_n=2,
            gamma=0.1,
        )
        result = DKTGExactSolver(graph).solve(query)
        # With gamma=0.1 diversity dominates: expect disjoint groups.
        members_a = set(result.groups[0].members)
        members_b = set(result.groups[1].members)
        assert not members_a & members_b
        assert result.diversity == 1.0

    def test_greedy_meets_paper_guarantee_against_true_optimum(self):
        graph = case_study_graph()
        query = case_study_query()
        exact = DKTGExactSolver(graph).solve(query)
        greedy = DKTGGreedySolver(graph).solve(query)
        ratio = greedy_approximation_ratio(len(query.keywords), query.gamma)
        if exact.score > 0:
            assert greedy.score / exact.score >= ratio - 1e-9

    def test_partial_result_when_few_groups_exist(self):
        graph = AttributedGraph(
            4, [(0, 1)], {0: ["a"], 1: ["a"], 2: ["a"], 3: ["a"]}
        )
        query = DKTGQuery(keywords=("a",), group_size=2, tenuity=1, top_n=5)
        result = DKTGExactSolver(graph).solve(query)
        assert 0 < len(result.groups) <= 5

    def test_empty_when_infeasible(self, figure1):
        query = DKTGQuery(keywords=("NOPE",), group_size=2, tenuity=1, top_n=2)
        result = DKTGExactSolver(figure1).solve(query)
        assert result.groups == ()
        assert result.score == 0.0

    def test_group_cap_applies(self, figure1):
        query = DKTGQuery(
            keywords=("SN", "QP", "DQ", "GQ", "GD"), group_size=3, tenuity=1, top_n=2
        )
        capped = DKTGExactSolver(figure1, max_groups=3).solve(query)
        assert capped.stats.feasible_groups >= 3
        assert len(capped.groups) == 2

    def test_algorithm_name(self, figure1):
        assert DKTGExactSolver(figure1).algorithm_name == "DKTG-EXACT"


class TestGreedyQualityOnRandomInstances:
    def test_greedy_close_to_exact_on_small_graphs(self):
        from tests.conftest import make_random_attributed_graph

        gaps = []
        for seed in range(4):
            graph = make_random_attributed_graph(
                num_vertices=18, edges_per_vertex=2, seed=seed, vocabulary_size=8
            )
            labels = sorted(graph.keyword_table)[:4]
            if not labels:
                continue
            query = DKTGQuery(
                keywords=tuple(labels), group_size=2, tenuity=1, top_n=2
            )
            exact = DKTGExactSolver(graph).solve(query)
            greedy = DKTGGreedySolver(graph).solve(query)
            assert exact.score >= greedy.score - 1e-9
            if exact.score > 0:
                gaps.append(greedy.score / exact.score)
        if gaps:
            guarantee = greedy_approximation_ratio(4, 0.5)
            assert min(gaps) >= guarantee - 1e-9
