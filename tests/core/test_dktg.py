"""Unit tests for DKTG: diversity math and the greedy solver."""

import pytest

from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.dktg import (
    DKTGGreedySolver,
    dktg_score,
    greedy_approximation_ratio,
    pair_diversity,
    result_diversity,
)
from repro.core.query import DKTGQuery
from repro.core.strategies import VKCDegreeOrdering
from repro.datasets.figure1 import case_study_graph, case_study_query
from repro.index.nlrnl import NLRNLIndex


class TestPairDiversity:
    """Equation 2: Jaccard distance on member sets."""

    def test_disjoint_groups(self):
        assert pair_diversity((1, 2, 3), (4, 5, 6)) == 1.0

    def test_identical_groups(self):
        assert pair_diversity((1, 2), (2, 1)) == 0.0

    def test_paper_example(self):
        # Section VI: groups sharing 2 of 3 members -> (4-2)/4 = 0.5.
        assert pair_diversity((10, 5, 1), (10, 5, 2)) == 0.5

    def test_symmetry(self):
        assert pair_diversity((1, 2), (2, 3)) == pair_diversity((2, 3), (1, 2))

    def test_empty_groups(self):
        assert pair_diversity((), ()) == 0.0

    def test_bounds(self):
        for a, b in [((1,), (1, 2)), ((1, 2, 3), (3, 4)), ((1,), (2,))]:
            assert 0.0 <= pair_diversity(a, b) <= 1.0


class TestResultDiversity:
    """Equation 3: average over all group pairs."""

    def test_paper_example_full_diversity(self):
        # Section VI example: {u10,u5,u1} and {u11,u7,u2} -> (6-0)/6 = 1.
        assert result_diversity([(10, 5, 1), (11, 7, 2)]) == 1.0

    def test_single_group_defined_as_one(self):
        assert result_diversity([(1, 2, 3)]) == 1.0

    def test_empty_defined_as_one(self):
        assert result_diversity([]) == 1.0

    def test_average_of_pairs(self):
        groups = [(1, 2), (1, 3), (4, 5)]
        expected = (
            pair_diversity((1, 2), (1, 3))
            + pair_diversity((1, 2), (4, 5))
            + pair_diversity((1, 3), (4, 5))
        ) / 3
        assert result_diversity(groups) == pytest.approx(expected)


class TestScore:
    """Equation 4: gamma * min coverage + (1-gamma) * diversity."""

    def test_weighting(self):
        score = dktg_score([0.8, 0.6], [(1, 2), (3, 4)], gamma=0.5)
        assert score == pytest.approx(0.5 * 0.6 + 0.5 * 1.0)

    def test_gamma_extremes(self):
        groups = [(1, 2), (1, 3)]
        assert dktg_score([1.0, 0.4], groups, gamma=1.0) == pytest.approx(0.4)
        assert dktg_score([1.0, 0.4], groups, gamma=0.0) == pytest.approx(
            result_diversity(groups)
        )

    def test_empty_result_scores_zero(self):
        assert dktg_score([], [], gamma=0.5) == 0.0


class TestApproximationRatio:
    def test_paper_formula(self):
        # 1 - gamma*(|W_Q|-1)/|W_Q|.
        assert greedy_approximation_ratio(5, 0.5) == pytest.approx(1 - 0.5 * 4 / 5)

    def test_single_keyword_is_exact(self):
        assert greedy_approximation_ratio(1, 0.7) == 1.0

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            greedy_approximation_ratio(0, 0.5)


class TestGreedySolver:
    def test_groups_are_pairwise_disjoint(self, figure1):
        query = DKTGQuery(
            keywords=("SN", "QP", "DQ", "GQ", "GD"),
            group_size=3,
            tenuity=1,
            top_n=2,
        )
        result = DKTGGreedySolver(figure1).solve(query)
        assert len(result.groups) == 2
        members_a = set(result.groups[0].members)
        members_b = set(result.groups[1].members)
        assert not members_a & members_b
        assert result.diversity == 1.0

    def test_first_group_is_optimal_coverage(self, figure1):
        query = DKTGQuery(
            keywords=("SN", "QP", "DQ", "GQ", "GD"),
            group_size=3,
            tenuity=1,
            top_n=2,
        )
        result = DKTGGreedySolver(figure1).solve(query)
        assert result.groups[0].coverage == pytest.approx(0.8)

    def test_later_rounds_may_degrade_coverage(self):
        graph = case_study_graph()
        result = DKTGGreedySolver(graph).solve(case_study_query())
        coverages = [group.coverage for group in result.groups]
        assert coverages == sorted(coverages, reverse=True)
        assert len(result.groups) == 3

    def test_score_matches_equation4(self):
        graph = case_study_graph()
        query = case_study_query(gamma=0.3)
        result = DKTGGreedySolver(graph).solve(query)
        expected = dktg_score(
            [g.coverage for g in result.groups],
            [g.members for g in result.groups],
            0.3,
        )
        assert result.score == pytest.approx(expected)

    def test_score_meets_greedy_guarantee(self):
        graph = case_study_graph()
        query = case_study_query()
        result = DKTGGreedySolver(graph).solve(query)
        ratio = greedy_approximation_ratio(len(query.keywords), query.gamma)
        # The guarantee bounds the score against the idealised optimum 1.
        assert result.score >= ratio - 1e-9

    def test_stops_when_no_group_remains(self, path_graph):
        # After one group the candidate pool is exhausted.
        query = DKTGQuery(keywords=("a", "e"), group_size=2, tenuity=2, top_n=5)
        result = DKTGGreedySolver(path_graph).solve(query)
        assert len(result.groups) == 1

    def test_custom_inner_solver(self, figure1):
        inner = BranchAndBoundSolver(
            figure1,
            oracle=NLRNLIndex(figure1),
            strategy=VKCDegreeOrdering(figure1.degrees()),
        )
        solver = DKTGGreedySolver(figure1, inner_solver=inner)
        assert solver.algorithm_name == "DKTG-GREEDY-NLRNL"
        query = DKTGQuery(keywords=("SN", "GD"), group_size=2, tenuity=1, top_n=2)
        result = solver.solve(query)
        assert result.groups

    def test_conflicting_oracle_and_inner_rejected(self, figure1):
        inner = BranchAndBoundSolver(figure1)
        with pytest.raises(ValueError):
            DKTGGreedySolver(figure1, oracle=NLRNLIndex(figure1), inner_solver=inner)

    def test_stats_accumulate_over_rounds(self, figure1):
        query = DKTGQuery(
            keywords=("SN", "QP", "DQ", "GQ", "GD"), group_size=3, tenuity=1, top_n=2
        )
        result = DKTGGreedySolver(figure1).solve(query)
        assert result.stats.nodes_expanded > 0
        assert result.stats.elapsed_seconds > 0

    def test_str_rendering(self, figure1):
        query = DKTGQuery(keywords=("SN", "GD"), group_size=2, tenuity=1, top_n=2)
        text = str(DKTGGreedySolver(figure1).solve(query))
        assert "diversity=" in text and "score=" in text


class TestDistanceEngine:
    def test_bitset_greedy_identical(self, figure1):
        query = DKTGQuery(
            keywords=("SN", "QP", "DQ", "GQ", "GD"), group_size=3, tenuity=1, top_n=2
        )
        base = DKTGGreedySolver(figure1).solve(query)
        solver = DKTGGreedySolver(figure1, distance_engine="bitset")
        assert solver.inner_solver.distance_engine == "bitset"
        fast = solver.solve(query)
        assert [g.members for g in fast.groups] == [g.members for g in base.groups]
        assert fast.score == pytest.approx(base.score)
        assert fast.stats.nodes_expanded == base.stats.nodes_expanded

    def test_bitset_exact_identical(self, figure1):
        from repro.core.dktg_exact import DKTGExactSolver

        query = DKTGQuery(keywords=("SN", "GD"), group_size=2, tenuity=1, top_n=2)
        base = DKTGExactSolver(figure1).solve(query)
        fast = DKTGExactSolver(figure1, distance_engine="bitset").solve(query)
        assert [g.members for g in fast.groups] == [g.members for g in base.groups]
        assert fast.score == pytest.approx(base.score)
