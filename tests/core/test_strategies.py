"""Unit tests for candidate-ordering strategies."""

import pytest

from repro.core.coverage import CoverageContext
from repro.core.strategies import (
    QKCOrdering,
    VKCDegreeOrdering,
    VKCOrdering,
    strategy_by_name,
)


@pytest.fixture
def ctx(figure1):
    return CoverageContext(figure1, ["SN", "QP", "DQ", "GQ", "GD"])


class TestQKCOrdering:
    def test_sorts_by_static_coverage_desc(self, ctx):
        strategy = QKCOrdering()
        order = strategy.initial_order([1, 4, 0, 10], ctx)
        # u0 covers 3, u10 covers 2, u1/u4 cover 1 each.
        assert order[0] == 0
        assert order[1] == 10

    def test_never_resorts(self, ctx):
        strategy = QKCOrdering()
        assert strategy.resorts is False
        candidates = [10, 1, 4]
        assert strategy.reorder(candidates, 0b111, ctx) is candidates


class TestVKCOrdering:
    def test_initial_equals_qkc_head(self, ctx):
        order = VKCOrdering().initial_order([1, 4, 0, 10], ctx)
        assert order[0] == 0

    def test_reorder_accounts_for_covered(self, ctx):
        # With u0's keywords covered, u10 (adds QP) outranks u11 (adds
        # nothing) and u6 (adds GQ) ties with u10 by count.
        covered = ctx.union_mask([0])
        order = VKCOrdering().reorder([11, 10, 1], covered, ctx)
        assert order[0] == 10
        assert order[-1] in (11, 1)

    def test_reorder_is_stable_for_ties(self, ctx):
        covered = ctx.full_mask  # everyone's VKC is 0
        candidates = [4, 1, 11, 5]
        assert VKCOrdering().reorder(candidates, covered, ctx) == candidates


class TestVKCDegreeOrdering:
    def test_degree_breaks_ties_ascending(self, ctx, figure1):
        strategy = VKCDegreeOrdering(figure1.degrees(), "ascending")
        covered = ctx.full_mask  # all gains 0 -> pure degree ordering
        order = strategy.reorder([0, 5, 10, 3], covered, ctx)
        degrees = [figure1.degree(v) for v in order]
        assert degrees == sorted(degrees)

    def test_degree_breaks_ties_descending(self, ctx, figure1):
        strategy = VKCDegreeOrdering(figure1.degrees(), "descending")
        covered = ctx.full_mask
        order = strategy.reorder([0, 5, 10, 3], covered, ctx)
        degrees = [figure1.degree(v) for v in order]
        assert degrees == sorted(degrees, reverse=True)

    def test_vkc_dominates_degree(self, ctx, figure1):
        strategy = VKCDegreeOrdering(figure1.degrees())
        # u0 has the highest VKC but also the highest degree: VKC wins.
        order = strategy.initial_order([5, 0, 1], ctx)
        assert order[0] == 0

    def test_invalid_direction_rejected(self, figure1):
        with pytest.raises(ValueError, match="degree_order"):
            VKCDegreeOrdering(figure1.degrees(), "sideways")

    def test_repr_mentions_direction(self, figure1):
        assert "ascending" in repr(VKCDegreeOrdering(figure1.degrees()))


class TestFactory:
    def test_by_name(self, figure1):
        assert isinstance(strategy_by_name("qkc"), QKCOrdering)
        assert isinstance(strategy_by_name("vkc"), VKCOrdering)
        assert isinstance(strategy_by_name("vkc-deg", figure1), VKCDegreeOrdering)
        assert isinstance(strategy_by_name("VKC_DEG", figure1), VKCDegreeOrdering)

    def test_vkc_deg_requires_graph(self):
        with pytest.raises(ValueError, match="requires the graph"):
            strategy_by_name("vkc-deg")

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            strategy_by_name("nope")

    def test_options_forwarded(self, figure1):
        strategy = strategy_by_name("vkc-deg", figure1, degree_order="descending")
        assert strategy.degree_order == "descending"
