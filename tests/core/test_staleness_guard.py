"""Unit tests for the stale-oracle safety guard on solvers."""

import pytest

from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.bruteforce import BruteForceSolver
from repro.core.errors import IndexBuildError
from repro.index.nlrnl import NLRNLIndex


class TestStalenessGuard:
    def test_bb_solver_refuses_stale_oracle(self, figure1, figure1_q):
        oracle = NLRNLIndex(figure1)
        solver = BranchAndBoundSolver(figure1, oracle=oracle)
        figure1.add_edge(5, 9)
        with pytest.raises(IndexBuildError, match="older version"):
            solver.solve(figure1_q)

    def test_brute_force_refuses_stale_oracle(self, figure1, figure1_q):
        oracle = NLRNLIndex(figure1)
        solver = BruteForceSolver(figure1, oracle=oracle)
        figure1.add_edge(5, 9)
        with pytest.raises(IndexBuildError, match="older version"):
            solver.solve(figure1_q)

    def test_rebuild_clears_the_guard(self, figure1, figure1_q):
        oracle = NLRNLIndex(figure1)
        solver = BranchAndBoundSolver(figure1, oracle=oracle)
        figure1.add_edge(5, 9)
        oracle.rebuild()
        result = solver.solve(figure1_q)
        assert result.groups

    def test_incremental_update_keeps_oracle_usable(self, figure1, figure1_q):
        oracle = NLRNLIndex(figure1)
        solver = BranchAndBoundSolver(figure1, oracle=oracle)
        oracle.insert_edge(5, 9)  # mutates graph AND index together
        result = solver.solve(figure1_q)
        assert result.groups

    def test_guard_catches_keyword_changes_too(self, figure1, figure1_q):
        oracle = NLRNLIndex(figure1)
        solver = BranchAndBoundSolver(figure1, oracle=oracle)
        figure1.set_keywords(2, ["SN"])
        # Keyword edits bump the version; distances are unchanged but a
        # conservative guard is preferred over a silent wrong answer.
        with pytest.raises(IndexBuildError):
            solver.solve(figure1_q)
