"""Unit tests for the multi-query-vertex (authors) extension."""


from repro.core.multi_vertex import anchored_query, exclude_familiar
from repro.core.query import KTGQuery
from repro.index.bfs import BFSOracle
from repro.index.nlrnl import NLRNLIndex


class TestExcludeFamiliar:
    def test_drops_anchor_and_neighbourhood(self, figure1):
        oracle = BFSOracle(figure1)
        survivors = exclude_familiar(list(range(12)), anchors=[0], k=1, oracle=oracle)
        assert 0 not in survivors
        assert not set(figure1.neighbors(0)) & set(survivors)

    def test_multiple_anchors_accumulate(self, figure1):
        oracle = BFSOracle(figure1)
        survivors = exclude_familiar(
            list(range(12)), anchors=[0, 10], k=1, oracle=oracle
        )
        blocked = {0, 10} | set(figure1.neighbors(0)) | set(figure1.neighbors(10))
        assert not blocked & set(survivors)

    def test_preserves_order(self, figure1):
        oracle = BFSOracle(figure1)
        survivors = exclude_familiar([7, 5, 6, 8], anchors=[0], k=1, oracle=oracle)
        assert survivors == [7, 5, 6, 8]

    def test_k_zero_only_drops_anchor(self, figure1):
        oracle = BFSOracle(figure1)
        survivors = exclude_familiar(list(range(12)), anchors=[0], k=0, oracle=oracle)
        assert survivors == [v for v in range(12) if v != 0]

    def test_agrees_across_oracles(self, figure1):
        bfs = exclude_familiar(list(range(12)), anchors=[4], k=2, oracle=BFSOracle(figure1))
        nlrnl = exclude_familiar(
            list(range(12)), anchors=[4], k=2, oracle=NLRNLIndex(figure1)
        )
        assert bfs == nlrnl


class TestAnchoredQuery:
    def test_attaches_anchors(self):
        query = KTGQuery(keywords=("a",))
        anchored = anchored_query(query, [3, 5])
        assert anchored.excluded_anchors == (3, 5)

    def test_accumulates_and_dedupes(self):
        query = KTGQuery(keywords=("a",), excluded_anchors=(5,))
        anchored = anchored_query(query, [3, 5])
        assert anchored.excluded_anchors == (5, 3)

    def test_original_query_unchanged(self):
        query = KTGQuery(keywords=("a",))
        anchored_query(query, [1])
        assert query.excluded_anchors == ()
