"""Unit tests for the keyword-pruning bounds (Theorem 2 + union bound)."""

from itertools import combinations

import pytest

from repro.core.coverage import CoverageContext
from repro.core.graph import AttributedGraph
from repro.core.pruning import keyword_prune_bound, top_vkc_bound, union_bound


@pytest.fixture
def ctx():
    graph = AttributedGraph(
        5,
        [],
        {
            0: ["a", "b"],
            1: ["b", "c"],
            2: ["c"],
            3: ["d"],
            4: [],
        },
    )
    return CoverageContext(graph, ["a", "b", "c", "d"])


def best_completion(ctx, covered_mask, candidates, slots):
    """True optimum over all completions (reference for admissibility)."""
    best = covered_mask.bit_count()
    for combo in combinations(candidates, min(slots, len(candidates))):
        mask = covered_mask
        for vertex in combo:
            mask |= ctx.masks[vertex]
        best = max(best, mask.bit_count())
    return best / ctx.query_size


class TestTopVKCBound:
    def test_matches_paper_formula(self, ctx):
        covered = ctx.masks[0]  # {a, b}
        # Gains: v1 adds c (1), v2 adds c (1), v3 adds d (1).
        bound = top_vkc_bound(covered, [1, 2, 3], slots=2, context=ctx)
        assert bound == pytest.approx((2 + 2) / 4)

    def test_presorted_uses_head(self, ctx):
        covered = 0
        # Candidates sorted by VKC desc: 0 (2), 1 (2), 2 (1), 3 (1).
        bound = top_vkc_bound(covered, [0, 1, 2, 3], 2, ctx, presorted_by_vkc=True)
        assert bound == pytest.approx(4 / 4)

    def test_presorted_equals_unsorted_when_actually_sorted(self, ctx):
        covered = ctx.masks[3]
        ordered = sorted(
            [0, 1, 2], key=lambda v: -(ctx.masks[v] & ~covered).bit_count()
        )
        assert top_vkc_bound(covered, ordered, 2, ctx, True) == pytest.approx(
            top_vkc_bound(covered, ordered, 2, ctx, False)
        )

    def test_admissible_exhaustively(self, ctx):
        candidates = [0, 1, 2, 3, 4]
        for slots in (1, 2, 3):
            for covered_seed in ([], [0], [1, 3]):
                covered = ctx.union_mask(covered_seed)
                rest = [v for v in candidates if v not in covered_seed]
                ordered = sorted(
                    rest, key=lambda v: -(ctx.masks[v] & ~covered).bit_count()
                )
                bound = top_vkc_bound(covered, ordered, slots, ctx, True)
                assert bound >= best_completion(ctx, covered, rest, slots) - 1e-12

    def test_double_counts_shared_keywords(self, ctx):
        # Both 1 and 2 add only "c"; the VKC sum counts it twice, making
        # the bound looser than the truth.
        covered = ctx.masks[0]
        bound = top_vkc_bound(covered, [1, 2], 2, ctx)
        truth = best_completion(ctx, covered, [1, 2], 2)
        assert bound > truth


class TestUnionBound:
    def test_tight_when_masks_overlap(self, ctx):
        covered = ctx.masks[0]
        assert union_bound(covered, [1, 2], ctx) == pytest.approx(3 / 4)

    def test_admissible_exhaustively(self, ctx):
        for covered_seed in ([], [0], [2]):
            covered = ctx.union_mask(covered_seed)
            rest = [v for v in range(5) if v not in covered_seed]
            for slots in (1, 2, 3):
                assert union_bound(covered, rest, ctx) >= best_completion(
                    ctx, covered, rest, slots
                ) - 1e-12

    def test_ignores_slot_limit(self, ctx):
        # With 1 slot the union bound can exceed what one member adds.
        bound = union_bound(0, [0, 3], ctx)
        assert bound == pytest.approx(3 / 4)
        assert bound > best_completion(ctx, 0, [0, 3], 1)


class TestCombinedBound:
    def test_takes_minimum_when_union_enabled(self, ctx):
        covered = ctx.masks[0]
        ordered = [1, 2]
        plain = keyword_prune_bound(covered, ordered, 2, ctx, True, False)
        combined = keyword_prune_bound(covered, ordered, 2, ctx, True, True)
        assert combined <= plain
        assert combined == pytest.approx(union_bound(covered, ordered, ctx))

    def test_empty_candidates(self, ctx):
        covered = ctx.masks[0]
        assert keyword_prune_bound(covered, [], 2, ctx) == pytest.approx(2 / 4)
