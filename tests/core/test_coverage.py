"""Unit tests for coverage math (Definitions 5, 6, 8)."""

import pytest

from repro.core.coverage import CoverageContext, popcount
from repro.core.errors import QueryValidationError
from repro.core.graph import AttributedGraph


@pytest.fixture
def ctx(figure1):
    return CoverageContext(figure1, ["SN", "QP", "DQ", "GQ", "GD"])


class TestConstruction:
    def test_empty_keywords_rejected(self, figure1):
        with pytest.raises(QueryValidationError):
            CoverageContext(figure1, [])

    def test_duplicates_collapse(self, figure1):
        context = CoverageContext(figure1, ["SN", "SN", "QP"])
        assert context.query_size == 2
        assert context.query_labels == ("SN", "QP")

    def test_unknown_labels_still_occupy_bits(self, figure1):
        context = CoverageContext(figure1, ["SN", "NOPE"])
        assert context.query_size == 2
        # Nobody covers NOPE, so full coverage is impossible.
        assert all(mask != context.full_mask for mask in context.masks)

    def test_full_mask(self, ctx):
        assert ctx.full_mask == 0b11111


class TestDefinition5:
    """Query keyword coverage of a vertex."""

    def test_paper_example_u4_u6(self, ctx):
        # Section III example: QKC(u4)=0.2, QKC(u6)=0.4.
        assert ctx.vertex_coverage(4) == pytest.approx(0.2)
        assert ctx.vertex_coverage(6) == pytest.approx(0.4)

    def test_vertex_without_query_keywords(self, ctx):
        assert ctx.vertex_coverage(2) == 0.0

    def test_mask_of_matches_coverage(self, ctx):
        for vertex in range(12):
            assert ctx.mask_of(vertex).bit_count() / 5 == pytest.approx(
                ctx.vertex_coverage(vertex)
            )


class TestDefinition6:
    """Query keyword coverage of a group."""

    def test_paper_example_groups(self, ctx):
        # F1 = {u5, u7} covers {GD, QP, DQ} in our reconstruction; the
        # union is what matters: group coverage counts distinct keywords.
        assert ctx.group_coverage([4, 6]) == pytest.approx(0.6)  # F2 of the paper

    def test_union_not_sum(self, ctx):
        # u0 covers {SN, GD, DQ}, u11 covers {DQ, GD}: union is 3 not 5.
        assert ctx.group_coverage([0, 11]) == pytest.approx(0.6)

    def test_empty_group(self, ctx):
        assert ctx.group_coverage([]) == 0.0

    def test_running_example_result_coverage(self, ctx):
        assert ctx.group_coverage([10, 1, 4]) == pytest.approx(0.8)
        assert ctx.group_coverage([10, 1, 5]) == pytest.approx(0.8)


class TestDefinition8:
    """Valid keyword coverage w.r.t. an intermediate result."""

    def test_valid_coverage_excludes_covered(self, ctx):
        # S_I = {u0} covers {SN, GD, DQ}; u10 = {SN, QP} adds only QP.
        assert ctx.valid_coverage(10, [0]) == pytest.approx(0.2)

    def test_valid_coverage_empty_intermediate_is_qkc(self, ctx):
        for vertex in range(12):
            assert ctx.valid_coverage(vertex, []) == pytest.approx(
                ctx.vertex_coverage(vertex)
            )

    def test_valid_mask(self, ctx):
        covered = ctx.union_mask([0])
        assert ctx.valid_mask(10, covered).bit_count() == 1
        assert ctx.valid_mask(1, covered) == 0  # u1={DQ} already covered

    def test_fully_covered_gives_zero(self, ctx):
        covered = ctx.full_mask
        assert all(ctx.valid_mask(v, covered) == 0 for v in range(12))


class TestHelpers:
    def test_qualified_vertices(self, ctx):
        # Vertices with at least one query keyword in Figure 1.
        assert ctx.qualified_vertices() == [0, 1, 4, 5, 6, 7, 10, 11]

    def test_labels_of_mask_round_trip(self, ctx):
        mask = ctx.mask_of(10)
        assert ctx.labels_of_mask(mask) == ["SN", "QP"]

    def test_coverage_of_mask(self, ctx):
        assert ctx.coverage_of_mask(0b101) == pytest.approx(0.4)

    def test_popcount_deprecated(self):
        with pytest.deprecated_call():
            assert popcount(0) == 0
        with pytest.deprecated_call():
            assert popcount(0b1011) == 3

    def test_repr(self, ctx):
        assert "|W_Q|=5" in repr(ctx)

    def test_isolated_keywordless_graph(self):
        graph = AttributedGraph(3)
        context = CoverageContext(graph, ["a"])
        assert context.qualified_vertices() == []
