"""Unit tests for the brute-force baseline."""

import pytest

from repro.core.bruteforce import BruteForceSolver
from repro.core.coverage import CoverageContext
from repro.core.query import KTGQuery
from repro.index.nlrnl import NLRNLIndex


class TestBruteForce:
    def test_figure1_optimum(self, figure1, figure1_q):
        result = BruteForceSolver(figure1).solve(figure1_q)
        assert [round(g.coverage, 9) for g in result.groups] == [0.8, 0.8]

    def test_generate_and_test_matches_grown(self, figure1, figure1_q):
        grown = BruteForceSolver(figure1, check_prefix_tenuity=True).solve(figure1_q)
        naive = BruteForceSolver(figure1, check_prefix_tenuity=False).solve(figure1_q)
        assert [g.coverage for g in grown.groups] == [g.coverage for g in naive.groups]

    def test_naive_enumerates_all_combinations(self, figure1, figure1_q):
        naive = BruteForceSolver(figure1, check_prefix_tenuity=False).solve(figure1_q)
        from math import comb

        # 8 qualified vertices, p = 3.
        assert naive.stats.nodes_expanded == comb(8, 3)

    def test_grown_expands_fewer_nodes(self, figure1, figure1_q):
        grown = BruteForceSolver(figure1).solve(figure1_q)
        naive = BruteForceSolver(figure1, check_prefix_tenuity=False).solve(figure1_q)
        assert grown.stats.feasible_groups == naive.stats.feasible_groups

    def test_results_are_feasible(self, figure1, figure1_q):
        result = BruteForceSolver(figure1).solve(figure1_q)
        context = CoverageContext(figure1, figure1_q.keywords)
        for group in result.groups:
            assert len(group.members) == figure1_q.group_size
            for member in group.members:
                assert context.masks[member]
            for i, u in enumerate(group.members):
                for v in group.members[i + 1 :]:
                    assert figure1.hop_distance(u, v) > figure1_q.tenuity

    def test_with_index_oracle(self, figure1, figure1_q):
        result = BruteForceSolver(figure1, oracle=NLRNLIndex(figure1)).solve(figure1_q)
        assert result.best_coverage == pytest.approx(0.8)
        assert result.algorithm == "KTG-BRUTE-NLRNL"

    def test_candidate_restriction(self, figure1, figure1_q):
        result = BruteForceSolver(figure1).solve(figure1_q, candidates=[10, 1, 4, 5])
        assert result.best_coverage == pytest.approx(0.8)
        for group in result.groups:
            assert set(group.members) <= {10, 1, 4, 5}

    def test_anchor_exclusion(self, figure1):
        query = KTGQuery(
            keywords=("SN", "GD"), group_size=2, tenuity=1, excluded_anchors=(0,)
        )
        result = BruteForceSolver(figure1).solve(query)
        blocked = {0} | set(figure1.neighbors(0))
        for group in result.groups:
            assert not blocked & set(group.members)

    def test_empty_when_infeasible(self, figure1):
        query = KTGQuery(keywords=("SN",), group_size=10, tenuity=1)
        assert BruteForceSolver(figure1).solve(query).groups == ()
