"""Unit tests for query validation and helpers."""

import pytest

from repro.core.errors import QueryValidationError
from repro.core.query import DKTGQuery, KTGQuery


class TestKTGQueryValidation:
    def test_minimal_valid(self):
        query = KTGQuery(keywords=("a",))
        assert query.group_size == 3
        assert query.tenuity == 2
        assert query.top_n == 3

    def test_keywords_coerced_to_tuple(self):
        query = KTGQuery(keywords=["a", "b"])
        assert query.keywords == ("a", "b")

    def test_empty_keywords_rejected(self):
        with pytest.raises(QueryValidationError, match="must not be empty"):
            KTGQuery(keywords=())

    def test_blank_keyword_rejected(self):
        with pytest.raises(QueryValidationError):
            KTGQuery(keywords=("a", ""))

    def test_non_string_keyword_rejected(self):
        with pytest.raises(QueryValidationError):
            KTGQuery(keywords=("a", 3))

    @pytest.mark.parametrize("p", [0, -1])
    def test_bad_group_size_rejected(self, p):
        with pytest.raises(QueryValidationError, match="group size"):
            KTGQuery(keywords=("a",), group_size=p)

    def test_negative_tenuity_rejected(self):
        with pytest.raises(QueryValidationError, match="tenuity"):
            KTGQuery(keywords=("a",), tenuity=-1)

    def test_zero_tenuity_allowed(self):
        assert KTGQuery(keywords=("a",), tenuity=0).tenuity == 0

    def test_bad_top_n_rejected(self):
        with pytest.raises(QueryValidationError, match="top_n"):
            KTGQuery(keywords=("a",), top_n=0)

    def test_queries_are_hashable_values(self):
        a = KTGQuery(keywords=("a", "b"), group_size=3, tenuity=1, top_n=2)
        b = KTGQuery(keywords=("a", "b"), group_size=3, tenuity=1, top_n=2)
        assert a == b
        assert hash(a) == hash(b)


class TestKTGQueryHelpers:
    def test_keyword_set(self):
        query = KTGQuery(keywords=("a", "b", "a"))
        assert query.keyword_set == frozenset({"a", "b"})

    def test_with_replaces_fields(self):
        query = KTGQuery(keywords=("a",), group_size=3)
        changed = query.with_(group_size=5)
        assert changed.group_size == 5
        assert query.group_size == 3

    def test_with_validates(self):
        query = KTGQuery(keywords=("a",))
        with pytest.raises(QueryValidationError):
            query.with_(group_size=0)

    def test_describe(self):
        query = KTGQuery(keywords=("a", "b"), group_size=4, tenuity=1, top_n=2)
        text = query.describe()
        assert "p=4" in text and "k=1" in text and "N=2" in text

    def test_describe_with_anchors(self):
        query = KTGQuery(keywords=("a",), excluded_anchors=(3, 7))
        assert "anchors=[3, 7]" in query.describe()


class TestDKTGQuery:
    def test_defaults(self):
        query = DKTGQuery(keywords=("a",))
        assert query.gamma == 0.5

    @pytest.mark.parametrize("gamma", [-0.1, 1.1])
    def test_bad_gamma_rejected(self, gamma):
        with pytest.raises(QueryValidationError, match="gamma"):
            DKTGQuery(keywords=("a",), gamma=gamma)

    def test_base_query_strips_diversification(self):
        query = DKTGQuery(keywords=("a",), group_size=4, gamma=0.3)
        base = query.base_query()
        assert type(base) is KTGQuery
        assert base.group_size == 4

    def test_with_preserves_type(self):
        query = DKTGQuery(keywords=("a",), gamma=0.25)
        changed = query.with_(top_n=1)
        assert isinstance(changed, DKTGQuery)
        assert changed.gamma == 0.25

    def test_describe_mentions_gamma(self):
        assert "gamma=0.5" in DKTGQuery(keywords=("a",)).describe()
        assert DKTGQuery(keywords=("a",)).describe().startswith("DKTG<")

    def test_inherits_ktg_validation(self):
        with pytest.raises(QueryValidationError):
            DKTGQuery(keywords=(), gamma=0.5)
