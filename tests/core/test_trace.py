"""Unit tests for the search-tree tracer (Figure 2 machinery)."""

import pytest

from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.query import KTGQuery
from repro.core.strategies import QKCOrdering, VKCDegreeOrdering, VKCOrdering
from repro.core.trace import TracingSolver
from repro.index.nlrnl import NLRNLIndex

ALL_STRATEGIES = [
    lambda g: QKCOrdering(),
    lambda g: VKCOrdering(),
    lambda g: VKCDegreeOrdering(g.degrees()),
]


class TestTraceFidelity:
    def test_result_matches_untraced_solver(self, figure1, figure1_q):
        solver = BranchAndBoundSolver(figure1)
        plain = solver.solve(figure1_q)
        traced, trace = TracingSolver(solver).solve(figure1_q)
        assert [g.coverage for g in traced.groups] == [
            g.coverage for g in plain.groups
        ]
        assert [g.members for g in traced.groups] == [
            g.members for g in plain.groups
        ]

    def test_node_count_matches_solver_stats(self, figure1, figure1_q):
        solver = BranchAndBoundSolver(figure1)
        plain = solver.solve(figure1_q)
        _, trace = TracingSolver(solver).solve(figure1_q)
        assert trace.nodes == plain.stats.nodes_expanded

    @pytest.mark.parametrize("strategy_factory", ALL_STRATEGIES)
    def test_fidelity_across_strategies(self, figure1, figure1_q, strategy_factory):
        solver = BranchAndBoundSolver(
            figure1,
            oracle=NLRNLIndex(figure1),
            strategy=strategy_factory(figure1),
        )
        plain = solver.solve(figure1_q)
        traced, trace = TracingSolver(solver).solve(figure1_q)
        assert [g.members for g in traced.groups] == [g.members for g in plain.groups]
        assert trace.nodes == plain.stats.nodes_expanded

    @pytest.mark.parametrize("strategy_factory", ALL_STRATEGIES)
    def test_counts_equal_search_stats_per_strategy(
        self, figure1, figure1_q, strategy_factory
    ):
        """Regression for the tracing drift: the trace's node, prune and
        accept counts must equal the untraced solver's ``SearchStats``
        under every ordering strategy (the tracer observes the real
        search now instead of re-implementing it)."""
        solver = BranchAndBoundSolver(
            figure1,
            oracle=NLRNLIndex(figure1),
            strategy=strategy_factory(figure1),
        )
        plain = solver.solve(figure1_q)
        _, trace = TracingSolver(solver).solve(figure1_q)
        assert trace.nodes == plain.stats.nodes_expanded
        assert trace.pruned == plain.stats.keyword_prunes
        assert trace.accepted == plain.stats.offers_accepted
        assert trace.stats is not None
        assert trace.stats.nodes_expanded == plain.stats.nodes_expanded


class TestTraceBudgets:
    """Regression: the traced search honours solver budgets (the old
    tracer re-implemented the recursion and ignored them)."""

    def test_node_budget_honoured(self, figure1, figure1_q):
        budget = 3
        solver = BranchAndBoundSolver(figure1, node_budget=budget)
        plain = solver.solve(figure1_q)
        traced, trace = TracingSolver(solver).solve(figure1_q)
        assert plain.stats.budget_exhausted
        assert traced.stats.budget_exhausted
        assert trace.nodes == plain.stats.nodes_expanded
        assert trace.nodes <= budget + 1  # the tripping node is recorded

    def test_node_budget_trip_marked_in_trace(self, figure1, figure1_q):
        solver = BranchAndBoundSolver(figure1, node_budget=2)
        _, trace = TracingSolver(solver).solve(figure1_q)

        outcomes = []

        def collect(node):
            outcomes.append(node.outcome)
            for child in node.children:
                collect(child)

        collect(trace.root)
        assert "budget" in outcomes
        assert "[search stopped: nodes budget]" in trace.render()

    def test_time_budget_honoured(self, figure1, figure1_q):
        # A vanishing time budget trips on the amortised clock check;
        # the trace must agree with the solver's own stats regardless.
        solver = BranchAndBoundSolver(figure1, time_budget=1e-9)
        traced, trace = TracingSolver(solver).solve(figure1_q)
        assert trace.nodes == traced.stats.nodes_expanded


class TestTraceStructure:
    def test_accepted_nodes_recorded(self, figure1, figure1_q):
        _, trace = TracingSolver(BranchAndBoundSolver(figure1)).solve(figure1_q)
        assert trace.accepted == 2

        accepted = []

        def collect(node):
            if node.outcome == "accepted":
                accepted.append(node.members)
            for child in node.children:
                collect(child)

        collect(trace.root)
        assert len(accepted) == 2
        assert all(len(members) == 3 for members in accepted)

    def test_figure2_narrative_root_branches(self, figure1, figure1_q):
        """The worked example's top-level branch order under VKC."""
        _, trace = TracingSolver(BranchAndBoundSolver(figure1)).solve(figure1_q)
        first_level = [child.members[0] for child in trace.root.children]
        # VKC initial order puts u0 (3 query keywords) first, then the
        # 2-keyword vertices.
        assert first_level[0] == 0
        assert set(first_level[1:3]) <= {6, 7, 10, 11}

    def test_render_contains_outcomes(self, figure1, figure1_q):
        _, trace = TracingSolver(BranchAndBoundSolver(figure1)).solve(figure1_q)
        text = trace.render()
        assert "{root}" in text
        assert "[result, coverage=0.80]" in text

    def test_render_depth_limit(self, figure1, figure1_q):
        _, trace = TracingSolver(BranchAndBoundSolver(figure1)).solve(figure1_q)
        shallow = trace.render(max_depth=1)
        deep = trace.render()
        assert len(shallow.splitlines()) < len(deep.splitlines())

    def test_render_depth_limit_reports_hidden_nodes(self, figure1, figure1_q):
        """Regression: a truncated render must say it truncated."""
        _, trace = TracingSolver(BranchAndBoundSolver(figure1)).solve(figure1_q)
        shallow = trace.render(max_depth=1)
        assert "hidden" in shallow
        # The elision lines account for every node the cut removed.
        import re

        hidden = sum(int(m) for m in re.findall(r"\((\d+) nodes? below", shallow))
        full_lines = len(trace.render().splitlines())
        elisions = shallow.count("hidden")
        assert len(shallow.splitlines()) - elisions + hidden == full_lines

    def test_render_without_truncation_has_no_elision_line(self, figure1, figure1_q):
        _, trace = TracingSolver(BranchAndBoundSolver(figure1)).solve(figure1_q)
        assert "hidden" not in trace.render()
        assert "hidden" not in trace.render(max_depth=99)

    def test_pruned_branches_marked(self, figure1):
        # A query where pruning definitely triggers: N=1, ties abound.
        query = KTGQuery(
            keywords=("SN", "QP", "DQ", "GQ", "GD"), group_size=3, tenuity=1, top_n=1
        )
        _, trace = TracingSolver(BranchAndBoundSolver(figure1)).solve(query)
        assert trace.pruned > 0
        assert "[pruned by keyword bound]" in trace.render()

    def test_exhausted_marked_when_candidates_run_out(self):
        from repro.core.graph import AttributedGraph

        graph = AttributedGraph(3, [(0, 1), (1, 2), (0, 2)], {i: ["a"] for i in range(3)})
        query = KTGQuery(keywords=("a",), group_size=2, tenuity=1, top_n=1)
        _, trace = TracingSolver(BranchAndBoundSolver(graph)).solve(query)
        assert "[dead end" in trace.render() or trace.root.outcome == "exhausted"
