"""Unit tests for Group and the top-N result pool semantics."""

import pytest

from repro.core.results import Group, TopNPool


class TestGroup:
    def test_make_sorts_members(self):
        group = Group.make([3, 1, 2], 0.5)
        assert group.members == (1, 2, 3)

    def test_equality_ignores_discovery_order(self):
        assert Group.make([2, 1], 0.5) == Group.make([1, 2], 0.5)

    def test_ordering_by_coverage_then_members(self):
        low = Group.make([1], 0.2)
        high = Group.make([2], 0.9)
        assert low < high

    def test_size_and_overlap(self):
        a = Group.make([1, 2, 3], 1.0)
        b = Group.make([3, 4, 5], 1.0)
        assert a.size == 3
        assert a.overlap(b) == 1

    def test_str(self):
        assert str(Group.make([2, 1], 0.75)) == "{u1, u2} (coverage=0.750)"


class TestTopNPoolBasics:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TopNPool(0)

    def test_threshold_zero_until_full(self):
        pool = TopNPool(2)
        assert pool.threshold == 0.0
        pool.offer([1, 2], 0.9)
        assert pool.threshold == 0.0
        pool.offer([3, 4], 0.5)
        assert pool.threshold == 0.5

    def test_len_and_is_full(self):
        pool = TopNPool(2)
        assert len(pool) == 0 and not pool.is_full()
        pool.offer([1], 0.1)
        pool.offer([2], 0.2)
        assert len(pool) == 2 and pool.is_full()


class TestStrictImprovementSemantics:
    """The paper's updateRS: ties never displace earlier discoveries."""

    def test_tie_with_threshold_rejected(self):
        pool = TopNPool(2)
        pool.offer([1, 2], 0.8)
        pool.offer([3, 4], 0.8)
        assert not pool.offer([5, 6], 0.8)
        members = {group.members for group in pool.best()}
        assert members == {(1, 2), (3, 4)}

    def test_strict_improvement_evicts_worst(self):
        pool = TopNPool(2)
        pool.offer([1, 2], 0.5)
        pool.offer([3, 4], 0.8)
        assert pool.offer([5, 6], 0.9)
        coverages = [group.coverage for group in pool.best()]
        assert coverages == [0.9, 0.8]

    def test_would_admit(self):
        pool = TopNPool(1)
        assert pool.would_admit(0.0)
        pool.offer([1], 0.5)
        assert not pool.would_admit(0.5)
        assert pool.would_admit(0.6)

    def test_duplicate_member_sets_rejected(self):
        pool = TopNPool(3)
        assert pool.offer([1, 2], 0.5)
        assert not pool.offer([2, 1], 0.9)
        assert len(pool) == 1

    def test_eviction_releases_membership(self):
        pool = TopNPool(1)
        pool.offer([1, 2], 0.5)
        pool.offer([3, 4], 0.8)
        # (1,2) was evicted, so it may be re-offered (e.g. by a greedy
        # caller re-running a search) subject to the threshold.
        assert not pool.contains_members([1, 2])
        assert pool.offer([1, 2], 0.9)

    def test_strict_improvement_evicts_newest_tied_worst(self):
        """Regression: among coverage-tied worst groups the *newest*
        discovery is evicted, so earlier discoveries are never displaced
        by anything they tie with."""
        pool = TopNPool(2)
        pool.offer([1, 2], 0.5)   # earliest tied-worst discovery
        pool.offer([3, 4], 0.5)   # newest tied-worst discovery
        assert pool.offer([5, 6], 0.9)
        members = {group.members for group in pool.best()}
        assert members == {(1, 2), (5, 6)}
        assert not pool.contains_members([3, 4])

    def test_repeated_improvements_preserve_oldest_ties(self):
        pool = TopNPool(3)
        pool.offer([1], 0.4)
        pool.offer([2], 0.4)
        pool.offer([3], 0.4)
        pool.offer([4], 0.6)  # evicts (3,), the newest 0.4 tie
        pool.offer([5], 0.7)  # evicts (2,), now the newest 0.4 tie
        assert [g.members for g in pool.best()] == [(5,), (4,), (1,)]


class TestBestOrdering:
    def test_best_sorted_by_coverage_desc(self):
        pool = TopNPool(3)
        pool.offer([1], 0.3)
        pool.offer([2], 0.9)
        pool.offer([3], 0.6)
        assert [g.coverage for g in pool.best()] == [0.9, 0.6, 0.3]

    def test_ties_listed_in_discovery_order(self):
        pool = TopNPool(3)
        pool.offer([5], 0.5)
        pool.offer([1], 0.5)
        pool.offer([9], 0.5)
        assert [g.members for g in pool.best()] == [(5,), (1,), (9,)]

    def test_best_coverage(self):
        pool = TopNPool(2)
        assert pool.best_coverage() is None
        pool.offer([1], 0.4)
        pool.offer([2], 0.7)
        assert pool.best_coverage() == 0.7

    def test_member_union(self):
        pool = TopNPool(2)
        pool.offer([1, 2], 0.5)
        pool.offer([2, 3], 0.6)
        assert pool.member_union() == {1, 2, 3}

    def test_repr(self):
        pool = TopNPool(2)
        assert "0/2" in repr(pool)
