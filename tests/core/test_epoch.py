"""Lifecycle tests for :mod:`repro.core.epoch`.

The rotation protocol's edge cases, each exercised directly against an
:class:`EpochManager`:

* a mutation landing *while* a rotation is compacting the delta (the
  tail-replay path);
* a reader lease pinning an epoch across two rotations (retired but not
  released until the lease drops);
* attaching to a released shared epoch raising
  :class:`SnapshotAttachError`;
* delta-buffer overflow forcing a synchronous rotation on the mutating
  thread when the background rotator cannot keep up.

The snapshot/attach lifecycle itself (ownership, double-release, byte
layout) is covered in ``tests/core/test_csr.py``; these tests pin the
epoch layer on top of it.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.csr import CsrSnapshot
from repro.core.epoch import EpochManager, GraphDelta
from repro.core.errors import (
    EpochError,
    GraphConstructionError,
    SnapshotAttachError,
)
from tests.conftest import make_random_attributed_graph


def fresh_graph(seed: int = 3):
    return make_random_attributed_graph(num_vertices=18, seed=seed)


def edge_flips(graph, count: int, seed: int = 0):
    """A deterministic stream of valid add/remove edge targets."""
    import random

    rng = random.Random(seed)
    n = graph.num_vertices
    for _ in range(count):
        u, v = rng.sample(range(n), 2)
        yield u, v


def apply_flip(manager, u: int, v: int) -> None:
    if manager.graph.has_edge(u, v):
        manager.remove_edge(u, v)
    else:
        manager.add_edge(u, v)


def assert_version_invariant(manager) -> None:
    """snapshot version + delta depth must always equal the live version."""
    with manager._lock:
        snapshot_version = manager._epoch.snapshot.graph_version
        depth = manager._delta.depth
    assert snapshot_version + depth == manager.graph.version


# ----------------------------------------------------------------------
# Mutation arriving mid-rebuild
# ----------------------------------------------------------------------
def test_mutation_during_rotation_lands_in_next_delta(monkeypatch):
    """An edit applied while compaction runs is replayed into the new
    epoch's delta — never lost, never double-applied."""
    graph = fresh_graph()
    manager = EpochManager(graph, rotate_after=64, max_delta=256)

    compacting = threading.Event()
    resume = threading.Event()
    original = CsrSnapshot.from_graph.__func__

    def stalling_from_graph(cls, source, **kwargs):
        snapshot = original(cls, source, **kwargs)
        if compacting.is_set() is False and isinstance(
            source, type(manager.view())
        ):
            compacting.set()
            assert resume.wait(timeout=5.0)
        return snapshot

    monkeypatch.setattr(
        CsrSnapshot, "from_graph", classmethod(stalling_from_graph)
    )

    for u, v in edge_flips(graph, 5, seed=1):
        apply_flip(manager, u, v)
    depth_before = manager.stats().delta_depth
    assert depth_before == 5

    rotator = threading.Thread(target=manager.rotate, name="test-rotator")
    rotator.start()
    assert compacting.wait(timeout=5.0)

    # The rotation thread is inside from_graph; this mutation must land
    # in the live graph immediately and survive into the next delta.
    mid_u, mid_v = next(edge_flips(graph, 1, seed=99))
    version_before = graph.version
    apply_flip(manager, mid_u, mid_v)
    assert graph.version == version_before + 1

    resume.set()
    rotator.join(timeout=5.0)
    assert not rotator.is_alive()

    stats = manager.stats()
    assert stats.rotations == 1
    # The compaction cut was taken before the mid-rebuild edit: exactly
    # that one op remains in the new delta.
    assert stats.delta_depth == 1
    assert_version_invariant(manager)

    # The composite view agrees with the live graph everywhere.
    view = manager.view()
    for vertex in graph.vertices():
        assert view.neighbors(vertex) == graph.neighbors(vertex)
        assert view.keywords_of(vertex) == graph.keywords_of(vertex)
    manager.close()


# ----------------------------------------------------------------------
# Lease across rotations
# ----------------------------------------------------------------------
def test_lease_pins_epoch_across_two_rotations():
    graph = fresh_graph()
    manager = EpochManager(
        graph, rotate_after=4, max_delta=64, shared=True, rotate_sync=True
    )
    segment = manager.segment_name()
    assert segment is not None

    with manager.lease() as pinned:
        assert pinned.epoch_id == 0
        flips = edge_flips(graph, 8, seed=2)
        for u, v in flips:
            apply_flip(manager, u, v)
        stats = manager.stats()
        assert stats.rotations == 2
        assert stats.epoch_id == 2
        # Epoch 0 is retired but pinned: still attachable, counted as
        # draining, not yet released.
        assert pinned.retired and not pinned.released
        assert stats.active_leases == 1
        assert stats.draining_epochs >= 1
        attached = CsrSnapshot.attach(segment)
        assert bytes(attached._buf) == bytes(pinned.snapshot._buf)
        attached.close()

    # Lease dropped: the retired epoch's shared segment is gone.
    assert pinned.released
    with pytest.raises(SnapshotAttachError):
        CsrSnapshot.attach(segment)
    final = manager.stats()
    assert final.active_leases == 0
    assert final.draining_epochs == 0
    manager.close()


def test_attach_to_released_epoch_raises():
    """Without a lease, rotation releases the old shared segment at
    once — a late attach must fail loudly, not read freed memory."""
    graph = fresh_graph()
    manager = EpochManager(
        graph, rotate_after=2, max_delta=64, shared=True, rotate_sync=True
    )
    stale_name = manager.segment_name()
    for u, v in edge_flips(graph, 2, seed=4):
        apply_flip(manager, u, v)
    assert manager.stats().rotations == 1
    assert manager.segment_name() != stale_name
    with pytest.raises(SnapshotAttachError):
        CsrSnapshot.attach(stale_name)
    manager.close()


# ----------------------------------------------------------------------
# Overflow backpressure
# ----------------------------------------------------------------------
def test_delta_overflow_forces_synchronous_rotation(monkeypatch):
    graph = fresh_graph()
    manager = EpochManager(graph, rotate_after=2, max_delta=6)
    # Simulate a wedged background rotator: threshold wakeups go nowhere,
    # so only the max_delta backstop can compact.
    monkeypatch.setattr(manager, "_ensure_rotator", lambda: None)

    for u, v in edge_flips(graph, 13, seed=5):
        apply_flip(manager, u, v)

    stats = manager.stats()
    assert stats.overflow_rotations >= 2
    assert stats.rotations == stats.overflow_rotations
    assert stats.delta_depth < 6
    assert_version_invariant(manager)
    manager.close()


# ----------------------------------------------------------------------
# Smaller guarantees the above rely on
# ----------------------------------------------------------------------
def test_mutations_validate_against_live_graph():
    graph = fresh_graph()
    with EpochManager(graph, rotate_sync=True) as manager:
        u, v = next(iter(graph.edges()))
        with pytest.raises(GraphConstructionError):
            manager.add_edge(u, v)  # duplicate
        with pytest.raises(GraphConstructionError):
            manager.add_edge(u, u)  # self-loop
        manager.remove_edge(u, v)
        with pytest.raises(GraphConstructionError):
            manager.remove_edge(u, v)  # already gone
        assert_version_invariant(manager)


def test_add_vertex_grows_view_and_delta():
    graph = fresh_graph()
    with EpochManager(graph) as manager:
        before = graph.num_vertices
        vertex = manager.add_vertex(["zz-epoch"])
        assert vertex == before
        view = manager.view()
        assert view.num_vertices == before + 1
        assert view.neighbors(vertex) == frozenset()
        assert "zz-epoch" in view.keyword_labels(vertex)
        manager.add_edge(vertex, 0)
        assert manager.view().has_edge(vertex, 0)
        assert_version_invariant(manager)


def test_closed_manager_rejects_everything():
    graph = fresh_graph()
    manager = EpochManager(graph)
    manager.close()
    with pytest.raises(EpochError):
        manager.add_edge(0, 1)
    with pytest.raises(EpochError):
        manager.view()
    with pytest.raises(EpochError):
        with manager.lease():
            pass
    manager.close()  # idempotent


def test_manual_rotate_with_empty_delta_is_a_noop():
    graph = fresh_graph()
    with EpochManager(graph) as manager:
        assert manager.rotate() is False
        assert manager.stats().rotations == 0


def test_delta_records_collapse_inverse_ops():
    """add(u,v) then remove(u,v) in one delta must compose to a no-op
    overlay for that row (the replay path, exercised directly)."""
    graph = fresh_graph()
    snapshot = CsrSnapshot.from_graph(graph)
    delta = GraphDelta(snapshot)
    u, v = 0, 1
    had = graph.has_edge(u, v)
    if had:
        delta.record_remove_edge(u, v)
        delta.record_add_edge(u, v)
    else:
        delta.record_add_edge(u, v)
        delta.record_remove_edge(u, v)
    assert delta.depth == 2
    from repro.core.epoch import EpochGraphView

    view = EpochGraphView(snapshot, delta, graph.keyword_table)
    assert view.has_edge(u, v) == had
    assert view.neighbors(u) == graph.neighbors(u)
