"""Unit tests for anytime node/time budgets on the solver."""

import pytest

from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.coverage import CoverageContext
from repro.core.graph import AttributedGraph
from repro.core.query import KTGQuery
from tests.conftest import make_random_attributed_graph


@pytest.fixture(scope="module")
def setting():
    graph = make_random_attributed_graph(num_vertices=60, seed=2, vocabulary_size=10)
    labels = sorted(graph.keyword_table)[:6]
    query = KTGQuery(keywords=tuple(labels), group_size=4, tenuity=2, top_n=3)
    return graph, query


class TestValidation:
    def test_bad_budgets_rejected(self, figure1):
        with pytest.raises(ValueError):
            BranchAndBoundSolver(figure1, node_budget=0)
        with pytest.raises(ValueError):
            BranchAndBoundSolver(figure1, time_budget=0.0)


class TestNodeBudget:
    def test_unbudgeted_run_is_exact(self, setting):
        graph, query = setting
        result = BranchAndBoundSolver(graph).solve(query)
        assert result.is_exact
        assert not result.stats.budget_exhausted

    def test_budget_caps_nodes(self, setting):
        graph, query = setting
        result = BranchAndBoundSolver(graph, node_budget=50).solve(query)
        assert result.stats.nodes_expanded <= 51
        assert not result.is_exact

    def test_budget_result_is_anytime_valid(self, setting):
        """Budgeted results are still feasible k-distance groups."""
        graph, query = setting
        result = BranchAndBoundSolver(graph, node_budget=500).solve(query)
        context = CoverageContext(graph, query.keywords)
        for group in result.groups:
            assert len(group.members) == query.group_size
            for member in group.members:
                assert context.masks[member]
            for i, u in enumerate(group.members):
                for v in group.members[i + 1 :]:
                    distance = graph.hop_distance(u, v)
                    assert distance is None or distance > query.tenuity

    def test_budget_never_beats_exact(self, setting):
        graph, query = setting
        exact = BranchAndBoundSolver(graph).solve(query)
        capped = BranchAndBoundSolver(graph, node_budget=300).solve(query)
        assert capped.best_coverage <= exact.best_coverage + 1e-12

    def test_large_budget_equals_exact(self, setting):
        graph, query = setting
        exact = BranchAndBoundSolver(graph).solve(query)
        roomy = BranchAndBoundSolver(graph, node_budget=10_000_000).solve(query)
        assert roomy.is_exact
        assert [g.coverage for g in roomy.groups] == [g.coverage for g in exact.groups]


class TestLeafScanDeadline:
    """Regression: the deadline must also be honoured inside the
    ``_complete_groups`` leaf scan, not just between tree nodes — one
    dense leaf with thousands of remaining candidates used to blow far
    past ``time_budget`` before the next node-level check fired."""

    def test_single_dense_leaf_respects_deadline(self):
        # An edgeless graph where every vertex carries the query keyword:
        # with p=2 the very first leaf scans ~n candidates, all feasible.
        # keyword_pruning=False disables the sorted-gain early break, so
        # without an in-leaf deadline check the scan would run all the
        # way through (~n^2/2 offers over the whole search).
        n = 4000
        graph = AttributedGraph(n, [], {v: ["a"] for v in range(n)})
        query = KTGQuery(keywords=("a",), group_size=2, tenuity=1, top_n=3)
        solver = BranchAndBoundSolver(
            graph, time_budget=0.001, keyword_pruning=False
        )
        result = solver.solve(query)
        assert not result.is_exact
        assert result.stats.budget_exhausted
        # Bounded overshoot: the scan stops within one 256-candidate
        # amortisation window of the deadline, far below the multi-second
        # full enumeration.
        assert result.stats.elapsed_seconds < 0.5


class TestTimeBudget:
    def test_time_budget_trips(self, setting):
        graph, query = setting
        result = BranchAndBoundSolver(graph, time_budget=0.001).solve(query)
        # The search is large enough that 1ms cannot finish it.
        assert not result.is_exact
        assert result.stats.elapsed_seconds < 1.0

    def test_generous_time_budget_is_exact(self, figure1, figure1_q):
        result = BranchAndBoundSolver(figure1, time_budget=60.0).solve(figure1_q)
        assert result.is_exact
        assert [round(g.coverage, 9) for g in result.groups] == [0.8, 0.8]
