"""Unit tests for the inverted keyword index."""

import pytest

from repro.core.coverage import CoverageContext
from repro.core.errors import QueryValidationError
from repro.core.graph import AttributedGraph
from repro.core.keyword_index import KeywordIndex
from tests.conftest import make_random_attributed_graph


class TestPostings:
    def test_vertices_with(self, figure1):
        index = KeywordIndex(figure1)
        assert index.vertices_with("SN") == (0, 6, 10)
        assert index.vertices_with("GQ") == (6,)
        assert index.vertices_with("missing") == ()

    def test_document_frequency(self, figure1):
        index = KeywordIndex(figure1)
        assert index.document_frequency("GD") == 4
        assert index.document_frequency("missing") == 0

    def test_labels_sorted(self, figure1):
        index = KeywordIndex(figure1)
        assert index.labels() == sorted(index.labels())
        assert "SN" in index.labels()

    def test_empty_graph(self):
        index = KeywordIndex(AttributedGraph(0))
        assert index.labels() == []

    def test_staleness(self, figure1):
        index = KeywordIndex(figure1)
        assert not index.is_stale()
        figure1.set_keywords(2, ["SN"])
        assert index.is_stale()


class TestContextEquivalence:
    @pytest.mark.parametrize(
        "keywords",
        [
            ["SN"],
            ["SN", "QP", "DQ", "GQ", "GD"],
            ["SN", "missing", "GD"],
            ["GD", "GD", "SN"],  # duplicates collapse
        ],
    )
    def test_bit_for_bit_identical(self, figure1, keywords):
        direct = CoverageContext(figure1, keywords)
        indexed = KeywordIndex(figure1).context_for(keywords)
        assert indexed.query_labels == direct.query_labels
        assert indexed.query_size == direct.query_size
        assert indexed.full_mask == direct.full_mask
        assert indexed.masks == direct.masks

    def test_equivalence_on_random_graph(self):
        graph = make_random_attributed_graph(num_vertices=60, seed=11)
        labels = sorted(graph.keyword_table)[:6]
        direct = CoverageContext(graph, labels)
        indexed = KeywordIndex(graph).context_for(labels)
        assert indexed.masks == direct.masks

    def test_empty_keywords_rejected(self, figure1):
        with pytest.raises(QueryValidationError):
            KeywordIndex(figure1).context_for([])

    def test_context_drives_solver(self, figure1, figure1_q):
        """A solver fed vertices from the indexed context agrees with
        the direct path (smoke test of the drop-in claim)."""
        from repro.core.branch_and_bound import BranchAndBoundSolver

        index = KeywordIndex(figure1)
        context = index.context_for(figure1_q.keywords)
        solver = BranchAndBoundSolver(figure1)
        direct = solver.solve(figure1_q)
        restricted = solver.solve(
            figure1_q, candidates=context.qualified_vertices()
        )
        assert [g.coverage for g in restricted.groups] == [
            g.coverage for g in direct.groups
        ]


class TestQualifiedCount:
    def test_matches_context(self, figure1):
        index = KeywordIndex(figure1)
        for keywords in (["SN"], ["SN", "GD"], ["missing"]):
            expected = len(CoverageContext(figure1, keywords).qualified_vertices()) if keywords != ["missing"] else 0
            if keywords == ["missing"]:
                assert index.qualified_count(keywords) == 0
            else:
                assert index.qualified_count(keywords) == expected

    def test_union_not_sum(self, figure1):
        index = KeywordIndex(figure1)
        # u0 carries SN and GD: counted once.
        combined = index.qualified_count(["SN", "GD"])
        assert combined < index.document_frequency("SN") + index.document_frequency("GD")

    def test_repr(self, figure1):
        assert "labels" in repr(KeywordIndex(figure1))
