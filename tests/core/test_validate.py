"""Unit tests for the independent result validator."""

import dataclasses

import pytest

from repro.core.branch_and_bound import BranchAndBoundSolver, KTGResult
from repro.core.dktg import DKTGGreedySolver
from repro.core.query import DKTGQuery, KTGQuery
from repro.core.results import Group
from repro.core.validate import (
    ResultValidationError,
    validate_dktg_result,
    validate_ktg_result,
)


def forged(result: KTGResult, groups) -> KTGResult:
    return dataclasses.replace(result, groups=tuple(groups))


@pytest.fixture
def solved(figure1, figure1_q):
    return BranchAndBoundSolver(figure1).solve(figure1_q)


class TestValidKTGResults:
    def test_solver_output_passes(self, figure1, solved):
        validate_ktg_result(figure1, solved)

    def test_empty_result_passes(self, figure1):
        result = BranchAndBoundSolver(figure1).solve(
            KTGQuery(keywords=("NOPE",), group_size=2)
        )
        validate_ktg_result(figure1, result)

    def test_anchored_result_passes(self, figure1):
        query = KTGQuery(
            keywords=("SN", "GD"), group_size=2, tenuity=1, excluded_anchors=(0,)
        )
        result = BranchAndBoundSolver(figure1).solve(query)
        validate_ktg_result(figure1, result)


class TestForgedKTGResults:
    def test_wrong_size_detected(self, figure1, solved):
        bad = forged(solved, [Group.make([10, 1], 0.8)])
        with pytest.raises(ResultValidationError, match="members"):
            validate_ktg_result(figure1, bad)

    def test_kline_detected(self, figure1, solved):
        # u6 and u7 are adjacent: a 1-line at k=1.
        bad = forged(solved, [Group.make([6, 7, 10], 0.8)])
        with pytest.raises(ResultValidationError, match="-line"):
            validate_ktg_result(figure1, bad)

    def test_unqualified_member_detected(self, figure1, solved):
        # u9 carries no query keyword; {u9, u1, u10} is tenuous at k=1.
        bad = forged(solved, [Group.make([9, 1, 10], 0.6)])
        with pytest.raises(ResultValidationError, match="covers no query keyword"):
            validate_ktg_result(figure1, bad)

    def test_wrong_coverage_detected(self, figure1, solved):
        bad = forged(solved, [Group.make([10, 1, 4], 0.99)])
        with pytest.raises(ResultValidationError, match="coverage"):
            validate_ktg_result(figure1, bad)

    def test_unknown_vertex_detected(self, figure1, solved):
        bad = forged(solved, [Group.make([10, 1, 99], 0.8)])
        with pytest.raises(ResultValidationError, match="unknown vertex"):
            validate_ktg_result(figure1, bad)

    def test_overfull_result_detected(self, figure1, solved):
        groups = [
            Group.make([10, 1, 4], 0.8),
            Group.make([10, 1, 5], 0.8),
            Group.make([0, 5, 6], 0.8),
        ]
        bad = forged(solved, groups)
        with pytest.raises(ResultValidationError, match="asked for N=2"):
            validate_ktg_result(figure1, bad)

    def test_bad_ordering_detected(self, figure1):
        query = KTGQuery(
            keywords=("SN", "QP", "DQ", "GQ", "GD"), group_size=3, tenuity=1, top_n=2
        )
        result = BranchAndBoundSolver(figure1).solve(query)
        shuffled = forged(
            result, [Group.make([10, 1, 4], 0.4), Group.make([10, 1, 5], 0.8)]
        )
        with pytest.raises(ResultValidationError, match="sorted"):
            validate_ktg_result(figure1, shuffled)

    def test_duplicate_groups_detected(self, figure1, solved):
        bad = forged(solved, [Group.make([10, 1, 4], 0.8), Group.make([4, 1, 10], 0.8)])
        with pytest.raises(ResultValidationError, match="duplicate"):
            validate_ktg_result(figure1, bad)

    def test_anchor_violation_detected(self, figure1):
        query = KTGQuery(
            keywords=("SN", "GD"), group_size=2, tenuity=1, excluded_anchors=(11,)
        )
        result = BranchAndBoundSolver(figure1).solve(query)
        # u5 is adjacent to anchor u11; {u5, u4} covers GD only (0.5).
        bad = forged(result, [Group.make([5, 4], 0.5)])
        with pytest.raises(ResultValidationError, match="anchor"):
            validate_ktg_result(figure1, bad)


class TestDKTGValidation:
    def test_greedy_output_passes(self, figure1):
        query = DKTGQuery(
            keywords=("SN", "QP", "DQ", "GQ", "GD"), group_size=3, tenuity=1, top_n=2
        )
        result = DKTGGreedySolver(figure1).solve(query)
        validate_dktg_result(figure1, result)

    def test_wrong_diversity_detected(self, figure1):
        query = DKTGQuery(
            keywords=("SN", "QP", "DQ", "GQ", "GD"), group_size=3, tenuity=1, top_n=2
        )
        result = DKTGGreedySolver(figure1).solve(query)
        bad = dataclasses.replace(result, diversity=0.123)
        with pytest.raises(ResultValidationError, match="diversity"):
            validate_dktg_result(figure1, bad)

    def test_wrong_score_detected(self, figure1):
        query = DKTGQuery(
            keywords=("SN", "QP", "DQ", "GQ", "GD"), group_size=3, tenuity=1, top_n=2
        )
        result = DKTGGreedySolver(figure1).solve(query)
        bad = dataclasses.replace(result, score=0.0001)
        with pytest.raises(ResultValidationError, match="score"):
            validate_dktg_result(figure1, bad)
