"""Shared fixtures for the test suite.

Small deterministic graphs dominate: exactness tests compare solvers
against brute force, which needs tiny instances; index tests compare
against BFS ground truth, which needs full-graph scans.
"""

from __future__ import annotations

import glob
import random

import pytest

from repro.core.graph import AttributedGraph
from repro.datasets.figure1 import figure1_example, figure1_query
from repro.datasets.keywords import KeywordModel, assign_keywords
from repro.datasets.synthetic import powerlaw_cluster_graph


@pytest.fixture
def figure1():
    """The paper's Figure 1 running example."""
    return figure1_example()


@pytest.fixture
def figure1_q():
    """The paper's running query ``<{SN,QP,DQ,GQ,GD}, 3, 1, 2>``."""
    return figure1_query()


@pytest.fixture
def path_graph():
    """0-1-2-3-4 path, keywords a..e in order."""
    return AttributedGraph(
        5,
        [(0, 1), (1, 2), (2, 3), (3, 4)],
        {i: [label] for i, label in enumerate("abcde")},
    )


@pytest.fixture
def disconnected_graph():
    """Two components: a triangle (0,1,2) and an edge (3,4); 5 isolated."""
    return AttributedGraph(
        6,
        [(0, 1), (1, 2), (0, 2), (3, 4)],
        {0: ["x"], 1: ["y"], 2: ["x", "y"], 3: ["z"], 4: ["x"], 5: ["z"]},
    )


def make_random_attributed_graph(
    num_vertices: int = 40,
    edges_per_vertex: int = 2,
    seed: int = 0,
    vocabulary_size: int = 12,
) -> AttributedGraph:
    """Small seeded random graph with keywords, for cross-validation."""
    rng = random.Random(seed)
    graph = powerlaw_cluster_graph(num_vertices, edges_per_vertex, 0.3, rng)
    assign_keywords(
        graph,
        KeywordModel(vocabulary_size=vocabulary_size, min_keywords=0, max_keywords=3),
        rng,
    )
    return graph


@pytest.fixture
def random_graph():
    return make_random_attributed_graph(seed=7)


@pytest.fixture(autouse=True, scope="session")
def no_leaked_shared_memory():
    """Fail the session if any test leaks a shared-memory segment.

    The CSR fan-out protocol promises deterministic segment release
    (engine ``close()`` / version-bump teardown); a stray ``psm_*``
    entry in ``/dev/shm`` after the run means an owner never unlinked.
    Linux-only: other platforms have no /dev/shm to inspect.
    """
    before = set(glob.glob("/dev/shm/psm_*"))
    yield
    leaked = set(glob.glob("/dev/shm/psm_*")) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
