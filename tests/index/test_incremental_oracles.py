"""Cross-validation of every oracle's incremental maintenance hooks.

The epoch mutation path (:mod:`repro.core.epoch`) routes edits through
``insert_edge`` / ``delete_edge`` / ``insert_vertex`` on whichever
oracle is live, so all four implementations (BFS, NL, NLRNL, PLL) must
answer every distance/tenuity probe exactly like an oracle rebuilt from
scratch after *any* mutation stream — and must not report themselves
stale afterwards.  NLRNL has its own focused suite in
``test_updates.py``; this file pins the shared contract across the
whole family under one randomized stream.
"""

from __future__ import annotations

import random

import pytest

from repro.index.bfs import BFSOracle
from repro.index.nl import NLIndex
from repro.index.nlrnl import NLRNLIndex
from repro.index.pll import PLLIndex
from tests.conftest import make_random_attributed_graph

ORACLES = [
    pytest.param(BFSOracle, id="bfs"),
    pytest.param(NLIndex, id="nl"),
    pytest.param(NLRNLIndex, id="nlrnl"),
    pytest.param(PLLIndex, id="pll"),
]


def assert_matches_fresh_bfs(oracle) -> None:
    """Every tenuity probe must agree with a fresh BFS over the graph."""
    graph = oracle.graph
    reference = BFSOracle(graph)
    for u in graph.vertices():
        for v in graph.vertices():
            for k in (0, 1, 2, 4):
                assert oracle.is_tenuous(u, v, k) == reference.is_tenuous(u, v, k), (
                    type(oracle).__name__,
                    u,
                    v,
                    k,
                )


def drive(oracle, seed: int, steps: int) -> None:
    """Apply a random stream of inserts/deletes/vertex appends."""
    rng = random.Random(seed)
    graph = oracle.graph
    for _ in range(steps):
        action = rng.random()
        if action < 0.15:
            oracle.insert_vertex([f"kw{rng.randrange(4):03d}"])
            continue
        u, v = rng.sample(range(graph.num_vertices), 2)
        if graph.has_edge(u, v):
            oracle.delete_edge(u, v)
        else:
            oracle.insert_edge(u, v)


@pytest.mark.parametrize("oracle_cls", ORACLES)
def test_supports_incremental_updates(oracle_cls):
    graph = make_random_attributed_graph(num_vertices=10, seed=0)
    assert oracle_cls(graph).supports_incremental_updates()


@pytest.mark.parametrize("oracle_cls", ORACLES)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_mutation_stream_matches_fresh_rebuild(oracle_cls, seed):
    graph = make_random_attributed_graph(num_vertices=14, seed=seed)
    oracle = oracle_cls(graph)
    drive(oracle, seed=seed * 31, steps=15)
    assert not oracle.is_stale()
    assert_matches_fresh_bfs(oracle)


@pytest.mark.parametrize("oracle_cls", ORACLES)
def test_insert_vertex_returns_dense_id_and_stays_exact(oracle_cls):
    graph = make_random_attributed_graph(num_vertices=8, seed=9)
    oracle = oracle_cls(graph)
    vertex = oracle.insert_vertex(["kw000"])
    assert vertex == graph.num_vertices - 1
    # Isolated vertex: tenuous to everyone at any k.
    assert oracle.is_tenuous(vertex, 0, 4)
    oracle.insert_edge(vertex, 0)
    assert not oracle.is_tenuous(vertex, 0, 1)
    assert not oracle.is_stale()
    assert_matches_fresh_bfs(oracle)


def test_pll_delete_counts_rebuilds():
    """PLL deletions fall back to a rebuild (decremental 2-hop repair is
    unsound); the fallback is observable via ``delete_rebuilds``."""
    graph = make_random_attributed_graph(num_vertices=10, seed=4)
    oracle = PLLIndex(graph)
    u, v = next(iter(graph.edges()))
    oracle.delete_edge(u, v)
    assert oracle.stats.extra.get("delete_rebuilds") == 1
    assert_matches_fresh_bfs(oracle)
