"""Unit tests for the pruned-landmark-labeling (2-hop) index."""

import pytest

from repro.core.graph import AttributedGraph
from repro.index.bfs import BFSOracle
from repro.index.pll import PLLIndex
from tests.conftest import make_random_attributed_graph


class TestQueryDistance:
    def test_path_distances(self, path_graph):
        pll = PLLIndex(path_graph)
        for u in path_graph.vertices():
            for v in path_graph.vertices():
                assert pll.query_distance(u, v) == abs(u - v)

    def test_unreachable_is_inf(self, disconnected_graph):
        pll = PLLIndex(disconnected_graph)
        assert pll.query_distance(0, 5) == float("inf")
        assert pll.query_distance(0, 3) == float("inf")

    def test_self_distance_zero(self, figure1):
        pll = PLLIndex(figure1)
        for v in figure1.vertices():
            assert pll.query_distance(v, v) == 0

    def test_matches_bfs_on_figure1(self, figure1):
        pll = PLLIndex(figure1)
        for u in figure1.vertices():
            for v in figure1.vertices():
                expected = figure1.hop_distance(u, v)
                decoded = pll.query_distance(u, v)
                assert decoded == (float("inf") if expected is None else expected)

    def test_matches_bfs_on_random_graph(self):
        graph = make_random_attributed_graph(num_vertices=50, seed=3)
        pll = PLLIndex(graph)
        for u in range(0, 50, 3):
            for v in range(0, 50, 7):
                expected = graph.hop_distance(u, v)
                decoded = pll.query_distance(u, v)
                assert decoded == (float("inf") if expected is None else expected)


class TestProbes:
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4])
    def test_is_tenuous_matches_bfs(self, figure1, k):
        pll = PLLIndex(figure1)
        reference = BFSOracle(figure1)
        for u in figure1.vertices():
            for v in figure1.vertices():
                assert pll.is_tenuous(u, v, k) == reference.is_tenuous(u, v, k)

    def test_filter_candidates_matches_bfs(self, figure1):
        pll = PLLIndex(figure1)
        reference = BFSOracle(figure1)
        candidates = list(figure1.vertices())
        for member in figure1.vertices():
            for k in (0, 1, 2, 3):
                assert pll.filter_candidates(candidates, member, k) == (
                    reference.filter_candidates(candidates, member, k)
                )

    def test_within_k_matches_bfs(self, figure1):
        pll = PLLIndex(figure1)
        reference = BFSOracle(figure1)
        for vertex in figure1.vertices():
            assert pll.within_k(vertex, 2) == reference.within_k(vertex, 2)


class TestLabelStructure:
    def test_pruning_keeps_labels_small(self):
        graph = make_random_attributed_graph(num_vertices=80, seed=5)
        pll = PLLIndex(graph)
        # Without pruning every label would hold ~n entries; pruned
        # labels on a social-ish graph are far smaller.
        assert pll.average_label_size() < graph.num_vertices / 3

    def test_entries_counted(self, figure1):
        pll = PLLIndex(figure1)
        assert pll.stats.entries == sum(
            len(pll.label_of(v)) for v in figure1.vertices()
        )

    def test_hub_is_first_landmark(self, figure1):
        pll = PLLIndex(figure1)
        hub = max(figure1.vertices(), key=figure1.degree)
        assert pll._order[0] == hub
        # Every vertex in the hub's component has the hub in its label.
        component = figure1.connected_components()
        for vertex in figure1.vertices():
            if component[vertex] == component[hub]:
                assert hub in pll.label_of(vertex)

    def test_labels_certify_exact_distances(self, figure1):
        pll = PLLIndex(figure1)
        for vertex in figure1.vertices():
            for landmark, distance in pll.label_of(vertex).items():
                assert figure1.hop_distance(vertex, landmark) == distance

    def test_empty_and_singleton_graphs(self):
        assert PLLIndex(AttributedGraph(0)).stats.entries == 0
        single = PLLIndex(AttributedGraph(1))
        assert not single.is_tenuous(0, 0, 3)


class TestRebuild:
    def test_rebuild_after_mutation(self, path_graph):
        pll = PLLIndex(path_graph)
        assert pll.is_tenuous(0, 4, 3)
        pll.insert_edge(0, 4)
        assert not pll.is_tenuous(0, 4, 3)
        assert not pll.is_stale()

    def test_delete_edge(self, path_graph):
        pll = PLLIndex(path_graph)
        pll.delete_edge(2, 3)
        assert pll.query_distance(0, 4) == float("inf")
