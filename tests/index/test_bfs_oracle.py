"""Unit tests for the index-free BFS oracle."""

import pytest

from repro.index.bfs import BFSOracle


def ground_truth_tenuous(graph, u, v, k):
    if u == v:
        return False
    distance = graph.hop_distance(u, v)
    return distance is None or distance > k


class TestProbes:
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4])
    def test_matches_ground_truth(self, figure1, k):
        oracle = BFSOracle(figure1)
        for u in figure1.vertices():
            for v in figure1.vertices():
                assert oracle.is_tenuous(u, v, k) == ground_truth_tenuous(
                    figure1, u, v, k
                ), (u, v, k)

    def test_self_never_tenuous(self, figure1):
        oracle = BFSOracle(figure1)
        assert not oracle.is_tenuous(3, 3, 5)

    def test_unreachable_always_tenuous(self, disconnected_graph):
        oracle = BFSOracle(disconnected_graph)
        assert oracle.is_tenuous(0, 5, 100)

    def test_negative_k_rejected(self, figure1):
        with pytest.raises(ValueError):
            BFSOracle(figure1).is_tenuous(0, 1, -1)

    def test_probe_counter(self, figure1):
        oracle = BFSOracle(figure1)
        oracle.is_tenuous(0, 1, 2)
        oracle.is_tenuous(0, 2, 2)
        assert oracle.stats.probes == 2


class TestWithinK:
    def test_within_zero_is_empty(self, figure1):
        assert BFSOracle(figure1).within_k(0, 0) == set()

    def test_within_k_matches_bfs(self, figure1):
        oracle = BFSOracle(figure1)
        for vertex in figure1.vertices():
            for k in (1, 2, 3):
                expected = {
                    other
                    for other, distance in figure1.bfs_distances(vertex, k).items()
                    if other != vertex
                }
                assert oracle.within_k(vertex, k) == expected

    def test_figure1_documented_ball(self, figure1):
        assert BFSOracle(figure1).within_k(8, 2) == {0, 3, 4, 6, 7}


class TestFilterCandidates:
    def test_matches_pairwise(self, figure1):
        oracle = BFSOracle(figure1)
        candidates = list(figure1.vertices())
        for member in (0, 8, 10):
            for k in (1, 2):
                filtered = oracle.filter_candidates(candidates, member, k)
                expected = [
                    v
                    for v in candidates
                    if v != member and ground_truth_tenuous(figure1, v, member, k)
                ]
                assert filtered == expected

    def test_k_zero_only_removes_member(self, figure1):
        oracle = BFSOracle(figure1)
        filtered = oracle.filter_candidates([0, 1, 2], 1, 0)
        assert filtered == [0, 2]


class TestCaching:
    def test_cache_disabled(self, figure1):
        oracle = BFSOracle(figure1, cache_size=0)
        assert oracle.is_tenuous(3, 5, 2)  # dist(u3, u5) = 3
        assert oracle._cache == {}

    def test_cache_bounded(self, figure1):
        oracle = BFSOracle(figure1, cache_size=2)
        for vertex in (0, 1, 2, 3):
            oracle.within_k(vertex, 1)
        assert len(oracle._cache) <= 2

    def test_negative_cache_size_rejected(self, figure1):
        with pytest.raises(ValueError):
            BFSOracle(figure1, cache_size=-1)

    def test_eviction_counter_tracks_lru_pressure(self, figure1):
        oracle = BFSOracle(figure1, cache_size=2)
        for vertex in (0, 1, 2, 3):
            oracle.within_k(vertex, 1)
        # Four distinct sources through a two-slot memo: two evictions.
        assert oracle.stats.memo_evictions == 2
        assert len(oracle._cache) == 2

    def test_no_evictions_within_budget(self, figure1):
        oracle = BFSOracle(figure1, cache_size=8)
        for vertex in (0, 1, 2):
            oracle.within_k(vertex, 1)
        assert oracle.stats.memo_evictions == 0

    def test_reset_usage_zeroes_eviction_counter(self, figure1):
        oracle = BFSOracle(figure1, cache_size=1)
        oracle.within_k(0, 1)
        oracle.within_k(1, 1)
        assert oracle.stats.memo_evictions == 1
        oracle.stats.reset_usage()
        assert oracle.stats.memo_evictions == 0

    def test_cached_answers_stay_correct(self, figure1):
        oracle = BFSOracle(figure1)
        first = oracle.is_tenuous(3, 5, 3)
        second = oracle.is_tenuous(3, 5, 3)
        assert first == second == (figure1.hop_distance(3, 5) > 3)


class TestFrontierResume:
    """Increasing-k probes resume from the cached (k-1)-hop frontier."""

    def test_resume_matches_from_scratch(self, figure1):
        resumed = BFSOracle(figure1)
        fresh = BFSOracle(figure1)
        for vertex in figure1.vertices():
            for k in (1, 2, 3, 4):
                assert resumed.within_k(vertex, k) == fresh.within_k(vertex, k), (
                    vertex,
                    k,
                )
            fresh = BFSOracle(figure1)  # never sees the smaller-k prefixes

    def test_resume_counts_as_memo_hit(self, figure1):
        oracle = BFSOracle(figure1)
        oracle.within_k(8, 1)
        assert (oracle.stats.memo_hits, oracle.stats.memo_misses) == (0, 1)
        oracle.within_k(8, 2)  # resumes from the cached 1-hop frontier
        assert (oracle.stats.memo_hits, oracle.stats.memo_misses) == (1, 1)
        oracle.within_k(8, 2)  # exact hit
        assert (oracle.stats.memo_hits, oracle.stats.memo_misses) == (2, 1)

    def test_resume_skips_intermediate_k(self, path_graph):
        oracle = BFSOracle(path_graph)
        assert oracle.within_k(0, 1) == {1}
        # k=4 resumes from k=1 even though k=2,3 were never probed.
        assert oracle.within_k(0, 4) == {1, 2, 3, 4}
        assert oracle.stats.memo_hits == 1

    def test_exhausted_ball_short_circuits(self, path_graph):
        oracle = BFSOracle(path_graph)
        full = oracle.within_k(0, 10)  # frontier empties at depth 4
        assert full == {1, 2, 3, 4}
        assert oracle.within_k(0, 50) == full
        assert oracle.stats.memo_hits == 1

    def test_resume_does_not_corrupt_cached_prefix(self, figure1):
        oracle = BFSOracle(figure1)
        one_hop = oracle.within_k(8, 1)
        snapshot = set(one_hop)
        oracle.within_k(8, 3)
        assert oracle.within_k(8, 1) == snapshot


class TestUpdates:
    def test_insert_edge_refreshes(self, path_graph):
        oracle = BFSOracle(path_graph)
        assert oracle.is_tenuous(0, 4, 2)
        oracle.insert_edge(0, 4)
        assert not oracle.is_tenuous(0, 4, 2)
        assert not oracle.is_stale()

    def test_delete_edge_refreshes(self, path_graph):
        oracle = BFSOracle(path_graph)
        assert not oracle.is_tenuous(0, 2, 2)
        oracle.delete_edge(1, 2)
        assert oracle.is_tenuous(0, 2, 2)

    def test_staleness_detection(self, path_graph):
        oracle = BFSOracle(path_graph)
        path_graph.add_edge(0, 2)
        assert oracle.is_stale()
