"""Unit tests for the index-free BFS oracle."""

import pytest

from repro.index.bfs import BFSOracle


def ground_truth_tenuous(graph, u, v, k):
    if u == v:
        return False
    distance = graph.hop_distance(u, v)
    return distance is None or distance > k


class TestProbes:
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4])
    def test_matches_ground_truth(self, figure1, k):
        oracle = BFSOracle(figure1)
        for u in figure1.vertices():
            for v in figure1.vertices():
                assert oracle.is_tenuous(u, v, k) == ground_truth_tenuous(
                    figure1, u, v, k
                ), (u, v, k)

    def test_self_never_tenuous(self, figure1):
        oracle = BFSOracle(figure1)
        assert not oracle.is_tenuous(3, 3, 5)

    def test_unreachable_always_tenuous(self, disconnected_graph):
        oracle = BFSOracle(disconnected_graph)
        assert oracle.is_tenuous(0, 5, 100)

    def test_negative_k_rejected(self, figure1):
        with pytest.raises(ValueError):
            BFSOracle(figure1).is_tenuous(0, 1, -1)

    def test_probe_counter(self, figure1):
        oracle = BFSOracle(figure1)
        oracle.is_tenuous(0, 1, 2)
        oracle.is_tenuous(0, 2, 2)
        assert oracle.stats.probes == 2


class TestWithinK:
    def test_within_zero_is_empty(self, figure1):
        assert BFSOracle(figure1).within_k(0, 0) == set()

    def test_within_k_matches_bfs(self, figure1):
        oracle = BFSOracle(figure1)
        for vertex in figure1.vertices():
            for k in (1, 2, 3):
                expected = {
                    other
                    for other, distance in figure1.bfs_distances(vertex, k).items()
                    if other != vertex
                }
                assert oracle.within_k(vertex, k) == expected

    def test_figure1_documented_ball(self, figure1):
        assert BFSOracle(figure1).within_k(8, 2) == {0, 3, 4, 6, 7}


class TestFilterCandidates:
    def test_matches_pairwise(self, figure1):
        oracle = BFSOracle(figure1)
        candidates = list(figure1.vertices())
        for member in (0, 8, 10):
            for k in (1, 2):
                filtered = oracle.filter_candidates(candidates, member, k)
                expected = [
                    v
                    for v in candidates
                    if v != member and ground_truth_tenuous(figure1, v, member, k)
                ]
                assert filtered == expected

    def test_k_zero_only_removes_member(self, figure1):
        oracle = BFSOracle(figure1)
        filtered = oracle.filter_candidates([0, 1, 2], 1, 0)
        assert filtered == [0, 2]


class TestCaching:
    def test_cache_disabled(self, figure1):
        oracle = BFSOracle(figure1, cache_size=0)
        assert oracle.is_tenuous(3, 5, 2)  # dist(u3, u5) = 3
        assert oracle._cache == {}

    def test_cache_bounded(self, figure1):
        oracle = BFSOracle(figure1, cache_size=2)
        for vertex in (0, 1, 2, 3):
            oracle.within_k(vertex, 1)
        assert len(oracle._cache) <= 2

    def test_negative_cache_size_rejected(self, figure1):
        with pytest.raises(ValueError):
            BFSOracle(figure1, cache_size=-1)

    def test_cached_answers_stay_correct(self, figure1):
        oracle = BFSOracle(figure1)
        first = oracle.is_tenuous(3, 5, 3)
        second = oracle.is_tenuous(3, 5, 3)
        assert first == second == (figure1.hop_distance(3, 5) > 3)


class TestUpdates:
    def test_insert_edge_refreshes(self, path_graph):
        oracle = BFSOracle(path_graph)
        assert oracle.is_tenuous(0, 4, 2)
        oracle.insert_edge(0, 4)
        assert not oracle.is_tenuous(0, 4, 2)
        assert not oracle.is_stale()

    def test_delete_edge_refreshes(self, path_graph):
        oracle = BFSOracle(path_graph)
        assert not oracle.is_tenuous(0, 2, 2)
        oracle.delete_edge(1, 2)
        assert oracle.is_tenuous(0, 2, 2)

    def test_staleness_detection(self, path_graph):
        oracle = BFSOracle(path_graph)
        path_graph.add_edge(0, 2)
        assert oracle.is_stale()
