"""Unit tests for the NL index (h-hop neighbour lists)."""

import pytest

from repro.core.errors import IndexBuildError
from repro.core.graph import AttributedGraph
from repro.index.bfs import BFSOracle
from repro.index.nl import NLIndex, choose_peak_level


class TestChoosePeakLevel:
    def test_picks_maximum(self):
        assert choose_peak_level([3, 10, 5]) == 2

    def test_tie_prefers_smaller_level(self):
        assert choose_peak_level([5, 5, 2]) == 1

    def test_empty_profile(self):
        assert choose_peak_level([]) == 1


class TestConstruction:
    def test_invalid_depth_rejected(self, figure1):
        with pytest.raises(IndexBuildError):
            NLIndex(figure1, depth=0)
        with pytest.raises(IndexBuildError):
            NLIndex(figure1, depth="deep")

    def test_explicit_depth_stored(self, figure1):
        index = NLIndex(figure1, depth=2)
        assert index.depth == 2
        assert index.stats.extra["depth"] == 2

    def test_auto_depth_positive(self, figure1):
        index = NLIndex(figure1)
        assert index.depth >= 1

    def test_levels_are_exact_distance_classes(self, figure1):
        index = NLIndex(figure1, depth=3)
        for vertex in figure1.vertices():
            for depth, level in enumerate(index.level_sets(vertex), start=1):
                for other in level:
                    assert figure1.hop_distance(vertex, other) == depth

    def test_entry_count_matches_levels(self, figure1):
        index = NLIndex(figure1, depth=2)
        total = sum(
            len(level) for v in figure1.vertices() for level in index.level_sets(v)
        )
        assert index.stats.entries == total

    def test_build_time_recorded(self, figure1):
        assert NLIndex(figure1).stats.build_seconds > 0


class TestProbes:
    @pytest.mark.parametrize("depth", [1, 2, 3])
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4, 5])
    def test_matches_bfs_ground_truth(self, figure1, depth, k):
        index = NLIndex(figure1, depth=depth)
        reference = BFSOracle(figure1)
        for u in figure1.vertices():
            for v in figure1.vertices():
                assert index.is_tenuous(u, v, k) == reference.is_tenuous(u, v, k), (
                    u,
                    v,
                    k,
                    depth,
                )

    def test_deep_probe_requires_expansion(self):
        graph = AttributedGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        index = NLIndex(graph, depth=1)
        assert index.is_tenuous(0, 4, 3)  # dist 4 > 3
        assert index.stats.expansions > 0

    def test_expansions_are_cached(self):
        graph = AttributedGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        index = NLIndex(graph, depth=1)
        index.is_tenuous(0, 4, 3)
        count = index.stats.expansions
        # Re-probing the same pair reuses vertex 4's expanded levels.
        index.is_tenuous(0, 4, 3)
        assert index.stats.expansions == count

    def test_no_expansion_when_depth_covers_k(self, figure1):
        index = NLIndex(figure1, depth=4)
        for u in figure1.vertices():
            for v in figure1.vertices():
                index.is_tenuous(u, v, 3)
        assert index.stats.expansions == 0

    def test_exhausted_component_short_circuits(self, disconnected_graph):
        index = NLIndex(disconnected_graph, depth=1)
        # Component of 0 has diameter 1; probing k=5 must not expand
        # beyond the exhausted frontier.
        assert index.is_tenuous(0, 3, 5)
        assert index.is_tenuous(0, 5, 5)


class TestWithinKAndFilter:
    def test_within_k_matches_bfs(self, figure1):
        index = NLIndex(figure1, depth=1)
        reference = BFSOracle(figure1)
        for vertex in figure1.vertices():
            for k in (1, 2, 3):
                assert index.within_k(vertex, k) == reference.within_k(vertex, k)

    def test_filter_candidates_matches_bfs(self, figure1):
        index = NLIndex(figure1, depth=2)
        reference = BFSOracle(figure1)
        candidates = list(figure1.vertices())
        for member in (0, 4, 8):
            for k in (1, 2, 3):
                assert index.filter_candidates(candidates, member, k) == (
                    reference.filter_candidates(candidates, member, k)
                )

    def test_figure1_documented_ball(self, figure1):
        assert NLIndex(figure1, depth=1).within_k(8, 2) == {0, 3, 4, 6, 7}


class TestRebuild:
    def test_rebuild_after_mutation(self, path_graph):
        index = NLIndex(path_graph, depth=2)
        assert index.is_tenuous(0, 4, 3)
        path_graph.add_edge(0, 4)
        assert index.is_stale()
        index.rebuild()
        assert not index.is_tenuous(0, 4, 3)
        assert not index.is_stale()

    def test_insert_edge_helper_repairs_in_place(self, path_graph):
        index = NLIndex(path_graph, depth=2)
        index.insert_edge(0, 3)
        assert not index.is_tenuous(0, 3, 1)
        assert not index.is_stale()
        assert index.supports_incremental_updates()
