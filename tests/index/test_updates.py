"""Unit tests for dynamic NLRNL maintenance (edge insert/delete)."""

import random

import pytest

from repro.core.errors import IndexUpdateError
from repro.index.bfs import BFSOracle
from repro.index.nlrnl import NLRNLIndex
from tests.conftest import make_random_attributed_graph


def assert_index_consistent(index: NLRNLIndex):
    """The updated index must answer every probe like fresh BFS."""
    graph = index.graph
    reference = BFSOracle(graph)
    for u in graph.vertices():
        for v in graph.vertices():
            for k in (0, 1, 2, 3, 4):
                assert index.is_tenuous(u, v, k) == reference.is_tenuous(u, v, k), (
                    u,
                    v,
                    k,
                )


class TestInsert:
    def test_shortcut_edge(self, path_graph):
        index = NLRNLIndex(path_graph)
        index.insert_edge(0, 4)
        assert not index.is_tenuous(0, 4, 1)
        assert_index_consistent(index)

    def test_component_merge(self, disconnected_graph):
        index = NLRNLIndex(disconnected_graph)
        assert index.is_tenuous(0, 3, 10)
        index.insert_edge(2, 3)
        assert not index.is_tenuous(0, 3, 2)
        assert_index_consistent(index)

    def test_attach_isolated_vertex(self, disconnected_graph):
        index = NLRNLIndex(disconnected_graph)
        index.insert_edge(5, 0)
        assert not index.is_tenuous(5, 1, 2)
        assert_index_consistent(index)

    def test_no_change_edge(self, figure1):
        # Inserting an edge between vertices at distance 2 changes only
        # that pair (|old diff| <= 1 elsewhere stays untouched).
        index = NLRNLIndex(figure1)
        index.insert_edge(1, 3)  # dist was 2 via u0/u2
        assert_index_consistent(index)

    def test_version_tracking(self, path_graph):
        index = NLRNLIndex(path_graph)
        index.insert_edge(0, 2)
        assert not index.is_stale()


class TestDelete:
    def test_path_break(self, path_graph):
        index = NLRNLIndex(path_graph)
        index.delete_edge(2, 3)
        assert index.is_tenuous(0, 4, 100)
        assert_index_consistent(index)

    def test_redundant_edge(self, figure1):
        index = NLRNLIndex(figure1)
        index.delete_edge(1, 2)  # 1 and 2 remain connected via u0
        assert not index.is_tenuous(1, 2, 2)
        assert_index_consistent(index)

    def test_missing_edge_rejected(self, path_graph):
        index = NLRNLIndex(path_graph)
        with pytest.raises(IndexUpdateError):
            index.delete_edge(0, 4)

    def test_component_split(self, disconnected_graph):
        index = NLRNLIndex(disconnected_graph)
        index.delete_edge(3, 4)
        assert index.is_tenuous(3, 4, 100)
        assert_index_consistent(index)


class TestRandomisedSequences:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mixed_update_sequence_stays_consistent(self, seed):
        graph = make_random_attributed_graph(num_vertices=24, seed=seed)
        index = NLRNLIndex(graph)
        rng = random.Random(seed)
        for _ in range(12):
            u = rng.randrange(graph.num_vertices)
            v = rng.randrange(graph.num_vertices)
            if u == v:
                continue
            if graph.has_edge(u, v):
                index.delete_edge(u, v)
            else:
                index.insert_edge(u, v)
        assert_index_consistent(index)

    def test_updates_match_full_rebuild(self):
        graph = make_random_attributed_graph(num_vertices=20, seed=5)
        index = NLRNLIndex(graph)
        index.insert_edge(0, graph.num_vertices - 1)
        index.delete_edge(0, graph.num_vertices - 1)
        rebuilt = NLRNLIndex(graph)
        for u in graph.vertices():
            for v in graph.vertices():
                assert index.distance_class(u, v) == rebuilt.distance_class(u, v)

    def test_entry_count_stays_accurate(self):
        graph = make_random_attributed_graph(num_vertices=20, seed=9)
        index = NLRNLIndex(graph)
        non_edge = next(
            (u, v)
            for u in graph.vertices()
            for v in graph.vertices()
            if u < v and not graph.has_edge(u, v)
        )
        index.insert_edge(*non_edge)
        expected = sum(len(vertex_map) for vertex_map in index._depth_of)
        assert index.stats.entries == expected

    def test_supports_incremental_updates_flag(self, path_graph):
        assert NLRNLIndex(path_graph).supports_incremental_updates()
