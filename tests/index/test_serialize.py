"""Unit tests for index persistence (save/load round trips)."""

import json

import pytest

from repro.core.errors import IndexBuildError
from repro.index.bfs import BFSOracle
from repro.index.nl import NLIndex
from repro.index.nlrnl import NLRNLIndex
from repro.index.pll import PLLIndex
from repro.index.serialize import graph_fingerprint, load_index, save_index
from tests.conftest import make_random_attributed_graph


@pytest.fixture
def graph():
    return make_random_attributed_graph(num_vertices=30, seed=4)


def assert_probe_equivalent(a, b, graph):
    for u in graph.vertices():
        for v in graph.vertices():
            for k in (0, 1, 2, 3, 4):
                assert a.is_tenuous(u, v, k) == b.is_tenuous(u, v, k), (u, v, k)


class TestRoundTrips:
    @pytest.mark.parametrize("index_cls", [NLRNLIndex, PLLIndex])
    def test_probe_equivalence(self, graph, tmp_path, index_cls):
        original = index_cls(graph)
        path = tmp_path / "index.json"
        save_index(original, path)
        loaded = load_index(graph, path)
        assert type(loaded) is index_cls
        assert loaded.stats.entries == original.stats.entries
        assert_probe_equivalent(original, loaded, graph)

    def test_nl_round_trip(self, graph, tmp_path):
        original = NLIndex(graph, depth=2)
        path = tmp_path / "index.json"
        save_index(original, path)
        loaded = load_index(graph, path)
        assert loaded.depth == 2
        assert_probe_equivalent(original, loaded, graph)

    def test_loaded_nlrnl_still_updates(self, graph, tmp_path):
        original = NLRNLIndex(graph)
        path = tmp_path / "index.json"
        save_index(original, path)
        loaded = load_index(graph, path)
        non_edge = next(
            (u, v)
            for u in graph.vertices()
            for v in graph.vertices()
            if u < v and not graph.has_edge(u, v)
        )
        loaded.insert_edge(*non_edge)
        assert not loaded.is_tenuous(*non_edge, 1)
        graph.remove_edge(*non_edge)  # restore for other assertions


class TestFailureModes:
    def test_bfs_oracle_not_serialisable(self, graph, tmp_path):
        with pytest.raises(IndexBuildError, match="no serialisable state"):
            save_index(BFSOracle(graph), tmp_path / "x.json")

    def test_stale_index_rejected(self, graph, tmp_path):
        index = NLRNLIndex(graph)
        graph.add_edge(
            *next(
                (u, v)
                for u in graph.vertices()
                for v in graph.vertices()
                if u < v and not graph.has_edge(u, v)
            )
        )
        with pytest.raises(IndexBuildError, match="stale"):
            save_index(index, tmp_path / "x.json")

    def test_fingerprint_mismatch_rejected(self, graph, tmp_path):
        index = NLRNLIndex(graph)
        path = tmp_path / "index.json"
        save_index(index, path)
        other = make_random_attributed_graph(num_vertices=30, seed=99)
        with pytest.raises(IndexBuildError, match="mismatch"):
            load_index(other, path)

    def test_bad_format_version_rejected(self, graph, tmp_path):
        index = NLRNLIndex(graph)
        path = tmp_path / "index.json"
        save_index(index, path)
        document = json.loads(path.read_text())
        document["format"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(IndexBuildError, match="format"):
            load_index(graph, path)

    def test_unknown_kind_rejected(self, graph, tmp_path):
        index = NLRNLIndex(graph)
        path = tmp_path / "index.json"
        save_index(index, path)
        document = json.loads(path.read_text())
        document["kind"] = "btree"
        path.write_text(json.dumps(document))
        with pytest.raises(IndexBuildError, match="unknown"):
            load_index(graph, path)

    def test_corrupt_file_rejected(self, graph, tmp_path):
        path = tmp_path / "index.json"
        path.write_text("{not json")
        with pytest.raises(IndexBuildError, match="cannot load"):
            load_index(graph, path)

    def test_missing_file_rejected(self, graph, tmp_path):
        with pytest.raises(IndexBuildError, match="cannot load"):
            load_index(graph, tmp_path / "missing.json")


class TestFingerprint:
    def test_stable(self, graph):
        assert graph_fingerprint(graph) == graph_fingerprint(graph)

    def test_changes_with_edges(self, graph):
        before = graph_fingerprint(graph)
        non_edge = next(
            (u, v)
            for u in graph.vertices()
            for v in graph.vertices()
            if u < v and not graph.has_edge(u, v)
        )
        graph.add_edge(*non_edge)
        assert graph_fingerprint(graph) != before
