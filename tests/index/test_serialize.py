"""Unit tests for index persistence (save/load round trips)."""

import json

import pytest

from repro.core.errors import IndexBuildError
from repro.index.bfs import BFSOracle
from repro.index.nl import NLIndex
from repro.index.nlrnl import NLRNLIndex
from repro.index.pll import PLLIndex
from repro.index.serialize import graph_fingerprint, load_index, save_index
from tests.conftest import make_random_attributed_graph


@pytest.fixture
def graph():
    return make_random_attributed_graph(num_vertices=30, seed=4)


def assert_probe_equivalent(a, b, graph):
    for u in graph.vertices():
        for v in graph.vertices():
            for k in (0, 1, 2, 3, 4):
                assert a.is_tenuous(u, v, k) == b.is_tenuous(u, v, k), (u, v, k)


class TestRoundTrips:
    @pytest.mark.parametrize("index_cls", [NLRNLIndex, PLLIndex])
    def test_probe_equivalence(self, graph, tmp_path, index_cls):
        original = index_cls(graph)
        path = tmp_path / "index.json"
        save_index(original, path)
        loaded = load_index(graph, path)
        assert type(loaded) is index_cls
        assert loaded.stats.entries == original.stats.entries
        assert_probe_equivalent(original, loaded, graph)

    def test_nl_round_trip(self, graph, tmp_path):
        original = NLIndex(graph, depth=2)
        path = tmp_path / "index.json"
        save_index(original, path)
        loaded = load_index(graph, path)
        assert loaded.depth == 2
        assert_probe_equivalent(original, loaded, graph)

    def test_loaded_nlrnl_still_updates(self, graph, tmp_path):
        original = NLRNLIndex(graph)
        path = tmp_path / "index.json"
        save_index(original, path)
        loaded = load_index(graph, path)
        non_edge = next(
            (u, v)
            for u in graph.vertices()
            for v in graph.vertices()
            if u < v and not graph.has_edge(u, v)
        )
        loaded.insert_edge(*non_edge)
        assert not loaded.is_tenuous(*non_edge, 1)
        graph.remove_edge(*non_edge)  # restore for other assertions


class TestFailureModes:
    def test_bfs_oracle_not_serialisable(self, graph, tmp_path):
        with pytest.raises(IndexBuildError, match="no serialisable state"):
            save_index(BFSOracle(graph), tmp_path / "x.json")

    def test_stale_index_rejected(self, graph, tmp_path):
        index = NLRNLIndex(graph)
        graph.add_edge(
            *next(
                (u, v)
                for u in graph.vertices()
                for v in graph.vertices()
                if u < v and not graph.has_edge(u, v)
            )
        )
        with pytest.raises(IndexBuildError, match="stale"):
            save_index(index, tmp_path / "x.json")

    def test_fingerprint_mismatch_rejected(self, graph, tmp_path):
        index = NLRNLIndex(graph)
        path = tmp_path / "index.json"
        save_index(index, path)
        other = make_random_attributed_graph(num_vertices=30, seed=99)
        with pytest.raises(IndexBuildError, match="mismatch"):
            load_index(other, path)

    def test_bad_format_version_rejected(self, graph, tmp_path):
        index = NLRNLIndex(graph)
        path = tmp_path / "index.json"
        save_index(index, path)
        document = json.loads(path.read_text())
        document["format"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(IndexBuildError, match="format"):
            load_index(graph, path)

    def test_unknown_kind_rejected(self, graph, tmp_path):
        index = NLRNLIndex(graph)
        path = tmp_path / "index.json"
        save_index(index, path)
        document = json.loads(path.read_text())
        document["kind"] = "btree"
        path.write_text(json.dumps(document))
        with pytest.raises(IndexBuildError, match="unknown"):
            load_index(graph, path)

    def test_corrupt_file_rejected(self, graph, tmp_path):
        path = tmp_path / "index.json"
        path.write_text("{not json")
        with pytest.raises(IndexBuildError, match="cannot load"):
            load_index(graph, path)

    def test_missing_file_rejected(self, graph, tmp_path):
        with pytest.raises(IndexBuildError, match="cannot load"):
            load_index(graph, tmp_path / "missing.json")


class TestAtomicWrites:
    """A crash mid-save must never corrupt an existing index file."""

    def test_interrupted_save_leaves_previous_index_intact(
        self, graph, tmp_path, monkeypatch
    ):
        import repro.index.serialize as serialize_module

        index = NLRNLIndex(graph)
        path = tmp_path / "index.json"
        save_index(index, path)
        good_document = path.read_text()

        # Simulate a crash after the temp file is partially written but
        # before it replaces the target: fail the final rename.
        def exploding_replace(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(serialize_module.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            save_index(index, path)

        # The previous document survives byte-for-byte and still loads.
        assert path.read_text() == good_document
        loaded = load_index(graph, path)
        assert loaded.stats.entries == index.stats.entries
        # No temp-file litter is left behind.
        assert list(tmp_path.iterdir()) == [path]

    def test_interrupted_write_cleans_temp_file(self, graph, tmp_path, monkeypatch):
        import repro.index.serialize as serialize_module

        index = NLRNLIndex(graph)
        path = tmp_path / "index.json"

        def exploding_fsync(fd):
            raise OSError("simulated crash mid-write")

        # Fail after bytes were written to the temp file but before it
        # can be renamed: nothing may appear at *path* and the torn temp
        # file must be removed.
        monkeypatch.setattr(serialize_module.os, "fsync", exploding_fsync)
        with pytest.raises(OSError, match="mid-write"):
            save_index(index, path)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_partial_document_rejected_on_load(self, graph, tmp_path):
        index = NLRNLIndex(graph)
        path = tmp_path / "index.json"
        save_index(index, path)
        text = path.read_text()
        # A torn write under the old non-atomic scheme: half a document.
        path.write_text(text[: len(text) // 2])
        with pytest.raises(IndexBuildError, match="cannot load"):
            load_index(graph, path)


class TestNLRngPersistence:
    """Loaded NL indexes must not diverge from built ones on later
    sampling-dependent operations (auto-depth re-selection on rebuild)."""

    @staticmethod
    def _big_graph(seed=11):
        # > _AUTO_SAMPLE vertices so the auto-depth heuristic actually
        # consumes RNG draws when sampling BFS profiles.
        return make_random_attributed_graph(num_vertices=90, seed=seed)

    def test_rng_state_round_trips(self, tmp_path):
        graph = self._big_graph()
        built = NLIndex(graph, depth="auto")
        path = tmp_path / "nl.json"
        save_index(built, path)
        loaded = load_index(graph, path)
        assert loaded._rng.getstate() == built._rng.getstate()
        assert loaded._requested_depth == built._requested_depth

    def test_build_save_load_mutate_equals_build_mutate(self, tmp_path):
        graph_a = self._big_graph()
        graph_b = self._big_graph()
        built = NLIndex(graph_a, depth="auto")
        path = tmp_path / "nl.json"
        save_index(built, path)
        loaded = load_index(graph_b, path)

        non_edge = next(
            (u, v)
            for u in graph_a.vertices()
            for v in graph_a.vertices()
            if u < v and not graph_a.has_edge(u, v)
        )
        built.insert_edge(*non_edge)    # build -> mutate (rebuilds)
        loaded.insert_edge(*non_edge)   # build -> save -> load -> mutate

        assert loaded.depth == built.depth
        assert loaded._rng.getstate() == built._rng.getstate()
        for vertex in (0, 1, non_edge[0], non_edge[1]):
            assert loaded.level_sets(vertex) == built.level_sets(vertex)

    def test_legacy_document_without_rng_state_still_loads(self, graph, tmp_path):
        built = NLIndex(graph, depth=2)
        path = tmp_path / "nl.json"
        save_index(built, path)
        document = json.loads(path.read_text())
        del document["payload"]["rng_state"]
        del document["payload"]["requested_depth"]
        path.write_text(json.dumps(document))
        loaded = load_index(graph, path)
        assert loaded.depth == 2
        assert_probe_equivalent(built, loaded, graph)


class TestFingerprint:
    def test_stable(self, graph):
        assert graph_fingerprint(graph) == graph_fingerprint(graph)

    def test_changes_with_edges(self, graph):
        before = graph_fingerprint(graph)
        non_edge = next(
            (u, v)
            for u in graph.vertices()
            for v in graph.vertices()
            if u < v and not graph.has_edge(u, v)
        )
        graph.add_edge(*non_edge)
        assert graph_fingerprint(graph) != before
