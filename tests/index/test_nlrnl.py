"""Unit tests for the NLRNL index."""

import pytest

from repro.core.graph import AttributedGraph
from repro.index.bfs import BFSOracle
from repro.index.nlrnl import NLRNLIndex


class TestConstruction:
    def test_c_values_are_peak_levels(self, figure1):
        index = NLRNLIndex(figure1)
        for vertex in figure1.vertices():
            levels = {}
            for other in figure1.vertices():
                if other == vertex:
                    continue
                distance = figure1.hop_distance(vertex, other)
                if distance is not None:
                    levels[distance] = levels.get(distance, 0) + 1
            if levels:
                peak = max(levels.values())
                assert levels[index.c_value(vertex)] == peak

    def test_id_halving(self, figure1):
        index = NLRNLIndex(figure1)
        for vertex in figure1.vertices():
            assert all(other > vertex for other in index._depth_of[vertex])

    def test_level_c_is_skipped(self, figure1):
        index = NLRNLIndex(figure1)
        for vertex in figure1.vertices():
            c = index.c_value(vertex)
            assert all(depth != c for depth in index._depth_of[vertex].values())

    def test_entries_counted(self, figure1):
        index = NLRNLIndex(figure1)
        assert index.stats.entries == sum(
            len(vertex_map) for vertex_map in index._depth_of
        )

    def test_smaller_than_unhalved_full_storage(self, figure1):
        # The map stores at most half the (ordered) pair universe.
        index = NLRNLIndex(figure1)
        pairs = figure1.num_vertices * (figure1.num_vertices - 1) // 2
        assert index.stats.entries <= pairs


class TestProbes:
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4, 5])
    def test_matches_bfs_ground_truth(self, figure1, k):
        index = NLRNLIndex(figure1)
        reference = BFSOracle(figure1)
        for u in figure1.vertices():
            for v in figure1.vertices():
                assert index.is_tenuous(u, v, k) == reference.is_tenuous(u, v, k), (
                    u,
                    v,
                    k,
                )

    def test_symmetry(self, figure1):
        index = NLRNLIndex(figure1)
        for u in figure1.vertices():
            for v in figure1.vertices():
                assert index.is_tenuous(u, v, 2) == index.is_tenuous(v, u, 2)

    def test_disconnected_pairs(self, disconnected_graph):
        index = NLRNLIndex(disconnected_graph)
        assert index.is_tenuous(0, 5, 100)
        assert index.is_tenuous(0, 3, 100)
        assert not index.is_tenuous(0, 1, 1)

    def test_missing_pair_is_distance_c(self, figure1):
        # For every same-component pair absent from the map, the true
        # distance must equal the smaller vertex's c value.
        index = NLRNLIndex(figure1)
        for u in figure1.vertices():
            for v in figure1.vertices():
                if v <= u or v in index._depth_of[u]:
                    continue
                assert figure1.hop_distance(u, v) == index.c_value(u)

    def test_distance_class_matches_bfs(self, figure1, disconnected_graph):
        for graph in (figure1, disconnected_graph):
            index = NLRNLIndex(graph)
            for u in graph.vertices():
                for v in graph.vertices():
                    expected = graph.hop_distance(u, v)
                    decoded = index.distance_class(u, v)
                    if expected is None:
                        assert decoded == float("inf")
                    else:
                        assert decoded == expected

    def test_paper_probe_example(self, figure1):
        # Checking dist(u3, u5) > 3: the paper's NLRNL walkthrough
        # concludes "not greater than 3" (the distance is exactly 3).
        index = NLRNLIndex(figure1)
        assert not index.is_tenuous(3, 5, 3)
        assert index.is_tenuous(3, 5, 2)


class TestFilterCandidates:
    def test_matches_bfs(self, figure1):
        index = NLRNLIndex(figure1)
        reference = BFSOracle(figure1)
        candidates = list(figure1.vertices())
        for member in figure1.vertices():
            for k in (0, 1, 2, 3):
                assert index.filter_candidates(candidates, member, k) == (
                    reference.filter_candidates(candidates, member, k)
                ), (member, k)

    def test_within_k_matches_bfs(self, figure1):
        index = NLRNLIndex(figure1)
        reference = BFSOracle(figure1)
        for vertex in figure1.vertices():
            assert index.within_k(vertex, 2) == reference.within_k(vertex, 2)


class TestSingletons:
    def test_single_vertex_graph(self):
        graph = AttributedGraph(1)
        index = NLRNLIndex(graph)
        assert index.stats.entries == 0
        assert not index.is_tenuous(0, 0, 1)

    def test_empty_graph(self):
        index = NLRNLIndex(AttributedGraph(0))
        assert index.stats.entries == 0

    def test_star_graph(self):
        graph = AttributedGraph(5, [(0, i) for i in range(1, 5)])
        index = NLRNLIndex(graph)
        reference = BFSOracle(graph)
        for u in graph.vertices():
            for v in graph.vertices():
                for k in (0, 1, 2, 3):
                    assert index.is_tenuous(u, v, k) == reference.is_tenuous(u, v, k)
