"""Unit tests for the DistanceOracle base-class defaults."""

import pytest

from repro.index.base import DistanceOracle, OracleStats
from repro.index.nlrnl import NLRNLIndex


class MinimalOracle(DistanceOracle):
    """Smallest possible oracle: exact answers via graph BFS."""

    name = "minimal"

    def is_tenuous(self, u, v, k):
        self.check_k(k)
        if u == v:
            return False
        distance = self.graph.hop_distance(u, v)
        return distance is None or distance > k

    def within_k(self, vertex, k):
        return {
            other
            for other in self.graph.vertices()
            if other != vertex and not self.is_tenuous(vertex, other, k)
        }


@pytest.fixture
def oracle(path_graph):
    return MinimalOracle(path_graph)


class TestDefaults:
    def test_default_filter_is_pairwise(self, oracle, path_graph):
        filtered = oracle.filter_candidates(list(path_graph.vertices()), 2, 1)
        assert filtered == [0, 4]

    def test_default_updates_rebuild(self, oracle, path_graph):
        assert not oracle.supports_incremental_updates()
        oracle.insert_edge(0, 4)
        assert not oracle.is_stale()
        assert not oracle.is_tenuous(0, 4, 1)

    def test_delete_edge_default(self, oracle, path_graph):
        oracle.delete_edge(0, 1)
        assert oracle.is_tenuous(0, 1, 10)

    def test_check_k_rejects_negative(self, oracle):
        with pytest.raises(ValueError):
            oracle.check_k(-1)

    def test_repr_mentions_entries(self, oracle):
        assert "entries=0" in repr(oracle)


class TestOracleStats:
    def test_reset_usage_keeps_build_figures(self):
        stats = OracleStats(entries=10, build_seconds=1.5, probes=7, expansions=3)
        stats.reset_usage()
        assert stats.probes == 0
        assert stats.expansions == 0
        assert stats.entries == 10
        assert stats.build_seconds == 1.5


class TestStaleness:
    def test_built_index_not_stale(self, figure1):
        assert not NLRNLIndex(figure1).is_stale()

    def test_mutation_marks_stale(self, figure1):
        index = NLRNLIndex(figure1)
        figure1.set_keywords(0, ["changed"])
        assert index.is_stale()
