"""Unit tests for index footprint accounting (Figure 9 inputs)."""

import pytest

from repro.index.bfs import BFSOracle
from repro.index.nl import NLIndex
from repro.index.nlrnl import NLRNLIndex
from repro.index.stats import IndexFootprint, measure_footprint, oracle_by_name


class TestOracleByName:
    def test_known_names(self, figure1):
        assert isinstance(oracle_by_name("bfs", figure1), BFSOracle)
        assert isinstance(oracle_by_name("nl", figure1), NLIndex)
        assert isinstance(oracle_by_name("NLRNL", figure1), NLRNLIndex)

    def test_unknown_rejected(self, figure1):
        with pytest.raises(ValueError, match="unknown oracle"):
            oracle_by_name("btree", figure1)

    def test_options_forwarded(self, figure1):
        oracle = oracle_by_name("nl", figure1, depth=2)
        assert oracle.depth == 2


class TestMeasureFootprint:
    def test_builds_and_measures(self, figure1):
        footprint = measure_footprint(figure1, "nlrnl")
        assert footprint.oracle_name == "nlrnl"
        assert footprint.num_vertices == 12
        assert footprint.entries > 0
        assert footprint.estimated_bytes == footprint.entries * 16
        assert footprint.build_seconds > 0

    def test_reuses_existing_oracle(self, figure1):
        oracle = NLRNLIndex(figure1)
        footprint = measure_footprint(figure1, "nlrnl", oracle=oracle)
        assert footprint.entries == oracle.stats.entries
        assert footprint.build_seconds == oracle.stats.build_seconds

    def test_bfs_has_no_entries(self, figure1):
        assert measure_footprint(figure1, "bfs").entries == 0

    def test_row_shape(self, figure1):
        row = measure_footprint(figure1, "nl").row()
        assert set(row) == {
            "oracle",
            "vertices",
            "edges",
            "entries",
            "estimated_mb",
            "build_seconds",
        }

    def test_entries_per_vertex(self):
        footprint = IndexFootprint("nl", 10, 20, 50, 800, 0.1)
        assert footprint.entries_per_vertex == 5.0
        empty = IndexFootprint("nl", 0, 0, 0, 0, 0.0)
        assert empty.entries_per_vertex == 0.0


class TestFigure9Shape:
    """The headline Figure 9 relationships on a real-ish graph."""

    def test_nlrnl_smaller_than_nl(self, random_graph):
        nl = measure_footprint(random_graph, "nl")
        nlrnl = measure_footprint(random_graph, "nlrnl")
        assert nlrnl.entries < nl.entries
