"""Unit tests for the BFS traversal primitives."""

from repro.core.graph import AttributedGraph
from repro.index._traversal import (
    UNREACHABLE,
    bfs_distance_array,
    bfs_distance_array_csr,
    bfs_levels,
)


def adjacency_of(graph):
    return graph.adjacency_view()


class TestBfsLevels:
    def test_path_levels(self, path_graph):
        levels = bfs_levels(adjacency_of(path_graph), 0)
        assert levels == [[1], [2], [3], [4]]

    def test_max_depth_truncates(self, path_graph):
        levels = bfs_levels(adjacency_of(path_graph), 0, max_depth=2)
        assert levels == [[1], [2]]

    def test_no_trailing_empty_levels(self, path_graph):
        levels = bfs_levels(adjacency_of(path_graph), 2)
        assert levels == [[1, 3], [0, 4]]

    def test_source_not_included(self, path_graph):
        levels = bfs_levels(adjacency_of(path_graph), 0)
        assert all(0 not in level for level in levels)

    def test_isolated_vertex(self):
        graph = AttributedGraph(3, [(0, 1)])
        assert bfs_levels(adjacency_of(graph), 2) == []

    def test_levels_partition_component(self, figure1):
        levels = bfs_levels(adjacency_of(figure1), 0)
        flattened = [v for level in levels for v in level]
        assert sorted(flattened) == [v for v in range(12) if v != 0]
        assert len(set(flattened)) == len(flattened)

    def test_levels_match_distances(self, figure1):
        for source in figure1.vertices():
            levels = bfs_levels(adjacency_of(figure1), source)
            for depth, level in enumerate(levels, start=1):
                for vertex in level:
                    assert figure1.hop_distance(source, vertex) == depth


class TestBfsDistanceArray:
    def test_path_distances(self, path_graph):
        assert bfs_distance_array(adjacency_of(path_graph), 0) == [0, 1, 2, 3, 4]

    def test_unreachable_marked(self, disconnected_graph):
        distances = bfs_distance_array(adjacency_of(disconnected_graph), 0)
        assert distances[3] == UNREACHABLE
        assert distances[5] == UNREACHABLE
        assert distances[0] == 0

    def test_matches_graph_bfs(self, figure1):
        for source in figure1.vertices():
            array = bfs_distance_array(adjacency_of(figure1), source)
            reference = figure1.bfs_distances(source)
            for vertex in figure1.vertices():
                expected = reference.get(vertex, UNREACHABLE)
                assert array[vertex] == expected

    def test_max_depth_truncates(self, path_graph):
        # Vertices past max_depth hops keep UNREACHABLE, mirroring the
        # bfs_levels semantics.
        adjacency = adjacency_of(path_graph)
        assert bfs_distance_array(adjacency, 0, max_depth=2) == [
            0,
            1,
            2,
            UNREACHABLE,
            UNREACHABLE,
        ]
        assert bfs_distance_array(adjacency, 0, max_depth=0) == [
            0,
            UNREACHABLE,
            UNREACHABLE,
            UNREACHABLE,
            UNREACHABLE,
        ]

    def test_max_depth_matches_unbounded_prefix(self, figure1):
        adjacency = adjacency_of(figure1)
        for source in figure1.vertices():
            full = bfs_distance_array(adjacency, source)
            for max_depth in (1, 2, 3):
                bounded = bfs_distance_array(adjacency, source, max_depth)
                assert bounded == [
                    d if 0 <= d <= max_depth else UNREACHABLE for d in full
                ]


class TestBfsDistanceArrayCsr:
    def test_csr_matches_adjacency(self, figure1):
        snapshot = figure1.csr_snapshot()
        adjacency = adjacency_of(figure1)
        for source in figure1.vertices():
            for max_depth in (None, 1, 2):
                assert bfs_distance_array_csr(
                    snapshot.indptr, snapshot.indices, source, max_depth
                ) == bfs_distance_array(adjacency, source, max_depth)
