"""Unit tests for the counter/timer registry and its null sink."""

from repro.obs.instruments import (
    NULL_REGISTRY,
    TIMER_BUCKET_BOUNDS_MS,
    Counter,
    InstrumentRegistry,
    NullRegistry,
    Timer,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6


class TestTimer:
    def test_accumulates_observations(self):
        timer = Timer("t")
        timer.observe_ms(1.0)
        timer.observe_ms(3.0)
        assert timer.count == 2
        assert timer.total_ms == 4.0
        assert timer.mean_ms == 2.0
        assert timer.min_ms == 1.0
        assert timer.max_ms == 3.0

    def test_bucket_assignment(self):
        timer = Timer("t")
        timer.observe_ms(0.01)  # below the first bound -> bucket 0
        timer.observe_ms(7.0)  # between 5.0 and 10.0 -> the 10.0 bucket
        timer.observe_ms(99999.0)  # beyond the last bound -> open bucket
        assert sum(timer.buckets) == 3
        assert timer.buckets[0] == 1
        assert timer.buckets[TIMER_BUCKET_BOUNDS_MS.index(10.0)] == 1
        assert timer.buckets[-1] == 1

    def test_snapshot_is_jsonable_and_complete(self):
        timer = Timer("t")
        timer.observe_ms(2.0)
        snap = timer.snapshot()
        assert snap["count"] == 1
        assert snap["mean_ms"] == 2.0
        assert len(snap["buckets"]) == len(TIMER_BUCKET_BOUNDS_MS) + 1

    def test_empty_snapshot_has_zero_min(self):
        assert Timer("t").snapshot()["min_ms"] == 0.0


class TestInstrumentRegistry:
    def test_same_name_same_instrument(self):
        registry = InstrumentRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.timer("b") is registry.timer("b")
        assert registry.enabled

    def test_report_contains_everything(self):
        registry = InstrumentRegistry()
        registry.counter("hits").inc(3)
        registry.timer("lat").observe_ms(1.5)
        report = registry.report()
        assert report["counters"] == {"hits": 3}
        assert report["timers"]["lat"]["count"] == 1

    def test_reset_drops_instruments(self):
        registry = InstrumentRegistry()
        registry.counter("hits").inc()
        registry.reset()
        assert registry.report() == {"counters": {}, "timers": {}}
        assert registry.counter("hits").value == 0


class TestNullRegistry:
    def test_shared_inert_singletons(self):
        registry = NullRegistry()
        counter = registry.counter("anything")
        assert counter is registry.counter("something else")
        counter.inc(100)
        assert counter.value == 0
        timer = registry.timer("x")
        timer.observe_ms(50.0)
        assert timer.count == 0

    def test_report_always_empty(self):
        registry = NullRegistry()
        registry.counter("a").inc()
        registry.timer("b").observe_ms(1.0)
        assert registry.report() == {"counters": {}, "timers": {}}

    def test_module_default_is_disabled(self):
        assert not NULL_REGISTRY.enabled
        assert isinstance(NULL_REGISTRY, NullRegistry)
