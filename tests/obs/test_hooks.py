"""Solver hook points: fan-out, event ordering, instrument bridging."""

from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.query import KTGQuery
from repro.obs.hooks import HookList, InstrumentingHooks, SolverHooks
from repro.obs.instruments import InstrumentRegistry


class RecordingHooks(SolverHooks):
    """Append every event as a (name, payload) tuple."""

    def __init__(self):
        self.events = []

    def search_started(self, query, candidates):
        self.events.append(("search_started", tuple(candidates)))

    def node_entered(self, members, slots, remaining):
        self.events.append(("node_entered", members))

    def node_exhausted(self, members):
        self.events.append(("node_exhausted", members))

    def node_pruned(self, members, rule, bound, threshold):
        self.events.append(("node_pruned", (members, rule)))

    def candidates_filtered(self, member, before, after):
        self.events.append(("candidates_filtered", (member, before, after)))

    def leaf_visited(self, members, coverage, outcome):
        self.events.append(("leaf_visited", (members, outcome)))

    def budget_tripped(self, kind, members):
        self.events.append(("budget_tripped", kind))

    def search_finished(self, stats):
        self.events.append(("search_finished", stats))


class TestHookEmission:
    def test_search_bracketed_by_start_and_finish(self, figure1, figure1_q):
        recorder = RecordingHooks()
        result = BranchAndBoundSolver(figure1).solve(figure1_q, hooks=recorder)
        assert recorder.events[0][0] == "search_started"
        assert recorder.events[-1][0] == "search_finished"
        assert recorder.events[-1][1] is result.stats

    def test_node_entered_count_matches_stats(self, figure1, figure1_q):
        recorder = RecordingHooks()
        result = BranchAndBoundSolver(figure1).solve(figure1_q, hooks=recorder)
        entered = [e for e in recorder.events if e[0] == "node_entered"]
        assert len(entered) == result.stats.nodes_expanded

    def test_members_are_snapshots(self, figure1, figure1_q):
        recorder = RecordingHooks()
        BranchAndBoundSolver(figure1).solve(figure1_q, hooks=recorder)
        for name, payload in recorder.events:
            if name == "node_entered":
                assert isinstance(payload, tuple)

    def test_no_hooks_means_no_events(self, figure1, figure1_q):
        # The hooks reference must not leak across solves.
        solver = BranchAndBoundSolver(figure1)
        recorder = RecordingHooks()
        solver.solve(figure1_q, hooks=recorder)
        seen = len(recorder.events)
        solver.solve(figure1_q)
        assert len(recorder.events) == seen

    def test_budget_trip_emitted(self, figure1, figure1_q):
        recorder = RecordingHooks()
        solver = BranchAndBoundSolver(figure1, node_budget=2)
        result = solver.solve(figure1_q, hooks=recorder)
        assert result.stats.budget_exhausted
        assert ("budget_tripped", "nodes") in recorder.events
        assert recorder.events[-1][0] == "search_finished"


class TestHookList:
    def test_fans_out_in_order(self, figure1, figure1_q):
        first, second = RecordingHooks(), RecordingHooks()
        BranchAndBoundSolver(figure1).solve(
            figure1_q, hooks=HookList([first, second])
        )
        assert first.events
        assert [e[0] for e in first.events] == [e[0] for e in second.events]


class TestInstrumentingHooks:
    def test_counters_match_search_stats(self, figure1, figure1_q):
        registry = InstrumentRegistry()
        result = BranchAndBoundSolver(figure1).solve(
            figure1_q, hooks=InstrumentingHooks(registry)
        )
        counters = registry.report()["counters"]
        stats = result.stats
        assert counters["solver.searches"] == 1
        assert counters["solver.nodes_entered"] == stats.nodes_expanded
        assert counters["solver.nodes_exhausted"] == stats.nodes_exhausted
        assert (
            counters["solver.prunes.keyword"] + counters["solver.prunes.union"]
            == stats.node_prunes
        )
        assert counters["solver.leaves_accepted"] == stats.offers_accepted
        assert counters["solver.leaves_pruned"] == stats.leaf_prunes
        assert counters["solver.filter_dropped"] == stats.kline_removed

    def test_accumulates_across_solves(self, figure1, figure1_q):
        registry = InstrumentRegistry()
        hooks = InstrumentingHooks(registry)
        solver = BranchAndBoundSolver(figure1)
        first = solver.solve(figure1_q, hooks=hooks)
        second = solver.solve(figure1_q, hooks=hooks)
        counters = registry.report()["counters"]
        assert counters["solver.searches"] == 2
        assert (
            counters["solver.nodes_entered"]
            == first.stats.nodes_expanded + second.stats.nodes_expanded
        )

    def test_pruning_ablation_emits_infeasible_leaves(self, figure1):
        # With k-line filtering off, infeasible completions reach the
        # leaf check and must be reported as such.
        registry = InstrumentRegistry()
        recorder = RecordingHooks()
        query = KTGQuery(
            keywords=("SN", "QP", "DQ", "GQ", "GD"), group_size=3, tenuity=2, top_n=2
        )
        solver = BranchAndBoundSolver(figure1, kline_filtering=False)
        solver.solve(query, hooks=HookList([InstrumentingHooks(registry), recorder]))
        outcomes = {p[1] for (name, p) in recorder.events if name == "leaf_visited"}
        assert "infeasible" in outcomes
        counters = registry.report()["counters"]
        assert counters["solver.filter_calls"] == 0
