"""Tests for ``repro.obs.validate``'s ``--baseline`` compare mode."""

from __future__ import annotations

import copy
import json

import pytest

from repro.obs.bench import bench_entry, write_bench_report
from repro.obs.validate import compare_reports, main


def make_payload(tmp_path, name="demo", mean_s=0.5, prunes=100, speedup=2.0):
    entries = [
        bench_entry(
            test="test_point[a]",
            stats={"mean_s": mean_s, "min_s": mean_s, "max_s": mean_s, "rounds": 1},
            extra={"keyword_prunes": prunes, "speedup_vs_serial": speedup},
        )
    ]
    path = write_bench_report(name, entries, directory=tmp_path, smoke=True)
    return json.loads(path.read_text())


# ----------------------------------------------------------------------
# compare_reports
# ----------------------------------------------------------------------
def test_identical_payloads_clean(tmp_path):
    payload = make_payload(tmp_path)
    problems, notes = compare_reports(payload, copy.deepcopy(payload))
    assert problems == []
    assert notes == []


def test_counter_drift_fails_both_directions(tmp_path):
    baseline = make_payload(tmp_path, prunes=100)
    for drifted in (200, 10):
        current = make_payload(tmp_path, prunes=drifted)
        problems, _ = compare_reports(current, baseline)
        assert any("keyword_prunes" in p for p in problems)


def test_counter_drift_within_tolerance_passes(tmp_path):
    baseline = make_payload(tmp_path, prunes=100)
    current = make_payload(tmp_path, prunes=110)  # +10% < default 25%
    problems, _ = compare_reports(current, baseline)
    assert problems == []


def test_timing_regression_is_one_sided(tmp_path):
    baseline = make_payload(tmp_path, mean_s=0.5)
    slower = make_payload(tmp_path, mean_s=2.0)  # 4x > default 2x allowance
    problems, _ = compare_reports(slower, baseline)
    assert any("stats.mean_s" in p for p in problems)
    faster = make_payload(tmp_path, mean_s=0.05)
    problems, _ = compare_reports(faster, baseline)
    assert problems == []


def test_timing_floor_skips_microbenchmark_noise(tmp_path):
    baseline = make_payload(tmp_path, mean_s=0.0001)
    current = make_payload(tmp_path, mean_s=0.0009)  # 9x but both under 1ms
    problems, _ = compare_reports(current, baseline)
    assert problems == []


def test_ignore_globs_exclude_metrics(tmp_path):
    baseline = make_payload(tmp_path, speedup=4.0)
    current = make_payload(tmp_path, speedup=1.0)
    problems, _ = compare_reports(current, baseline)
    assert any("speedup_vs_serial" in p for p in problems)
    problems, _ = compare_reports(current, baseline, ignore=("speedup*",))
    assert problems == []


def test_missing_entry_fails_new_entry_notes(tmp_path):
    baseline = make_payload(tmp_path)
    current = copy.deepcopy(baseline)
    current["entries"][0]["test"] = "test_point[renamed]"
    problems, notes = compare_reports(current, baseline)
    assert any("missing from current run" in p for p in problems)
    assert any("no baseline" in n for n in notes)


def test_lost_metric_fails(tmp_path):
    baseline = make_payload(tmp_path)
    current = copy.deepcopy(baseline)
    del current["entries"][0]["extra"]["keyword_prunes"]
    problems, _ = compare_reports(current, baseline)
    assert any("lost metric" in p for p in problems)


def test_new_error_fails(tmp_path):
    baseline = make_payload(tmp_path)
    current = copy.deepcopy(baseline)
    current["entries"][0]["error"] = True
    problems, _ = compare_reports(current, baseline)
    assert any("now errors" in p for p in problems)


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
@pytest.fixture
def artifact_dirs(tmp_path):
    baseline_dir = tmp_path / "baselines"
    current_dir = tmp_path / "current"
    baseline_dir.mkdir()
    current_dir.mkdir()
    return current_dir, baseline_dir


def write_artifact(directory, prunes):
    entries = [
        bench_entry(
            test="test_point[a]",
            stats={"mean_s": 0.5, "min_s": 0.5, "max_s": 0.5, "rounds": 1},
            extra={"keyword_prunes": prunes},
        )
    ]
    return write_bench_report("demo", entries, directory=directory, smoke=True)


def test_cli_baseline_pass_and_fail(artifact_dirs, capsys):
    current_dir, baseline_dir = artifact_dirs
    write_artifact(baseline_dir, prunes=100)
    current = write_artifact(current_dir, prunes=100)
    assert main([str(current), "--baseline", str(baseline_dir)]) == 0

    current = write_artifact(current_dir, prunes=400)
    assert main([str(current), "--baseline", str(baseline_dir)]) == 1
    captured = capsys.readouterr()
    assert "keyword_prunes" in captured.err


def test_cli_missing_baseline_fails_with_remediation(artifact_dirs, capsys):
    current_dir, baseline_dir = artifact_dirs
    current = write_artifact(current_dir, prunes=100)
    assert main([str(current), "--baseline", str(baseline_dir)]) == 1
    err = capsys.readouterr().err
    assert "no committed baseline" in err
    assert "--allow-missing-baseline" in err


def test_cli_missing_baseline_allowed_is_note(artifact_dirs, capsys):
    current_dir, baseline_dir = artifact_dirs
    current = write_artifact(current_dir, prunes=100)
    assert (
        main(
            [
                str(current),
                "--baseline",
                str(baseline_dir),
                "--allow-missing-baseline",
            ]
        )
        == 0
    )
    assert "no baseline" in capsys.readouterr().out


def test_cli_missing_baseline_dir_fails(artifact_dirs):
    current_dir, _ = artifact_dirs
    current = write_artifact(current_dir, prunes=100)
    assert main([str(current), "--baseline", str(current_dir / "nope")]) == 1


def test_cli_tolerance_flag(artifact_dirs):
    current_dir, baseline_dir = artifact_dirs
    write_artifact(baseline_dir, prunes=100)
    current = write_artifact(current_dir, prunes=160)
    assert main([str(current), "--baseline", str(baseline_dir)]) == 1
    assert (
        main([str(current), "--baseline", str(baseline_dir), "--tolerance", "0.7"])
        == 0
    )
