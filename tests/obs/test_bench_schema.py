"""The ``ktg-bench/1`` schema: emission, validation, CLI validator."""

import json

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    BenchSchemaError,
    bench_entry,
    load_bench_report,
    validate_bench_report,
    write_bench_report,
)
from repro.obs.validate import main as validate_main


def good_entries():
    return [
        bench_entry(
            test="test_point[3-KTG-VKC-NLRNL]",
            stats={"mean_s": 0.5, "min_s": 0.4, "max_s": 0.6, "stddev_s": 0.01, "rounds": 3},
            extra={"mean_ms": 500.0, "keyword_prunes": 12},
            group="fig3a",
            params={"p": 3, "algorithm": "KTG-VKC-NLRNL"},
        ),
        bench_entry(test="test_broken", stats=None, extra={}, error=True),
    ]


class TestRoundtrip:
    def test_write_then_load(self, tmp_path):
        path = write_bench_report(
            "fig3_group_size",
            good_entries(),
            directory=tmp_path,
            smoke=True,
            meta={"figure": "3"},
        )
        assert path.name == "BENCH_fig3_group_size.json"
        payload = load_bench_report(path)
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert payload["smoke"] is True
        assert payload["meta"] == {"figure": "3"}
        assert len(payload["entries"]) == 2

    def test_write_refuses_invalid_entries(self, tmp_path):
        with pytest.raises(BenchSchemaError):
            write_bench_report("x", [{"stats": None}], directory=tmp_path)
        assert not list(tmp_path.iterdir())  # nothing written, no temp litter

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        write_bench_report("ok", good_entries(), directory=tmp_path)
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_ok.json"]


class TestValidation:
    def base_payload(self):
        return {
            "schema": BENCH_SCHEMA_VERSION,
            "name": "x",
            "smoke": False,
            "created_unix": 1700000000.0,
            "entries": good_entries(),
        }

    def test_valid_payload_passes(self):
        validate_bench_report(self.base_payload())

    @pytest.mark.parametrize("key", ["schema", "name", "smoke", "created_unix", "entries"])
    def test_missing_required_key_rejected(self, key):
        payload = self.base_payload()
        del payload[key]
        with pytest.raises(BenchSchemaError, match=key):
            validate_bench_report(payload)

    def test_wrong_schema_version_rejected(self):
        payload = self.base_payload()
        payload["schema"] = "ktg-bench/999"
        with pytest.raises(BenchSchemaError, match="schema"):
            validate_bench_report(payload)

    def test_bad_name_rejected(self):
        payload = self.base_payload()
        payload["name"] = "no spaces!"
        with pytest.raises(BenchSchemaError, match="name"):
            validate_bench_report(payload)

    def test_smoke_must_be_bool(self):
        payload = self.base_payload()
        payload["smoke"] = 1
        with pytest.raises(BenchSchemaError, match="smoke"):
            validate_bench_report(payload)

    def test_negative_timing_rejected(self):
        payload = self.base_payload()
        payload["entries"][0]["stats"]["mean_s"] = -1.0
        with pytest.raises(BenchSchemaError, match="mean_s"):
            validate_bench_report(payload)

    def test_zero_rounds_rejected(self):
        payload = self.base_payload()
        payload["entries"][0]["stats"]["rounds"] = 0
        with pytest.raises(BenchSchemaError, match="rounds"):
            validate_bench_report(payload)

    def test_entry_missing_extra_rejected(self):
        payload = self.base_payload()
        del payload["entries"][0]["extra"]
        with pytest.raises(BenchSchemaError, match="extra"):
            validate_bench_report(payload)

    def test_non_dict_top_level_rejected(self):
        with pytest.raises(BenchSchemaError):
            validate_bench_report([1, 2, 3])

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        with pytest.raises(BenchSchemaError):
            load_bench_report(path)


class TestValidateCli:
    def test_ok_on_valid_artifacts(self, tmp_path, capsys):
        first = write_bench_report("a", good_entries(), directory=tmp_path)
        second = write_bench_report("b", good_entries(), directory=tmp_path)
        assert validate_main([str(first), str(second), "--expect", "2"]) == 0
        out = capsys.readouterr().out
        assert "all 2 artifact(s) schema-valid" in out

    def test_fails_on_invalid_artifact(self, tmp_path, capsys):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema": "wrong"}))
        assert validate_main([str(path)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_fails_on_count_mismatch(self, tmp_path, capsys):
        path = write_bench_report("a", good_entries(), directory=tmp_path)
        assert validate_main([str(path), "--expect", "14"]) == 1
