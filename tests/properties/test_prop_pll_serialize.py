"""Property-based tests: PLL exactness and serialisation round trips."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.graph import AttributedGraph
from repro.index.nlrnl import NLRNLIndex
from repro.index.pll import PLLIndex
from repro.index.serialize import load_index, save_index


@st.composite
def bare_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=16))
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), unique=True, max_size=3 * n)
    )
    return AttributedGraph(n, edges)


@settings(max_examples=60, deadline=None)
@given(graph=bare_graphs())
def test_pll_distances_are_exact(graph):
    pll = PLLIndex(graph)
    for u in graph.vertices():
        for v in graph.vertices():
            expected = graph.hop_distance(u, v)
            decoded = pll.query_distance(u, v)
            assert decoded == (float("inf") if expected is None else expected)


@settings(max_examples=40, deadline=None)
@given(graph=bare_graphs(), k=st.integers(0, 5))
def test_pll_tenuity_matches_definition(graph, k):
    pll = PLLIndex(graph)
    for u in graph.vertices():
        for v in graph.vertices():
            expected = graph.hop_distance(u, v)
            truth = False if u == v else (expected is None or expected > k)
            assert pll.is_tenuous(u, v, k) == truth


@settings(max_examples=30, deadline=None)
@given(graph=bare_graphs(), seed=st.integers(0, 1000))
def test_serialise_round_trip_preserves_probes(graph, seed):
    import tempfile
    from pathlib import Path

    rng = random.Random(seed)
    with tempfile.TemporaryDirectory() as tmp:
        for index_cls in (NLRNLIndex, PLLIndex):
            original = index_cls(graph)
            path = Path(tmp) / f"{index_cls.__name__}.json"
            save_index(original, path)
            loaded = load_index(graph, path)
            for _ in range(30):
                u = rng.randrange(graph.num_vertices)
                v = rng.randrange(graph.num_vertices)
                k = rng.randrange(5)
                assert loaded.is_tenuous(u, v, k) == original.is_tenuous(u, v, k)
