"""Property-based tests for the top-N pool against a reference model."""

from hypothesis import given, settings, strategies as st

from repro.core.results import TopNPool


offers = st.lists(
    st.tuples(
        st.lists(st.integers(0, 20), unique=True, min_size=1, max_size=4),
        st.sampled_from([0.0, 0.2, 0.25, 0.4, 0.5, 0.6, 0.75, 0.8, 1.0]),
    ),
    max_size=30,
)


def reference_pool(capacity, sequence):
    """Straight-line reimplementation of the paper's updateRS semantics."""
    kept: list[tuple[float, int, tuple[int, ...]]] = []  # (coverage, seq, members)
    for order, (members, coverage) in enumerate(sequence):
        canonical = tuple(sorted(members))
        if any(entry[2] == canonical for entry in kept):
            continue
        if len(kept) < capacity:
            kept.append((coverage, order, canonical))
            continue
        # Lowest coverage is evicted; among coverage-tied worst entries
        # the *newest* yields, so earlier discoveries are never displaced
        # by anything they tie with.
        worst = min(kept, key=lambda entry: (entry[0], -entry[1]))
        if coverage > worst[0]:
            kept.remove(worst)
            kept.append((coverage, order, canonical))
    kept.sort(key=lambda entry: (-entry[0], entry[1]))
    return [(entry[2], entry[0]) for entry in kept]


@settings(max_examples=200, deadline=None)
@given(capacity=st.integers(1, 5), sequence=offers)
def test_pool_matches_reference_model(capacity, sequence):
    pool = TopNPool(capacity)
    for members, coverage in sequence:
        pool.offer(members, coverage)
    actual = [(group.members, group.coverage) for group in pool.best()]
    assert actual == reference_pool(capacity, sequence)


@settings(max_examples=100, deadline=None)
@given(capacity=st.integers(1, 5), sequence=offers)
def test_threshold_is_nth_best(capacity, sequence):
    pool = TopNPool(capacity)
    for members, coverage in sequence:
        pool.offer(members, coverage)
    if pool.is_full():
        assert pool.threshold == min(group.coverage for group in pool.best())
    else:
        assert pool.threshold == 0.0


@settings(max_examples=100, deadline=None)
@given(capacity=st.integers(1, 5), sequence=offers)
def test_pool_never_exceeds_capacity_and_never_duplicates(capacity, sequence):
    pool = TopNPool(capacity)
    for members, coverage in sequence:
        pool.offer(members, coverage)
    groups = pool.best()
    assert len(groups) <= capacity
    member_sets = [group.members for group in groups]
    assert len(set(member_sets)) == len(member_sets)
