"""Property-based tests: the tracer mirrors the solver exactly."""

from hypothesis import given, settings, strategies as st

from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.graph import AttributedGraph
from repro.core.query import KTGQuery
from repro.core.strategies import QKCOrdering, VKCDegreeOrdering, VKCOrdering
from repro.core.trace import TracingSolver

KEYWORDS = ["a", "b", "c", "d"]


@st.composite
def instances(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), unique=True, max_size=2 * n)
    )
    keywords = {
        v: draw(st.lists(st.sampled_from(KEYWORDS), unique=True, max_size=3))
        for v in range(n)
    }
    graph = AttributedGraph(n, edges, keywords)
    query = KTGQuery(
        keywords=tuple(
            draw(st.lists(st.sampled_from(KEYWORDS), unique=True, min_size=1, max_size=4))
        ),
        group_size=draw(st.integers(1, 3)),
        tenuity=draw(st.integers(0, 2)),
        top_n=draw(st.integers(1, 3)),
    )
    return graph, query


@settings(max_examples=60, deadline=None)
@given(instance=instances(), strategy_pick=st.integers(0, 2))
def test_trace_mirrors_solver(instance, strategy_pick):
    graph, query = instance
    strategy = [
        QKCOrdering(),
        VKCOrdering(),
        VKCDegreeOrdering(graph.degrees()),
    ][strategy_pick]
    solver = BranchAndBoundSolver(graph, strategy=strategy)
    plain = solver.solve(query)
    traced, trace = TracingSolver(solver).solve(query)
    # Identical results, identical exploration size.
    assert [g.members for g in traced.groups] == [g.members for g in plain.groups]
    assert [g.coverage for g in traced.groups] == [g.coverage for g in plain.groups]
    assert trace.nodes == plain.stats.nodes_expanded
    assert trace.accepted == plain.stats.offers_accepted
