"""Property test: cached answers are indistinguishable from fresh solves.

For any sequence of queries, serving through the cache must return
exactly what a cache-less solve of the same query returns — member sets
and coverages both.
"""

from hypothesis import given, settings, strategies as st

from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.query import KTGQuery
from repro.service import QueryService
from tests.conftest import make_random_attributed_graph

_GRAPH = make_random_attributed_graph(num_vertices=35, seed=29)
_LABELS = sorted(_GRAPH.keyword_table)

queries = st.builds(
    KTGQuery,
    keywords=st.lists(
        st.sampled_from(_LABELS), min_size=1, max_size=4, unique=True
    ).map(tuple),
    group_size=st.integers(2, 3),
    tenuity=st.integers(1, 3),
    top_n=st.integers(1, 3),
)


@settings(max_examples=30, deadline=None)
@given(sequence=st.lists(queries, min_size=1, max_size=8))
def test_cached_answers_equal_fresh_solves(sequence):
    service = QueryService(_GRAPH, "KTG-VKC-NLRNL", cache_capacity=16)
    oracle = service._ensure_oracle()
    for query in sequence + sequence:  # second half exercises the cache
        served = service.submit(query)
        fresh = BranchAndBoundSolver(_GRAPH, oracle=oracle).solve(query)
        assert served.member_sets() == fresh.member_sets()
        assert [g.coverage for g in served.result.groups] == [
            g.coverage for g in fresh.groups
        ]
        assert served.is_exact


@settings(max_examples=15, deadline=None)
@given(query=queries)
def test_second_serve_is_a_hit_with_identical_result(query):
    service = QueryService(_GRAPH, "KTG-VKC-NLRNL")
    first = service.submit(query)
    second = service.submit(query)
    assert second.from_cache
    assert second.result is first.result
