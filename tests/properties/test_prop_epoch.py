"""Property tests: snapshot ⊕ delta reads are bit-identical to rebuilds.

The epoch layer's correctness contract
(:mod:`repro.core.epoch`): at *every* delta depth, an
:class:`EpochGraphView` must read exactly like the live mutated graph,
and compacting the view must produce byte-identical CSR to compacting
the graph itself.  On top of that, an epoch-mode
:class:`~repro.service.service.QueryService` must answer queries
bit-identically (ranked groups *and* ``SearchStats``) to a plain
read-only service over an equivalently mutated graph — across ordering
strategy, distance engine and kernel backend.

Random mutation streams (edge flips, keyword rewrites, vertex appends)
are drawn by hypothesis; the manager applies them through its write
gate while the reference applies them to a second graph directly.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.core.csr import CsrSnapshot
from repro.core.epoch import EpochManager
from repro.core.graph import AttributedGraph
from repro.core.query import KTGQuery
from repro.kernels.vec import numpy_available
from repro.service.service import QueryService

KEYWORD_POOL = ["a", "b", "c", "d", "e", "f"]

KERNEL_BACKENDS = ["python", "numpy"] if numpy_available() else ["python", "auto"]

ALGORITHMS = ["KTG-QKC-NLRNL", "KTG-VKC-NLRNL", "KTG-VKC-DEG-NLRNL"]


@st.composite
def attributed_graphs(draw):
    """Random graphs of 4-14 vertices with random keyword sets."""
    n = draw(st.integers(min_value=4, max_value=14))
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), unique=True, max_size=2 * n)
    )
    keywords = {
        v: draw(st.lists(st.sampled_from(KEYWORD_POOL), unique=True, max_size=3))
        for v in range(n)
    }
    return AttributedGraph(n, edges, keywords)


@st.composite
def mutation_streams(draw, max_ops: int = 12):
    """A list of abstract mutation ops, resolved against a graph later."""
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_ops))):
        kind = draw(st.sampled_from(["flip", "flip", "keywords", "vertex"]))
        if kind == "flip":
            ops.append(("flip", draw(st.integers(0, 10**6)), draw(st.integers(0, 10**6))))
        elif kind == "keywords":
            labels = draw(
                st.lists(st.sampled_from(KEYWORD_POOL), unique=True, max_size=3)
            )
            ops.append(("keywords", draw(st.integers(0, 10**6)), tuple(labels)))
        else:
            labels = draw(
                st.lists(st.sampled_from(KEYWORD_POOL), unique=True, max_size=2)
            )
            ops.append(("vertex", tuple(labels)))
    return ops


def resolve(op, graph):
    """Map an abstract op onto concrete vertices of *graph*."""
    n = graph.num_vertices
    if op[0] == "flip":
        u, v = op[1] % n, op[2] % n
        if u == v:
            v = (v + 1) % n
        return ("flip", u, v)
    if op[0] == "keywords":
        return ("keywords", op[1] % n, op[2])
    return op


def apply_to_manager(op, manager):
    if op[0] == "flip":
        _, u, v = op
        if manager.graph.has_edge(u, v):
            manager.remove_edge(u, v)
        else:
            manager.add_edge(u, v)
    elif op[0] == "keywords":
        manager.set_keywords(op[1], list(op[2]))
    else:
        manager.add_vertex(list(op[1]))


def apply_to_graph(op, graph):
    if op[0] == "flip":
        _, u, v = op
        if graph.has_edge(u, v):
            graph.remove_edge(u, v)
        else:
            graph.add_edge(u, v)
    elif op[0] == "keywords":
        graph.set_keywords(op[1], list(op[2]))
    else:
        graph.add_vertex(list(op[1]))


def clone_graph(graph):
    return AttributedGraph(
        graph.num_vertices,
        graph.edges(),
        keywords={v: graph.keyword_labels(v) for v in range(graph.num_vertices)},
    )


def assert_view_matches_graph(view, graph):
    assert view.num_vertices == graph.num_vertices
    assert view.num_edges == graph.num_edges
    assert view.version == graph.version
    for vertex in graph.vertices():
        assert view.neighbors(vertex) == graph.neighbors(vertex)
        assert view.keywords_of(vertex) == graph.keywords_of(vertex)
        assert view.degree(vertex) == graph.degree(vertex)
    assert sorted(view.edges()) == sorted(graph.edges())


def ranked_groups(result):
    return [(group.members, round(group.coverage, 12)) for group in result.groups]


def comparable_stats(stats):
    """SearchStats minus wall-clock (the only serving-dependent field)."""
    return dataclasses.replace(stats, elapsed_seconds=0.0)


# ----------------------------------------------------------------------
# View-level parity at every delta depth
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(graph=attributed_graphs(), stream=mutation_streams())
def test_view_reads_match_live_graph_at_every_depth(graph, stream):
    manager = EpochManager(graph, rotate_after=10**9, max_delta=10**9)
    try:
        for op in stream:
            apply_to_manager(resolve(op, graph), manager)
            assert_view_matches_graph(manager.view(), graph)
            with manager._lock:
                assert (
                    manager._epoch.snapshot.graph_version + manager._delta.depth
                    == graph.version
                )
    finally:
        manager.close()


@settings(max_examples=30, deadline=None)
@given(graph=attributed_graphs(), stream=mutation_streams())
def test_compacting_the_view_equals_compacting_the_graph(graph, stream):
    """from_graph(snapshot ⊕ delta) is byte-identical to from_graph(graph)
    — the rotation step can never produce a divergent next epoch."""
    manager = EpochManager(graph, rotate_after=10**9, max_delta=10**9)
    try:
        for op in stream:
            apply_to_manager(resolve(op, graph), manager)
        via_view = CsrSnapshot.from_graph(manager.view())
        via_graph = CsrSnapshot.from_graph(graph)
        assert bytes(via_view._buf) == bytes(via_graph._buf)
    finally:
        manager.close()


@settings(max_examples=25, deadline=None)
@given(
    graph=attributed_graphs(),
    stream=mutation_streams(),
    rotate_after=st.integers(min_value=1, max_value=4),
)
def test_rotation_preserves_view_parity(graph, stream, rotate_after):
    """Same property with rotations interleaved mid-stream: compaction
    plus tail replay must be invisible to readers."""
    manager = EpochManager(
        graph, rotate_after=rotate_after, max_delta=64, rotate_sync=True
    )
    try:
        for op in stream:
            apply_to_manager(resolve(op, graph), manager)
            assert_view_matches_graph(manager.view(), graph)
        if len(stream) >= rotate_after:
            assert manager.stats().rotations >= 1
    finally:
        manager.close()


# ----------------------------------------------------------------------
# Service-level parity: epoch mode vs read-only over the mutated graph
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    graph=attributed_graphs(),
    stream=mutation_streams(max_ops=8),
    keywords=st.lists(
        st.sampled_from(KEYWORD_POOL), unique=True, min_size=1, max_size=3
    ),
    group_size=st.integers(min_value=2, max_value=3),
    tenuity=st.integers(min_value=0, max_value=3),
    algorithm=st.sampled_from(ALGORITHMS),
    distance_engine=st.sampled_from(["oracle", "bitset"]),
    kernel_backend=st.sampled_from(KERNEL_BACKENDS),
)
def test_epoch_service_solves_bit_identical(
    graph,
    stream,
    keywords,
    group_size,
    tenuity,
    algorithm,
    distance_engine,
    kernel_backend,
):
    query = KTGQuery(
        keywords=tuple(keywords), group_size=group_size, tenuity=tenuity, top_n=3
    )
    live = clone_graph(graph)
    reference = clone_graph(graph)

    with QueryService(
        live,
        algorithm,
        cache_capacity=0,
        distance_engine=distance_engine,
        kernel_backend=kernel_backend,
        mutations=True,
        epoch_rotate_after=3,
        epoch_max_delta=64,
        epoch_rotate_sync=True,
    ) as epoch_service:
        # Interleave a solve mid-stream so repairs actually run against
        # a built oracle, then mutate some more and solve again.
        resolved = [resolve(op, live) for op in stream]
        half = len(resolved) // 2
        for op in resolved[:half]:
            apply_to_manager(op, epoch_service.epochs)
        epoch_service.submit(query)
        for op in resolved[half:]:
            apply_to_manager(op, epoch_service.epochs)
        epoch_answer = epoch_service.submit(query)

    for op in resolved:
        # Replay the identical concrete ops against the reference graph
        # (vertex counts track, so resolution is stable across both).
        apply_to_graph(op, reference)
    assert sorted(reference.edges()) == sorted(live.edges())

    with QueryService(
        reference,
        algorithm,
        cache_capacity=0,
        distance_engine=distance_engine,
        kernel_backend=kernel_backend,
    ) as reference_service:
        reference_answer = reference_service.submit(query)

    assert ranked_groups(epoch_answer.result) == ranked_groups(
        reference_answer.result
    )
    assert comparable_stats(epoch_answer.result.stats) == comparable_stats(
        reference_answer.result.stats
    )
