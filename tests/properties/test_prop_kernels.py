"""Property tests: the ball-bitset engine is a pure view of its oracle.

Two contracts, exercised over random graphs and queries:

* **Ball fidelity** — ``engine.decode(engine.ball(v, k))`` equals
  ``oracle.within_k(v, k)`` for every backing oracle (BFS, NL, NLRNL,
  PLL) and every ``k`` in 1..4, regardless of the cache budget.
* **Engine equivalence** — ``solve(distance_engine="bitset")`` returns
  ranked groups (members AND coverages) *and* search stats identical to
  the oracle engine, for every strategy, serial and parallel fleets,
  with k-line filtering on or off, with budgets on or off.
* **Backend equivalence** — the two kernel backends (scalar vs numpy,
  which on numpy also engages the batched expansion core of
  :mod:`repro.kernels.solve`) return identical ranked groups and
  identical :class:`SearchStats` ledgers, across strategies, serial /
  parallel / sharded engines, and jobs / shards counts.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

import repro.kernels.solve as solve_mod
from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.bruteforce import BruteForceSolver
from repro.core.graph import AttributedGraph
from repro.core.parallel import ParallelBranchAndBoundSolver
from repro.core.query import KTGQuery
from repro.core.strategies import QKCOrdering, VKCDegreeOrdering, VKCOrdering
from repro.index.bfs import BFSOracle
from repro.index.nl import NLIndex
from repro.index.nlrnl import NLRNLIndex
from repro.index.pll import PLLIndex
from repro.kernels import BallBitsetEngine
from repro.kernels.vec import numpy_available
from repro.shard import ShardedBranchAndBoundSolver

KEYWORD_POOL = ["a", "b", "c", "d", "e", "f"]

ORACLES = [BFSOracle, NLIndex, NLRNLIndex, PLLIndex]

# Scalar vs vectorized when numpy is importable; scalar vs the auto
# fallback otherwise (the numpy-absent CI job runs that branch).
KERNEL_BACKENDS = ["python", "numpy"] if numpy_available() else ["python", "auto"]

STRATEGIES = [
    ("qkc", lambda g: QKCOrdering()),
    ("vkc", lambda g: VKCOrdering()),
    ("vkc-deg", lambda g: VKCDegreeOrdering(g.degrees())),
]


@st.composite
def attributed_graphs(draw):
    """Random graphs of 4-14 vertices with random keyword sets."""
    n = draw(st.integers(min_value=4, max_value=14))
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), unique=True, max_size=2 * n)
    )
    keywords = {
        v: draw(st.lists(st.sampled_from(KEYWORD_POOL), unique=True, max_size=3))
        for v in range(n)
    }
    return AttributedGraph(n, edges, keywords)


@st.composite
def queries(draw):
    keywords = tuple(
        draw(
            st.lists(
                st.sampled_from(KEYWORD_POOL), unique=True, min_size=1, max_size=4
            )
        )
    )
    return KTGQuery(
        keywords=keywords,
        group_size=draw(st.integers(min_value=2, max_value=4)),
        tenuity=draw(st.integers(min_value=0, max_value=3)),
        top_n=draw(st.integers(min_value=1, max_value=4)),
    )


def ranked_groups(result):
    return [(group.members, round(group.coverage, 12)) for group in result.groups]


def stats_profile(stats):
    return (
        stats.nodes_expanded,
        stats.keyword_prunes,
        stats.kline_removed,
        stats.offers_accepted,
        stats.feasible_groups,
        stats.budget_exhausted,
    )


# ----------------------------------------------------------------------
# Ball fidelity
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    graph=attributed_graphs(),
    oracle_index=st.integers(0, len(ORACLES) - 1),
    max_balls=st.sampled_from([0, 3, 8192]),
    backend=st.sampled_from(KERNEL_BACKENDS),
    layout=st.sampled_from(["adjacency", "csr"]),
)
def test_ball_decodes_to_within_k(graph, oracle_index, max_balls, backend, layout):
    oracle = ORACLES[oracle_index](graph)
    engine = BallBitsetEngine(
        oracle, max_balls=max_balls, graph_layout=layout, kernel_backend=backend
    )
    for vertex in range(graph.num_vertices):
        for k in (1, 2, 3, 4):
            assert engine.decode(engine.ball(vertex, k)) == oracle.within_k(
                vertex, k
            ), (type(oracle).__name__, vertex, k, backend, layout)


# ----------------------------------------------------------------------
# Engine equivalence
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    graph=attributed_graphs(),
    query=queries(),
    strategy_index=st.integers(0, 2),
    kline=st.booleans(),
)
def test_bitset_solve_identical_to_oracle(graph, query, strategy_index, kline):
    _, factory = STRATEGIES[strategy_index]
    outcomes = []
    for engine_name in ("oracle", "bitset"):
        solver = BranchAndBoundSolver(
            graph,
            oracle=BFSOracle(graph),
            strategy=factory(graph),
            kline_filtering=kline,
            distance_engine=engine_name,
        )
        result = solver.solve(query)
        outcomes.append((ranked_groups(result), stats_profile(result.stats)))
    assert outcomes[0] == outcomes[1]


@settings(max_examples=20, deadline=None)
@given(
    graph=attributed_graphs(),
    query=queries(),
    jobs=st.sampled_from([1, 4]),
)
def test_bitset_parallel_identical_to_oracle_serial(graph, query, jobs):
    serial = BranchAndBoundSolver(
        graph, oracle=BFSOracle(graph), strategy=STRATEGIES[2][1](graph)
    ).solve(query)
    with ParallelBranchAndBoundSolver(
        graph,
        oracle=BFSOracle(graph),
        strategy=STRATEGIES[2][1](graph),
        jobs=jobs,
        executor="inline" if jobs == 1 else "thread",
        distance_engine="bitset",
    ) as engine:
        parallel = engine.solve(query)
    assert ranked_groups(parallel) == ranked_groups(serial)
    assert parallel.stats.offers_accepted == serial.stats.offers_accepted


@settings(max_examples=20, deadline=None)
@given(
    graph=attributed_graphs(),
    query=queries(),
    node_budget=st.integers(min_value=1, max_value=30),
)
def test_bitset_identical_under_node_budget(graph, query, node_budget):
    outcomes = []
    for engine_name in ("oracle", "bitset"):
        solver = BranchAndBoundSolver(
            graph,
            oracle=BFSOracle(graph),
            strategy=STRATEGIES[2][1](graph),
            node_budget=node_budget,
            distance_engine=engine_name,
        )
        result = solver.solve(query)
        outcomes.append((ranked_groups(result), stats_profile(result.stats)))
    assert outcomes[0] == outcomes[1]


@settings(max_examples=15, deadline=None)
@given(
    graph=attributed_graphs(),
    query=queries(),
    anchors=st.lists(st.integers(min_value=0, max_value=13), max_size=2),
)
def test_bitset_identical_with_anchors(graph, query, anchors):
    anchors = tuple(a for a in anchors if a < graph.num_vertices)
    query = query.with_(excluded_anchors=anchors)
    outcomes = []
    for engine_name in ("oracle", "bitset"):
        solver = BranchAndBoundSolver(
            graph,
            oracle=BFSOracle(graph),
            distance_engine=engine_name,
        )
        result = solver.solve(query)
        outcomes.append((ranked_groups(result), stats_profile(result.stats)))
    assert outcomes[0] == outcomes[1]


@settings(max_examples=15, deadline=None)
@given(graph=attributed_graphs(), query=queries())
def test_bitset_bruteforce_identical(graph, query):
    base = BruteForceSolver(graph, oracle=BFSOracle(graph)).solve(query)
    fast = BruteForceSolver(
        graph, oracle=BFSOracle(graph), distance_engine="bitset"
    ).solve(query)
    assert ranked_groups(fast) == ranked_groups(base)


# ----------------------------------------------------------------------
# Backend equivalence (scalar vs batched expansion core)
# ----------------------------------------------------------------------
def full_stats_profile(stats):
    """Every SearchStats counter except wall time — the full ledger the
    batched solver core must reproduce bit for bit."""
    profile = vars(stats).copy()
    profile.pop("elapsed_seconds")
    return profile


def _backend_solve(graph, query, strategy_factory, backend, engine_kind, width):
    if engine_kind == "serial":
        return BranchAndBoundSolver(
            graph,
            oracle=BFSOracle(graph),
            strategy=strategy_factory(graph),
            distance_engine="bitset",
            kernel_backend=backend,
        ).solve(query)
    if engine_kind == "parallel":
        # bound_broadcast off: cross-chunk floor updates are timing
        # dependent, and the sweep pins the FULL stats ledger.
        with ParallelBranchAndBoundSolver(
            graph,
            oracle=BFSOracle(graph),
            strategy=strategy_factory(graph),
            jobs=width,
            executor="inline" if width == 1 else "thread",
            distance_engine="bitset",
            kernel_backend=backend,
            bound_broadcast=False,
        ) as engine:
            return engine.solve(query)
    with ShardedBranchAndBoundSolver(
        graph,
        oracle=BFSOracle(graph),
        strategy=strategy_factory(graph),
        num_shards=width,
        executor="inline",
        bound_broadcast=False,
        distance_engine="bitset",
        kernel_backend=backend,
    ) as engine:
        return engine.solve(query)


@settings(max_examples=40, deadline=None)
@given(
    graph=attributed_graphs(),
    query=queries(),
    strategy_index=st.integers(0, 2),
    engine_pick=st.sampled_from(
        [("serial", 1), ("parallel", 1), ("parallel", 4), ("sharded", 1), ("sharded", 2)]
    ),
    kline=st.booleans(),
    union=st.booleans(),
)
def test_solver_backend_bit_identical(
    graph, query, strategy_index, engine_pick, kline, union
):
    """The two kernel backends answer every configuration with identical
    ranked groups AND an identical SearchStats ledger.  On numpy this
    pins the batched expansion core (repro.kernels.solve) against the
    scalar path; on the numpy-absent CI lane it pins scalar vs the auto
    fallback.  BATCH_MIN_CANDIDATES drops to 0 so the tiny property
    graphs exercise the batched path at every node."""
    engine_kind, width = engine_pick
    if engine_kind != "serial" and (not kline or union):
        # Fleet engines always run with default pruning; the ablation
        # dimensions only vary on the serial solver.
        kline, union = True, False
    _, factory = STRATEGIES[strategy_index]

    def run(backend):
        if engine_kind == "serial":
            return BranchAndBoundSolver(
                graph,
                oracle=BFSOracle(graph),
                strategy=factory(graph),
                distance_engine="bitset",
                kernel_backend=backend,
                kline_filtering=kline,
                use_union_bound=union,
            ).solve(query)
        return _backend_solve(graph, query, factory, backend, engine_kind, width)

    saved = solve_mod.BATCH_MIN_CANDIDATES
    solve_mod.BATCH_MIN_CANDIDATES = 0
    try:
        outcomes = [
            (ranked_groups(result), full_stats_profile(result.stats))
            for result in (run(backend) for backend in KERNEL_BACKENDS)
        ]
    finally:
        solve_mod.BATCH_MIN_CANDIDATES = saved
    assert outcomes[0] == outcomes[1], (engine_kind, width, kline, union)


@settings(max_examples=15, deadline=None)
@given(graph=attributed_graphs(), query=queries())
def test_shared_kernel_across_solves_stays_exact(graph, query):
    """One kernel serving many queries (the service pattern) stays a
    pure cache: answers match fresh-engine solves."""
    oracle = BFSOracle(graph)
    kernel = BallBitsetEngine(oracle, max_balls=4)  # tiny budget: evict a lot
    shared = BranchAndBoundSolver(graph, oracle=oracle, kernel=kernel)
    fresh = BranchAndBoundSolver(graph, oracle=BFSOracle(graph))
    for top_n in (1, query.top_n):
        probe = query.with_(top_n=top_n)
        assert ranked_groups(shared.solve(probe)) == ranked_groups(
            fresh.solve(probe)
        )
