"""Property-based tests for tenuity metrics and the MinLine model."""

from hypothesis import given, settings, strategies as st

from repro.analysis.tenuity import (
    group_tenuity,
    is_k_distance_group,
    kline_count,
    ktenuity,
    ktriangle_count,
)
from repro.baselines.kline_min import MinLineSolver
from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.graph import AttributedGraph
from repro.core.query import KTGQuery
from repro.index.bfs import BFSOracle

KEYWORDS = ["a", "b", "c"]


@st.composite
def attributed_graphs(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), unique=True, max_size=2 * n)
    )
    keywords = {
        v: draw(st.lists(st.sampled_from(KEYWORDS), unique=True, max_size=2))
        for v in range(n)
    }
    return AttributedGraph(n, edges, keywords)


@st.composite
def graph_and_members(draw):
    graph = draw(attributed_graphs())
    size = draw(st.integers(min_value=0, max_value=min(5, graph.num_vertices)))
    members = draw(
        st.lists(
            st.integers(0, graph.num_vertices - 1),
            unique=True,
            min_size=size,
            max_size=size,
        )
    )
    return graph, members


@settings(max_examples=100, deadline=None)
@given(data=graph_and_members(), k=st.integers(0, 4))
def test_metric_relationships(data, k):
    graph, members = data
    oracle = BFSOracle(graph)
    lines = kline_count(oracle, members, k)
    triangles = ktriangle_count(oracle, members, k)
    ratio = ktenuity(oracle, members, k)
    pairs = len(members) * (len(members) - 1) // 2

    # Counts are bounded by their combinatorial universes.
    assert 0 <= lines <= pairs
    assert 0 <= triangles <= max(
        0, len(members) * (len(members) - 1) * (len(members) - 2) // 6
    )
    # Every k-triangle spends three k-lines.
    assert triangles == 0 or lines >= 3
    # k-tenuity is exactly the normalised k-line count.
    if pairs:
        assert ratio == lines / pairs
    # The k-distance-group predicate == zero k-lines.
    assert is_k_distance_group(oracle, members, k) == (lines == 0)
    # Definition 3 <-> Definition 4: zero k-lines iff min distance > k.
    assert (lines == 0) == (group_tenuity(graph, members) > k)


@settings(max_examples=60, deadline=None)
@given(data=graph_and_members())
def test_kline_count_monotone_in_k(data):
    graph, members = data
    oracle = BFSOracle(graph)
    counts = [kline_count(oracle, members, k) for k in range(5)]
    assert counts == sorted(counts)


@settings(max_examples=40, deadline=None)
@given(graph=attributed_graphs(), k=st.integers(0, 3), p=st.integers(2, 3))
def test_minline_consistent_with_ktg(graph, k, p):
    """When KTG finds groups, MinLine's optimum has zero k-lines, and
    when MinLine's optimum has k-lines, KTG must be empty."""
    query = KTGQuery(keywords=("a", "b", "c"), group_size=p, tenuity=k, top_n=1)
    ktg = BranchAndBoundSolver(graph).solve(query)
    minline = MinLineSolver(graph).solve(query)
    if ktg.groups:
        assert minline.groups
        assert minline.best_kline_count == 0
        # Ties in MinLine break by coverage, so its best group matches
        # the KTG optimum coverage.
        assert minline.groups[0].coverage >= ktg.best_coverage - 1e-9
    elif minline.groups:
        assert minline.best_kline_count > 0
