"""Property tests: ``solve(jobs=N)`` is bit-identical to serial.

The engine's determinism contract, exercised over random graphs and
queries:

* ranked groups (members AND coverages, in order) are identical to the
  serial :class:`BranchAndBoundSolver` for ``jobs in {1, 2, 4}``, every
  ordering strategy, with bound broadcasting on or off;
* with broadcasting off, the *aggregate prune counts* are also
  jobs-invariant (broadcasting only changes how early workers learn the
  incumbent bound — sharpening is timing-dependent, so prune counts are
  only stats-reproducible with the constant floor);
* the same holds under node budgets (applied per subproblem) and
  generous time budgets.

The process executor is exercised by one non-property smoke test at the
bottom — spawning a pool per hypothesis example would dominate runtime
without adding coverage (worker code paths are identical).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.graph import AttributedGraph
from repro.core.parallel import ParallelBranchAndBoundSolver
from repro.core.query import KTGQuery
from repro.core.strategies import QKCOrdering, VKCDegreeOrdering, VKCOrdering
from repro.index.bfs import BFSOracle

KEYWORD_POOL = ["a", "b", "c", "d", "e", "f"]

STRATEGIES = [
    ("qkc", lambda g: QKCOrdering()),
    ("vkc", lambda g: VKCOrdering()),
    ("vkc-deg", lambda g: VKCDegreeOrdering(g.degrees())),
]


@st.composite
def attributed_graphs(draw):
    """Random graphs of 4-14 vertices with random keyword sets."""
    n = draw(st.integers(min_value=4, max_value=14))
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), unique=True, max_size=2 * n)
    )
    keywords = {
        v: draw(st.lists(st.sampled_from(KEYWORD_POOL), unique=True, max_size=3))
        for v in range(n)
    }
    return AttributedGraph(n, edges, keywords)


@st.composite
def queries(draw):
    keywords = tuple(
        draw(
            st.lists(
                st.sampled_from(KEYWORD_POOL), unique=True, min_size=1, max_size=4
            )
        )
    )
    return KTGQuery(
        keywords=keywords,
        group_size=draw(st.integers(min_value=2, max_value=4)),
        tenuity=draw(st.integers(min_value=0, max_value=3)),
        top_n=draw(st.integers(min_value=1, max_value=4)),
    )


def ranked_groups(result):
    return [(group.members, round(group.coverage, 12)) for group in result.groups]


def prune_profile(stats):
    return (
        stats.nodes_expanded,
        stats.keyword_prunes,
        stats.kline_removed,
        stats.offers_accepted,
        stats.feasible_groups,
    )


def serial_solve(graph, query, strategy_factory, **budgets):
    solver = BranchAndBoundSolver(
        graph,
        oracle=BFSOracle(graph),
        strategy=strategy_factory(graph),
        **budgets,
    )
    return solver.solve(query)


def parallel_solve(graph, query, strategy_factory, jobs, **options):
    with ParallelBranchAndBoundSolver(
        graph,
        oracle=BFSOracle(graph),
        strategy=strategy_factory(graph),
        jobs=jobs,
        executor="inline" if jobs == 1 else "thread",
        **options,
    ) as engine:
        return engine.solve(query)


@settings(max_examples=40, deadline=None)
@given(
    graph=attributed_graphs(),
    query=queries(),
    strategy_index=st.integers(0, 2),
    jobs=st.sampled_from([1, 2, 4]),
    broadcast=st.booleans(),
)
def test_parallel_groups_identical_to_serial(
    graph, query, strategy_index, jobs, broadcast
):
    _, factory = STRATEGIES[strategy_index]
    serial = serial_solve(graph, query, factory)
    parallel = parallel_solve(
        graph, query, factory, jobs, bound_broadcast=broadcast
    )
    assert ranked_groups(parallel) == ranked_groups(serial)
    # The merged pool replays the serial admission sequence exactly.
    assert parallel.stats.offers_accepted == serial.stats.offers_accepted


@settings(max_examples=25, deadline=None)
@given(
    graph=attributed_graphs(),
    query=queries(),
    strategy_index=st.integers(0, 2),
)
def test_prune_counts_jobs_invariant_without_broadcast(
    graph, query, strategy_index
):
    """Aggregate SearchStats are identical for jobs in {1, 2, 4}."""
    _, factory = STRATEGIES[strategy_index]
    profiles = []
    groups = []
    for jobs in (1, 2, 4):
        result = parallel_solve(
            graph, query, factory, jobs, bound_broadcast=False
        )
        profiles.append(prune_profile(result.stats))
        groups.append(ranked_groups(result))
    assert profiles[0] == profiles[1] == profiles[2]
    assert groups[0] == groups[1] == groups[2]


@settings(max_examples=25, deadline=None)
@given(
    graph=attributed_graphs(),
    query=queries(),
    strategy_index=st.integers(0, 2),
    node_budget=st.integers(min_value=1, max_value=30),
)
def test_groups_and_stats_jobs_invariant_under_node_budget(
    graph, query, strategy_index, node_budget
):
    """Per-subproblem node budgets keep the answer jobs-invariant."""
    _, factory = STRATEGIES[strategy_index]
    outcomes = []
    for jobs in (1, 2, 4):
        result = parallel_solve(
            graph,
            query,
            factory,
            jobs,
            bound_broadcast=False,
            node_budget=node_budget,
        )
        outcomes.append(
            (
                ranked_groups(result),
                prune_profile(result.stats),
                result.stats.budget_exhausted,
            )
        )
    assert outcomes[0] == outcomes[1] == outcomes[2]


@settings(max_examples=15, deadline=None)
@given(
    graph=attributed_graphs(),
    query=queries(),
    jobs=st.sampled_from([2, 4]),
)
def test_generous_time_budget_still_exact(graph, query, jobs):
    """A time budget that never trips must not change the answer."""
    serial = serial_solve(graph, query, STRATEGIES[2][1])
    parallel = parallel_solve(
        graph, query, STRATEGIES[2][1], jobs, time_budget=300.0
    )
    assert ranked_groups(parallel) == ranked_groups(serial)
    assert not parallel.stats.budget_exhausted


def test_process_executor_matches_serial_once():
    """One real process-pool run (pool spawn is too slow per-example)."""
    from tests.conftest import make_random_attributed_graph

    graph = make_random_attributed_graph(num_vertices=36, seed=5)
    query = KTGQuery(
        keywords=("kw000", "kw001", "kw002"), group_size=3, tenuity=2, top_n=3
    )
    for _, factory in STRATEGIES:
        serial = serial_solve(graph, query, factory)
        with ParallelBranchAndBoundSolver(
            graph,
            oracle=BFSOracle(graph),
            strategy=factory(graph),
            jobs=2,
            executor="process",
        ) as engine:
            result = engine.solve(query)
        assert ranked_groups(result) == ranked_groups(serial)
        assert result.stats.offers_accepted == serial.stats.offers_accepted
