"""Property-based tests: instrument counters are internally consistent.

Three ledgers, each of which must balance on arbitrary inputs:

* the solver's node classification — every entered node is interior,
  completed, exhausted or pruned (on an unbudgeted run);
* the oracle's filter arithmetic — dropped candidates are exactly
  input minus output;
* the result cache's bookkeeping — lookups split into hits and misses.
"""

from hypothesis import given, settings, strategies as st

from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.graph import AttributedGraph
from repro.core.query import KTGQuery
from repro.index.bfs import BFSOracle
from repro.obs.hooks import InstrumentingHooks, SolverHooks
from repro.obs.instruments import InstrumentRegistry
from repro.service.cache import ResultCache

KEYWORD_POOL = ["a", "b", "c", "d", "e", "f"]


@st.composite
def attributed_graphs(draw):
    n = draw(st.integers(min_value=4, max_value=14))
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), unique=True, max_size=2 * n)
    )
    keywords = {
        v: draw(st.lists(st.sampled_from(KEYWORD_POOL), unique=True, max_size=3))
        for v in range(n)
    }
    return AttributedGraph(n, edges, keywords)


@st.composite
def queries(draw):
    keywords = tuple(
        draw(
            st.lists(
                st.sampled_from(KEYWORD_POOL), unique=True, min_size=1, max_size=4
            )
        )
    )
    return KTGQuery(
        keywords=keywords,
        group_size=draw(st.integers(min_value=1, max_value=4)),
        tenuity=draw(st.integers(min_value=0, max_value=3)),
        top_n=draw(st.integers(min_value=1, max_value=3)),
    )


class FilterLedger(SolverHooks):
    """Tally k-line filter inputs and outputs as the solver reports them."""

    def __init__(self):
        self.calls = 0
        self.total_in = 0
        self.total_out = 0

    def candidates_filtered(self, member, before, after):
        self.calls += 1
        self.total_in += before
        self.total_out += after


@settings(max_examples=50, deadline=None)
@given(graph=attributed_graphs(), query=queries())
def test_node_classification_balances(graph, query):
    """explored + completed + exhausted + pruned == total nodes entered."""
    result = BranchAndBoundSolver(graph).solve(query)
    stats = result.stats
    assert not stats.budget_exhausted
    assert stats.nodes_expanded == (
        stats.nodes_interior
        + stats.nodes_completed
        + stats.nodes_exhausted
        + stats.node_prunes
    )
    assert stats.keyword_prunes == stats.node_prunes + stats.leaf_prunes
    assert stats.union_prunes <= stats.node_prunes


@settings(max_examples=50, deadline=None)
@given(graph=attributed_graphs(), query=queries())
def test_instrument_counters_mirror_search_stats(graph, query):
    registry = InstrumentRegistry()
    result = BranchAndBoundSolver(graph).solve(
        query, hooks=InstrumentingHooks(registry)
    )
    counters = registry.report()["counters"]
    stats = result.stats
    assert counters["solver.nodes_entered"] == stats.nodes_expanded
    assert counters["solver.nodes_exhausted"] == stats.nodes_exhausted
    assert (
        counters["solver.prunes.keyword"] + counters["solver.prunes.union"]
        == stats.node_prunes
    )
    assert counters["solver.prunes.union"] == stats.union_prunes
    assert counters["solver.leaves_pruned"] == stats.leaf_prunes
    assert counters["solver.leaves_accepted"] == stats.offers_accepted
    assert counters["solver.filter_dropped"] == stats.kline_removed


@settings(max_examples=50, deadline=None)
@given(graph=attributed_graphs(), query=queries())
def test_oracle_filter_drops_balance(graph, query):
    """Filter drops reported == candidates in minus candidates out."""
    ledger = FilterLedger()
    result = BranchAndBoundSolver(graph).solve(query, hooks=ledger)
    assert ledger.total_in - ledger.total_out == result.stats.kline_removed


@settings(max_examples=50, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=8),
    operations=st.lists(st.integers(min_value=0, max_value=12), max_size=40),
)
def test_cache_hits_plus_misses_equal_lookups(capacity, operations):
    cache = ResultCache(capacity=capacity)
    for key in operations:
        if cache.get(key) is None:
            cache.put(key, object())
    assert cache.stats.hits + cache.stats.misses == cache.stats.lookups
    assert cache.stats.lookups == len(operations)
    assert len(cache) <= capacity


@settings(max_examples=30, deadline=None)
@given(graph=attributed_graphs(), query=queries())
def test_oracle_memo_counts_bounded_by_probes(graph, query):
    """Memo hits + misses never exceed the probes the oracle answered."""
    oracle = BFSOracle(graph)
    BranchAndBoundSolver(graph, oracle=oracle).solve(query)
    stats = oracle.stats
    assert stats.memo_hits >= 0 and stats.memo_misses >= 0
    assert 0.0 <= stats.memo_hit_rate <= 1.0
