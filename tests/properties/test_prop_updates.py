"""Property-based tests: dynamic NLRNL maintenance equals a fresh rebuild."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.graph import AttributedGraph
from repro.index.nlrnl import NLRNLIndex


@st.composite
def graph_and_updates(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), unique=True, max_size=2 * n)
    )
    seed = draw(st.integers(0, 10_000))
    steps = draw(st.integers(min_value=1, max_value=8))
    return AttributedGraph(n, edges), seed, steps


@settings(max_examples=50, deadline=None)
@given(data=graph_and_updates())
def test_update_sequence_equals_rebuild(data):
    graph, seed, steps = data
    index = NLRNLIndex(graph)
    rng = random.Random(seed)
    for _ in range(steps):
        u = rng.randrange(graph.num_vertices)
        v = rng.randrange(graph.num_vertices)
        if u == v:
            continue
        if graph.has_edge(u, v):
            index.delete_edge(u, v)
        else:
            index.insert_edge(u, v)
    # The incrementally maintained index must decode exactly the same
    # distances as one built from scratch on the final graph, up to the
    # frozen-c convention (compare probes, not internals).
    for u in graph.vertices():
        for v in graph.vertices():
            expected = graph.hop_distance(u, v)
            for k in range(0, 5):
                truth = (
                    False
                    if u == v
                    else (expected is None or expected > k)
                )
                assert index.is_tenuous(u, v, k) == truth


@settings(max_examples=30, deadline=None)
@given(data=graph_and_updates())
def test_entry_accounting_survives_updates(data):
    graph, seed, steps = data
    index = NLRNLIndex(graph)
    rng = random.Random(seed)
    for _ in range(steps):
        u = rng.randrange(graph.num_vertices)
        v = rng.randrange(graph.num_vertices)
        if u == v:
            continue
        if graph.has_edge(u, v):
            index.delete_edge(u, v)
        else:
            index.insert_edge(u, v)
    assert index.stats.entries == sum(len(m) for m in index._depth_of)
