"""Property-based tests for coverage identities and diversity bounds."""

from hypothesis import given, settings, strategies as st

from repro.core.coverage import CoverageContext
from repro.core.dktg import dktg_score, pair_diversity, result_diversity
from repro.core.graph import AttributedGraph

KEYWORDS = ["a", "b", "c", "d", "e"]


@st.composite
def keyworded_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    keywords = {
        v: draw(st.lists(st.sampled_from(KEYWORDS), unique=True, max_size=4))
        for v in range(n)
    }
    return AttributedGraph(n, [], keywords)


@settings(max_examples=100, deadline=None)
@given(graph=keyworded_graphs(), query=st.lists(st.sampled_from(KEYWORDS), unique=True, min_size=1, max_size=5))
def test_coverage_identities(graph, query):
    context = CoverageContext(graph, query)
    vertices = list(graph.vertices())
    # Group coverage equals the union-mask popcount ratio.
    assert context.group_coverage(vertices) == context.coverage_of_mask(
        context.union_mask(vertices)
    )
    for vertex in vertices:
        # QKC(v) == VKC(v) against an empty intermediate set.
        assert context.vertex_coverage(vertex) == context.valid_coverage(vertex, [])
        # VKC is never negative and never exceeds QKC.
        for other in vertices:
            assert 0 <= context.valid_coverage(vertex, [other]) <= context.vertex_coverage(vertex)
    # Monotonicity: adding members never reduces group coverage.
    running = 0.0
    for i in range(len(vertices)):
        coverage = context.group_coverage(vertices[: i + 1])
        assert coverage >= running
        running = coverage


groups_strategy = st.lists(
    st.lists(st.integers(0, 10), unique=True, min_size=1, max_size=4).map(tuple),
    min_size=0,
    max_size=5,
)


@settings(max_examples=150, deadline=None)
@given(a=st.lists(st.integers(0, 10), unique=True, min_size=1, max_size=5).map(tuple),
       b=st.lists(st.integers(0, 10), unique=True, min_size=1, max_size=5).map(tuple))
def test_pair_diversity_properties(a, b):
    value = pair_diversity(a, b)
    assert 0.0 <= value <= 1.0
    assert value == pair_diversity(b, a)
    assert pair_diversity(a, a) == 0.0
    if not set(a) & set(b):
        assert value == 1.0


@settings(max_examples=150, deadline=None)
@given(groups=groups_strategy)
def test_result_diversity_bounds(groups):
    value = result_diversity(groups)
    assert 0.0 <= value <= 1.0
    if len(groups) < 2:
        assert value == 1.0


@settings(max_examples=150, deadline=None)
@given(
    groups=groups_strategy,
    gamma=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_score_bounds(groups, gamma):
    coverages = [0.5] * len(groups)
    value = dktg_score(coverages, groups, gamma)
    assert 0.0 <= value <= 1.0
