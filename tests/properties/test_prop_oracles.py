"""Property-based tests: all distance oracles agree with BFS ground truth."""

from hypothesis import given, settings, strategies as st

from repro.core.graph import AttributedGraph
from repro.index.base import DistanceOracle
from repro.index.bfs import BFSOracle
from repro.index.nl import NLIndex
from repro.index.nlrnl import NLRNLIndex
from repro.index.pll import PLLIndex


class MinimalOracle(DistanceOracle):
    """Bare oracle exercising the base-class ``filter_candidates`` default."""

    name = "minimal"

    def is_tenuous(self, u, v, k):
        if u == v:
            return False
        distance = self.graph.hop_distance(u, v)
        return distance is None or distance > k

    def within_k(self, vertex, k):
        return {
            v
            for v in self.graph.vertices()
            if v != vertex and not self.is_tenuous(vertex, v, k)
        }


@st.composite
def bare_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=16))
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), unique=True, max_size=3 * n)
    )
    return AttributedGraph(n, edges)


def true_tenuous(graph, u, v, k):
    if u == v:
        return False
    distance = graph.hop_distance(u, v)
    return distance is None or distance > k


@settings(max_examples=60, deadline=None)
@given(graph=bare_graphs(), k=st.integers(0, 5), depth=st.integers(1, 4))
def test_nl_probes_match_bfs(graph, k, depth):
    index = NLIndex(graph, depth=depth)
    for u in graph.vertices():
        for v in graph.vertices():
            assert index.is_tenuous(u, v, k) == true_tenuous(graph, u, v, k)


@settings(max_examples=60, deadline=None)
@given(graph=bare_graphs(), k=st.integers(0, 5))
def test_nlrnl_probes_match_bfs(graph, k):
    index = NLRNLIndex(graph)
    for u in graph.vertices():
        for v in graph.vertices():
            assert index.is_tenuous(u, v, k) == true_tenuous(graph, u, v, k)


@settings(max_examples=40, deadline=None)
@given(graph=bare_graphs())
def test_nlrnl_distance_class_is_exact(graph):
    index = NLRNLIndex(graph)
    for u in graph.vertices():
        for v in graph.vertices():
            expected = graph.hop_distance(u, v)
            decoded = index.distance_class(u, v)
            assert decoded == (float("inf") if expected is None else expected)


@settings(max_examples=40, deadline=None)
@given(graph=bare_graphs(), k=st.integers(0, 4), member=st.integers(0, 15))
def test_filter_candidates_agree_across_oracles(graph, k, member):
    member %= graph.num_vertices
    candidates = list(graph.vertices())
    reference = BFSOracle(graph).filter_candidates(candidates, member, k)
    oracles = (
        NLIndex(graph, depth=1),
        NLRNLIndex(graph),
        PLLIndex(graph),
        MinimalOracle(graph),
    )
    for oracle in oracles:
        assert oracle.filter_candidates(candidates, member, k) == reference


@settings(max_examples=40, deadline=None)
@given(graph=bare_graphs(), k=st.integers(1, 4), vertex=st.integers(0, 15))
def test_within_k_agree_across_oracles(graph, k, vertex):
    vertex %= graph.num_vertices
    reference = BFSOracle(graph).within_k(vertex, k)
    assert NLIndex(graph, depth=2).within_k(vertex, k) == reference
    assert NLRNLIndex(graph).within_k(vertex, k) == reference
