"""Property tests: ``graph_layout="csr"`` is bit-identical to adjacency.

The CSR port's correctness contract, exercised over random graphs and
queries: for every ordering strategy, both distance engines and
``jobs in {1, 2, 4}``, the csr layout returns the same ranked groups
and the same ``SearchStats`` as the set-based adjacency layout.  The
oracle-level properties pin the underlying traversals (BFS levels,
balls, NL/PLL builds) to the same guarantee.

Process pools (the shared-memory attach path) are exercised by one
non-property smoke test at the bottom — spawning a pool per hypothesis
example would dominate runtime without adding coverage.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.graph import AttributedGraph
from repro.core.parallel import ParallelBranchAndBoundSolver
from repro.core.query import KTGQuery
from repro.core.strategies import QKCOrdering, VKCDegreeOrdering, VKCOrdering
from repro.index._traversal import bfs_levels, bfs_levels_csr
from repro.index.bfs import BFSOracle
from repro.index.nl import NLIndex
from repro.index.pll import PLLIndex
from repro.kernels.vec import numpy_available

KEYWORD_POOL = ["a", "b", "c", "d", "e", "f"]

# With numpy importable the interesting comparison is scalar vs forced
# vectorization; without it, "auto" must degrade to the same scalar
# kernels (the numpy-absent CI job runs exactly this branch).
KERNEL_BACKENDS = ["python", "numpy"] if numpy_available() else ["python", "auto"]

STRATEGIES = [
    ("qkc", lambda g: QKCOrdering()),
    ("vkc", lambda g: VKCOrdering()),
    ("vkc-deg", lambda g: VKCDegreeOrdering(g.degrees())),
]


@st.composite
def attributed_graphs(draw):
    """Random graphs of 4-14 vertices with random keyword sets."""
    n = draw(st.integers(min_value=4, max_value=14))
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), unique=True, max_size=2 * n)
    )
    keywords = {
        v: draw(st.lists(st.sampled_from(KEYWORD_POOL), unique=True, max_size=3))
        for v in range(n)
    }
    return AttributedGraph(n, edges, keywords)


@st.composite
def queries(draw):
    keywords = tuple(
        draw(
            st.lists(
                st.sampled_from(KEYWORD_POOL), unique=True, min_size=1, max_size=4
            )
        )
    )
    return KTGQuery(
        keywords=keywords,
        group_size=draw(st.integers(min_value=2, max_value=4)),
        tenuity=draw(st.integers(min_value=0, max_value=3)),
        top_n=draw(st.integers(min_value=1, max_value=4)),
    )


def ranked_groups(result):
    return [(group.members, round(group.coverage, 12)) for group in result.groups]


def comparable_stats(stats):
    """SearchStats minus wall-clock (the only layout-dependent field)."""
    return dataclasses.replace(stats, elapsed_seconds=0.0)


def solve(
    graph, query, strategy_factory, layout, distance_engine, jobs, kernel_backend="auto"
):
    if jobs == 0:  # plain serial solver, no parallel engine at all
        solver = BranchAndBoundSolver(
            graph,
            oracle=BFSOracle(graph, graph_layout=layout),
            strategy=strategy_factory(graph),
            distance_engine=distance_engine,
            graph_layout=layout,
            kernel_backend=kernel_backend,
        )
        return solver.solve(query)
    with ParallelBranchAndBoundSolver(
        graph,
        oracle=BFSOracle(graph, graph_layout=layout),
        strategy=strategy_factory(graph),
        jobs=jobs,
        executor="inline" if jobs == 1 else "thread",
        bound_broadcast=False,
        distance_engine=distance_engine,
        graph_layout=layout,
        kernel_backend=kernel_backend,
    ) as engine:
        return engine.solve(query)


# ----------------------------------------------------------------------
# Solver-level parity
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    graph=attributed_graphs(),
    query=queries(),
    strategy_index=st.integers(0, 2),
    distance_engine=st.sampled_from(["oracle", "bitset"]),
    jobs=st.sampled_from([0, 1, 2, 4]),
)
def test_csr_layout_bit_identical(graph, query, strategy_index, distance_engine, jobs):
    _, factory = STRATEGIES[strategy_index]
    adjacency = solve(graph, query, factory, "adjacency", distance_engine, jobs)
    csr = solve(graph, query, factory, "csr", distance_engine, jobs)
    assert ranked_groups(csr) == ranked_groups(adjacency)
    assert comparable_stats(csr.stats) == comparable_stats(adjacency.stats)


@settings(max_examples=30, deadline=None)
@given(
    graph=attributed_graphs(),
    query=queries(),
    strategy_index=st.integers(0, 2),
    layout=st.sampled_from(["adjacency", "csr"]),
    jobs=st.sampled_from([0, 2]),
)
def test_kernel_backend_bit_identical(graph, query, strategy_index, layout, jobs):
    """The vectorized kernels return the same ranked groups and the
    same ``SearchStats`` as the scalar ones, across strategy x layout x
    fleet size (and the auto fallback when numpy is absent)."""
    _, factory = STRATEGIES[strategy_index]
    base = solve(
        graph, query, factory, layout, "bitset", jobs, KERNEL_BACKENDS[0]
    )
    fast = solve(
        graph, query, factory, layout, "bitset", jobs, KERNEL_BACKENDS[1]
    )
    assert ranked_groups(fast) == ranked_groups(base)
    assert comparable_stats(fast.stats) == comparable_stats(base.stats)


# ----------------------------------------------------------------------
# Traversal / oracle-level parity
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(graph=attributed_graphs(), source=st.integers(0, 13))
def test_bfs_levels_csr_matches_set_kernel(graph, source):
    source %= graph.num_vertices
    snapshot = graph.csr_snapshot()
    set_levels = bfs_levels(graph.adjacency_view(), source)
    csr_levels = bfs_levels_csr(snapshot.indptr, snapshot.indices, source)
    assert [sorted(level) for level in csr_levels] == [
        sorted(level) for level in set_levels
    ]


@settings(max_examples=30, deadline=None)
@given(graph=attributed_graphs(), k=st.integers(1, 4))
def test_bfs_oracle_balls_layout_invariant(graph, k):
    adjacency = BFSOracle(graph)
    csr = BFSOracle(graph, graph_layout="csr")
    for vertex in graph.vertices():
        assert csr.within_k(vertex, k) == adjacency.within_k(vertex, k)


@settings(max_examples=20, deadline=None)
@given(graph=attributed_graphs())
def test_nl_and_pll_builds_layout_invariant(graph):
    nl_a, nl_c = NLIndex(graph), NLIndex(graph, graph_layout="csr")
    assert nl_c.depth == nl_a.depth
    assert nl_c.stats.entries == nl_a.stats.entries
    pll_a, pll_c = PLLIndex(graph), PLLIndex(graph, graph_layout="csr")
    assert pll_c.stats.entries == pll_a.stats.entries
    for v in graph.vertices():
        assert nl_c.level_sets(v) == nl_a.level_sets(v)
        assert pll_c.label_of(v) == pll_a.label_of(v)
        for u in graph.vertices():
            assert pll_c.query_distance(u, v) == pll_a.query_distance(u, v)


# ----------------------------------------------------------------------
# Shared-memory process fan-out (one real pool; too slow per-example)
# ----------------------------------------------------------------------
def test_process_pool_shared_memory_matches_serial_once():
    from tests.conftest import make_random_attributed_graph

    graph = make_random_attributed_graph(num_vertices=36, seed=5)
    query = KTGQuery(
        keywords=("kw000", "kw001", "kw002"), group_size=3, tenuity=2, top_n=3
    )
    for _, factory in STRATEGIES:
        for distance_engine in ("oracle", "bitset"):
            # Reference: adjacency-layout thread fleet.  With broadcasts
            # off the aggregate stats are schedule-invariant, so they
            # must match the process fleet's bit for bit.
            reference = solve(graph, query, factory, "adjacency", distance_engine, 2)
            with ParallelBranchAndBoundSolver(
                graph,
                oracle=BFSOracle(graph, graph_layout="csr"),
                strategy=factory(graph),
                jobs=2,
                executor="process",
                bound_broadcast=False,
                distance_engine=distance_engine,
                graph_layout="csr",
            ) as engine:
                result = engine.solve(query)
                segment = engine._shared_snapshot
                assert segment is not None and segment.is_owner
            # close() released the engine-owned segment deterministically.
            assert engine._shared_snapshot is None
            assert ranked_groups(result) == ranked_groups(reference)
            assert comparable_stats(result.stats) == comparable_stats(reference.stats)
