"""Property-based tests: budgets, keyword index, and comparator laws."""

from hypothesis import given, settings, strategies as st

from repro.baselines.tagq import TAGQSolver
from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.coverage import CoverageContext
from repro.core.graph import AttributedGraph
from repro.core.keyword_index import KeywordIndex
from repro.core.query import KTGQuery

KEYWORDS = ["a", "b", "c", "d"]


@st.composite
def attributed_graphs(draw):
    n = draw(st.integers(min_value=3, max_value=14))
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), unique=True, max_size=2 * n)
    )
    keywords = {
        v: draw(st.lists(st.sampled_from(KEYWORDS), unique=True, max_size=3))
        for v in range(n)
    }
    return AttributedGraph(n, edges, keywords)


@st.composite
def queries(draw):
    labels = tuple(
        draw(st.lists(st.sampled_from(KEYWORDS), unique=True, min_size=1, max_size=4))
    )
    return KTGQuery(
        keywords=labels,
        group_size=draw(st.integers(1, 3)),
        tenuity=draw(st.integers(0, 3)),
        top_n=draw(st.integers(1, 3)),
    )


@settings(max_examples=50, deadline=None)
@given(graph=attributed_graphs(), query=queries(), budget=st.integers(1, 200))
def test_budgeted_solver_is_sound_anytime(graph, query, budget):
    """A node-budgeted run returns feasible groups and never beats the
    certified optimum."""
    exact = BranchAndBoundSolver(graph).solve(query)
    capped = BranchAndBoundSolver(graph, node_budget=budget).solve(query)
    assert capped.best_coverage <= exact.best_coverage + 1e-12
    context = CoverageContext(graph, query.keywords)
    for group in capped.groups:
        assert len(group.members) == query.group_size
        for member in group.members:
            assert context.masks[member]
        for i, u in enumerate(group.members):
            for v in group.members[i + 1 :]:
                distance = graph.hop_distance(u, v)
                assert distance is None or distance > query.tenuity


@settings(max_examples=80, deadline=None)
@given(
    graph=attributed_graphs(),
    labels=st.lists(st.sampled_from(KEYWORDS + ["zz"]), unique=True, min_size=1, max_size=5),
)
def test_keyword_index_contexts_are_identical(graph, labels):
    direct = CoverageContext(graph, labels)
    indexed = KeywordIndex(graph).context_for(labels)
    assert indexed.masks == direct.masks
    assert indexed.query_labels == direct.query_labels
    assert indexed.full_mask == direct.full_mask
    assert KeywordIndex(graph).qualified_count(labels) == len(
        direct.qualified_vertices()
    )


@settings(max_examples=30, deadline=None)
@given(graph=attributed_graphs(), query=queries())
def test_tagq_objective_monotone_in_tenuity_cap(graph, query):
    """Relaxing TAGQ's tenuity cap can only improve its objective."""
    strict = TAGQSolver(graph, max_tenuity=0.0).solve(query)
    relaxed = TAGQSolver(graph, max_tenuity=1.0).solve(query)
    assert relaxed.best_coverage >= strict.best_coverage - 1e-12
