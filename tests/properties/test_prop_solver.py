"""Property-based tests: every solver configuration is exact.

The central correctness property of the reproduction: on arbitrary small
attributed graphs and arbitrary queries, every branch-and-bound
configuration (3 orderings x 3 oracles x pruning toggles) returns the
same coverage profile as exhaustive enumeration, and every returned
group satisfies the KTG constraints.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.bruteforce import BruteForceSolver
from repro.core.coverage import CoverageContext
from repro.core.query import KTGQuery
from repro.core.strategies import QKCOrdering, VKCDegreeOrdering, VKCOrdering
from repro.index.bfs import BFSOracle
from repro.index.nl import NLIndex
from repro.index.nlrnl import NLRNLIndex

KEYWORD_POOL = ["a", "b", "c", "d", "e", "f"]


@st.composite
def attributed_graphs(draw):
    """Random graphs of 4-14 vertices with random keyword sets."""
    n = draw(st.integers(min_value=4, max_value=14))
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), unique=True, max_size=2 * n)
    ) if possible_edges else []
    keywords = {
        v: draw(st.lists(st.sampled_from(KEYWORD_POOL), unique=True, max_size=3))
        for v in range(n)
    }
    from repro.core.graph import AttributedGraph

    return AttributedGraph(n, edges, keywords)


@st.composite
def queries(draw):
    keywords = tuple(
        draw(
            st.lists(
                st.sampled_from(KEYWORD_POOL), unique=True, min_size=1, max_size=4
            )
        )
    )
    return KTGQuery(
        keywords=keywords,
        group_size=draw(st.integers(min_value=1, max_value=4)),
        tenuity=draw(st.integers(min_value=0, max_value=3)),
        top_n=draw(st.integers(min_value=1, max_value=4)),
    )


def coverage_profile(result):
    return [round(group.coverage, 9) for group in result.groups]


@settings(max_examples=60, deadline=None)
@given(graph=attributed_graphs(), query=queries(), config=st.integers(0, 8))
def test_solver_matches_brute_force(graph, query, config):
    """Any (strategy, oracle) combination == exhaustive enumeration."""
    strategy_factories = [
        lambda g: QKCOrdering(),
        lambda g: VKCOrdering(),
        lambda g: VKCDegreeOrdering(g.degrees()),
    ]
    oracle_factories = [BFSOracle, NLIndex, NLRNLIndex]
    strategy = strategy_factories[config % 3](graph)
    oracle = oracle_factories[config // 3](graph)

    expected = BruteForceSolver(graph).solve(query)
    actual = BranchAndBoundSolver(graph, oracle=oracle, strategy=strategy).solve(query)
    assert coverage_profile(actual) == coverage_profile(expected)


@settings(max_examples=40, deadline=None)
@given(
    graph=attributed_graphs(),
    query=queries(),
    keyword_pruning=st.booleans(),
    kline_filtering=st.booleans(),
    use_union_bound=st.booleans(),
)
def test_pruning_toggles_preserve_exactness(
    graph, query, keyword_pruning, kline_filtering, use_union_bound
):
    expected = BruteForceSolver(graph).solve(query)
    actual = BranchAndBoundSolver(
        graph,
        keyword_pruning=keyword_pruning,
        kline_filtering=kline_filtering,
        use_union_bound=use_union_bound,
    ).solve(query)
    assert coverage_profile(actual) == coverage_profile(expected)


@settings(max_examples=60, deadline=None)
@given(graph=attributed_graphs(), query=queries())
def test_results_satisfy_ktg_invariants(graph, query):
    """Definition 7's three conditions hold for every returned group."""
    result = BranchAndBoundSolver(graph).solve(query)
    context = CoverageContext(graph, query.keywords)
    for group in result.groups:
        assert len(group.members) == query.group_size
        assert len(set(group.members)) == query.group_size
        for member in group.members:
            assert context.masks[member] != 0
        for i, u in enumerate(group.members):
            for v in group.members[i + 1 :]:
                distance = graph.hop_distance(u, v)
                assert distance is None or distance > query.tenuity
        assert group.coverage == context.group_coverage(group.members)


@settings(max_examples=40, deadline=None)
@given(graph=attributed_graphs(), query=queries(), seed=st.integers(0, 1000))
def test_anchored_queries_respect_exclusions(graph, query, seed):
    rng = random.Random(seed)
    anchors = tuple(
        rng.sample(range(graph.num_vertices), min(2, graph.num_vertices))
    )
    anchored = query.with_(excluded_anchors=anchors)
    result = BranchAndBoundSolver(graph).solve(anchored)
    oracle = BFSOracle(graph)
    for group in result.groups:
        for member in group.members:
            assert member not in anchors
            for anchor in anchors:
                assert oracle.is_tenuous(member, anchor, query.tenuity)
