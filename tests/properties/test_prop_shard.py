"""Property tests: ``solve(shards=N)`` is bit-identical to unsharded.

The sharded executor's determinism contract, exercised over random
graphs and queries:

* ranked groups (members AND coverages, in order) are identical to the
  serial :class:`BranchAndBoundSolver` for ``shards in {1, 2, 4}``,
  every ordering strategy, both distance engines and both kernel
  backends;
* with bound broadcasting off, the aggregate :class:`SearchStats`
  profile equals the jobs=1 inline :class:`ParallelBranchAndBoundSolver`
  reference exactly — the scatter-gather merge replays the same
  subproblem schedule, so every prune counter lands on the same value;
* the boundary-replication closure invariant holds on every shard set:
  for each home vertex and every ``k <= radius``, the shard-local BFS
  ball (translated to global ids) equals the global BFS ball — the
  fact that makes shard-local tenuity probes exact;
* queries whose tenuity exceeds the initial replication radius are
  answered transparently (the executor rebuilds at a larger radius).

The process executor is exercised by one non-property smoke test at the
bottom — spawning two pools per hypothesis example would dominate
runtime without adding coverage (worker code paths are identical).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.graph import AttributedGraph
from repro.core.parallel import ParallelBranchAndBoundSolver
from repro.core.query import KTGQuery
from repro.core.strategies import QKCOrdering, VKCDegreeOrdering, VKCOrdering
from repro.index.bfs import BFSOracle
from repro.shard import ShardedBranchAndBoundSolver, build_shard_set

KEYWORD_POOL = ["a", "b", "c", "d", "e", "f"]

STRATEGIES = [
    ("qkc", lambda g: QKCOrdering()),
    ("vkc", lambda g: VKCOrdering()),
    ("vkc-deg", lambda g: VKCDegreeOrdering(g.degrees())),
]

ENGINES = [
    ("oracle", "auto"),
    ("bitset", "auto"),
    ("bitset", "python"),
]


@st.composite
def attributed_graphs(draw):
    """Random graphs of 4-14 vertices with random keyword sets."""
    n = draw(st.integers(min_value=4, max_value=14))
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), unique=True, max_size=2 * n)
    )
    keywords = {
        v: draw(st.lists(st.sampled_from(KEYWORD_POOL), unique=True, max_size=3))
        for v in range(n)
    }
    return AttributedGraph(n, edges, keywords)


@st.composite
def queries(draw):
    keywords = tuple(
        draw(
            st.lists(
                st.sampled_from(KEYWORD_POOL), unique=True, min_size=1, max_size=4
            )
        )
    )
    return KTGQuery(
        keywords=keywords,
        group_size=draw(st.integers(min_value=2, max_value=4)),
        tenuity=draw(st.integers(min_value=0, max_value=3)),
        top_n=draw(st.integers(min_value=1, max_value=4)),
    )


def ranked_groups(result):
    return [(group.members, round(group.coverage, 12)) for group in result.groups]


def stats_profile(stats):
    """Every schedule-invariant SearchStats field (broadcast off)."""
    return (
        stats.nodes_expanded,
        stats.nodes_interior,
        stats.nodes_completed,
        stats.nodes_exhausted,
        stats.node_prunes,
        stats.leaf_prunes,
        stats.union_prunes,
        stats.keyword_prunes,
        stats.kline_removed,
        stats.offers_accepted,
        stats.feasible_groups,
        stats.first_feasible_node,
        stats.budget_exhausted,
    )


def reference_solve(graph, query, strategy_factory):
    """The stats reference: jobs=1 inline fan-out with a constant floor."""
    with ParallelBranchAndBoundSolver(
        graph,
        oracle=BFSOracle(graph),
        strategy=strategy_factory(graph),
        jobs=1,
        executor="inline",
        bound_broadcast=False,
    ) as engine:
        return engine.solve(query)


def sharded_solve(graph, query, strategy_factory, shards, **options):
    options.setdefault("executor", "inline")
    options.setdefault("bound_broadcast", False)
    with ShardedBranchAndBoundSolver(
        graph,
        oracle=BFSOracle(graph),
        strategy=strategy_factory(graph),
        num_shards=shards,
        **options,
    ) as engine:
        return engine.solve(query)


@settings(max_examples=40, deadline=None)
@given(
    graph=attributed_graphs(),
    query=queries(),
    strategy_index=st.integers(0, 2),
    shards=st.sampled_from([1, 2, 4]),
    engine_index=st.integers(0, 2),
)
def test_sharded_groups_and_stats_identical_to_unsharded(
    graph, query, strategy_index, shards, engine_index
):
    _, factory = STRATEGIES[strategy_index]
    distance_engine, kernel_backend = ENGINES[engine_index]
    serial = BranchAndBoundSolver(
        graph, oracle=BFSOracle(graph), strategy=factory(graph)
    ).solve(query)
    reference = reference_solve(graph, query, factory)
    sharded = sharded_solve(
        graph,
        query,
        factory,
        shards,
        distance_engine=distance_engine,
        kernel_backend=kernel_backend,
    )
    assert ranked_groups(sharded) == ranked_groups(serial)
    assert stats_profile(sharded.stats) == stats_profile(reference.stats)


@settings(max_examples=25, deadline=None)
@given(
    graph=attributed_graphs(),
    query=queries(),
    strategy_index=st.integers(0, 2),
)
def test_groups_and_stats_shard_count_invariant(graph, query, strategy_index):
    """The full profile is identical for shards in {1, 2, 4}."""
    _, factory = STRATEGIES[strategy_index]
    outcomes = [
        (
            ranked_groups(result),
            stats_profile(result.stats),
        )
        for result in (
            sharded_solve(graph, query, factory, shards) for shards in (1, 2, 4)
        )
    ]
    assert outcomes[0] == outcomes[1] == outcomes[2]


@settings(max_examples=25, deadline=None)
@given(
    graph=attributed_graphs(),
    num_shards=st.sampled_from([2, 3, 4]),
    radius=st.integers(min_value=1, max_value=3),
)
def test_boundary_replication_ball_closure(graph, num_shards, radius):
    """Shard-local balls of home vertices equal global balls up to radius.

    This is the invariant the router's correctness rests on: every
    vertex within ``radius`` hops of a home vertex is replicated into
    its shard *with all the edges of every shorter path*, so a
    shard-local BFS cannot miss or shortcut anything.
    """
    global_oracle = BFSOracle(graph)
    with build_shard_set(graph, num_shards, radius=radius) as shard_set:
        assert shard_set.radius == radius
        seen_homes: set[int] = set()
        for shard in shard_set.shards:
            assert not seen_homes.intersection(shard.home)
            seen_homes.update(shard.home)
            local_of = {vertex: i for i, vertex in enumerate(shard.global_ids)}
            local_oracle = BFSOracle(shard.graph)
            for vertex in shard.home:
                for k in range(1, radius + 1):
                    local_ball = {
                        shard.global_ids[w]
                        for w in local_oracle.within_k(local_of[vertex], k)
                    }
                    assert local_ball == global_oracle.within_k(vertex, k)
        # The homes partition the vertex set exactly.
        assert seen_homes == set(range(graph.num_vertices))


@settings(max_examples=10, deadline=None)
@given(graph=attributed_graphs(), query=queries())
def test_radius_upgrade_transparent(graph, query):
    """A k > radius query triggers a rebuild, never a wrong answer."""
    serial = BranchAndBoundSolver(graph, oracle=BFSOracle(graph)).solve(query)
    with ShardedBranchAndBoundSolver(
        graph,
        oracle=BFSOracle(graph),
        num_shards=2,
        radius=1,
        executor="inline",
        bound_broadcast=False,
    ) as engine:
        result = engine.solve(query)
        if query.tenuity > 1 and engine.shard_set is not None:
            assert engine.shard_set.radius >= query.tenuity
    assert ranked_groups(result) == ranked_groups(serial)


def test_process_executor_matches_serial_once():
    """One real per-shard process-fleet run (pool spawn is slow)."""
    from tests.conftest import make_random_attributed_graph

    graph = make_random_attributed_graph(num_vertices=36, seed=5)
    query = KTGQuery(
        keywords=("kw000", "kw001", "kw002"), group_size=3, tenuity=2, top_n=3
    )
    for _, factory in STRATEGIES:
        serial = BranchAndBoundSolver(
            graph, oracle=BFSOracle(graph), strategy=factory(graph)
        ).solve(query)
        with ShardedBranchAndBoundSolver(
            graph,
            oracle=BFSOracle(graph),
            strategy=factory(graph),
            num_shards=2,
            executor="process",
        ) as engine:
            result = engine.solve(query)
            # Pool reuse: a second solve goes through the same fleet.
            repeat = engine.solve(query)
        assert ranked_groups(result) == ranked_groups(serial)
        assert ranked_groups(repeat) == ranked_groups(serial)
        assert result.stats.offers_accepted == serial.stats.offers_accepted
