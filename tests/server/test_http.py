"""Unit tests for the hand-rolled HTTP/1.1 framing layer."""

import json

import asyncio
import pytest

from repro.server.http import (
    HttpError,
    HttpRequest,
    json_body,
    json_response,
    read_request,
    render_response,
)


def parse(raw: bytes, **limits):
    """Feed *raw* to a fresh StreamReader and read one request."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **limits)

    return asyncio.run(run())


class TestReadRequest:
    def test_get_with_query_string(self):
        request = parse(b"GET /stats?fmt=json&x=1 HTTP/1.1\r\nHost: h\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/stats"
        assert request.query == {"fmt": "json", "x": "1"}
        assert request.body == b""
        assert request.keep_alive  # HTTP/1.1 default

    def test_post_with_content_length_body(self):
        body = b'{"keywords": ["a"]}'
        request = parse(
            b"POST /solve HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert request.method == "POST"
        assert request.body == body
        assert request.header("content-type") == "application/json"
        assert request.header("Content-Type") == "application/json"  # case-fold

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_header_block_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET /healthz HTTP/1.1\r\nHost")
        assert excinfo.value.status == 400

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET/healthz\r\n\r\n")
        assert excinfo.value.status == 400

    def test_unsupported_version_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTTP/2.0\r\n\r\n")
        assert excinfo.value.status == 400

    def test_malformed_header_line_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert excinfo.value.status == 400

    def test_transfer_encoding_rejected_411(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert excinfo.value.status == 411

    def test_oversized_header_block_is_431(self):
        padding = b"X-Pad: " + b"a" * 200 + b"\r\n"
        with pytest.raises(HttpError) as excinfo:
            parse(
                b"GET / HTTP/1.1\r\n" + padding + b"\r\n",
                max_header_bytes=64,
            )
        assert excinfo.value.status == 431

    def test_oversized_body_is_413_before_reading(self):
        with pytest.raises(HttpError) as excinfo:
            parse(
                b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n",
                max_body_bytes=100,
            )
        assert excinfo.value.status == 413

    def test_non_integer_content_length_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")
        assert excinfo.value.status == 400

    def test_negative_content_length_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
        assert excinfo.value.status == 400

    def test_truncated_body_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        assert excinfo.value.status == 400

    def test_connection_close_disables_keep_alive(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_http_10_defaults_to_close(self):
        request = parse(b"GET / HTTP/1.0\r\n\r\n")
        assert not request.keep_alive

    def test_http_10_keep_alive_honoured(self):
        request = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        assert request.keep_alive

    def test_two_pipelined_requests_parse_in_order(self):
        raw = (
            b"GET /healthz HTTP/1.1\r\n\r\n"
            b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n"
        )

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            first = await read_request(reader)
            second = await read_request(reader)
            third = await read_request(reader)
            return first, second, third

        first, second, third = asyncio.run(run())
        assert first.path == "/healthz" and first.keep_alive
        assert second.path == "/stats" and not second.keep_alive
        assert third is None


class TestResponses:
    def test_render_response_wire_format(self):
        raw = render_response(200, b"hi", keep_alive=False, content_type="text/plain")
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "Content-Length: 2" in lines
        assert "Connection: close" in lines
        assert body == b"hi"

    def test_json_response_round_trips(self):
        raw = json_response(429, {"error": "rate limited"},
                            extra_headers={"Retry-After": "0.5"})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 429 Too Many Requests")
        assert b"Retry-After: 0.5" in head
        assert json.loads(body) == {"error": "rate limited"}

    def test_unknown_status_gets_placeholder_reason(self):
        assert render_response(299, b"").startswith(b"HTTP/1.1 299 Unknown")


class TestJsonBody:
    def _request(self, body: bytes) -> HttpRequest:
        return HttpRequest(method="POST", path="/solve", body=body)

    def test_decodes_object(self):
        assert json_body(self._request(b'{"a": 1}')) == {"a": 1}

    def test_empty_body_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            json_body(self._request(b""))
        assert excinfo.value.status == 400

    def test_invalid_json_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            json_body(self._request(b"{nope"))
        assert excinfo.value.status == 400

    def test_non_object_json_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            json_body(self._request(b"[1, 2]"))
        assert excinfo.value.status == 400
