"""Tests for the asyncio HTTP serving front end (:mod:`repro.server`)."""
