"""Unit tests for in-flight identical-query coalescing."""

import asyncio
import pytest

from repro.server.coalesce import InflightCoalescer


def run(coro):
    return asyncio.run(coro)


class TestJoin:
    def test_first_arrival_leads_later_arrivals_follow(self):
        async def scenario():
            coalescer = InflightCoalescer()
            leader_future, is_leader = coalescer.join("k")
            follower_future, follows = coalescer.join("k")
            assert is_leader and not follows
            assert follower_future is leader_future
            assert coalescer.inflight() == 1
            assert (coalescer.leaders, coalescer.followers) == (1, 1)
            coalescer.resolve("k", leader_future, result="answer")
            assert await follower_future == "answer"
            assert coalescer.inflight() == 0

        run(scenario())

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            coalescer = InflightCoalescer()
            future_a, lead_a = coalescer.join("a")
            future_b, lead_b = coalescer.join("b")
            assert lead_a and lead_b and future_a is not future_b
            assert coalescer.inflight() == 2
            coalescer.resolve("a", future_a, result=1)
            coalescer.resolve("b", future_b, result=2)

        run(scenario())

    def test_next_arrival_after_resolve_is_a_fresh_leader(self):
        async def scenario():
            coalescer = InflightCoalescer()
            first, _ = coalescer.join("k")
            coalescer.resolve("k", first, result=1)
            second, is_leader = coalescer.join("k")
            assert is_leader and second is not first
            coalescer.resolve("k", second, result=2)

        run(scenario())


class TestResolve:
    def test_error_fans_out_to_followers_and_clears_entry(self):
        async def scenario():
            coalescer = InflightCoalescer()
            future, _ = coalescer.join("k")
            coalescer.join("k")  # follower
            coalescer.resolve("k", future, error=RuntimeError("boom"))
            with pytest.raises(RuntimeError, match="boom"):
                await future
            # The failed entry is retired: the next arrival retries fresh.
            _, is_leader = coalescer.join("k")
            assert is_leader

        run(scenario())

    def test_resolving_a_cancelled_future_is_a_no_op(self):
        async def scenario():
            coalescer = InflightCoalescer()
            future, _ = coalescer.join("k")
            future.cancel()
            coalescer.resolve("k", future, result="late")  # must not raise
            assert coalescer.inflight() == 0

        run(scenario())

    def test_many_followers_all_receive_the_result(self):
        async def scenario():
            coalescer = InflightCoalescer()
            leader_future, _ = coalescer.join("k")
            followers = [coalescer.join("k")[0] for _ in range(8)]
            waiters = [asyncio.ensure_future(f) for f in [leader_future, *followers]]
            coalescer.resolve("k", leader_future, result=42)
            assert await asyncio.gather(*waiters) == [42] * 9
            assert coalescer.followers == 8

        run(scenario())
