"""End-to-end tests for :class:`KTGServer` over real sockets.

Each test boots a real server (background event loop thread, ephemeral
port) over a small seeded graph and drives it with the blocking HTTP
client — the same path the CI smoke job exercises, but with surgical
control over rate limits, deadlines, pressure and solver speed.
"""

import threading
import time
from contextlib import contextmanager

import pytest

from repro.core.query import KTGQuery
from repro.obs.instruments import InstrumentRegistry
from repro.server import KTGServer, ServerThread, http_request
from repro.service import QueryService
from tests.conftest import make_random_attributed_graph


@pytest.fixture(scope="module")
def graph():
    return make_random_attributed_graph(num_vertices=40, seed=11)


@pytest.fixture(scope="module")
def labels(graph):
    return tuple(sorted(graph.keyword_table))


def query_payload(labels, tenuity=2, group_size=2, top_n=2, **extra):
    payload = {
        "keywords": list(labels),
        "group_size": group_size,
        "tenuity": tenuity,
        "top_n": top_n,
    }
    payload.update(extra)
    return payload


@contextmanager
def running_server(graph, *, service_kwargs=None, **server_kwargs):
    registry = InstrumentRegistry()
    service = QueryService(
        graph,
        "KTG-VKC-NLRNL",
        max_workers=4,
        instruments=registry,
        **(service_kwargs or {}),
    )
    server = KTGServer(service, instruments=registry, **server_kwargs)
    with service, ServerThread(server) as handle:
        yield server, service, handle.address, registry


def slow_down(service, delay_s):
    """Make every solver-pool ``service.submit`` sleep first (instance patch)."""
    original = QueryService.submit

    def slow_submit(query, **kwargs):
        time.sleep(delay_s)
        return original(service, query, **kwargs)

    service.submit = slow_submit


class TestRouting:
    def test_healthz(self, graph):
        with running_server(graph) as (_, _, (host, port), _):
            status, body = http_request(host, port, "GET", "/healthz")
            assert status == 200 and body == {"status": "ok"}

    def test_unknown_route_is_404(self, graph):
        with running_server(graph) as (_, _, (host, port), registry):
            status, body = http_request(host, port, "GET", "/nope")
            assert status == 404 and "error" in body
            assert registry.counter("server.not_found").value == 1

    def test_wrong_method_is_405(self, graph):
        with running_server(graph) as (_, _, (host, port), _):
            assert http_request(host, port, "POST", "/healthz", {})[0] == 405
            assert http_request(host, port, "GET", "/solve")[0] == 405

    def test_malformed_payloads_are_400(self, graph, labels):
        with running_server(graph) as (_, _, (host, port), registry):
            cases = [
                None,  # no body at all
                {},  # keywords missing
                {"keywords": "not-a-list"},
                {"keywords": [1, 2]},
                query_payload(labels, group_size="two"),
                query_payload(labels, deadline_ms="soon"),
                query_payload(labels, time_budget="fast"),
                query_payload(labels, gamma="wide"),
            ]
            for payload in cases:
                status, body = http_request(host, port, "POST", "/solve", payload)
                assert status == 400, f"payload={payload!r} body={body}"
            assert registry.counter("server.http_errors").value == len(cases)

    def test_invalid_query_semantics_are_400(self, graph, labels):
        # Structurally fine JSON, rejected by query validation.
        with running_server(graph) as (_, _, (host, port), _):
            status, body = http_request(
                host, port, "POST", "/solve",
                query_payload(labels, group_size=0),
            )
            assert status == 400 and "error" in body


class TestSolve:
    def test_solve_matches_direct_service_answer(self, graph, labels):
        query = KTGQuery(
            keywords=labels[:4], group_size=2, tenuity=2, top_n=2
        )
        truth = QueryService(graph, "KTG-VKC-NLRNL").submit(query)
        with running_server(graph) as (_, _, (host, port), _):
            status, body = http_request(
                host, port, "POST", "/solve", query_payload(labels[:4])
            )
            assert status == 200
            assert body["exact"] and not body["degraded"]
            assert not body["from_cache"] and not body["coalesced"]
            assert body["algorithm"] == "KTG-VKC-NLRNL"
            assert [tuple(g["members"]) for g in body["groups"]] == list(
                truth.member_sets()
            )

    def test_repeat_solve_hits_cache(self, graph, labels):
        with running_server(graph) as (_, _, (host, port), registry):
            first = http_request(
                host, port, "POST", "/solve", query_payload(labels[:3])
            )
            second = http_request(
                host, port, "POST", "/solve", query_payload(labels[:3])
            )
            assert not first[1]["from_cache"]
            assert second[1]["from_cache"]
            assert second[1]["groups"] == first[1]["groups"]
            # Cache hits never count as solver runs.
            assert registry.counter("server.solver_runs").value == 1

    def test_batch_endpoint_serves_all_queries(self, graph, labels):
        with running_server(graph) as (_, _, (host, port), _):
            payload = {
                "queries": [
                    query_payload(labels[:3], tenuity=1),
                    query_payload(labels[:3], tenuity=2),
                    query_payload(labels[:3], tenuity=1),  # duplicate of [0]
                ]
            }
            status, body = http_request(host, port, "POST", "/batch", payload)
            assert status == 200 and body["count"] == 3
            assert all(entry["status"] == 200 for entry in body["results"])
            assert body["results"][0]["groups"] == body["results"][2]["groups"]

    def test_batch_rejects_malformed_entries(self, graph):
        with running_server(graph) as (_, _, (host, port), _):
            assert http_request(host, port, "POST", "/batch", {})[0] == 400
            assert (
                http_request(host, port, "POST", "/batch", {"queries": []})[0]
                == 400
            )
            assert (
                http_request(
                    host, port, "POST", "/batch", {"queries": ["nope"]}
                )[0]
                == 400
            )


class TestCoalescing:
    def test_concurrent_identical_requests_share_one_solve(self, graph, labels):
        # The ISSUE's acceptance check: N identical concurrent requests
        # against a cold key must execute the solver exactly once —
        # asserted through the obs counter, which only counts
        # non-cache-hit leader solves, so the invariant holds whether a
        # given request coalesced in flight or arrived late and hit the
        # result cache.
        n_clients = 6
        with running_server(graph) as (_, _, (host, port), registry):
            payload = query_payload(labels[:4], tenuity=1)
            barrier = threading.Barrier(n_clients)
            outcomes = []
            lock = threading.Lock()

            def fire(client):
                barrier.wait()
                status, body = http_request(
                    host, port, "POST", "/solve", payload,
                    headers={"X-Client-Id": f"client-{client}"},
                )
                with lock:
                    outcomes.append((status, body))

            threads = [
                threading.Thread(target=fire, args=(i,))
                for i in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert len(outcomes) == n_clients
            assert all(status == 200 for status, _ in outcomes)
            groups = [body["groups"] for _, body in outcomes]
            assert all(g == groups[0] for g in groups)
            assert registry.counter("server.solver_runs").value == 1
            # Accounting: every request either led, followed, or hit the
            # result cache after the leader finished.
            followers = registry.counter("server.coalesced_followers").value
            cache_hits = registry.counter("service.cache_hits").value
            assert followers + cache_hits == n_clients - 1
            assert not any(body["degraded"] for _, body in outcomes)

    def test_coalesced_followers_flagged_in_response(self, graph, labels):
        with running_server(graph) as (server, service, (host, port), registry):
            slow_down(service, 0.3)
            payload = query_payload(labels[:4], tenuity=2)
            results = []
            lock = threading.Lock()

            def fire(client):
                result = http_request(
                    host, port, "POST", "/solve", payload,
                    headers={"X-Client-Id": client},
                )
                with lock:
                    results.append(result)

            leader = threading.Thread(target=fire, args=("lead",))
            leader.start()
            time.sleep(0.1)  # let the leader enter the solve
            fire("follow")
            leader.join()
            assert all(status == 200 for status, _ in results)
            flags = sorted(body["coalesced"] for _, body in results)
            assert flags == [False, True]
            assert registry.counter("server.coalesced_followers").value == 1


class TestAdmissionControl:
    def test_rate_limit_rejects_post_burst_with_429(self, graph, labels):
        with running_server(
            graph, rate_limit_qps=0.5, rate_limit_burst=2.0
        ) as (server, _, (host, port), registry):
            headers = {"X-Client-Id": "greedy"}
            outcomes = [
                http_request(
                    host, port, "POST", "/solve",
                    query_payload(labels[:3]), headers=headers,
                )
                for _ in range(3)
            ]
            assert [status for status, _ in outcomes] == [200, 200, 429]
            rejected = outcomes[2][1]
            assert rejected["error"] == "rate limited"
            assert rejected["retry_after_ms"] > 0
            assert registry.counter("server.rate_limited").value == 1
            # A different client is untouched by the greedy one's drain.
            status, _ = http_request(
                host, port, "POST", "/solve",
                query_payload(labels[:3]), headers={"X-Client-Id": "other"},
            )
            assert status == 200
            assert server.limiter.rejected == 1

    def test_batch_is_priced_per_query(self, graph, labels):
        with running_server(
            graph, rate_limit_qps=0.5, rate_limit_burst=2.0
        ) as (_, _, (host, port), _):
            payload = {"queries": [query_payload(labels[:3])] * 3}
            status, body = http_request(
                host, port, "POST", "/batch", payload,
                headers={"X-Client-Id": "batcher"},
            )
            assert status == 429 and body["error"] == "rate limited"

    def test_expired_deadline_is_rejected_503(self, graph, labels):
        with running_server(graph) as (_, _, (host, port), registry):
            status, body = http_request(
                host, port, "POST", "/solve",
                query_payload(labels[:3], deadline_ms=0),
            )
            assert status == 503 and "deadline" in body["error"]
            assert registry.counter("server.deadline_rejected").value == 1
            # Solver never ran for the rejected request.
            assert registry.counter("server.solver_runs").value == 0

    def test_deadline_header_is_honoured(self, graph, labels):
        with running_server(graph) as (_, _, (host, port), _):
            status, body = http_request(
                host, port, "POST", "/solve", query_payload(labels[:3]),
                headers={"X-Deadline-Ms": "0"},
            )
            assert status == 503 and "deadline" in body["error"]

    def test_follower_deadline_expires_while_awaiting_leader(self, graph, labels):
        with running_server(graph) as (_, service, (host, port), registry):
            slow_down(service, 0.6)
            payload = query_payload(labels[:4], tenuity=2)
            leader_result = []

            def lead():
                leader_result.append(
                    http_request(
                        host, port, "POST", "/solve", payload,
                        headers={"X-Client-Id": "lead"},
                    )
                )

            leader = threading.Thread(target=lead)
            leader.start()
            time.sleep(0.15)  # leader is mid-solve
            status, body = http_request(
                host, port, "POST", "/solve",
                dict(payload, deadline_ms=100),
                headers={"X-Client-Id": "impatient"},
            )
            leader.join()
            assert status == 503
            assert body["coalesced"] and "deadline" in body["error"]
            # The leader's solve is unaffected by the follower timeout.
            assert leader_result[0][0] == 200
            assert registry.counter("server.deadline_rejected").value == 1

    def test_overload_rejects_beyond_max_inflight(self, graph, labels):
        with running_server(graph, max_inflight=1) as (
            _, service, (host, port), registry,
        ):
            slow_down(service, 0.6)
            slow_payload = query_payload(labels[:4], tenuity=2)
            leader_result = []

            def lead():
                leader_result.append(
                    http_request(host, port, "POST", "/solve", slow_payload)
                )

            leader = threading.Thread(target=lead)
            leader.start()
            time.sleep(0.15)
            # A *different* query (no coalescing) while the only slot is
            # taken must be shed with 503 + retry hint.
            status, body = http_request(
                host, port, "POST", "/solve",
                query_payload(labels[:4], tenuity=1),
            )
            leader.join()
            assert status == 503 and body["error"] == "server overloaded"
            assert body["retry_after_ms"] > 0
            assert registry.counter("server.overload_rejected").value == 1
            assert leader_result[0][0] == 200

    def test_pressure_band_clamps_budget_and_flags_response(self, graph, labels):
        with running_server(
            graph, pressure_threshold=1, pressure_time_budget=0.001
        ) as (_, service, (host, port), registry):
            slow_down(service, 0.6)
            leader_result = []

            def lead():
                leader_result.append(
                    http_request(
                        host, port, "POST", "/solve",
                        query_payload(labels[:4], tenuity=2),
                    )
                )

            leader = threading.Thread(target=lead)
            leader.start()
            time.sleep(0.15)
            status, body = http_request(
                host, port, "POST", "/solve",
                query_payload(labels[:4], tenuity=1),
            )
            leader.join()
            assert status == 200
            assert body.get("pressure") is True
            assert registry.counter("server.pressure_degraded").value == 1
            # Below the threshold no request is flagged.
            assert "pressure" not in leader_result[0][1]


class TestStatsEndpoint:
    def test_stats_exports_server_service_and_counters(self, graph, labels):
        with running_server(graph) as (_, _, (host, port), _):
            http_request(host, port, "POST", "/solve", query_payload(labels[:3]))
            status, body = http_request(host, port, "GET", "/stats")
            assert status == 200
            assert body["service"]["queries_served"] == 1
            server_section = body["server"]
            assert server_section["max_inflight"] == 64
            assert server_section["counters"]["server.solver_runs"] == 1
            assert server_section["counters"]["server.requests.solve"] == 1
            assert server_section["uptime_s"] >= 0
            assert "instruments" in body


class TestLifecycle:
    def test_shutdown_leaves_no_threads_behind(self, graph, labels):
        baseline = threading.active_count()
        with running_server(graph) as (_, _, (host, port), _):
            assert http_request(host, port, "GET", "/healthz")[0] == 200
            assert threading.active_count() > baseline
        deadline = time.monotonic() + 5.0
        while threading.active_count() > baseline and time.monotonic() < deadline:
            time.sleep(0.02)
        assert threading.active_count() <= baseline

    def test_constructor_validation(self, graph):
        service = QueryService(graph, "KTG-VKC-NLRNL")
        with pytest.raises(ValueError):
            KTGServer(service, max_inflight=0)
        with pytest.raises(ValueError):
            KTGServer(service, pressure_threshold=0)
        service.close()

    def test_null_registry_is_upgraded_to_live(self, graph):
        from repro.obs.instruments import NULL_REGISTRY

        service = QueryService(graph, "KTG-VKC-NLRNL")
        server = KTGServer(service, instruments=NULL_REGISTRY)
        assert server.instruments.enabled  # /stats must have real numbers
        service.close()
