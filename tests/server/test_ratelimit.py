"""Unit tests for the per-client token bucket (deterministic fake clock)."""

import pytest

from repro.server.ratelimit import RateLimiter, TokenBucket


class FakeClock:
    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_new_bucket_starts_full(self):
        bucket = TokenBucket(rate=1.0, burst=3.0, now=0.0)
        assert [bucket.try_acquire(0.0) for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_at_rate_up_to_burst(self):
        bucket = TokenBucket(rate=2.0, burst=2.0, now=0.0)
        assert bucket.try_acquire(0.0) and bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)  # drained
        assert bucket.try_acquire(0.5)  # 0.5s * 2/s = 1 token back
        assert not bucket.try_acquire(0.5)
        # A long idle period refills to burst, not beyond.
        assert bucket.try_acquire(100.0) and bucket.try_acquire(100.0)
        assert not bucket.try_acquire(100.0)

    def test_clock_going_backwards_does_not_refill(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, now=10.0)
        assert bucket.try_acquire(10.0)
        assert not bucket.try_acquire(5.0)


class TestRateLimiter:
    def test_disabled_limiter_admits_everything(self):
        limiter = RateLimiter(rate=0.0)
        assert not limiter.enabled
        assert all(limiter.allow("c") for _ in range(100))
        assert limiter.admitted == 100 and limiter.rejected == 0
        assert limiter.retry_after_seconds("c") == 0.0
        assert len(limiter) == 0  # no buckets kept when disabled

    def test_burst_then_reject_then_refill(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=2.0, clock=clock)
        assert limiter.allow("c") and limiter.allow("c")
        assert not limiter.allow("c")
        assert limiter.rejected == 1
        retry = limiter.retry_after_seconds("c")
        assert retry == pytest.approx(1.0)
        clock.advance(retry)
        assert limiter.allow("c")

    def test_clients_have_independent_buckets(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        assert limiter.allow("a")
        assert not limiter.allow("a")
        assert limiter.allow("b")  # b's bucket untouched by a's drain

    def test_default_burst_is_one_second_of_rate(self):
        assert RateLimiter(rate=5.0).burst == 5.0
        assert RateLimiter(rate=0.25).burst == 1.0  # floor of one request

    def test_multi_token_batch_pricing(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=3.0, clock=clock)
        assert not limiter.allow("c", tokens=4.0)  # batch bigger than burst
        assert limiter.allow("c", tokens=3.0)
        assert not limiter.allow("c", tokens=1.0)
        assert limiter.retry_after_seconds("c", tokens=2.0) == pytest.approx(2.0)

    def test_lru_eviction_bounds_client_count(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, max_clients=2, clock=clock)
        assert limiter.allow("a")
        assert limiter.allow("b")
        assert limiter.allow("c")  # evicts a (least recently seen)
        assert len(limiter) == 2
        # The evicted client returns with a fresh full bucket — the same
        # state an idle bucket would have refilled to anyway.
        assert limiter.allow("a")
        assert len(limiter) == 2

    def test_touching_a_client_refreshes_its_lru_slot(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=5.0, max_clients=2, clock=clock)
        limiter.allow("a")
        limiter.allow("b")
        limiter.allow("a")  # a becomes most-recent
        limiter.allow("c")  # evicts b, not a
        limiter.allow("a")
        assert len(limiter) == 2
        # a kept its drained bucket: 5-token burst spent 3 so far.
        assert limiter.allow("a") and limiter.allow("a")
        assert not limiter.allow("a")

    def test_max_clients_must_be_positive(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=1.0, max_clients=0)
