"""Integration-style tests for the Figure 8 case study."""

import pytest

from repro.analysis.case_study import render_case_study, run_case_study
from repro.datasets.figure1 import case_study_graph, case_study_query


@pytest.fixture(scope="module")
def outcome():
    return run_case_study(case_study_graph(), case_study_query())


class TestFigure8Findings:
    """The paper's three qualitative observations, reproduced."""

    def test_tagq_returns_zero_coverage_members(self, outcome):
        assert outcome.quality["TAGQ"].zero_coverage_members > 0

    def test_ktg_algorithms_never_do(self, outcome):
        assert outcome.quality["KTG-VKC-DEG"].zero_coverage_members == 0
        assert outcome.quality["DKTG-Greedy"].zero_coverage_members == 0

    def test_dktg_is_most_diverse(self, outcome):
        diversity = {name: q.diversity for name, q in outcome.quality.items()}
        assert diversity["DKTG-Greedy"] == 1.0
        assert diversity["DKTG-Greedy"] >= diversity["KTG-VKC-DEG"]
        assert diversity["DKTG-Greedy"] >= diversity["TAGQ"]

    def test_ktg_results_overlap(self, outcome):
        assert outcome.overlap["KTG-VKC-DEG"] > 0
        assert outcome.overlap["DKTG-Greedy"] == 0.0

    def test_all_algorithms_satisfy_social_constraint(self, outcome):
        graph = outcome.graph
        k = outcome.query.tenuity
        for groups in outcome.results.values():
            for group in groups:
                for i, u in enumerate(group.members):
                    for v in group.members[i + 1 :]:
                        distance = graph.hop_distance(u, v)
                        assert distance is None or distance > k

    def test_ktg_coverage_dominates_tagq(self, outcome):
        ktg_best = max(g.coverage for g in outcome.results["KTG-VKC-DEG"])
        tagq_best = max(g.coverage for g in outcome.results["TAGQ"])
        assert ktg_best > tagq_best

    def test_each_returns_requested_group_count(self, outcome):
        for groups in outcome.results.values():
            assert len(groups) == outcome.query.top_n


class TestRendering:
    def test_report_structure(self, outcome):
        text = render_case_study(outcome)
        assert "Query keywords:" in text
        assert "KTG-VKC-DEG" in text
        assert "DKTG-Greedy" in text
        assert "TAGQ" in text
        assert "<< no query keyword" in text
        assert "hops:" in text

    def test_report_flags_only_tagq_members(self, outcome):
        text = render_case_study(outcome)
        ktg_section = text.split("== TAGQ")[0]
        assert "<< no query keyword" not in ktg_section
