"""Unit tests for graph statistics and the synthetic-profile calibration."""

import pytest

from repro.analysis.graphstats import (
    compute_statistics,
    degree_histogram,
    hop_ball_profile,
)
from repro.core.graph import AttributedGraph
from repro.datasets.registry import load_dataset
from repro.datasets.synthetic import erdos_renyi_graph, powerlaw_cluster_graph


class TestDegreeHistogram:
    def test_path(self, path_graph):
        assert degree_histogram(path_graph) == {1: 2, 2: 3}

    def test_empty(self):
        assert degree_histogram(AttributedGraph(0)) == {}


class TestHopBallProfile:
    def test_path_profile_exact(self, path_graph):
        fractions, deepest = hop_ball_profile(path_graph, max_hops=4, sample_size=None)
        # Average |ball(k=1)| over the path 0-1-2-3-4 is (1+2+2+2+1)/5.
        assert fractions[0] == pytest.approx(8 / 25)
        assert deepest == 4

    def test_fractions_monotone(self, figure1):
        fractions, _ = hop_ball_profile(figure1, sample_size=None)
        assert all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:]))

    def test_fraction_bounded_by_one(self, figure1):
        fractions, _ = hop_ball_profile(figure1, sample_size=None)
        assert all(0.0 <= f <= 1.0 for f in fractions)

    def test_empty_graph(self):
        fractions, deepest = hop_ball_profile(AttributedGraph(0))
        assert deepest == 0
        assert all(f == 0.0 for f in fractions)


class TestComputeStatistics:
    def test_figure1_basics(self, figure1):
        stats = compute_statistics(figure1, sample_size=None)
        assert stats.num_vertices == 12
        assert stats.num_edges == 17
        assert stats.average_degree == pytest.approx(2 * 17 / 12)
        assert stats.max_degree == 6
        assert stats.num_components == 1
        assert stats.largest_component_fraction == 1.0
        assert stats.distinct_keywords == 9
        assert stats.keywords_per_vertex > 1.0

    def test_disconnected_components(self, disconnected_graph):
        stats = compute_statistics(disconnected_graph, sample_size=None)
        assert stats.num_components == 3
        assert stats.largest_component_fraction == pytest.approx(3 / 6)

    def test_clustering_of_triangle(self):
        graph = AttributedGraph(3, [(0, 1), (1, 2), (0, 2)])
        stats = compute_statistics(graph, sample_size=None)
        assert stats.clustering_coefficient == pytest.approx(1.0)

    def test_clustering_of_star_is_zero(self):
        graph = AttributedGraph(5, [(0, i) for i in range(1, 5)])
        stats = compute_statistics(graph, sample_size=None)
        assert stats.clustering_coefficient == 0.0

    def test_gini_zero_for_regular_graph(self):
        ring = AttributedGraph(6, [(i, (i + 1) % 6) for i in range(6)])
        stats = compute_statistics(ring, sample_size=None)
        assert stats.degree_gini == pytest.approx(0.0, abs=1e-9)

    def test_row_shape(self, figure1):
        row = compute_statistics(figure1).row()
        assert {"vertices", "edges", "avg_degree", "clustering", "diameter_est"} <= set(row)

    def test_empty_graph(self):
        stats = compute_statistics(AttributedGraph(0))
        assert stats.num_vertices == 0
        assert stats.average_degree == 0.0


class TestCalibrationClaims:
    """The structural claims DESIGN.md makes about the synthetic profiles."""

    def test_powerlaw_more_skewed_than_er(self):
        powerlaw = powerlaw_cluster_graph(400, 3, 0.4, rng=0)
        er = erdos_renyi_graph(400, 6 / 399, rng=0)
        assert (
            compute_statistics(powerlaw).degree_gini
            > compute_statistics(er).degree_gini
        )

    def test_profiles_have_heavy_tails_and_one_component(self):
        for name in ("gowalla", "brightkite"):
            graph, _ = load_dataset(name, scale=0.3)
            stats = compute_statistics(graph)
            assert stats.degree_gini > 0.2, name
            assert stats.num_components == 1, name

    def test_twitter_is_densest_profile(self):
        twitter, _ = load_dataset("twitter", scale=0.3)
        brightkite, _ = load_dataset("brightkite", scale=0.3)
        assert (
            compute_statistics(twitter).average_degree
            > compute_statistics(brightkite).average_degree
        )

    def test_k4_ball_leaves_candidates(self):
        # The k-ball calibration: at the Table I maximum (k=4) the ball
        # must not swallow the whole graph, or the KTG grid would be
        # infeasible at small scale.
        graph, _ = load_dataset("brightkite", scale=0.5)
        fractions, _ = hop_ball_profile(graph, max_hops=4)
        assert fractions[3] < 0.9
