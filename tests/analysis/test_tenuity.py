"""Unit tests for the tenuity-metric family."""

import pytest

from repro.analysis.tenuity import (
    group_tenuity,
    is_k_distance_group,
    kline_count,
    ktenuity,
    ktriangle_count,
    tenuity_report,
)
from repro.core.graph import AttributedGraph
from repro.index.bfs import BFSOracle


class TestKLineCount:
    def test_triangle_is_three_klines(self, figure1):
        # u6, u7, u8 are pairwise within 2 hops.
        assert kline_count(figure1, [6, 7, 8], 2) == 3

    def test_tenuous_group_has_zero(self, figure1):
        assert kline_count(figure1, [10, 1, 4], 1) == 0

    def test_accepts_oracle(self, figure1):
        assert kline_count(BFSOracle(figure1), [6, 7], 1) == 1

    def test_small_groups(self, figure1):
        assert kline_count(figure1, [3], 2) == 0
        assert kline_count(figure1, [], 2) == 0


class TestKTriangleCount:
    def test_figure1_triangle(self, figure1):
        assert ktriangle_count(figure1, [6, 7, 8], 2) == 1

    def test_open_wedge_is_not_triangle(self):
        graph = AttributedGraph(3, [(0, 1), (1, 2)])
        # At k=1, 0-1 and 1-2 are k-lines but 0-2 is not.
        assert ktriangle_count(graph, [0, 1, 2], 1) == 0
        assert ktriangle_count(graph, [0, 1, 2], 2) == 1

    def test_counts_all_triples(self):
        graph = AttributedGraph(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
        assert ktriangle_count(graph, [0, 1, 2, 3], 1) == 4


class TestKTenuity:
    def test_matches_paper_definition(self, figure1):
        # {u0, u1, u10} at k=1: one close pair of three.
        assert ktenuity(figure1, [0, 1, 10], 1) == pytest.approx(1 / 3)

    def test_zero_for_k_distance_group(self, figure1):
        assert ktenuity(figure1, [10, 1, 4], 1) == 0.0

    def test_positive_value_admits_close_pairs(self, figure1):
        # The paper's critique of [18]: k-tenuity > 0 means a close pair
        # exists — here even direct neighbours.
        value = ktenuity(figure1, [6, 7, 2], 1)
        assert value > 0
        assert figure1.has_edge(6, 7)


class TestGroupTenuity:
    def test_definition4(self, figure1):
        # Smallest pairwise distance in {u10, u1, u4}: min(3, 2, 2) = 2.
        assert group_tenuity(figure1, [10, 1, 4]) == 2.0

    def test_adjacent_pair_gives_one(self, figure1):
        assert group_tenuity(figure1, [6, 7, 10]) == 1.0

    def test_disconnected_pair_is_infinite(self, disconnected_graph):
        assert group_tenuity(disconnected_graph, [0, 5]) == float("inf")

    def test_trivial_groups_are_infinitely_tenuous(self, figure1):
        assert group_tenuity(figure1, [3]) == float("inf")
        assert group_tenuity(figure1, []) == float("inf")

    def test_property1_monotone_in_k(self, figure1):
        # A k1-distance group is a k2-distance group for k2 < k1.
        members = [10, 1, 4]
        assert is_k_distance_group(figure1, members, 1)
        tenuity = group_tenuity(figure1, members)
        for k in range(0, int(tenuity)):
            assert is_k_distance_group(figure1, members, k)


class TestIsKDistanceGroup:
    def test_paper_running_example(self, figure1):
        assert is_k_distance_group(figure1, [10, 1, 4], 1)
        assert not is_k_distance_group(figure1, [6, 7, 10], 1)

    def test_property2_subsets_inherit(self, figure1):
        members = [10, 1, 4]
        assert is_k_distance_group(figure1, members, 1)
        for drop in members:
            subset = [m for m in members if m != drop]
            assert is_k_distance_group(figure1, subset, 1)


class TestReport:
    def test_report_consistency(self, figure1):
        report = tenuity_report(figure1, [6, 7, 8], 2)
        assert report["k_lines"] == 3
        assert report["k_triangles"] == 1
        assert report["k_tenuity"] == 1.0
        assert report["group_tenuity"] == 1.0
        assert report["k_distance_group"] is False
        assert report["size"] == 3

    def test_report_for_tenuous_group(self, figure1):
        report = tenuity_report(figure1, [10, 1, 4], 1)
        assert report["k_lines"] == 0
        assert report["k_distance_group"] is True
