"""Unit tests for table rendering and CSV output."""

from repro.analysis.tables import render_series, render_table, rows_to_csv, write_csv


class TestRenderTable:
    def test_basic(self):
        text = render_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "a"
        assert "22" in lines[3]

    def test_column_order_respected(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b", "a"])
        assert text.splitlines()[0].startswith("b")

    def test_missing_cells_dashed(self):
        text = render_table([{"a": 1}, {"b": 2}])
        assert "-" in text.splitlines()[2]

    def test_float_formatting(self):
        text = render_table([{"v": 1234.5678}, {"v": 12.3456}, {"v": 0.1234}, {"v": 0.0}])
        assert "1,235" in text
        assert "12.35" in text
        assert "0.1234" in text

    def test_title_prepended(self):
        text = render_table([{"a": 1}], title="My table")
        assert text.startswith("My table")

    def test_empty(self):
        assert render_table([]) == "(empty table)"


class TestRenderSeries:
    def test_figure_shape(self):
        series = {
            "ALG-A": [(1, 10.0), (2, 20.0)],
            "ALG-B": [(1, 5.0), (2, 40.0)],
        }
        text = render_series(series, x_label="k")
        lines = text.splitlines()
        assert lines[1].startswith("k")
        assert "ALG-A" in lines[1] and "ALG-B" in lines[1]
        assert len(lines) == 5  # title + header + rule + 2 value rows

    def test_missing_points_dashed(self):
        series = {"A": [(1, 1.0)], "B": [(2, 2.0)]}
        text = render_series(series, x_label="p")
        assert "-" in text


class TestCsv:
    def test_rows_to_csv(self):
        csv_text = rows_to_csv([{"a": 1, "b": "x"}])
        assert csv_text.splitlines() == ["a,b", "1,x"]

    def test_extras_ignored_with_explicit_columns(self):
        csv_text = rows_to_csv([{"a": 1, "b": 2}], columns=["a"])
        assert csv_text.splitlines() == ["a", "1"]

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv([{"x": 3}], path)
        assert path.read_text().splitlines() == ["x", "3"]
