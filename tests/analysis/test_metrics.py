"""Unit tests for effectiveness metrics."""

import pytest

from repro.analysis.metrics import (
    assess_result,
    member_overlap_ratio,
    verify_tenuity,
)
from repro.core.results import Group
from repro.index.bfs import BFSOracle


class TestAssessResult:
    def test_quality_fields(self, figure1):
        groups = [Group.make([10, 1, 4], 0.8), Group.make([10, 1, 5], 0.8)]
        quality = assess_result(figure1, ["SN", "QP", "DQ", "GQ", "GD"], groups)
        assert quality.group_count == 2
        assert quality.best_coverage == 0.8
        assert quality.worst_coverage == 0.8
        assert quality.zero_coverage_members == 0
        assert 0 < quality.mean_member_coverage <= 1
        assert 0 <= quality.diversity <= 1

    def test_zero_coverage_members_flagged(self, figure1):
        groups = [Group.make([2, 3, 9], 0.0)]  # none carry query keywords
        quality = assess_result(figure1, ["SN"], groups)
        assert quality.zero_coverage_members == 3

    def test_empty_result(self, figure1):
        quality = assess_result(figure1, ["SN"], [])
        assert quality.group_count == 0
        assert quality.best_coverage == 0.0
        assert quality.mean_member_coverage == 0.0

    def test_row_shape(self, figure1):
        row = assess_result(figure1, ["SN"], [Group.make([10], 1.0)]).row()
        assert set(row) == {
            "groups",
            "best_cov",
            "worst_cov",
            "mean_member_cov",
            "zero_members",
            "diversity",
        }


class TestVerifyTenuity:
    def test_valid_groups_pass(self, figure1):
        oracle = BFSOracle(figure1)
        groups = [Group.make([10, 1, 4], 0.8)]
        assert verify_tenuity(oracle, groups, 1)

    def test_close_pair_fails(self, figure1):
        oracle = BFSOracle(figure1)
        groups = [Group.make([6, 7], 0.5)]  # adjacent
        assert not verify_tenuity(oracle, groups, 1)

    def test_empty_passes(self, figure1):
        assert verify_tenuity(BFSOracle(figure1), [], 3)


class TestOverlapRatio:
    def test_disjoint_groups(self):
        groups = [Group.make([1, 2], 1.0), Group.make([3, 4], 1.0)]
        assert member_overlap_ratio(groups) == 0.0

    def test_heavy_overlap(self):
        groups = [
            Group.make([1, 2, 3], 1.0),
            Group.make([1, 2, 4], 1.0),
            Group.make([1, 2, 5], 1.0),
        ]
        # 9 slots, 5 distinct members.
        assert member_overlap_ratio(groups) == pytest.approx(4 / 9)

    def test_empty(self):
        assert member_overlap_ratio([]) == 0.0
