#!/usr/bin/env bash
# Fail when a job leaves POSIX shared-memory segments behind.
#
# Every multiprocessing.shared_memory segment the repo creates is named
# psm_* by CPython; a segment still present in /dev/shm after a test or
# smoke job exits means an unlink was skipped (e.g. an epoch retired
# without its last lease being released).  Used by every CI job after
# its test step.
#
# Usage: check_shm_leaks.sh [--expect N] [--prefix PATTERN]
#   --expect N        require exactly N segments instead of zero (a job
#                     that intentionally keeps a fleet up mid-check)
#   --prefix PATTERN  glob to match under /dev/shm (default psm_*)
set -euo pipefail

expect=0
prefix="psm_*"
while [ $# -gt 0 ]; do
    case "$1" in
        --expect)
            expect="$2"
            shift 2
            ;;
        --prefix)
            prefix="$2"
            shift 2
            ;;
        *)
            echo "usage: $0 [--expect N] [--prefix PATTERN]" >&2
            exit 2
            ;;
    esac
done

segments=$(ls /dev/shm/$prefix 2>/dev/null || true)
count=0
if [ -n "$segments" ]; then
    count=$(printf '%s\n' "$segments" | wc -l)
fi

if [ "$count" -ne "$expect" ]; then
    if [ "$expect" -eq 0 ]; then
        echo "leaked shared-memory segments: $segments" >&2
    else
        echo "expected $expect /dev/shm/$prefix segments, found $count: $segments" >&2
    fi
    exit 1
fi
if [ "$expect" -eq 0 ]; then
    echo "no leaked /dev/shm segments"
else
    echo "exactly $expect /dev/shm/$prefix segments present, as expected"
fi
