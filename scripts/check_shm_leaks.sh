#!/usr/bin/env bash
# Fail when a job leaves POSIX shared-memory segments behind.
#
# Every multiprocessing.shared_memory segment the repo creates is named
# psm_* by CPython; a segment still present in /dev/shm after a test or
# smoke job exits means an unlink was skipped (e.g. an epoch retired
# without its last lease being released).  Used by every CI job after
# its test step.
set -euo pipefail

leaked=$(ls /dev/shm/psm_* 2>/dev/null || true)
if [ -n "$leaked" ]; then
    echo "leaked shared-memory segments: $leaked" >&2
    exit 1
fi
echo "no leaked /dev/shm segments"
