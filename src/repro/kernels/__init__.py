"""Bitset distance-ball kernels for the solver hot path.

See :mod:`repro.kernels.engine` for the representation and the cache /
fallback semantics, :mod:`repro.kernels.vec` for the numpy-vectorized
twins and backend selection, :mod:`repro.kernels.solve` for the
frontier-at-a-time batched expansion primitives, and
``docs/kernels.md`` for the design notes.
"""

from repro.kernels.engine import (
    DEFAULT_MAX_BALLS,
    BallBitsetEngine,
    resolve_distance_engine,
)
from repro.kernels.solve import BATCH_MIN_CANDIDATES, NodeBatch, SolveBatch
from repro.kernels.vec import (
    KERNEL_BACKENDS,
    numpy_available,
    resolve_kernel_backend,
    validate_kernel_backend,
)

__all__ = [
    "BATCH_MIN_CANDIDATES",
    "BallBitsetEngine",
    "DEFAULT_MAX_BALLS",
    "KERNEL_BACKENDS",
    "NodeBatch",
    "SolveBatch",
    "numpy_available",
    "resolve_distance_engine",
    "resolve_kernel_backend",
    "validate_kernel_backend",
]
