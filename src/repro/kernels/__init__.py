"""Bitset distance-ball kernels for the solver hot path.

See :mod:`repro.kernels.engine` for the representation and the cache /
fallback semantics, :mod:`repro.kernels.vec` for the numpy-vectorized
twins and backend selection, and ``docs/kernels.md`` for the design
notes.
"""

from repro.kernels.engine import (
    DEFAULT_MAX_BALLS,
    BallBitsetEngine,
    resolve_distance_engine,
)
from repro.kernels.vec import (
    KERNEL_BACKENDS,
    numpy_available,
    resolve_kernel_backend,
    validate_kernel_backend,
)

__all__ = [
    "BallBitsetEngine",
    "DEFAULT_MAX_BALLS",
    "KERNEL_BACKENDS",
    "numpy_available",
    "resolve_distance_engine",
    "resolve_kernel_backend",
    "validate_kernel_backend",
]
