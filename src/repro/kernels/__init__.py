"""Bitset distance-ball kernels for the solver hot path.

See :mod:`repro.kernels.engine` for the representation and the cache /
fallback semantics, and ``docs/kernels.md`` for the design notes.
"""

from repro.kernels.engine import (
    DEFAULT_MAX_BALLS,
    BallBitsetEngine,
    resolve_distance_engine,
)

__all__ = ["BallBitsetEngine", "DEFAULT_MAX_BALLS", "resolve_distance_engine"]
