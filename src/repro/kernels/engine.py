"""Ball-bitset distance engine: k-hop neighborhoods as integer bitsets.

Every solver hot path ultimately asks one question — *which of these
candidates lie within k hops of vertex v?* — and answers it today with
per-pair oracle probes or per-vertex set membership loops.  This module
answers it with whole-mask arithmetic instead: the ≤k-hop neighborhood
(*ball*) of a vertex is materialised once as a Python ``int`` bitset
over the graph's dense vertex ids, after which

* k-line filtering is ``candidates_mask & ~ball(v)`` — one big-int AND
  whose cost is O(|V|/64) machine words, independent of how many
  candidates are being filtered;
* the pairwise tenuity check of a complete group is
  ``ball(m) & group_mask`` per member instead of p·(p-1)/2 probes;
* anchor exclusion is a single mask subtraction for all anchors.

Balls are built lazily through any :class:`repro.index.base.DistanceOracle`
(``oracle.within_k`` is the single source of truth — the engine is
correct over BFS, NL, NLRNL and PLL alike) and cached in an LRU keyed
``(vertex, k)``.  The cache is invalidated wholesale when
``graph.version`` moves, so a mutated graph can never serve stale
balls; the memory budget ``max_balls`` bounds resident balls, with
``max_balls=0`` degrading to build-per-call (still correct, just
uncached — the documented fallback when the budget is exceeded the
ball is simply rebuilt on next use).

The engine is shared read-only across solver clones and service worker
threads: ball values are immutable ints, and the LRU bookkeeping is
guarded by a lock.  Pickling drops the lock (process-pool workers
rebuild their own cache).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Sequence

from repro.core.csr import validate_graph_layout
from repro.index.base import DistanceOracle, GraphLike
from repro.kernels import vec
from repro.kernels.vec import resolve_kernel_backend, validate_kernel_backend
from repro.obs.instruments import NULL_REGISTRY, InstrumentRegistry

__all__ = ["BallBitsetEngine", "DEFAULT_MAX_BALLS", "resolve_distance_engine"]

#: Default LRU budget: (vertex, k) balls kept resident.  At the bench
#: scales a ball is one int of |V| bits, so the default bounds the cache
#: at a few MB even on the largest profile.
DEFAULT_MAX_BALLS = 8192

#: Smallest mask width (bits) worth routing through the vectorized
#: decoder: below this the to_bytes/unpackbits round-trip costs more
#: than the isolate-lowest-bit loop it replaces.
VEC_DECODE_MIN_BITS = 512


class BallBitsetEngine:
    """Lazily-materialised k-hop ball bitsets over dense vertex ids.

    Parameters
    ----------
    oracle:
        The distance oracle answering cache misses.  The engine is a
        *view* over the oracle: every ball decodes to exactly
        ``oracle.within_k(vertex, k)``, so results are bit-identical to
        the oracle path by construction.
    max_balls:
        LRU memory budget (resident ``(vertex, k)`` balls).  ``0``
        disables caching: every call rebuilds from the oracle (the
        budget-exceeded fallback, exercised directly in tests).
    instruments:
        Registry receiving ``kernels.ball_builds``, ``kernels.ball_hits``,
        ``kernels.ball_evictions``, ``kernels.mask_filters``,
        ``kernels.vec_sweeps`` and the batched-solver counters
        ``kernels.node_batches`` / ``kernels.batched_scores`` /
        ``kernels.bulk_eliminations``.  Local integer mirrors of the
        same counts are always kept (see :meth:`counters`) so benches
        can read them without a live registry.
    graph_layout:
        ``"adjacency"`` (default) builds missed balls through
        ``oracle.within_k``; ``"csr"`` grows them by direct BFS over
        the graph's flat CSR snapshot arrays, packing bits into a
        ``bytearray`` as vertices are discovered (~1.3x faster on
        dense graphs).  Every oracle in this library is exact, so both
        paths produce the identical bitset; only the oracle's own
        probe/memo counters differ (the csr path never consults it on
        a miss).
    kernel_backend:
        ``"auto"`` (default) uses the numpy-vectorized kernels from
        :mod:`repro.kernels.vec` when numpy is importable and falls
        back to the pure-python kernels otherwise; ``"numpy"`` forces
        vectorization (raising
        :class:`repro.core.errors.KernelBackendError` without numpy)
        and ``"python"`` forces the scalar kernels.  Backends are
        bit-identical by construction; each vectorized sweep bumps the
        ``kernels.vec_sweeps`` counter.

    Examples
    --------
    >>> from repro.core.graph import AttributedGraph
    >>> from repro.index.bfs import BFSOracle
    >>> g = AttributedGraph(4, [(0, 1), (1, 2), (2, 3)])
    >>> engine = BallBitsetEngine(BFSOracle(g))
    >>> sorted(engine.decode(engine.ball(0, 2)))
    [1, 2]
    >>> engine.filter_candidates([1, 2, 3], 0, 2)
    [3]
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        *,
        max_balls: int = DEFAULT_MAX_BALLS,
        instruments: InstrumentRegistry = NULL_REGISTRY,
        graph_layout: str = "adjacency",
        kernel_backend: str = "auto",
    ) -> None:
        if max_balls < 0:
            raise ValueError(f"max_balls must be >= 0, got {max_balls}")
        self.oracle = oracle
        self.max_balls = max_balls
        self.graph_layout = validate_graph_layout(graph_layout)
        self.kernel_backend = validate_kernel_backend(kernel_backend)
        #: The concrete backend ("numpy" | "python") after resolving
        #: "auto" against the environment.
        self.backend = resolve_kernel_backend(kernel_backend)
        # Flat CSR arrays for the csr layout, materialised lazily per
        # graph version (see _csr_arrays).  The numpy twins carry their
        # own version stamp because either representation may be
        # refreshed first after a graph mutation.
        self._csr_version: Optional[int] = None
        self._csr_indptr: Optional[list[int]] = None
        self._csr_indices: Optional[list[int]] = None
        self._csr_np_version: Optional[int] = None
        self._csr_np: Optional[tuple[object, object]] = None
        self._balls: OrderedDict[tuple[int, int], int] = OrderedDict()
        # Derived cache for the batched solver core: the same balls as
        # byte arrays (numpy uint8), keyed and LRU-bounded like _balls.
        # Entries are views over immutable bytes, shared read-only.
        self._ball_bytes: OrderedDict[tuple[int, int], object] = OrderedDict()
        self._version = oracle.graph.version
        self._lock = threading.Lock()
        self.ball_builds = 0
        self.ball_hits = 0
        self.ball_evictions = 0
        self.mask_filters = 0
        self.vec_sweeps = 0
        self.node_batches = 0
        self.batched_scores = 0
        self.bulk_eliminations = 0
        self._builds_counter = instruments.counter("kernels.ball_builds")
        self._hits_counter = instruments.counter("kernels.ball_hits")
        self._evictions_counter = instruments.counter("kernels.ball_evictions")
        self._filters_counter = instruments.counter("kernels.mask_filters")
        self._vec_counter = instruments.counter("kernels.vec_sweeps")
        self._node_batches_counter = instruments.counter("kernels.node_batches")
        self._batched_scores_counter = instruments.counter("kernels.batched_scores")
        self._bulk_elims_counter = instruments.counter("kernels.bulk_eliminations")

    # ------------------------------------------------------------------
    @property
    def graph(self) -> GraphLike:
        return self.oracle.graph

    def counters(self) -> dict[str, int]:
        """Snapshot of the kernel counters (flat, JSON-able)."""
        return {
            "ball_builds": self.ball_builds,
            "ball_hits": self.ball_hits,
            "ball_evictions": self.ball_evictions,
            "mask_filters": self.mask_filters,
            "vec_sweeps": self.vec_sweeps,
            "node_batches": self.node_batches,
            "batched_scores": self.batched_scores,
            "bulk_eliminations": self.bulk_eliminations,
        }

    def __len__(self) -> int:
        """Resident balls (LRU occupancy)."""
        return len(self._balls)

    # ------------------------------------------------------------------
    # Ball materialisation
    # ------------------------------------------------------------------
    def ball(self, vertex: int, k: int) -> int:
        """Bitset of all vertices at distance ``1..k`` from *vertex*.

        The vertex itself is excluded, mirroring ``oracle.within_k``.
        ``k == 0`` is the empty ball.
        """
        if k <= 0:
            return 0
        graph = self.oracle.graph
        if graph.version != self._version:
            with self._lock:
                if graph.version != self._version:
                    # The graph mutated under us: every resident ball
                    # may describe edges that no longer exist.  Drop
                    # them all (and the derived byte arrays with them).
                    self._balls.clear()
                    self._ball_bytes.clear()
                    self._version = graph.version
        key = (vertex, k)
        balls = self._balls
        bits = balls.get(key)
        if bits is not None:
            # The dict read itself stays lock-free (atomic under the
            # GIL), but the counter bump and the LRU touch share one
            # short critical section: `self.ball_hits += 1` is a
            # load/add/store that thread fleets can interleave, which
            # used to lose increments and let counters() drift from the
            # obs registry.
            with self._lock:
                self.ball_hits += 1
                self._hits_counter.inc()
                # Recency order only matters once eviction is imminent,
                # so the touch is skipped while the cache is half empty.
                if len(balls) * 2 >= self.max_balls and key in balls:
                    balls.move_to_end(key)
            return bits
        used_vec = False
        if self.graph_layout == "csr":
            if self.backend == "numpy":
                indptr, indices = self._csr_arrays_vec()
                bits = vec.ball_bits_csr(indptr, indices, vertex, k)
                used_vec = True
            else:
                bits = self._build_ball_csr(vertex, k)
        elif self.backend == "numpy":
            bits = vec.pack_vertices(
                self.oracle.within_k(vertex, k), graph.num_vertices
            )
            used_vec = True
        else:
            bits = 0
            for u in self.oracle.within_k(vertex, k):
                bits |= 1 << u
        with self._lock:
            self.ball_builds += 1
            self._builds_counter.inc()
            if used_vec:
                self.vec_sweeps += 1
                self._vec_counter.inc()
            if self.max_balls and graph.version == self._version:
                self._balls[key] = bits
                if len(self._balls) > self.max_balls:
                    self._balls.popitem(last=False)
                    self.ball_evictions += 1
                    self._evictions_counter.inc()
        return bits

    def _build_ball_csr(self, vertex: int, k: int) -> int:
        """Grow a k-ball by BFS over flat CSR arrays, packing bits as
        vertices are discovered.

        Bit ``i`` of byte ``b`` in the little-endian buffer is vertex
        ``8 b + i`` — the same weight ``1 << v`` the adjacency path ORs
        in — so ``int.from_bytes(..., "little")`` yields the identical
        bitset without one big-int shift per vertex.
        """
        indptr, indices = self._csr_arrays()
        n = len(indptr) - 1
        seen = bytearray(n)
        seen[vertex] = 1
        bitbuf = bytearray((n + 7) >> 3)
        frontier = [vertex]
        for _ in range(k):
            next_frontier: list[int] = []
            append = next_frontier.append
            for u in frontier:
                for w in indices[indptr[u] : indptr[u + 1]]:
                    if not seen[w]:
                        seen[w] = 1
                        append(w)
                        bitbuf[w >> 3] |= 1 << (w & 7)
            if not next_frontier:
                break
            frontier = next_frontier
        return int.from_bytes(bitbuf, "little")

    def _csr_arrays(self) -> tuple[list[int], list[int]]:
        """Flat (indptr, indices) for the current graph version."""
        graph = self.oracle.graph
        if self._csr_indptr is None or self._csr_version != graph.version:
            snapshot = getattr(graph, "snapshot", None)
            if snapshot is None:
                snapshot = graph.csr_snapshot()  # type: ignore[union-attr]
            self._csr_indptr = snapshot.indptr
            self._csr_indices = snapshot.indices
            self._csr_version = graph.version
        assert self._csr_indices is not None
        return self._csr_indptr, self._csr_indices

    def _csr_arrays_vec(self) -> tuple[object, object]:
        """numpy int64 (indptr, indices) for the current graph version."""
        graph = self.oracle.graph
        if self._csr_np is None or self._csr_np_version != graph.version:
            indptr, indices = self._csr_arrays()
            np = vec.numpy_or_none()
            assert np is not None  # backend "numpy" implies importable
            self._csr_np = (
                np.asarray(indptr, dtype=np.int64),
                np.asarray(indices, dtype=np.int64),
            )
            self._csr_np_version = graph.version
        return self._csr_np

    def blocked_mask(self, vertex: int, k: int) -> int:
        """The ball of *vertex* plus the vertex itself — everything a
        k-line filter against *vertex* removes."""
        return self.ball(vertex, k) | (1 << vertex)

    def ball_bytes(self, vertex: int, k: int, nbytes: int) -> object:
        """The ball of ``(vertex, k)`` as a little-endian numpy uint8
        array of width *nbytes* — the byte view the batched solver core
        (:mod:`repro.kernels.solve`) gathers candidate bits from.

        Bit ``i`` of byte ``b`` is vertex ``8 b + i``, exactly the
        ``1 << v`` weight of :meth:`ball`, so per-candidate reads off
        this array reproduce big-int ball membership bit for bit.  The
        arrays are derived from :meth:`ball` (sharing its version checks
        and build/hit counters) and cached in their own ``max_balls``-
        bounded LRU; only callable on the numpy backend.
        """
        key = (vertex, k)
        if self.oracle.graph.version == self._version:
            cached = self._ball_bytes.get(key)
            if cached is not None and len(cached) == nbytes:  # type: ignore[arg-type]
                if len(self._ball_bytes) * 2 >= self.max_balls:
                    with self._lock:
                        if key in self._ball_bytes:
                            self._ball_bytes.move_to_end(key)
                return cached
        bits = self.ball(vertex, k)
        np = vec.numpy_or_none()
        assert np is not None  # callers hold backend == "numpy"
        arr = np.frombuffer(bits.to_bytes(nbytes, "little"), dtype=np.uint8)
        with self._lock:
            if self.max_balls and self.oracle.graph.version == self._version:
                self._ball_bytes[key] = arr
                if len(self._ball_bytes) > self.max_balls:
                    self._ball_bytes.popitem(last=False)
        return arr

    def note_batch(
        self, *, nodes: int = 0, scores: int = 0, eliminations: int = 0
    ) -> None:
        """Fold one batched-solver bookkeeping delta into the counters.

        One lock hop covers every counter the delta touches.  Bulk
        eliminations also count as ``mask_filters`` — one vectorized
        elimination replaces exactly one :meth:`filter_mask` call, so
        the k-line operation ledger stays engine-independent.
        """
        with self._lock:
            if nodes:
                self.node_batches += nodes
                self._node_batches_counter.inc(nodes)
            if scores:
                self.batched_scores += scores
                self._batched_scores_counter.inc(scores)
            if eliminations:
                self.bulk_eliminations += eliminations
                self._bulk_elims_counter.inc(eliminations)
                self.mask_filters += eliminations
                self._filters_counter.inc(eliminations)

    # ------------------------------------------------------------------
    # Dynamic maintenance (epoch mode)
    # ------------------------------------------------------------------
    def apply_edge_update(self, u: int, v: int) -> None:
        """Selective eviction after the edge ``(u, v)`` was added/removed.

        A resident ball ``B(c, k)`` can only change if the edit touches
        it: any new or destroyed path of length <= k through the edge
        puts an endpoint within k of ``c``, so a ball containing neither
        endpoint (and not centred on one) is unaffected at every k.
        Evicting just those keys — instead of the wholesale
        version-mismatch clear in :meth:`ball` — keeps a warm cache
        alive under a mutation stream.  Call *after* the graph mutation
        so the version stamp lands on the post-edit version.
        """
        graph = self.oracle.graph
        with self._lock:
            stale = [
                key
                for key, bits in self._balls.items()
                if key[0] == u or key[0] == v or (bits >> u) & 1 or (bits >> v) & 1
            ]
            for key in stale:
                del self._balls[key]
            # The derived byte arrays are dropped wholesale: an entry
            # whose big-int ball was independently LRU-evicted cannot be
            # re-validated against the edit, and re-packing a resident
            # ball is cheap next to rebuilding one.
            self._ball_bytes.clear()
            self.ball_evictions += len(stale)
            self._evictions_counter.inc(len(stale))
            self._version = graph.version
            self._csr_version = None
            self._csr_indptr = None
            self._csr_indices = None
            self._csr_np_version = None
            self._csr_np = None

    def sync_version(self) -> None:
        """Adopt the graph version after a ball-preserving mutation.

        Keyword edits and isolated-vertex appends change no distance, so
        every resident ball stays exact; only the version stamp (and the
        flat CSR mirrors, whose width may have grown) must follow, lest
        the next :meth:`ball` call clear the cache wholesale.
        """
        graph = self.oracle.graph
        with self._lock:
            self._version = graph.version
            # Byte arrays are width-stamped by their length; a vertex
            # append would strand narrower stale entries, so drop them.
            self._ball_bytes.clear()
            self._csr_version = None
            self._csr_indptr = None
            self._csr_indices = None
            self._csr_np_version = None
            self._csr_np = None

    # ------------------------------------------------------------------
    # Encoding helpers
    # ------------------------------------------------------------------
    @staticmethod
    def encode(vertices: Sequence[int]) -> int:
        """Bitset of a vertex collection."""
        bits = 0
        for v in vertices:
            bits |= 1 << v
        return bits

    @staticmethod
    def decode(mask: int) -> set[int]:
        """Vertex set of a bitset (isolate-lowest-bit loop)."""
        out: set[int] = set()
        while mask:
            low = mask & -mask
            out.add(low.bit_length() - 1)
            mask ^= low
        return out

    # ------------------------------------------------------------------
    # Bulk filtering (the solver hot path)
    # ------------------------------------------------------------------
    def filter_list(
        self,
        candidates: list[int],
        candidates_mask: int,
        member: int,
        k: int,
    ) -> tuple[list[int], int]:
        """Drop candidates within *k* hops of *member* (and *member*).

        Takes and returns the candidate list *together with* its bitset
        so callers threading masks through a recursion never re-encode.
        Relative order is preserved.  When nothing is removed the input
        list is returned unchanged (no copy) — on dense graphs most
        filters at depth are no-ops and this check is one big-int
        compare.
        """
        surviving = self.filter_mask(candidates_mask, member, k)
        if surviving == candidates_mask:
            return candidates, candidates_mask
        return self.select(candidates, candidates_mask, surviving), surviving

    def filter_mask(self, candidates_mask: int, member: int, k: int) -> int:
        """Mask-only half of :meth:`filter_list`: the surviving bitset,
        with no list rebuilt.  Callers that can prune on the popcount
        alone (fewer survivors than open group slots) skip the
        O(|candidates|) rebuild entirely — on dense graphs that is the
        common case and the bulk of the engine's speedup."""
        with self._lock:
            # Lock-protected like the ball counters: bare `+= 1` loses
            # increments under thread fleets.
            self.mask_filters += 1
            self._filters_counter.inc()
        return candidates_mask & ~(self.ball(member, k) | (1 << member))

    def select(
        self, candidates: list[int], candidates_mask: int, surviving_mask: int
    ) -> list[int]:
        """Order-preserving restriction of *candidates* to
        *surviving_mask* (a subset of *candidates_mask*)."""
        # Decode whichever side is smaller — dense graphs remove almost
        # everything (decode the survivors), sparse ones almost nothing.
        removed_mask = candidates_mask & ~surviving_mask
        if surviving_mask.bit_count() <= removed_mask.bit_count():
            keep = self._decode_backend(surviving_mask)
            return [v for v in candidates if v in keep]
        dropped = self._decode_backend(removed_mask)
        return [v for v in candidates if v not in dropped]

    def _decode_backend(self, mask: int) -> set[int]:
        """Backend-aware :meth:`decode`: wide masks route through the
        vectorized unpackbits decoder, narrow ones keep the big-int
        loop (see :data:`VEC_DECODE_MIN_BITS`)."""
        if self.backend == "numpy" and mask.bit_length() >= VEC_DECODE_MIN_BITS:
            out = vec.decode_mask(mask)
            with self._lock:
                self.vec_sweeps += 1
                self._vec_counter.inc()
            return out
        return self.decode(mask)

    def filter_candidates(self, candidates: list[int], member: int, k: int) -> list[int]:
        """Oracle-compatible signature of :meth:`filter_list` (used for
        anchor exclusion and candidate-pool preparation, where no mask
        is threaded)."""
        filtered, _ = self.filter_list(
            list(candidates), self.encode(candidates), member, k
        )
        return filtered

    def exclusion_mask(self, anchors: Sequence[int], k: int) -> int:
        """OR of all anchors' blocked masks — one subtraction removes
        every candidate familiar with any anchor."""
        bits = 0
        for anchor in anchors:
            bits |= self.blocked_mask(anchor, k)
        return bits

    # ------------------------------------------------------------------
    # Pairwise checks
    # ------------------------------------------------------------------
    def is_tenuous(self, u: int, v: int, k: int) -> bool:
        """``dist(u, v) > k`` via one ball probe (oracle semantics)."""
        if u == v:
            return False
        return not (self.ball(u, k) >> v) & 1

    def new_member_tenuous(self, members_mask: int, vertex: int, k: int) -> bool:
        """Whether *vertex* is tenuous w.r.t. every member of an
        (already pairwise-tenuous) group given as a bitset."""
        return not self.ball(vertex, k) & members_mask

    def pairwise_tenuous(self, members: Sequence[int], k: int) -> bool:
        """Full pairwise tenuity of a group: no member's ball may touch
        another member.  Each pair is covered by the ball of its earlier
        member, so the last member needs no ball of its own."""
        if len(members) < 2:
            return True
        group_mask = self.encode(members)
        for m in members[:-1]:
            if self.ball(m, k) & group_mask:
                return False
        return True

    # ------------------------------------------------------------------
    # Pickling (process-pool workers): the lock is not picklable and the
    # ball cache is a per-process concern.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_lock"] = None
        state["_balls"] = OrderedDict()
        state["_ball_bytes"] = OrderedDict()
        # Flat CSR arrays re-materialise lazily in the target process.
        state["_csr_version"] = None
        state["_csr_indptr"] = None
        state["_csr_indices"] = None
        state["_csr_np_version"] = None
        state["_csr_np"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return (
            f"BallBitsetEngine(oracle={type(self.oracle).__name__}, "
            f"balls={len(self._balls)}/{self.max_balls}, "
            f"builds={self.ball_builds}, hits={self.ball_hits})"
        )


def resolve_distance_engine(
    distance_engine: str,
    oracle: DistanceOracle,
    kernel: Optional[BallBitsetEngine],
    graph_layout: str = "adjacency",
    kernel_backend: str = "auto",
) -> Optional[BallBitsetEngine]:
    """Shared constructor-time validation for every solver layer.

    Returns the kernel to use (``None`` for the oracle path).  Passing a
    prebuilt *kernel* implies the bitset engine; building one lazily
    happens only when ``distance_engine="bitset"`` and none was shared.
    *graph_layout* and *kernel_backend* seed a lazily-built kernel's
    ball-construction path; a prebuilt kernel keeps whatever layout and
    backend it was created with.
    """
    if distance_engine not in ("oracle", "bitset"):
        raise ValueError(
            f"distance_engine must be 'oracle' or 'bitset', got {distance_engine!r}"
        )
    validate_kernel_backend(kernel_backend)
    if kernel is not None:
        if kernel.oracle is not oracle:
            raise ValueError(
                "the supplied kernel wraps a different oracle than the solver"
            )
        return kernel
    if distance_engine == "bitset":
        return BallBitsetEngine(
            oracle, graph_layout=graph_layout, kernel_backend=kernel_backend
        )
    return None
