"""Frontier-at-a-time twins of the branch-and-bound expansion primitives.

At every interior node the scalar solver walks the ordered candidate
frontier ``S_R`` one vertex at a time: per-candidate VKC popcounts feed
a ``sorted`` call, per-candidate big-int arithmetic feeds the Theorem 3
k-line filter, and the Theorem 2 bound re-reads the list head.  On the
numpy backend this module batches all three over the whole frontier:

* **batched scoring / re-sort** — a node family's candidate ids index
  one shared ``(num_vertices, mask_bytes)`` uint8 mask matrix
  (:meth:`repro.core.coverage.CoverageContext.packed_masks`); a row-wise
  ``AND`` against the uncovered-keyword row plus a vectorized popcount
  yields every VKC gain in one sweep, and the VKC / VKC-DEG orderings
  become a single stable ``np.lexsort``;
* **bulk k-line elimination** — the chosen member's ball is read as a
  byte array (:meth:`repro.kernels.engine.BallBitsetEngine.ball_bytes`,
  a zero-copy view over the engine's cached ball storage) and one
  gather-shift-mask pass computes the keep-vector for the entire tail,
  replacing the per-node big-int threading;
* **vectorized admissible bounds** — the sorted node's gains are reused
  for the Theorem 2 head sum; for the union bound a single reversed
  ``np.bitwise_or.accumulate`` (a prefix-OR over the sorted mask rows)
  precomputes the "remaining coverage" row of *every* tail child in one
  sweep;
* **candidate-array pooling** — sibling nodes slice the parent's id /
  gain / row arrays (numpy views) instead of rebuilding python lists;
  only an actual elimination compresses.

Bit-identity argument (the property suite asserts it end to end):

* *scoring*: the matrix rows are the little-endian bytes of the same
  ints the scalar path reads from ``CoverageContext.masks``, so the
  row-wise popcount equals ``(masks[v] & uncovered).bit_count()``
  exactly.
* *ordering*: python's ``sorted`` and ``np.lexsort`` are both stable;
  identical keys therefore produce the identical permutation.  The
  scalar VKC-DEG composite key ``-(gain << 32) + sign*degree`` orders
  exactly like the lexicographic pair ``(-gain, sign*degree)`` because
  ``|sign*degree| < 2**31``; the lexsort uses that pair.
* *bounds*: the batched Theorem 2 bound sums the same integer gains
  (``np.partition`` selects the same top-``slots`` multiset as
  ``heapq.nlargest``) and runs the same float division via
  :func:`repro.core.pruning.bound_from_vkc_sum`; the union bound ORs
  the same mask ints, so both the bound values and the keyword/union
  rule attribution match.
* *elimination*: bit ``v`` of ``ball_bytes(member, k)`` equals bit
  ``v`` of ``ball(member, k)``, so the keep-vector reproduces the
  scalar ``candidates_mask & ~(ball | 1 << member)`` membership (the
  member itself never sits in its own tail), and ``keep.sum()`` equals
  the scalar survivor popcount.

The solver enables a :class:`SolveBatch` per coverage context when its
kernel resolved to the numpy backend and the strategy opted in via
``batch_sort_spec``; frontiers below :data:`BATCH_MIN_CANDIDATES` fall
back to the scalar path node-by-node (legal precisely because both
paths are bit-identical).  Counters: ``kernels.node_batches`` (frontier
stacked into arrays), ``kernels.batched_scores`` (vectorized score
sweeps) and ``kernels.bulk_eliminations`` (vectorized k-line passes,
which also advance ``kernels.mask_filters`` one-for-one with the scalar
engine).
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Any, Optional

from repro.core.pruning import bound_from_vkc_sum
from repro.core.strategies import QKCOrdering, VKCDegreeOrdering, VKCOrdering
from repro.kernels import vec

if TYPE_CHECKING:
    from repro.core.branch_and_bound import BranchAndBoundSolver
    from repro.core.coverage import CoverageContext
    from repro.kernels.engine import BallBitsetEngine

__all__ = ["NodeBatch", "SolveBatch", "BATCH_MIN_CANDIDATES"]

#: Frontiers narrower than this run the scalar path: below a few dozen
#: candidates the fixed numpy dispatch overhead outweighs the sweep.
#: Tests shrink it to force tiny property-test graphs through the
#: batched path.
BATCH_MIN_CANDIDATES = 16

#: The built-in scalar sorts each ``batch_sort_spec`` kind must
#: replicate; a subclass overriding either hook falls back to scalar.
_SPEC_BASES = {"qkc": QKCOrdering, "vkc": VKCOrdering, "vkc-deg": VKCDegreeOrdering}


class NodeBatch:
    """One node family's candidate frontier as packed arrays.

    ``ids`` (int64) mirrors the scalar ``remaining`` list order exactly.
    ``gains`` caches the VKC gains against the node's covered mask
    (present whenever they are known-valid: after a scoring sweep, or
    sliced from a parent whose covered mask the child shares).  ``rows``
    caches the gathered mask-matrix rows; ``byte_idx`` / ``bit_mask``
    the per-candidate ball-byte coordinates; ``suffix_union`` the
    prefix-OR table serving every tail child's union bound;
    ``union_row`` this node's own precomputed union row (inherited from
    the parent's suffix table when the candidate set is a pure tail).
    All derived arrays are lazy and propagate to children as views.
    """

    __slots__ = (
        "ids",
        "gains",
        "rows",
        "byte_idx",
        "bit_mask",
        "suffix_union",
        "union_row",
    )

    def __init__(
        self,
        ids: Any,
        gains: Any = None,
        rows: Any = None,
        union_row: Any = None,
    ) -> None:
        self.ids = ids
        self.gains = gains
        self.rows = rows
        self.byte_idx: Any = None
        self.bit_mask: Any = None
        self.suffix_union: Any = None
        self.union_row = union_row

    def __len__(self) -> int:
        return int(self.ids.shape[0])


class SolveBatch:
    """Batched expansion primitives bound to one solver + coverage context.

    Built via :meth:`for_solver` (``None`` when the configuration cannot
    batch); owned by a single solver clone, so its small mutable caches
    need no locking — only counter flushes hop through the kernel lock.
    """

    def __init__(
        self,
        kernel: "BallBitsetEngine",
        spec: tuple,
        context: "CoverageContext",
        use_union_bound: bool,
    ) -> None:
        np = vec.numpy_or_none()
        assert np is not None  # guarded by for_solver
        self._np = np
        self.kernel = kernel
        self.context = context
        self.min_candidates = BATCH_MIN_CANDIDATES
        self.mask_bytes = (context.query_size + 7) >> 3
        # Narrow fast path: queries of <= 64 keywords fit one machine
        # word, so every mask row collapses to a single uint64 — scoring
        # becomes ``bitwise_count(rows & uncovered)`` with no per-row
        # byte axis to reduce over.  The uint64 view of the little-endian
        # byte matrix IS the mask value only on little-endian hosts; the
        # byte-matrix path stays as the general (and big-endian) route.
        self._narrow = (
            self.mask_bytes <= 8
            and sys.byteorder == "little"
            and hasattr(np, "bitwise_count")
        )
        if self._narrow:
            packed = np.ascontiguousarray(context.packed_masks(8))
            self.matrix = packed.view(np.uint64).ravel()
        else:
            self.matrix = context.packed_masks(self.mask_bytes)
        self.ball_nbytes = (len(context.masks) + 7) >> 3
        kind, sign, degrees = spec
        self.kind = kind
        self._deg_keys = (
            np.asarray(degrees, dtype=np.int64) * sign if degrees is not None else None
        )
        self._use_union = use_union_bound
        self._uncovered_for = -1
        self._uncovered_row: Any = None

    @classmethod
    def for_solver(
        cls, solver: "BranchAndBoundSolver", context: "CoverageContext"
    ) -> Optional["SolveBatch"]:
        """The batch engine for *solver* on *context*, or ``None``.

        Batching needs the bitset kernel on its numpy backend and a
        strategy whose ordering the lexsort twin provably replicates
        (one of the built-ins, with neither ordering hook overridden).
        """
        kernel = solver.kernel
        if kernel is None or kernel.backend != "numpy":
            return None
        if vec.numpy_or_none() is None:  # pragma: no cover - numpy backend implies numpy
            return None
        strategy = solver.strategy
        spec = strategy.batch_sort_spec()
        if spec is None:
            return None
        base = _SPEC_BASES.get(spec[0])
        cls_of = type(strategy)
        if (
            base is None
            or cls_of.initial_order is not base.initial_order
            or cls_of.reorder is not base.reorder
        ):
            return None
        return cls(kernel, spec, context, solver.use_union_bound)

    # ------------------------------------------------------------------
    # Node construction and pooling
    # ------------------------------------------------------------------
    def make_node(self, remaining: list, covered_mask: int) -> NodeBatch:
        """Stack a scalar candidate list into a :class:`NodeBatch`.

        For re-sorting strategies the entry gains are scored immediately
        (the list arrives sorted under *covered_mask*, so the gain array
        is descending — the Theorem 2 head sum reads it directly)."""
        np = self._np
        ids = np.fromiter(remaining, dtype=np.int64, count=len(remaining))
        node = NodeBatch(ids)
        scores = 0
        if self.kind != "qkc":
            node.rows = self.matrix[ids]
            node.gains = self._popcount(node.rows & self._uncov(covered_mask))
            scores = 1
        self.kernel.note_batch(nodes=1, scores=scores)
        return node

    def child_tail(self, node: NodeBatch, position: int, same_mask: bool) -> NodeBatch:
        """The child frontier ``remaining[position+1:]`` as array views.

        *same_mask* says the child's covered mask equals the parent's;
        only then do the parent's gains stay valid for the child."""
        tail = slice(position + 1, None)
        child = NodeBatch(
            node.ids[tail],
            node.gains[tail] if (same_mask and node.gains is not None) else None,
            node.rows[tail] if node.rows is not None else None,
        )
        if node.byte_idx is not None:
            child.byte_idx = node.byte_idx[tail]
            child.bit_mask = node.bit_mask[tail]
        if self._use_union:
            # A pure tail's union row comes off the parent's prefix-OR
            # table — mask-set algebra, independent of the covered mask.
            child.union_row = self._tail_union(node, position)
        return child

    def child_after_elimination(
        self, node: NodeBatch, position: int, keep: Any, same_mask: bool
    ) -> NodeBatch:
        """Compress the tail by the elimination keep-vector.

        Returns only the packed child; the caller materialises the
        scalar candidate list via ``child.ids.tolist()`` — and only when
        no reorder follows, since a reorder hands back the (permuted)
        list itself and the pre-reorder list would be dead work."""
        tail = slice(position + 1, None)
        ids = node.ids[tail][keep]
        return NodeBatch(
            ids,
            node.gains[tail][keep] if (same_mask and node.gains is not None) else None,
            node.rows[tail][keep] if node.rows is not None else None,
        )

    # ------------------------------------------------------------------
    # Batched scoring and ordering
    # ------------------------------------------------------------------
    def reorder(self, node: NodeBatch, covered_mask: int) -> tuple[list[int], NodeBatch]:
        """Score and stably sort the frontier for a new covered mask.

        One sweep computes every gain; ``np.lexsort`` (stable, like
        python's ``sorted``) applies the strategy's key — ``-gain`` for
        VKC, ``(-gain, sign*degree)`` for VKC-DEG.  Returns the
        reordered scalar list plus the packed node (gains and rows ride
        along already permuted; the union row survives, a reorder does
        not change the candidate set)."""
        np = self._np
        rows = self._rows(node)
        gains = self._popcount(rows & self._uncov(covered_mask))
        if self.kind == "vkc-deg":
            order = np.lexsort((self._deg_keys[node.ids], -gains))
        else:
            order = np.lexsort((-gains,))
        ids = node.ids[order]
        child = NodeBatch(ids, gains[order], rows[order], union_row=node.union_row)
        self.kernel.note_batch(scores=1)
        return ids.tolist(), child

    def leaf_gains(self, node: NodeBatch, covered_mask: int) -> list[int]:
        """Every candidate's VKC gain at a leaf, as python ints.

        Reuses the node's cached gains when present (always, for the
        re-sorting strategies); otherwise one scoring sweep."""
        if node.gains is None:
            self._score(node, covered_mask)
        return node.gains.tolist()

    def _score(self, node: NodeBatch, covered_mask: int) -> Any:
        gains = self._popcount(self._rows(node) & self._uncov(covered_mask))
        node.gains = gains
        self.kernel.note_batch(scores=1)
        return gains

    def _popcount(self, anded: Any) -> Any:
        """Per-candidate popcounts of already-masked rows, as int64
        (signed, so ``-gains`` is a valid sort key)."""
        if self._narrow:
            return self._np.bitwise_count(anded).astype(self._np.int64)
        return vec.popcount_rows(anded)

    def _rows(self, node: NodeBatch) -> Any:
        if node.rows is None:
            node.rows = self.matrix[node.ids]
        return node.rows

    def _uncov(self, covered_mask: int) -> Any:
        """The uncovered-keyword mask, broadcastable against the node's
        rows: a uint64 scalar on the narrow path, a uint8 row otherwise
        (cached for the common prune/leaf/reorder repeats per mask)."""
        if covered_mask != self._uncovered_for:
            uncovered = ~covered_mask & self.context.full_mask
            if self._narrow:
                self._uncovered_row = self._np.uint64(uncovered)
            else:
                self._uncovered_row = self._np.frombuffer(
                    uncovered.to_bytes(self.mask_bytes, "little"), dtype=self._np.uint8
                )
            self._uncovered_for = covered_mask
        return self._uncovered_row

    # ------------------------------------------------------------------
    # Bulk k-line elimination (Theorem 3)
    # ------------------------------------------------------------------
    def eliminate(
        self, node: NodeBatch, position: int, member: int, k: int
    ) -> tuple[Any, int]:
        """Keep-vector and survivor count for the tail after *member*.

        One gather over the member's ball bytes answers every
        candidate's ``within_k`` probe at once; ``keep[i]`` is True iff
        tail candidate ``i`` survives the scalar
        ``mask & ~(ball | 1 << member)``."""
        np = self._np
        if node.byte_idx is None:
            node.byte_idx = node.ids >> 3
            node.bit_mask = np.uint8(1) << (node.ids & 7).astype(np.uint8)
        ball = self.kernel.ball_bytes(member, k, self.ball_nbytes)
        tail = slice(position + 1, None)
        keep = (ball[node.byte_idx[tail]] & node.bit_mask[tail]) == 0
        survivors = int(np.count_nonzero(keep))
        self.kernel.note_batch(eliminations=1)
        return keep, survivors

    # ------------------------------------------------------------------
    # Vectorized admissible bounds (Theorem 2 + union bound)
    # ------------------------------------------------------------------
    def prune_decision(
        self, covered_mask: int, node: NodeBatch, slots: int
    ) -> tuple[float, str]:
        """Batched twin of :func:`repro.core.pruning.keyword_prune_decision`.

        Sorted frontiers read the head sum straight off the cached gain
        array; unsorted (QKC) frontiers score once and ``np.partition``
        the top *slots* — the same integer multiset ``heapq.nlargest``
        sums.  The union bound ORs the node's precomputed union row when
        one was inherited, else reduces the rows."""
        np = self._np
        gains = node.gains
        if gains is None:
            gains = self._score(node, covered_mask)
        if self.kind != "qkc":
            # Re-sorting strategies keep the frontier gain-sorted, so
            # the top-``slots`` sum is the head sum.
            vkc_sum = int(gains[:slots].sum())
        else:
            # QKC frontiers are statically ordered: select the top
            # ``slots`` gains (same multiset ``heapq.nlargest`` sums).
            n = int(gains.shape[0])
            if slots >= n:
                vkc_sum = int(gains.sum())
            else:
                vkc_sum = int(np.partition(gains, n - slots)[n - slots :].sum())
        bound = bound_from_vkc_sum(covered_mask, vkc_sum, self.context)
        if self._use_union:
            row = node.union_row
            if row is None:
                row = np.bitwise_or.reduce(self._rows(node), axis=0)
            combined = covered_mask | int.from_bytes(row.tobytes(), "little")
            alternative = self.context.coverage_of_mask(combined)
            if alternative < bound:
                return alternative, "union"
        return bound, "keyword"

    def _tail_union(self, node: NodeBatch, position: int) -> Any:
        """Union row of ``remaining[position+1:]`` from the node's
        prefix-OR table (built once, serves all tail children)."""
        if node.suffix_union is None:
            rows = self._rows(node)
            node.suffix_union = self._np.bitwise_or.accumulate(rows[::-1], axis=0)[::-1]
        return node.suffix_union[position + 1]
