"""numpy-vectorized twins of the CSR hot-path kernels.

The CSR snapshot layer gave the solvers flat ``indptr``/``indices``
arrays, but the BFS sweep and ball-bitset construction still iterate
edge-by-edge in the interpreter.  This module provides vectorized
twins of those hot paths:

* :func:`bfs_levels_csr` / :func:`bfs_distance_array_csr` — frontier
  expansion as one fancy-indexed gather of ``indices`` over the
  frontier's ``indptr`` slices per level, instead of a per-edge python
  loop;
* :func:`ball_bits_csr` — k-bounded BFS whose reached set is packed to
  the engine's little-endian bitset in one ``np.packbits`` call,
  bit-identical to ``BallBitsetEngine._build_ball_csr``;
* :func:`pack_vertices` / :func:`decode_mask` — bulk encode/decode
  between vertex collections and big-int bitsets;
* :func:`popcount_bytes` / :func:`bulk_popcount` — bulk popcount over
  packed keyword masks, preferring ``np.bitwise_count`` (numpy >= 2.0),
  then ``np.unpackbits``, then a chunked ``int.from_bytes(...).bit_count()``
  pure-python fallback;
* :func:`pack_masks` / :func:`popcount_rows` — the matrix halves of the
  batched solver core (:mod:`repro.kernels.solve`): lay keyword-mask
  ints out as one ``(n, mask_bytes)`` little-endian uint8 matrix and
  count its set bits row-wise.

numpy stays an *optional* dependency.  Backend selection is explicit::

    kernel_backend="auto"    numpy when importable, else pure python
    kernel_backend="numpy"   force numpy; raise KernelBackendError if absent
    kernel_backend="python"  force the pure-python kernels

The resolved numpy module is cached in the module-global ``_np`` so
tests can simulate a numpy-absent environment by monkeypatching it to
``None`` — no uninstall needed.  Both backends are bit-identical by
construction: the vectorized BFS visits the same level sets (sorted
within a level, which every consumer in this package is insensitive
to) and the packed bitsets use the same little-endian weight
``1 << v`` per vertex.
"""

from __future__ import annotations

import sys
from typing import Any, Iterable, Optional, Sequence

from repro.core.errors import KernelBackendError

__all__ = [
    "KERNEL_BACKENDS",
    "validate_kernel_backend",
    "resolve_kernel_backend",
    "numpy_available",
    "numpy_or_none",
    "bfs_levels_csr",
    "bfs_distance_array_csr",
    "ball_bits_csr",
    "pack_vertices",
    "decode_mask",
    "popcount_bytes",
    "bulk_popcount",
    "pack_masks",
    "popcount_rows",
    "UNREACHABLE",
]

#: Valid ``kernel_backend`` values, mirroring ``GRAPH_LAYOUTS``.
KERNEL_BACKENDS = ("auto", "numpy", "python")

#: Sentinel distance for unreachable vertices (matches ``_traversal``).
UNREACHABLE = -1

#: Chunk width (bytes) for the pure-python popcount fallback: big
#: enough to amortise the ``int.from_bytes`` call, small enough that
#: each chunk's big-int stays cheap.
_POPCOUNT_CHUNK = 1024

_UNRESOLVED = object()
#: Cached numpy module, or ``None`` when unimportable.  Monkeypatch to
#: ``None`` to simulate a numpy-absent environment in tests.
_np: Any = _UNRESOLVED


def numpy_or_none() -> Any:
    """The numpy module if importable, else ``None`` (cached)."""
    global _np
    if _np is _UNRESOLVED:
        try:
            import numpy
        except Exception:  # pragma: no cover - exercised via monkeypatch
            _np = None
        else:
            _np = numpy
    return _np


def numpy_available() -> bool:
    return numpy_or_none() is not None


def validate_kernel_backend(kernel_backend: str) -> str:
    """Validate a ``kernel_backend`` string, returning it unchanged."""
    if kernel_backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"kernel_backend must be one of {KERNEL_BACKENDS}, "
            f"got {kernel_backend!r}"
        )
    return kernel_backend


def resolve_kernel_backend(kernel_backend: str) -> str:
    """Resolve ``"auto"|"numpy"|"python"`` to a concrete backend.

    ``"auto"`` picks numpy when importable and falls back to the pure
    python kernels otherwise; forcing ``"numpy"`` without numpy raises
    :class:`repro.core.errors.KernelBackendError` so a misconfigured
    deployment fails loudly instead of silently running 10x slower.
    """
    validate_kernel_backend(kernel_backend)
    if kernel_backend == "python":
        return "python"
    if numpy_available():
        return "numpy"
    if kernel_backend == "numpy":
        raise KernelBackendError(
            "kernel_backend='numpy' was requested but numpy is not "
            "importable in this environment; install numpy (the [test] "
            "extra ships it) or pass kernel_backend='auto' to fall back "
            "to the pure-python kernels"
        )
    return "python"


def _require_numpy() -> Any:
    np = numpy_or_none()
    if np is None:
        raise KernelBackendError(
            "the vectorized kernels need numpy, which is not importable; "
            "resolve the backend with resolve_kernel_backend() before "
            "calling into repro.kernels.vec"
        )
    return np


# ----------------------------------------------------------------------
# Frontier expansion
# ----------------------------------------------------------------------
def _gather_neighbors(np: Any, indptr: Any, indices: Any, frontier: Any) -> Any:
    """All neighbours of *frontier* (with duplicates) as one gather.

    Builds the flat index ``[indptr[u] .. indptr[u+1])`` for every
    frontier vertex ``u`` without a python-level loop: repeat each row
    start over its degree, then add a per-row ramp.
    """
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    cum = np.cumsum(counts)
    total = int(cum[-1]) if cum.size else 0
    if total == 0:
        return indices[:0]
    flat = np.arange(total, dtype=indptr.dtype) + np.repeat(starts - (cum - counts), counts)
    return indices[flat]


def _dedupe_scatter(np: Any, n: int, candidates: Any) -> Any:
    """Sorted unique vertex ids via flag scatter + ``flatnonzero``.

    One O(n) pass beats ``np.unique``'s hash/sort on the short, dense
    frontiers these kernels see, and the output comes back sorted for
    free (deterministic level order).
    """
    touched = np.zeros(n, dtype=bool)
    touched[candidates] = True
    return np.flatnonzero(touched)


def bfs_levels_csr(
    indptr: Sequence[int],
    indices: Sequence[int],
    source: int,
    max_depth: Optional[int] = None,
) -> list[list[int]]:
    """Vectorized twin of :func:`repro.index._traversal.bfs_levels_csr`.

    Reports the identical level *sets*; within a level vertices come
    out sorted rather than in discovery order, which every consumer in
    this package is insensitive to.
    """
    np = _require_numpy()
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    n = int(indptr.shape[0]) - 1
    seen = np.zeros(n, dtype=bool)
    seen[source] = True
    levels: list[list[int]] = []
    if max_depth is not None and max_depth <= 0:
        return levels
    # Level 1 is one contiguous row slice: CSR rows are unique and
    # sorted already, so no gather or dedupe is needed.
    row = indices[indptr[source] : indptr[source + 1]]
    frontier = row[~seen[row]]
    if frontier.size == 0:
        return levels
    seen[frontier] = True
    levels.append(frontier.tolist())
    depth = 1
    while max_depth is None or depth < max_depth:
        neighbors = _gather_neighbors(np, indptr, indices, frontier)
        candidates = neighbors[~seen[neighbors]]
        if candidates.size == 0:
            break
        frontier = _dedupe_scatter(np, n, candidates)
        seen[frontier] = True
        levels.append(frontier.tolist())
        depth += 1
    return levels


def bfs_distance_array_csr(
    indptr: Sequence[int],
    indices: Sequence[int],
    source: int,
    max_depth: Optional[int] = None,
) -> list[int]:
    """Vectorized twin of :func:`repro.index._traversal.bfs_distance_array_csr`.

    Vertices beyond *max_depth* hops (when given) keep
    :data:`UNREACHABLE`, exactly like the scalar twin.
    """
    np = _require_numpy()
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    n = int(indptr.shape[0]) - 1
    distances = np.full(n, UNREACHABLE, dtype=np.int64)
    distances[source] = 0
    if max_depth is not None and max_depth <= 0:
        return distances.tolist()
    row = indices[indptr[source] : indptr[source + 1]]
    frontier = row[distances[row] == UNREACHABLE]
    distances[frontier] = 1
    depth = 1
    while frontier.size and (max_depth is None or depth < max_depth):
        depth += 1
        neighbors = _gather_neighbors(np, indptr, indices, frontier)
        candidates = neighbors[distances[neighbors] == UNREACHABLE]
        if candidates.size == 0:
            break
        frontier = _dedupe_scatter(np, n, candidates)
        distances[frontier] = depth
    return distances.tolist()


# ----------------------------------------------------------------------
# Bitset packing
# ----------------------------------------------------------------------
def _pack_flags(np: Any, flags: Any) -> int:
    """Bool vertex array -> the engine's little-endian big-int bitset.

    ``np.packbits(bitorder="little")`` zero-pads the trailing byte, so
    the buffer matches ``bytearray((n + 7) >> 3)`` byte for byte and
    ``int.from_bytes(..., "little")`` yields the identical bitset the
    scalar path builds with per-vertex ``1 << v`` ORs.
    """
    return int.from_bytes(np.packbits(flags, bitorder="little").tobytes(), "little")


def ball_bits_csr(
    indptr: Sequence[int], indices: Sequence[int], source: int, k: int
) -> int:
    """Vectorized twin of ``BallBitsetEngine._build_ball_csr``: the
    bitset of vertices at distance 1..k from *source* (source excluded),
    grown by fancy-indexed frontier gathers and packed in one sweep."""
    np = _require_numpy()
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    n = int(indptr.shape[0]) - 1
    seen = np.zeros(n, dtype=bool)
    seen[source] = True
    if k > 0:
        # Level 1 is one contiguous row slice: unique and sorted, so it
        # doubles as the next frontier with no dedupe.
        frontier = indices[indptr[source] : indptr[source + 1]]
        seen[frontier] = True
        for depth in range(2, k + 1):
            if frontier.size == 0:
                break
            neighbors = _gather_neighbors(np, indptr, indices, frontier)
            if depth == k:
                # Last level: the ball only needs membership — scatter
                # straight into the flags (duplicates and already-seen
                # vertices are no-ops) and skip the frontier entirely.
                seen[neighbors] = True
                break
            candidates = neighbors[~seen[neighbors]]
            if candidates.size == 0:
                break
            frontier = _dedupe_scatter(np, n, candidates)
            seen[frontier] = True
    seen[source] = False  # the ball excludes its own centre
    return _pack_flags(np, seen)


def pack_vertices(vertices: Iterable[int], num_vertices: int) -> int:
    """Bulk :meth:`BallBitsetEngine.encode`: scatter *vertices* into a
    bool array and pack, instead of one big-int OR per vertex."""
    np = _require_numpy()
    flags = np.zeros(num_vertices, dtype=bool)
    ids = np.fromiter(vertices, dtype=np.int64)
    if ids.size:
        flags[ids] = True
    return _pack_flags(np, flags)


def decode_mask(mask: int) -> set[int]:
    """Bulk :meth:`BallBitsetEngine.decode`: unpack the mask's bytes to
    a bit array and read the set vertex ids off ``np.nonzero``, instead
    of one isolate-lowest-bit big-int op per member."""
    np = _require_numpy()
    if mask == 0:
        return set()
    raw = mask.to_bytes((mask.bit_length() + 7) >> 3, "little")
    bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), bitorder="little")
    return set(np.nonzero(bits)[0].tolist())


# ----------------------------------------------------------------------
# Bulk popcount over packed keyword masks
# ----------------------------------------------------------------------
def popcount_bytes(data: bytes | bytearray | memoryview) -> int:
    """Total set bits in a packed byte buffer.

    Prefers ``np.bitwise_count`` (numpy >= 2.0), then ``np.unpackbits``,
    then a chunked ``int.from_bytes(...).bit_count()`` pure-python
    fallback — the same ladder :func:`bulk_popcount` uses, so numpy
    presence changes speed, never values.  The buffer is consumed
    zero-copy (``np.frombuffer`` on the caller's bytes / bytearray /
    contiguous memoryview); the empty buffer counts 0.
    """
    if len(data) == 0:
        return 0
    np = numpy_or_none()
    if np is not None:
        arr = np.frombuffer(data, dtype=np.uint8)
        if hasattr(np, "bitwise_count"):
            return int(np.bitwise_count(arr).sum())
        return int(np.unpackbits(arr).sum())
    view = memoryview(data)
    total = 0
    for start in range(0, len(view), _POPCOUNT_CHUNK):
        chunk = view[start : start + _POPCOUNT_CHUNK]
        total += int.from_bytes(chunk, "little").bit_count()
    return total


def bulk_popcount(masks: Sequence[int], mask_bytes: Optional[int] = None) -> list[int]:
    """Per-mask popcounts of packed keyword-mask ints.

    With numpy the masks are laid out as one contiguous
    ``(len(masks), mask_bytes)`` uint8 matrix (written straight into a
    preallocated buffer — no per-mask ``bytes`` temporaries or join
    copy) and counted row-wise; without numpy each mask falls back to
    ``int.bit_count``.  *mask_bytes* defaults to the widest mask's byte
    length; an explicit *mask_bytes* too narrow for some mask (or a
    negative mask) raises :class:`ValueError`.  An empty sequence
    returns ``[]``.
    """
    if not masks:
        return []
    if mask_bytes is not None:
        # Validate up front so both backends reject the same inputs.
        if mask_bytes < 1:
            raise ValueError(f"mask_bytes must be >= 1, got {mask_bytes}")
        if min(masks) < 0 or max(masks).bit_length() > mask_bytes * 8:
            raise ValueError(f"a mask does not fit in mask_bytes={mask_bytes}")
    elif min(masks) < 0:
        raise ValueError("masks must be non-negative ints")
    np = numpy_or_none()
    if np is None:
        return [mask.bit_count() for mask in masks]
    if mask_bytes is None:
        mask_bytes = max(1, (max(masks).bit_length() + 7) >> 3)
    return popcount_rows(pack_masks(masks, mask_bytes)).tolist()


def pack_masks(masks: Sequence[int], mask_bytes: int) -> Any:
    """Keyword-mask ints as one ``(len(masks), mask_bytes)`` uint8 matrix.

    Row *i* holds ``masks[i]`` little-endian, so bit ``j`` of byte ``b``
    in row *i* is bit ``8 b + j`` of the int — byte-compatible with the
    scalar path's ``int`` masks and with :func:`popcount_bytes`.  Masks
    of at most 8 bytes take a fast path (one int-to-uint64 conversion
    viewed as bytes on little-endian hosts); wider masks are written
    ``to_bytes`` into a single preallocated buffer.  A mask that does
    not fit *mask_bytes* (or is negative) raises :class:`ValueError`.
    """
    np = _require_numpy()
    if mask_bytes < 1:
        raise ValueError(f"mask_bytes must be >= 1, got {mask_bytes}")
    n = len(masks)
    if mask_bytes <= 8 and sys.byteorder == "little":
        try:
            packed = np.asarray(masks, dtype=np.uint64)
        except (OverflowError, ValueError) as exc:
            raise ValueError(
                f"a mask does not fit in mask_bytes={mask_bytes}"
            ) from exc
        wide = packed.view(np.uint8).reshape(n, 8)
        if mask_bytes < 8 and bool((wide[:, mask_bytes:] != 0).any()):
            raise ValueError(f"a mask does not fit in mask_bytes={mask_bytes}")
        return wide[:, :mask_bytes]
    buf = bytearray(n * mask_bytes)
    offset = 0
    try:
        for mask in masks:
            buf[offset : offset + mask_bytes] = mask.to_bytes(mask_bytes, "little")
            offset += mask_bytes
    except OverflowError as exc:
        raise ValueError(
            f"a mask does not fit in mask_bytes={mask_bytes}"
        ) from exc
    return np.frombuffer(buf, dtype=np.uint8).reshape(n, mask_bytes)


def popcount_rows(matrix: Any) -> Any:
    """Row-wise popcount of a ``(n, mask_bytes)`` uint8 matrix (int64).

    Same backend ladder as :func:`popcount_bytes` — ``np.bitwise_count``
    when available, else ``np.unpackbits`` — so the counts match the
    scalar ``int.bit_count`` values exactly.
    """
    np = _require_numpy()
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)
    return np.unpackbits(np.ascontiguousarray(matrix), axis=1).sum(
        axis=1, dtype=np.int64
    )
