"""Curated example graphs: the paper's running example and the case study.

:func:`figure1_example` reconstructs the attributed network of Figure 1.
The paper's figure is only partially recoverable from the text, so the
reconstruction pins every structural fact the text states and verifies
the headline behaviour:

* the 1-hop neighbours of ``u0`` are ``{u1, u2, u3, u4, u9, u11}``
  (Section V-B storage example);
* the 1-hop neighbours of ``u3`` are ``{u0, u2, u4, u9}`` and
  ``dist(u3, u5) = 3`` (the NL/NLRNL probe walkthroughs);
* the vertices within 2 hops of ``u8`` are exactly
  ``{u0, u3, u4, u6, u7}`` (the k-line filtering example);
* ``u6`` and ``u7`` are directly connected (the introduction);
* for the running query ``<{SN, QP, DQ, GQ, GD}, p=3, k=1, N=2>`` the
  optimum coverage is 0.8 (no feasible group covers ``GQ``), with
  ``{u10, u1, u4}`` and ``{u10, u1, u5}`` among the optimal ties —
  matching the result the paper reports.

:func:`case_study_graph` is a 29-vertex "reviewer selection" network for
the Figure 8 effectiveness study: one all-covering senior author-like
hub that conflicts with every qualified reviewer, single-topic reviewers
reachable only through shared middlemen, and topic-free outsiders far
from everyone.  On this graph TAGQ (average-coverage objective) selects
zero-coverage outsiders while KTG never does, reproducing the "red
line" observation.
"""

from __future__ import annotations

from repro.core.graph import AttributedGraph
from repro.core.query import DKTGQuery, KTGQuery

__all__ = [
    "figure1_example",
    "figure1_query",
    "case_study_graph",
    "case_study_query",
    "CASE_STUDY_KEYWORDS",
]


def figure1_example() -> AttributedGraph:
    """The Figure 1 running example (12 reviewers, database keywords)."""
    edges = [
        (0, 1), (0, 2), (0, 3), (0, 4), (0, 9), (0, 11),
        (1, 2), (2, 3), (3, 4), (3, 9),
        (4, 6), (4, 8),
        (6, 7), (6, 10), (7, 8),
        (5, 11), (10, 11),
    ]
    keywords = {
        0: ["SN", "GD", "DQ"],   # social network, graph data, data quality
        1: ["DQ"],
        2: ["IR"],               # information retrieval
        3: ["ML"],               # machine learning
        4: ["GD"],
        5: ["GD"],
        6: ["SN", "GQ"],         # graph query
        7: ["QP", "DQ"],         # query processing
        8: ["KS"],               # keyword search
        9: ["DM"],               # data mining
        10: ["SN", "QP"],
        11: ["DQ", "GD"],
    }
    return AttributedGraph(12, edges, keywords)


def figure1_query() -> KTGQuery:
    """The running query of Example 1: ``<{SN,QP,DQ,GQ,GD}, 3, 1, 2>``."""
    return KTGQuery(
        keywords=("SN", "QP", "DQ", "GQ", "GD"),
        group_size=3,
        tenuity=1,
        top_n=2,
    )


#: Query keywords of the Figure 8 case study (Section VII-B).
CASE_STUDY_KEYWORDS = (
    "social network",
    "database",
    "community search",
    "graph",
    "query",
)

# Non-query expertise carried by middlemen and outsiders.
_OFF_TOPIC = ["machine learning", "information retrieval", "data mining"]


def case_study_graph() -> AttributedGraph:
    """The 29-vertex reviewer network of the Figure 8 case study.

    Layout: vertex 0 is the all-covering "senior" profile, vertex 1 a
    broad junior colleague; vertices 7..28 (even structure) are hubs,
    path extensions and single-topic reviewers; 13/14/15 are off-topic
    outsiders at distance > 2 from everything that matters.
    """
    hubs = [7, 9, 11, 17, 19, 21, 23, 25, 26, 28]
    satellite_of = {7: 2, 9: 3, 11: 4, 17: 16, 19: 18, 21: 20, 23: 22, 25: 6, 26: 5, 28: 27}

    edges: list[tuple[int, int]] = [(0, 1)]
    for hub in hubs:
        edges.append((0, hub))
        edges.append((1, hub))
        edges.append((hub, satellite_of[hub]))
    # Path extensions hanging the off-topic outsiders three hops out,
    # plus one off-topic assistant (24) attached to hub 28.
    edges.extend([(7, 8), (9, 10), (11, 12), (8, 13), (10, 14), (12, 15), (28, 24)])

    keywords: dict[int, list[str]] = {
        0: list(CASE_STUDY_KEYWORDS),
        1: ["database", "graph", "query"],
        2: ["social network"],
        3: ["database"],
        4: ["graph"],
        5: ["query"],
        6: ["community search"],
        16: ["query"],
        18: ["community search"],
        20: ["social network"],
        22: ["database", "graph"],
        27: ["query"],
        13: ["machine learning"],
        14: ["information retrieval"],
        15: ["data mining"],
    }
    for filler in (*hubs, 8, 10, 12, 24):
        keywords.setdefault(filler, [_OFF_TOPIC[filler % len(_OFF_TOPIC)]])
    return AttributedGraph(29, edges, keywords)


def case_study_query(gamma: float = 0.5) -> DKTGQuery:
    """The case-study query: ``N=3, p=3, k=2`` over the five DB keywords."""
    return DKTGQuery(
        keywords=CASE_STUDY_KEYWORDS,
        group_size=3,
        tenuity=2,
        top_n=3,
        gamma=gamma,
    )
