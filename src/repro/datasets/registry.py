"""Named dataset profiles calibrated to the paper's evaluation datasets.

The paper runs on five public social graphs plus a 1M-node DBLP variant
(Section VII).  Offline we cannot download them; each profile instead
records the *paper-reported* size and generates a scaled-down synthetic
graph via the power-law-cluster generator.  Density is calibrated so
that the **fraction of the graph inside a k-hop ball** at the evaluated
tenuity range (k = 1..4) behaves like the originals: shrinking a graph
by 30-100x while keeping its raw average degree would collapse the
diameter and make k=3,4 universally infeasible, so the attachment
parameter is scaled down alongside the vertex count while the paper's
*relative* density ordering (Twitter densest, Brightkite sparsest) is
preserved.  Scaling is documented per profile and adjustable with the
``scale`` argument.

Profiles pin their RNG seeds, so ``load_dataset("gowalla")`` produces
bit-identical graphs across runs and machines.

>>> graph, vocabulary = load_dataset("brightkite", scale=0.1)
>>> graph.num_vertices
140
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.errors import DatasetError
from repro.core.graph import AttributedGraph
from repro.datasets.keywords import KeywordModel, ZipfVocabulary, assign_keywords
from repro.datasets.synthetic import powerlaw_cluster_graph

__all__ = ["DatasetProfile", "PROFILES", "load_dataset", "profile_names"]


@dataclass(frozen=True)
class DatasetProfile:
    """Generation recipe for one paper dataset.

    ``paper_vertices``/``paper_edges`` are the sizes reported in
    Section VII; ``scaled_vertices`` is the default synthetic size
    (chosen so pure-Python branch-and-bound completes in seconds);
    ``edges_per_vertex`` is the attachment parameter, calibrated per the
    module docstring (k-ball fraction, not raw degree, is preserved).
    """

    name: str
    paper_vertices: int
    paper_edges: int
    scaled_vertices: int
    edges_per_vertex: int
    triangle_probability: float
    keyword_model: KeywordModel = field(default_factory=KeywordModel)
    seed: int = 0
    description: str = ""

    @property
    def paper_average_degree(self) -> float:
        return 2.0 * self.paper_edges / self.paper_vertices

    def instantiate(
        self,
        scale: float = 1.0,
        seed: int | None = None,
    ) -> tuple[AttributedGraph, ZipfVocabulary]:
        """Generate the graph and its keyword vocabulary.

        *scale* multiplies the default vertex count (never below the
        minimum the generator needs); *seed* overrides the pinned seed.
        """
        if scale <= 0:
            raise DatasetError(f"scale must be positive, got {scale}")
        num_vertices = max(
            int(round(self.scaled_vertices * scale)),
            self.edges_per_vertex + 2,
        )
        rng = random.Random(self.seed if seed is None else seed)
        graph = powerlaw_cluster_graph(
            num_vertices,
            self.edges_per_vertex,
            self.triangle_probability,
            rng,
        )
        vocabulary = assign_keywords(graph, self.keyword_model, rng)
        return graph, vocabulary


def _profile(
    name: str,
    paper_vertices: int,
    paper_edges: int,
    scaled_vertices: int,
    edges_per_vertex: int,
    triangle_probability: float,
    seed: int,
    description: str,
    vocabulary_size: int = 300,
) -> DatasetProfile:
    return DatasetProfile(
        name=name,
        paper_vertices=paper_vertices,
        paper_edges=paper_edges,
        scaled_vertices=scaled_vertices,
        edges_per_vertex=edges_per_vertex,
        triangle_probability=triangle_probability,
        keyword_model=KeywordModel(vocabulary_size=vocabulary_size),
        seed=seed,
        description=description,
    )


#: The paper's datasets.  Average paper degrees: DBLP 12.3, Gowalla 16.6,
#: Brightkite 7.3, Flickr 17.1, Twitter 43.5.
PROFILES: dict[str, DatasetProfile] = {
    profile.name: profile
    for profile in (
        _profile(
            "dblp",
            paper_vertices=200_000,
            paper_edges=1_228_923,
            scaled_vertices=2000,
            edges_per_vertex=3,
            triangle_probability=0.6,
            seed=101,
            description="Co-authorship network (clustered, avg degree ~12).",
        ),
        _profile(
            "gowalla",
            paper_vertices=67_320,
            paper_edges=559_200,
            scaled_vertices=1600,
            edges_per_vertex=4,
            triangle_probability=0.4,
            seed=102,
            description="Location-based friendship network (avg degree ~17).",
        ),
        _profile(
            "brightkite",
            paper_vertices=58_288,
            paper_edges=214_038,
            scaled_vertices=1400,
            edges_per_vertex=2,
            triangle_probability=0.4,
            seed=103,
            description="Location-based friendship network (sparser, avg degree ~7).",
        ),
        _profile(
            "flickr",
            paper_vertices=157_681,
            paper_edges=1_344_397,
            scaled_vertices=1800,
            edges_per_vertex=4,
            triangle_probability=0.3,
            seed=104,
            description="Photo-sharing contact network (avg degree ~17).",
        ),
        _profile(
            "twitter",
            paper_vertices=81_306,
            paper_edges=1_768_149,
            scaled_vertices=1200,
            edges_per_vertex=11,
            triangle_probability=0.3,
            seed=105,
            description="Denser follower network for Figure 7(a) (avg degree ~43).",
        ),
        _profile(
            "dblp-large",
            paper_vertices=1_000_000,
            paper_edges=6_000_000,
            scaled_vertices=5000,
            edges_per_vertex=3,
            triangle_probability=0.6,
            seed=106,
            description="The 1M-node DBLP variant for Figure 7(b), scaled.",
        ),
    )
}


def profile_names() -> list[str]:
    """Names of all registered dataset profiles."""
    return sorted(PROFILES)


def load_dataset(
    name: str,
    scale: float = 1.0,
    seed: int | None = None,
) -> tuple[AttributedGraph, ZipfVocabulary]:
    """Instantiate a named dataset profile.

    Raises :class:`DatasetError` for unknown names (listing the valid
    ones, since typos here are the common failure).
    """
    profile = PROFILES.get(name.lower())
    if profile is None:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(profile_names())}"
        )
    return profile.instantiate(scale=scale, seed=seed)
