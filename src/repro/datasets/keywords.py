"""Keyword assignment for synthetic attributed networks.

User profiles in social/bibliographic networks follow heavy-tailed
keyword frequencies (a few ubiquitous topics, a long tail of niche
ones), so vertices draw their keyword sets from a **Zipf-distributed
vocabulary**: keyword rank ``r`` has sampling weight ``r ** -exponent``.
The number of keywords per vertex is drawn uniformly from a small range,
mirroring author-profile sizes.

The same frequency model powers the query-workload generator
(:mod:`repro.workloads.generator`): query keywords are sampled from the
identical distribution, so query selectivity in the synthetic datasets
behaves like keyword selectivity against the paper's real profiles.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core.errors import DatasetError
from repro.core.graph import AttributedGraph

__all__ = ["ZipfVocabulary", "KeywordModel", "assign_keywords", "default_vocabulary"]

RandomLike = Union[random.Random, int, None]


def _resolve_rng(rng: RandomLike) -> random.Random:
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


def default_vocabulary(size: int) -> list[str]:
    """Generate ``kw000``-style labels for a synthetic vocabulary."""
    if size < 1:
        raise DatasetError(f"vocabulary size must be >= 1, got {size}")
    width = max(3, len(str(size - 1)))
    return [f"kw{index:0{width}d}" for index in range(size)]


class ZipfVocabulary:
    """A keyword vocabulary with Zipfian sampling weights.

    Rank-``r`` keyword (1-based) has weight ``r ** -exponent``.  Sampling
    uses a precomputed cumulative table + bisect, O(log M) per draw.

    >>> vocab = ZipfVocabulary(["db", "ml", "ir"], exponent=1.0)
    >>> vocab.sample(random.Random(7)) in {"db", "ml", "ir"}
    True
    """

    def __init__(self, labels: Sequence[str], exponent: float = 1.0) -> None:
        if not labels:
            raise DatasetError("vocabulary must not be empty")
        if exponent < 0:
            raise DatasetError(f"zipf exponent must be >= 0, got {exponent}")
        self.labels: tuple[str, ...] = tuple(labels)
        self.exponent = exponent
        weights = [(rank + 1) ** -exponent for rank in range(len(labels))]
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def __len__(self) -> int:
        return len(self.labels)

    def sample(self, rng: random.Random) -> str:
        """Draw one keyword label with Zipfian probability."""
        point = rng.random() * self._total
        index = bisect.bisect_left(self._cumulative, point)
        return self.labels[min(index, len(self.labels) - 1)]

    def sample_distinct(self, count: int, rng: random.Random) -> list[str]:
        """Draw *count* distinct labels (rejection sampling).

        Raises :class:`DatasetError` if *count* exceeds vocabulary size.
        """
        if count > len(self.labels):
            raise DatasetError(
                f"cannot draw {count} distinct keywords from a "
                f"vocabulary of {len(self.labels)}"
            )
        picked: list[str] = []
        seen: set[str] = set()
        while len(picked) < count:
            label = self.sample(rng)
            if label not in seen:
                seen.add(label)
                picked.append(label)
        return picked

    def frequency_of(self, label: str) -> float:
        """Sampling probability of *label* (0.0 if unknown)."""
        try:
            rank = self.labels.index(label)
        except ValueError:
            return 0.0
        weight = (rank + 1) ** -self.exponent
        return weight / self._total


@dataclass(frozen=True)
class KeywordModel:
    """Parameters of the keyword-assignment process.

    ``min_keywords``/``max_keywords`` bound the per-vertex profile size;
    ``exponent`` is the Zipf skew of the vocabulary.
    """

    vocabulary_size: int = 200
    exponent: float = 1.0
    min_keywords: int = 1
    max_keywords: int = 5

    def __post_init__(self) -> None:
        if self.min_keywords < 0 or self.max_keywords < self.min_keywords:
            raise DatasetError(
                f"invalid keyword count range "
                f"[{self.min_keywords}, {self.max_keywords}]"
            )
        if self.max_keywords > self.vocabulary_size:
            raise DatasetError(
                f"max_keywords {self.max_keywords} exceeds vocabulary "
                f"size {self.vocabulary_size}"
            )

    def build_vocabulary(self, labels: Optional[Sequence[str]] = None) -> ZipfVocabulary:
        if labels is None:
            labels = default_vocabulary(self.vocabulary_size)
        return ZipfVocabulary(labels, self.exponent)


def assign_keywords(
    graph: AttributedGraph,
    model: KeywordModel = KeywordModel(),
    rng: RandomLike = None,
    vocabulary: Optional[ZipfVocabulary] = None,
) -> ZipfVocabulary:
    """Assign Zipf-sampled keyword sets to every vertex of *graph*.

    Returns the vocabulary used, which the query-workload generator
    should share so query keywords follow the same distribution.
    """
    rng = _resolve_rng(rng)
    if vocabulary is None:
        vocabulary = model.build_vocabulary()
    for vertex in graph.vertices():
        count = rng.randint(model.min_keywords, model.max_keywords)
        count = min(count, len(vocabulary))
        labels = vocabulary.sample_distinct(count, rng) if count else []
        graph.set_keywords(vertex, labels)
    return vocabulary
