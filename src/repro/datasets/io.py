"""On-disk format for attributed social networks.

Two plain-text files describe a dataset, matching the edge-list +
attribute-table layout of the SNAP datasets the paper uses:

* the **edge file**: one ``u<TAB>v`` pair per line, ``#`` comments and
  blank lines ignored, vertex ids are non-negative ints;
* the **keyword file**: ``vertex<TAB>kw1,kw2,...`` per line; vertices
  missing from the file carry no keywords.

:func:`read_graph` accepts ids with gaps (they are compacted to dense
ids; the mapping is returned), because real edge lists are rarely
dense.  Round-tripping through :func:`write_graph`/:func:`read_graph`
preserves structure and keywords exactly, which a test asserts.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.core.errors import DatasetError
from repro.core.graph import AttributedGraph

__all__ = ["read_graph", "write_graph", "read_edge_list", "read_keyword_table"]

PathLike = Union[str, Path]


def read_edge_list(path: PathLike) -> list[tuple[int, int]]:
    """Parse an edge file into (u, v) int pairs (duplicates collapsed,
    self-loops dropped — SNAP dumps contain both)."""
    edges: set[tuple[int, int]] = set()
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise DatasetError(f"cannot read edge file {path}: {exc}") from exc
    for line_number, raw in enumerate(lines, 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.replace(",", "\t").split()
        if len(parts) != 2:
            raise DatasetError(
                f"{path}:{line_number}: expected 'u v', got {raw!r}"
            )
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise DatasetError(
                f"{path}:{line_number}: non-integer vertex id in {raw!r}"
            ) from exc
        if u < 0 or v < 0:
            raise DatasetError(
                f"{path}:{line_number}: negative vertex id in {raw!r}"
            )
        if u == v:
            continue
        edges.add((min(u, v), max(u, v)))
    return sorted(edges)


def read_keyword_table(path: PathLike) -> dict[int, list[str]]:
    """Parse a keyword file into ``vertex -> labels``."""
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise DatasetError(f"cannot read keyword file {path}: {exc}") from exc
    table: dict[int, list[str]] = {}
    for line_number, raw in enumerate(lines, 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        vertex_part, _, labels_part = line.partition("\t")
        if not _:
            # Allow single-space separation as a fallback.
            vertex_part, _, labels_part = line.partition(" ")
        try:
            vertex = int(vertex_part)
        except ValueError as exc:
            raise DatasetError(
                f"{path}:{line_number}: non-integer vertex id in {raw!r}"
            ) from exc
        labels = [label for label in labels_part.split(",") if label]
        table[vertex] = labels
    return table


def read_graph(
    edge_path: PathLike,
    keyword_path: Optional[PathLike] = None,
) -> tuple[AttributedGraph, dict[int, int]]:
    """Load a graph (and optional keywords) from disk.

    Returns the graph plus the ``original_id -> dense_id`` mapping used
    to compact sparse vertex ids.
    """
    edges = read_edge_list(edge_path)
    keywords = read_keyword_table(keyword_path) if keyword_path is not None else {}

    original_ids = sorted(
        {u for u, _ in edges} | {v for _, v in edges} | set(keywords)
    )
    mapping = {original: dense for dense, original in enumerate(original_ids)}
    dense_edges = [(mapping[u], mapping[v]) for u, v in edges]
    dense_keywords = {mapping[v]: labels for v, labels in keywords.items()}
    graph = AttributedGraph(len(original_ids), dense_edges, dense_keywords)
    return graph, mapping


def write_graph(
    graph: AttributedGraph,
    edge_path: PathLike,
    keyword_path: Optional[PathLike] = None,
) -> None:
    """Write *graph* to the edge/keyword file format."""
    edge_lines = [f"{u}\t{v}" for u, v in sorted(graph.edges())]
    Path(edge_path).write_text(
        "# repro attributed-graph edge list\n" + "\n".join(edge_lines) + "\n"
    )
    if keyword_path is None:
        return
    keyword_lines = []
    for vertex in graph.vertices():
        labels = graph.keyword_labels(vertex)
        if labels:
            keyword_lines.append(f"{vertex}\t{','.join(labels)}")
    Path(keyword_path).write_text(
        "# repro attributed-graph keywords\n" + "\n".join(keyword_lines) + "\n"
    )
