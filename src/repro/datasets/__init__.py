"""Dataset substrate: synthetic social networks and file I/O.

The paper's real datasets (DBLP, Gowalla, Brightkite, Flickr, Twitter)
are unavailable offline; named profiles generate scaled synthetic
equivalents with matching average degree and Zipfian keyword profiles.
Curated example graphs reproduce the paper's Figure 1 running example
and the Figure 8 case study.
"""

from repro.datasets.figure1 import (
    CASE_STUDY_KEYWORDS,
    case_study_graph,
    case_study_query,
    figure1_example,
    figure1_query,
)
from repro.datasets.io import read_graph, write_graph
from repro.datasets.keywords import KeywordModel, ZipfVocabulary, assign_keywords
from repro.datasets.registry import DatasetProfile, PROFILES, load_dataset, profile_names
from repro.datasets.synthetic import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    watts_strogatz_graph,
)

__all__ = [
    "DatasetProfile",
    "PROFILES",
    "load_dataset",
    "profile_names",
    "KeywordModel",
    "ZipfVocabulary",
    "assign_keywords",
    "powerlaw_cluster_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "erdos_renyi_graph",
    "read_graph",
    "write_graph",
    "figure1_example",
    "figure1_query",
    "case_study_graph",
    "case_study_query",
    "CASE_STUDY_KEYWORDS",
]
