"""Synthetic social-graph generators (dataset substrate).

The paper evaluates on DBLP, Gowalla, Brightkite, Flickr and Twitter —
all heavy-tailed social graphs.  Offline, we generate structurally
comparable graphs from scratch (no networkx dependency in the library
itself):

* :func:`powerlaw_cluster_graph` — Holme-Kim-style preferential
  attachment with triadic closure.  This is the workhorse: it produces
  the power-law degree distribution plus the local clustering that
  friendship/co-authorship graphs exhibit, the two properties that drive
  k-line filtering cost and index size.
* :func:`barabasi_albert_graph` — pure preferential attachment
  (power-law, low clustering).
* :func:`watts_strogatz_graph` — small-world rewiring (high clustering,
  near-uniform degree), useful as a contrast case in tests.
* :func:`erdos_renyi_graph` — the G(n, p) null model.

All generators take an explicit ``random.Random`` (or a seed) and are
fully deterministic given one; dataset profiles pin seeds so experiment
runs are reproducible.
"""

from __future__ import annotations

import random
from typing import Union

from repro.core.errors import DatasetError
from repro.core.graph import AttributedGraph

__all__ = [
    "powerlaw_cluster_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "erdos_renyi_graph",
]

RandomLike = Union[random.Random, int, None]


def _resolve_rng(rng: RandomLike) -> random.Random:
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


def _check_ba_parameters(num_vertices: int, edges_per_vertex: int) -> None:
    if edges_per_vertex < 1:
        raise DatasetError(
            f"edges_per_vertex must be >= 1, got {edges_per_vertex}"
        )
    if num_vertices <= edges_per_vertex:
        raise DatasetError(
            f"need num_vertices > edges_per_vertex, got "
            f"{num_vertices} <= {edges_per_vertex}"
        )


def barabasi_albert_graph(
    num_vertices: int,
    edges_per_vertex: int,
    rng: RandomLike = None,
) -> AttributedGraph:
    """Preferential-attachment graph (Barabási-Albert).

    Starts from a star over the first ``edges_per_vertex + 1`` vertices;
    each subsequent vertex attaches to ``edges_per_vertex`` distinct
    existing vertices chosen proportionally to degree (implemented with
    the standard repeated-endpoint trick).
    """
    _check_ba_parameters(num_vertices, edges_per_vertex)
    rng = _resolve_rng(rng)

    edges: list[tuple[int, int]] = []
    # repeated_endpoints holds one entry per edge endpoint; sampling from
    # it uniformly is sampling vertices proportionally to degree.
    repeated_endpoints: list[int] = []
    for v in range(1, edges_per_vertex + 1):
        edges.append((0, v))
        repeated_endpoints.extend((0, v))

    for v in range(edges_per_vertex + 1, num_vertices):
        targets: set[int] = set()
        while len(targets) < edges_per_vertex:
            targets.add(rng.choice(repeated_endpoints))
        for target in targets:
            edges.append((v, target))
            repeated_endpoints.extend((v, target))
    return AttributedGraph(num_vertices, edges)


def powerlaw_cluster_graph(
    num_vertices: int,
    edges_per_vertex: int,
    triangle_probability: float = 0.5,
    rng: RandomLike = None,
) -> AttributedGraph:
    """Power-law graph with tunable clustering (Holme-Kim model).

    Like Barabási-Albert, but after each preferential attachment step a
    triad is closed with probability *triangle_probability*: the new
    vertex also connects to a random neighbour of the vertex it just
    attached to.  Higher values give more triangles, i.e. more pairs at
    distance <= 2 — directly stressing the k-line machinery.
    """
    _check_ba_parameters(num_vertices, edges_per_vertex)
    if not 0.0 <= triangle_probability <= 1.0:
        raise DatasetError(
            f"triangle_probability must be within [0, 1], got {triangle_probability}"
        )
    rng = _resolve_rng(rng)

    adjacency: list[set[int]] = [set() for _ in range(num_vertices)]
    repeated_endpoints: list[int] = []

    def connect(u: int, v: int) -> None:
        adjacency[u].add(v)
        adjacency[v].add(u)
        repeated_endpoints.extend((u, v))

    for v in range(1, edges_per_vertex + 1):
        connect(0, v)

    for v in range(edges_per_vertex + 1, num_vertices):
        added = 0
        while added < edges_per_vertex:
            target = rng.choice(repeated_endpoints)
            if target == v or target in adjacency[v]:
                continue
            connect(v, target)
            added += 1
            # Triad step: also link to a neighbour of `target`.
            if added < edges_per_vertex and rng.random() < triangle_probability:
                candidates = [w for w in adjacency[target] if w != v and w not in adjacency[v]]
                if candidates:
                    connect(v, rng.choice(candidates))
                    added += 1

    edges = [
        (u, w) for u in range(num_vertices) for w in adjacency[u] if u < w
    ]
    return AttributedGraph(num_vertices, edges)


def watts_strogatz_graph(
    num_vertices: int,
    nearest_neighbors: int,
    rewire_probability: float,
    rng: RandomLike = None,
) -> AttributedGraph:
    """Small-world ring lattice with random rewiring (Watts-Strogatz).

    *nearest_neighbors* must be even; each vertex starts connected to
    that many ring neighbours, then each edge's far endpoint is rewired
    with probability *rewire_probability*.
    """
    if nearest_neighbors % 2 or nearest_neighbors < 2:
        raise DatasetError(
            f"nearest_neighbors must be even and >= 2, got {nearest_neighbors}"
        )
    if num_vertices <= nearest_neighbors:
        raise DatasetError(
            f"need num_vertices > nearest_neighbors, got "
            f"{num_vertices} <= {nearest_neighbors}"
        )
    if not 0.0 <= rewire_probability <= 1.0:
        raise DatasetError(
            f"rewire_probability must be within [0, 1], got {rewire_probability}"
        )
    rng = _resolve_rng(rng)

    adjacency: list[set[int]] = [set() for _ in range(num_vertices)]
    for u in range(num_vertices):
        for offset in range(1, nearest_neighbors // 2 + 1):
            v = (u + offset) % num_vertices
            adjacency[u].add(v)
            adjacency[v].add(u)

    for u in range(num_vertices):
        for offset in range(1, nearest_neighbors // 2 + 1):
            v = (u + offset) % num_vertices
            if rng.random() < rewire_probability and v in adjacency[u]:
                choices = [
                    w
                    for w in range(num_vertices)
                    if w != u and w not in adjacency[u]
                ]
                if not choices:
                    continue
                w = rng.choice(choices)
                adjacency[u].discard(v)
                adjacency[v].discard(u)
                adjacency[u].add(w)
                adjacency[w].add(u)

    edges = [(u, w) for u in range(num_vertices) for w in adjacency[u] if u < w]
    return AttributedGraph(num_vertices, edges)


def erdos_renyi_graph(
    num_vertices: int,
    edge_probability: float,
    rng: RandomLike = None,
) -> AttributedGraph:
    """G(n, p) random graph via geometric edge skipping (O(|E|))."""
    if not 0.0 <= edge_probability <= 1.0:
        raise DatasetError(
            f"edge_probability must be within [0, 1], got {edge_probability}"
        )
    rng = _resolve_rng(rng)
    edges: list[tuple[int, int]] = []
    if edge_probability >= 1.0:
        edges = [
            (u, v)
            for u in range(num_vertices)
            for v in range(u + 1, num_vertices)
        ]
    elif edge_probability > 0.0:
        # Batagelj-Brandes geometric skipping over the (v, w) pairs with
        # w < v: expected O(|E|) instead of O(n^2).
        import math

        log_q = math.log(1.0 - edge_probability)
        v, w = 1, -1
        while v < num_vertices:
            w += 1 + int(math.log(1.0 - rng.random()) / log_q)
            while w >= v and v < num_vertices:
                w -= v
                v += 1
            if v < num_vertices:
                edges.append((w, v))
    return AttributedGraph(num_vertices, edges)
