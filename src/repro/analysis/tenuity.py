"""Tenuity metrics from the paper and its related work (Section II-A).

The literature measures how "tenuous" a group is in several ways; the
paper surveys them and argues for its own *k-distance group* notion.
This module implements the full family so results can be compared
across models:

* :func:`kline_count` — the number of *k-lines* (pairs within k hops),
  the quantity Li [2] minimises;
* :func:`ktriangle_count` — the number of *k-triangles* (triples whose
  three pairwise distances are all within k), Shen et al. [1, 4];
* :func:`ktenuity` — Li et al. [18]'s ratio of within-k pairs to all
  pairs (also available as :func:`repro.baselines.tagq.k_tenuity`);
* :func:`group_tenuity` — the paper's Definition 4: the smallest
  pairwise social distance in the group;
* :func:`is_k_distance_group` — Definition 3's predicate.

All functions accept any :class:`~repro.index.base.DistanceOracle` (or
a graph, falling back to BFS).
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence, Union

from repro.core.graph import AttributedGraph
from repro.index.base import DistanceOracle
from repro.index.bfs import BFSOracle

__all__ = [
    "kline_count",
    "ktriangle_count",
    "ktenuity",
    "group_tenuity",
    "is_k_distance_group",
    "tenuity_report",
]

OracleLike = Union[AttributedGraph, DistanceOracle]


def _as_oracle(source: OracleLike) -> DistanceOracle:
    if isinstance(source, AttributedGraph):
        return BFSOracle(source)
    return source


def kline_count(source: OracleLike, members: Sequence[int], k: int) -> int:
    """Number of k-lines in the group (Definition 2 pairs).

    Li [2]'s objective minimises this; a k-distance group has zero.

    >>> g = AttributedGraph(3, [(0, 1)])
    >>> kline_count(g, [0, 1, 2], 1)
    1
    """
    oracle = _as_oracle(source)
    return sum(
        1 for u, v in combinations(members, 2) if not oracle.is_tenuous(u, v, k)
    )


def ktriangle_count(source: OracleLike, members: Sequence[int], k: int) -> int:
    """Number of k-triangles (Shen et al. [1]): triples in which every
    pair lies within k hops.

    >>> g = AttributedGraph(3, [(0, 1), (1, 2), (0, 2)])
    >>> ktriangle_count(g, [0, 1, 2], 1)
    1
    """
    oracle = _as_oracle(source)
    close = {
        frozenset(pair)
        for pair in combinations(members, 2)
        if not oracle.is_tenuous(pair[0], pair[1], k)
    }
    count = 0
    for a, b, c in combinations(members, 3):
        if (
            frozenset((a, b)) in close
            and frozenset((b, c)) in close
            and frozenset((a, c)) in close
        ):
            count += 1
    return count


def ktenuity(source: OracleLike, members: Sequence[int], k: int) -> float:
    """Li et al. [18]'s k-tenuity: within-k pairs / all pairs.

    The paper's critique: any positive value admits close pairs, so the
    measure cannot *guarantee* tenuity the way Definition 3 does.
    """
    members = list(members)
    total = len(members) * (len(members) - 1) // 2
    if total == 0:
        return 0.0
    return kline_count(source, members, k) / total


def group_tenuity(graph: AttributedGraph, members: Sequence[int]) -> float:
    """Definition 4: the smallest pairwise social distance in the group.

    Unreachable pairs contribute infinity; a group with fewer than two
    members has tenuity infinity (no pair constrains it).
    """
    best = float("inf")
    for u, v in combinations(members, 2):
        distance = graph.hop_distance(u, v)
        value = float("inf") if distance is None else float(distance)
        if value < best:
            best = value
    return best


def is_k_distance_group(source: OracleLike, members: Sequence[int], k: int) -> bool:
    """Definition 3's predicate: every pairwise distance exceeds k."""
    return kline_count(source, members, k) == 0


def tenuity_report(
    graph: AttributedGraph, members: Sequence[int], k: int
) -> dict[str, float]:
    """All metrics at once, as a flat row for tables.

    >>> g = AttributedGraph(3, [(0, 1)])
    >>> report = tenuity_report(g, [0, 1, 2], 1)
    >>> report["k_lines"], report["k_distance_group"]
    (1, False)
    """
    oracle = BFSOracle(graph)
    return {
        "k": k,
        "size": len(members),
        "k_lines": kline_count(oracle, members, k),
        "k_triangles": ktriangle_count(oracle, members, k),
        "k_tenuity": ktenuity(oracle, members, k),
        "group_tenuity": group_tenuity(graph, members),
        "k_distance_group": is_k_distance_group(oracle, members, k),
    }
