"""Effectiveness metrics over query results.

Latency is measured by :mod:`repro.workloads.runner`; this module covers
the *quality* side used in the case study and the result analyses:
coverage statistics, per-member coverage checks (KTG's guarantee that no
member is off-topic), group overlap (the motivation for DKTG), and
tenuity verification.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Sequence

from repro.core.coverage import CoverageContext
from repro.core.dktg import result_diversity
from repro.core.graph import AttributedGraph
from repro.core.results import Group
from repro.index.base import DistanceOracle

__all__ = ["ResultQuality", "assess_result", "verify_tenuity", "member_overlap_ratio"]


@dataclass(frozen=True)
class ResultQuality:
    """Quality summary of one result set against its query keywords."""

    group_count: int
    best_coverage: float
    worst_coverage: float
    mean_member_coverage: float
    zero_coverage_members: int
    diversity: float

    def row(self) -> dict:
        return {
            "groups": self.group_count,
            "best_cov": self.best_coverage,
            "worst_cov": self.worst_coverage,
            "mean_member_cov": self.mean_member_coverage,
            "zero_members": self.zero_coverage_members,
            "diversity": self.diversity,
        }


def assess_result(
    graph: AttributedGraph,
    query_keywords: Sequence[str],
    groups: Sequence[Group],
) -> ResultQuality:
    """Summarise coverage/diversity quality of a result set.

    ``zero_coverage_members`` counts members carrying no query keyword —
    always 0 for KTG algorithms (a model guarantee), typically positive
    for TAGQ (the case-study "red line" reviewers).
    """
    context = CoverageContext(graph, query_keywords)
    member_coverages: list[float] = []
    zero_members = 0
    for group in groups:
        for member in group.members:
            coverage = context.vertex_coverage(member)
            member_coverages.append(coverage)
            if coverage == 0.0:
                zero_members += 1
    coverages = [group.coverage for group in groups]
    return ResultQuality(
        group_count=len(groups),
        best_coverage=max(coverages, default=0.0),
        worst_coverage=min(coverages, default=0.0),
        mean_member_coverage=(
            statistics.fmean(member_coverages) if member_coverages else 0.0
        ),
        zero_coverage_members=zero_members,
        diversity=result_diversity([group.members for group in groups]),
    )


def verify_tenuity(
    oracle: DistanceOracle,
    groups: Sequence[Group],
    k: int,
) -> bool:
    """Whether every group is a k-distance group (Definition 3)."""
    for group in groups:
        members = group.members
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if not oracle.is_tenuous(u, v, k):
                    return False
    return True


def member_overlap_ratio(groups: Sequence[Group]) -> float:
    """Fraction of member slots occupied by repeated vertices.

    0.0 means all groups are pairwise disjoint (maximal diversity);
    values near 1 mean the result is near-duplicates — the paper's
    "u1u2u3 / u1u2u4 / u1u2u5" pathology that motivates DKTG.
    """
    total_slots = sum(group.size for group in groups)
    if total_slots == 0:
        return 0.0
    distinct = len({member for group in groups for member in group.members})
    return (total_slots - distinct) / total_slots
