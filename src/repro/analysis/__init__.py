"""Result analysis: quality metrics, tables, and the Figure 8 case study."""

from repro.analysis.case_study import CaseStudyOutcome, render_case_study, run_case_study
from repro.analysis.metrics import (
    ResultQuality,
    assess_result,
    member_overlap_ratio,
    verify_tenuity,
)
from repro.analysis.graphstats import GraphStatistics, compute_statistics, degree_histogram, hop_ball_profile
from repro.analysis.tables import render_series, render_table, rows_to_csv, write_csv
from repro.analysis.tenuity import (
    group_tenuity,
    is_k_distance_group,
    kline_count,
    ktenuity,
    ktriangle_count,
    tenuity_report,
)

__all__ = [
    "CaseStudyOutcome",
    "run_case_study",
    "render_case_study",
    "ResultQuality",
    "assess_result",
    "verify_tenuity",
    "member_overlap_ratio",
    "render_table",
    "render_series",
    "rows_to_csv",
    "write_csv",
    "GraphStatistics",
    "compute_statistics",
    "degree_histogram",
    "hop_ball_profile",
    "kline_count",
    "ktriangle_count",
    "ktenuity",
    "group_tenuity",
    "is_k_distance_group",
    "tenuity_report",
]
