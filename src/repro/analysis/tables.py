"""Tabular rendering of experiment results.

Benchmarks and the CLI print results as fixed-width ASCII tables (the
paper's figures are line charts; a table of the same series carries the
identical information in a terminal) and can persist them as CSV for
external plotting.  Rendering is dependency-free.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

__all__ = ["render_table", "rows_to_csv", "write_csv", "render_series"]

Cell = Union[str, int, float, None]


def _format_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Cell]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict-rows as a fixed-width table.

    Column order follows *columns* when given, otherwise first-seen key
    order across the rows.

    >>> print(render_table([{"algo": "VKC", "ms": 12.5}]))
    algo | ms
    -----+------
    VKC  | 12.50
    """
    if columns is None:
        seen: dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key)
        columns = list(seen)
    if not columns:
        return "(empty table)"

    formatted = [
        [_format_cell(row.get(column)) for column in columns] for row in rows
    ]
    widths = [
        max(len(column), *(len(line[i]) for line in formatted)) if formatted else len(column)
        for i, column in enumerate(columns)
    ]

    out: list[str] = []
    if title:
        out.append(title)
    out.append(" | ".join(column.ljust(width) for column, width in zip(columns, widths)))
    out.append("-+-".join("-" * width for width in widths))
    for line in formatted:
        out.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(out)


def render_series(
    series: Mapping[str, Sequence[tuple[int, float]]],
    x_label: str,
    y_label: str = "mean_ms",
    title: Optional[str] = None,
) -> str:
    """Render per-algorithm (x, y) series as one table with x as rows.

    This is the figure-shaped view: one row per parameter value, one
    column per algorithm — directly comparable with the paper's charts.
    """
    xs: list[int] = sorted({x for points in series.values() for x, _ in points})
    algorithms = list(series)
    rows = []
    for x in xs:
        row: dict[str, Cell] = {x_label: x}
        for algorithm in algorithms:
            lookup = dict(series[algorithm])
            row[algorithm] = lookup.get(x)
        rows.append(row)
    heading = title or f"{y_label} by {x_label}"
    return render_table(rows, columns=[x_label, *algorithms], title=heading)


def rows_to_csv(rows: Sequence[Mapping[str, Cell]], columns: Optional[Sequence[str]] = None) -> str:
    """Serialise dict-rows to CSV text."""
    if columns is None:
        seen: dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key)
        columns = list(seen)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({key: row.get(key) for key in columns})
    return buffer.getvalue()


def write_csv(
    rows: Sequence[Mapping[str, Cell]],
    path: Union[str, Path],
    columns: Optional[Sequence[str]] = None,
) -> None:
    """Write dict-rows to a CSV file."""
    Path(path).write_text(rows_to_csv(rows, columns))
