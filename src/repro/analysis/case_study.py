"""The Figure 8 case study: KTG-VKC-DEG vs DKTG-Greedy vs TAGQ.

Reproduces the paper's effectiveness comparison on the reviewer-selection
scenario: all three algorithms answer the same query; the rendered
report shows, per returned group, each member's keywords, per-member
query-keyword coverage (flagging the TAGQ members with none — the
paper's red lines), pairwise hop distances, and the result-set diversity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import ResultQuality, assess_result, member_overlap_ratio
from repro.baselines.tagq import TAGQSolver
from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.coverage import CoverageContext
from repro.core.dktg import DKTGGreedySolver
from repro.core.graph import AttributedGraph
from repro.core.query import DKTGQuery
from repro.core.results import Group
from repro.core.strategies import VKCDegreeOrdering
from repro.index.nlrnl import NLRNLIndex

__all__ = ["CaseStudyOutcome", "run_case_study", "render_case_study"]


@dataclass(frozen=True)
class CaseStudyOutcome:
    """Results of the three algorithms on one case-study query."""

    graph: AttributedGraph
    query: DKTGQuery
    results: dict[str, tuple[Group, ...]]
    quality: dict[str, ResultQuality]
    overlap: dict[str, float]


def run_case_study(
    graph: AttributedGraph,
    query: DKTGQuery,
    tagq_max_tenuity: float = 0.0,
) -> CaseStudyOutcome:
    """Run KTG-VKC-DEG, DKTG-Greedy and TAGQ on the same query."""
    oracle = NLRNLIndex(graph)
    base = query.base_query()

    ktg = BranchAndBoundSolver(
        graph, oracle=oracle, strategy=VKCDegreeOrdering(graph.degrees())
    ).solve(base)
    dktg = DKTGGreedySolver(
        graph,
        inner_solver=BranchAndBoundSolver(
            graph, oracle=oracle, strategy=VKCDegreeOrdering(graph.degrees())
        ),
    ).solve(query)
    tagq = TAGQSolver(graph, oracle=oracle, max_tenuity=tagq_max_tenuity).solve(base)

    results = {
        "KTG-VKC-DEG": ktg.groups,
        "DKTG-Greedy": dktg.groups,
        "TAGQ": tagq.groups,
    }
    quality = {
        name: assess_result(graph, query.keywords, groups)
        for name, groups in results.items()
    }
    overlap = {name: member_overlap_ratio(groups) for name, groups in results.items()}
    return CaseStudyOutcome(
        graph=graph, query=query, results=results, quality=quality, overlap=overlap
    )


def render_case_study(outcome: CaseStudyOutcome) -> str:
    """Render the case study as the paper's figure-8-style report."""
    graph = outcome.graph
    context = CoverageContext(graph, outcome.query.keywords)
    lines: list[str] = [
        f"Query keywords: {', '.join(outcome.query.keywords)}",
        (
            f"N={outcome.query.top_n} p={outcome.query.group_size} "
            f"k={outcome.query.tenuity}"
        ),
        "",
    ]
    for name, groups in outcome.results.items():
        quality = outcome.quality[name]
        lines.append(
            f"== {name}  (diversity={quality.diversity:.2f}, "
            f"overlap={outcome.overlap[name]:.2f}, "
            f"zero-coverage members={quality.zero_coverage_members})"
        )
        for rank, group in enumerate(groups, 1):
            lines.append(f"  group {rank}: coverage={group.coverage:.2f}")
            for member in group.members:
                labels = ", ".join(graph.keyword_labels(member)) or "(none)"
                flag = "  << no query keyword" if context.masks[member] == 0 else ""
                lines.append(f"    u{member}: {labels}{flag}")
            hops = []
            for i, u in enumerate(group.members):
                for v in group.members[i + 1 :]:
                    distance = graph.hop_distance(u, v)
                    hops.append(
                        f"u{u}-u{v}:{'inf' if distance is None else distance}"
                    )
            lines.append(f"    hops: {'  '.join(hops)}")
        lines.append("")
    return "\n".join(lines)
