"""Structural statistics of attributed social networks.

The synthetic dataset profiles claim to be "structurally comparable" to
the paper's real graphs; this module provides the numbers behind that
claim — degree distribution, clustering, hop-ball growth, component
structure and keyword-frequency skew — and is what the calibration
tests assert against.

Everything is dependency-free and exact except hop statistics, which
sample BFS sources on large graphs (exact under ``sample_size=None``).
"""

from __future__ import annotations

import random
import statistics
from collections import Counter
from dataclasses import dataclass
from typing import Optional

from repro.core.graph import AttributedGraph
from repro.index._traversal import bfs_levels

__all__ = ["GraphStatistics", "compute_statistics", "degree_histogram", "hop_ball_profile"]


@dataclass(frozen=True)
class GraphStatistics:
    """Summary structure of one graph (see :func:`compute_statistics`)."""

    num_vertices: int
    num_edges: int
    average_degree: float
    max_degree: int
    degree_gini: float
    clustering_coefficient: float
    num_components: int
    largest_component_fraction: float
    estimated_diameter: int
    hop_ball_fractions: tuple[float, ...]  # index i -> |ball(k=i+1)| / n
    keywords_per_vertex: float
    distinct_keywords: int

    def row(self) -> dict:
        return {
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "avg_degree": self.average_degree,
            "max_degree": self.max_degree,
            "degree_gini": self.degree_gini,
            "clustering": self.clustering_coefficient,
            "components": self.num_components,
            "lcc_fraction": self.largest_component_fraction,
            "diameter_est": self.estimated_diameter,
            "ball_k2_fraction": (
                self.hop_ball_fractions[1] if len(self.hop_ball_fractions) > 1 else 0.0
            ),
            "kw_per_vertex": self.keywords_per_vertex,
            "distinct_kw": self.distinct_keywords,
        }


def degree_histogram(graph: AttributedGraph) -> dict[int, int]:
    """``degree -> vertex count`` histogram."""
    return dict(Counter(graph.degrees()))


def _gini(values: list[int]) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, ->1 = skew)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    total = sum(ordered)
    if total == 0:
        return 0.0
    n = len(ordered)
    cumulative = 0.0
    for rank, value in enumerate(ordered, 1):
        cumulative += rank * value
    return (2.0 * cumulative) / (n * total) - (n + 1.0) / n


def _clustering(graph: AttributedGraph, sample: list[int]) -> float:
    """Mean local clustering coefficient over *sample* vertices."""
    adjacency = graph.adjacency_view()
    coefficients = []
    for vertex in sample:
        neighbors = adjacency[vertex]
        degree = len(neighbors)
        if degree < 2:
            coefficients.append(0.0)
            continue
        links = 0
        neighbor_list = list(neighbors)
        for i, u in enumerate(neighbor_list):
            adjacency_u = adjacency[u]
            for v in neighbor_list[i + 1 :]:
                if v in adjacency_u:
                    links += 1
        coefficients.append(2.0 * links / (degree * (degree - 1)))
    return statistics.fmean(coefficients) if coefficients else 0.0


def hop_ball_profile(
    graph: AttributedGraph,
    max_hops: int = 6,
    sample_size: Optional[int] = 64,
    seed: int = 0,
) -> tuple[list[float], int]:
    """Average ball sizes |{v : dist <= k}| / n for k = 1..max_hops,
    plus the largest BFS depth seen (a diameter lower bound).

    Sampling keeps this O(sample * (n + e)); ``sample_size=None`` uses
    every vertex.
    """
    n = graph.num_vertices
    if n == 0:
        return [0.0] * max_hops, 0
    if sample_size is None or sample_size >= n:
        sources = list(range(n))
    else:
        sources = random.Random(seed).sample(range(n), sample_size)
    adjacency = graph.adjacency_view()
    totals = [0.0] * max_hops
    deepest = 0
    for source in sources:
        levels = bfs_levels(adjacency, source)
        deepest = max(deepest, len(levels))
        running = 0
        for depth in range(max_hops):
            if depth < len(levels):
                running += len(levels[depth])
            totals[depth] += running
    fractions = [total / (len(sources) * n) for total in totals]
    return fractions, deepest


def compute_statistics(
    graph: AttributedGraph,
    sample_size: Optional[int] = 64,
    seed: int = 0,
) -> GraphStatistics:
    """Compute the full statistics summary of *graph*."""
    n = graph.num_vertices
    degrees = graph.degrees()
    components = graph.connected_components()
    component_sizes = Counter(components)

    if n == 0:
        sample: list[int] = []
    elif sample_size is None or sample_size >= n:
        sample = list(range(n))
    else:
        sample = random.Random(seed).sample(range(n), sample_size)

    ball_fractions, deepest = hop_ball_profile(
        graph, max_hops=6, sample_size=sample_size, seed=seed
    )

    keyword_counts = [len(graph.keywords_of(v)) for v in graph.vertices()]
    distinct = len(
        {keyword for v in graph.vertices() for keyword in graph.keywords_of(v)}
    )

    return GraphStatistics(
        num_vertices=n,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree(),
        max_degree=max(degrees, default=0),
        degree_gini=_gini(degrees),
        clustering_coefficient=_clustering(graph, sample),
        num_components=len(component_sizes),
        largest_component_fraction=(
            max(component_sizes.values()) / n if n else 0.0
        ),
        estimated_diameter=deepest,
        hop_ball_fractions=tuple(ball_fractions),
        keywords_per_vertex=(
            statistics.fmean(keyword_counts) if keyword_counts else 0.0
        ),
        distinct_keywords=distinct,
    )
