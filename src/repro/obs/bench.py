"""Standardized ``BENCH_<name>.json`` emission and validation.

Every benchmark module under ``benchmarks/`` emits one machine-readable
artifact per run through :func:`write_bench_report` (the emission is
wired centrally in ``benchmarks/conftest.py``, so a new ``bench_*.py``
file participates automatically).  The CI smoke job re-validates the
artifacts with ``python -m repro.obs.validate``.

Schema ``ktg-bench/1``
----------------------
Top level (object)::

    schema        "ktg-bench/1"                        (required)
    name          artifact name, [A-Za-z0-9_.-]+        (required)
    smoke         whether this was a --smoke run        (required, bool)
    created_unix  emission wall-clock time              (required, number)
    meta          free-form provenance (figure, title)  (optional, object)
    entries       list of entry objects                 (required)

Entry (object)::

    test          pytest node name incl. parameters     (required, str)
    stats         timing summary or null on error       (required)
                    mean_s / min_s / max_s  non-negative numbers
                    rounds                  integer >= 1
                    stddev_s                optional non-negative number
    extra         instrument payload (counters etc.)    (required, object)
    group         pytest-benchmark group                (optional, str|null)
    params        parametrize values                    (optional, object|null)
    error         the measured callable raised          (optional, bool)

The validator is deliberately dependency-free (pure Python, no
jsonschema) so it runs in the leanest CI container.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
from pathlib import Path
from typing import Optional, Union

from repro.core.errors import ReproError

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchSchemaError",
    "bench_entry",
    "write_bench_report",
    "validate_bench_report",
    "load_bench_report",
]

BENCH_SCHEMA_VERSION = "ktg-bench/1"

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9_.-]+$")


class BenchSchemaError(ReproError):
    """A BENCH JSON payload violates the ``ktg-bench/1`` schema."""


def bench_entry(
    test: str,
    stats: Optional[dict] = None,
    extra: Optional[dict] = None,
    group: Optional[str] = None,
    params: Optional[dict] = None,
    error: bool = False,
) -> dict:
    """Build one schema-shaped entry (convenience for emitters)."""
    entry: dict = {
        "test": test,
        "stats": stats,
        "extra": extra if extra is not None else {},
    }
    if group is not None:
        entry["group"] = group
    if params is not None:
        entry["params"] = params
    if error:
        entry["error"] = True
    return entry


def write_bench_report(
    name: str,
    entries: list[dict],
    *,
    directory: Union[str, Path] = ".",
    smoke: bool = False,
    meta: Optional[dict] = None,
) -> Path:
    """Validate and atomically write ``BENCH_<name>.json``.

    The payload is validated *before* writing — this module never emits
    an artifact the CI validator would reject.
    """
    payload: dict = {
        "schema": BENCH_SCHEMA_VERSION,
        "name": name,
        "smoke": bool(smoke),
        "created_unix": time.time(),
        "entries": entries,
    }
    if meta:
        payload["meta"] = meta
    validate_bench_report(payload)

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    handle = tempfile.NamedTemporaryFile(
        "w",
        dir=str(directory),
        prefix=f".BENCH_{name}.",
        suffix=".tmp",
        delete=False,
        encoding="utf-8",
    )
    try:
        with handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return path


def load_bench_report(path: Union[str, Path]) -> dict:
    """Read and validate one artifact, returning the payload."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchSchemaError(f"{path}: not readable as JSON ({exc})") from exc
    validate_bench_report(payload, source=str(path))
    return payload


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def validate_bench_report(payload: object, source: str = "payload") -> None:
    """Raise :class:`BenchSchemaError` unless *payload* is schema-valid."""
    if not isinstance(payload, dict):
        raise BenchSchemaError(f"{source}: top level must be an object")
    _require(payload, "schema", str, source)
    if payload["schema"] != BENCH_SCHEMA_VERSION:
        raise BenchSchemaError(
            f"{source}: schema must be {BENCH_SCHEMA_VERSION!r}, "
            f"got {payload['schema']!r}"
        )
    name = _require(payload, "name", str, source)
    if not _NAME_PATTERN.match(name):
        raise BenchSchemaError(f"{source}: invalid name {name!r}")
    _require(payload, "smoke", bool, source)
    created = _require(payload, "created_unix", (int, float), source)
    if isinstance(created, bool) or created < 0:
        raise BenchSchemaError(f"{source}: created_unix must be a non-negative number")
    if "meta" in payload and not isinstance(payload["meta"], dict):
        raise BenchSchemaError(f"{source}: meta must be an object")
    entries = _require(payload, "entries", list, source)
    for position, entry in enumerate(entries):
        _validate_entry(entry, f"{source}: entries[{position}]")


def _validate_entry(entry: object, source: str) -> None:
    if not isinstance(entry, dict):
        raise BenchSchemaError(f"{source}: entry must be an object")
    test = _require(entry, "test", str, source)
    if not test:
        raise BenchSchemaError(f"{source}: test name must be non-empty")
    if "stats" not in entry:
        raise BenchSchemaError(f"{source}: missing required key 'stats'")
    stats = entry["stats"]
    if stats is not None:
        _validate_stats(stats, source)
    extra = _require(entry, "extra", dict, source)
    for key in extra:
        if not isinstance(key, str):
            raise BenchSchemaError(f"{source}: extra keys must be strings")
    if "group" in entry and entry["group"] is not None:
        if not isinstance(entry["group"], str):
            raise BenchSchemaError(f"{source}: group must be a string or null")
    if "params" in entry and entry["params"] is not None:
        if not isinstance(entry["params"], dict):
            raise BenchSchemaError(f"{source}: params must be an object or null")
    if "error" in entry and not isinstance(entry["error"], bool):
        raise BenchSchemaError(f"{source}: error must be a bool")


def _validate_stats(stats: object, source: str) -> None:
    if not isinstance(stats, dict):
        raise BenchSchemaError(f"{source}: stats must be an object or null")
    for key in ("mean_s", "min_s", "max_s"):
        value = _require(stats, key, (int, float), source)
        if isinstance(value, bool) or value < 0:
            raise BenchSchemaError(f"{source}: stats.{key} must be a non-negative number")
    rounds = _require(stats, "rounds", int, source)
    if isinstance(rounds, bool) or rounds < 1:
        raise BenchSchemaError(f"{source}: stats.rounds must be an integer >= 1")
    if "stddev_s" in stats:
        stddev = stats["stddev_s"]
        if isinstance(stddev, bool) or not isinstance(stddev, (int, float)) or stddev < 0:
            raise BenchSchemaError(
                f"{source}: stats.stddev_s must be a non-negative number"
            )


def _require(mapping: dict, key: str, types, source: str):
    if key not in mapping:
        raise BenchSchemaError(f"{source}: missing required key {key!r}")
    value = mapping[key]
    allowed = types if isinstance(types, tuple) else (types,)
    # bool subclasses int; only accept it where bool was asked for.
    if isinstance(value, bool) and bool not in allowed:
        raise BenchSchemaError(f"{source}: {key} must not be a bool")
    if not isinstance(value, allowed):
        expected = "/".join(t.__name__ for t in allowed)
        raise BenchSchemaError(
            f"{source}: {key} must be {expected}, got {type(value).__name__}"
        )
    return value
