"""Hook points emitted by the branch-and-bound solver.

The solver calls these methods at every decision point of the search —
when it is given a :class:`SolverHooks` instance.  With no hooks
attached (the default) the solver pays one ``is None`` check per event
site and allocates nothing, which is what keeps production solves at
null-sink speed.

Subscribers subclass :class:`SolverHooks` and override the events they
care about; every base method is a no-op, so subscribers stay source
compatible when new events are added.  ``members`` arguments are always
tuples snapshotting the intermediate group at the moment of the event
(the solver mutates its member list in place, so a live reference would
be wrong by the time a recorder looks at it).

Event vocabulary
----------------
``search_started(query, candidates)``
    Once per solve, after initial candidate qualification and ordering.
``node_entered(members, slots, remaining)``
    A search-tree node was entered (counted in
    ``SearchStats.nodes_expanded``).  ``slots`` is the number of members
    still to pick, ``remaining`` the candidate count at entry.
``node_exhausted(members)``
    The node is a dead end: fewer candidates than open slots.
``node_pruned(members, rule, bound, threshold)``
    The branch was cut by keyword pruning.  ``rule`` is ``"keyword"``
    (Theorem 2 top-VKC bound) or ``"union"`` (the union-of-masks bound
    was the strictly tighter one).
``candidates_filtered(member, before, after)``
    k-line filtering against *member* shrank the candidate list from
    *before* to *after* entries (Theorem 3).
``leaf_visited(members, coverage, outcome)``
    One complete group was examined at the leaf level.  ``outcome`` is
    ``"accepted"`` (entered the top-N pool), ``"feasible"`` (feasible
    but not admitted), ``"infeasible"`` (failed the pairwise tenuity
    check; only possible with k-line filtering disabled) or
    ``"pruned"`` (the VKC-sorted leaf scan stopped early because no
    later completion could be admitted).
``budget_tripped(kind, members)``
    A node/time budget stopped the search at *members*; ``kind`` is
    ``"nodes"`` or ``"time"``.
``search_finished(stats)``
    Once per solve, with the final :class:`SearchStats`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["SolverHooks", "HookList", "InstrumentingHooks"]


class SolverHooks:
    """Base subscriber: every hook is a no-op.  Subclass and override."""

    def search_started(self, query, candidates: Sequence[int]) -> None:
        """The solve began; *candidates* is the ordered initial pool."""

    def node_entered(self, members: tuple[int, ...], slots: int, remaining: int) -> None:
        """A search-tree node was entered."""

    def node_exhausted(self, members: tuple[int, ...]) -> None:
        """The entered node had fewer candidates than open slots."""

    def node_pruned(
        self, members: tuple[int, ...], rule: str, bound: float, threshold: float
    ) -> None:
        """The entered node's branch was cut by keyword pruning."""

    def candidates_filtered(self, member: int, before: int, after: int) -> None:
        """k-line filtering against *member* dropped ``before - after``."""

    def leaf_visited(
        self, members: tuple[int, ...], coverage: float, outcome: str
    ) -> None:
        """A complete group was examined at the leaf level."""

    def budget_tripped(self, kind: str, members: tuple[int, ...]) -> None:
        """A node/time budget stopped the search."""

    def search_finished(self, stats) -> None:
        """The solve ended (normally or via budget)."""


class HookList(SolverHooks):
    """Fan one event stream out to several subscribers, in order.

    Examples
    --------
    >>> class Count(SolverHooks):
    ...     entered = 0
    ...     def node_entered(self, members, slots, remaining):
    ...         self.entered += 1
    >>> first, second = Count(), Count()
    >>> hooks = HookList([first, second])
    >>> hooks.node_entered((), 2, 5)
    >>> (first.entered, second.entered)
    (1, 1)
    """

    def __init__(self, subscribers: Iterable[SolverHooks]) -> None:
        self.subscribers: list[SolverHooks] = list(subscribers)

    def search_started(self, query, candidates) -> None:
        for subscriber in self.subscribers:
            subscriber.search_started(query, candidates)

    def node_entered(self, members, slots, remaining) -> None:
        for subscriber in self.subscribers:
            subscriber.node_entered(members, slots, remaining)

    def node_exhausted(self, members) -> None:
        for subscriber in self.subscribers:
            subscriber.node_exhausted(members)

    def node_pruned(self, members, rule, bound, threshold) -> None:
        for subscriber in self.subscribers:
            subscriber.node_pruned(members, rule, bound, threshold)

    def candidates_filtered(self, member, before, after) -> None:
        for subscriber in self.subscribers:
            subscriber.candidates_filtered(member, before, after)

    def leaf_visited(self, members, coverage, outcome) -> None:
        for subscriber in self.subscribers:
            subscriber.leaf_visited(members, coverage, outcome)

    def budget_tripped(self, kind, members) -> None:
        for subscriber in self.subscribers:
            subscriber.budget_tripped(kind, members)

    def search_finished(self, stats) -> None:
        for subscriber in self.subscribers:
            subscriber.search_finished(stats)


class InstrumentingHooks(SolverHooks):
    """Bridge solver events into an instrument registry.

    Every event becomes a named ``solver.*`` counter, so one live
    :class:`~repro.obs.instruments.InstrumentRegistry` can aggregate
    search behaviour across many solves (the ``ktg stats`` report and
    the counter-consistency property tests are built on this).
    """

    def __init__(self, registry) -> None:
        self.registry = registry
        counter = registry.counter
        self._nodes = counter("solver.nodes_entered")
        self._exhausted = counter("solver.nodes_exhausted")
        self._pruned_keyword = counter("solver.prunes.keyword")
        self._pruned_union = counter("solver.prunes.union")
        self._filter_calls = counter("solver.filter_calls")
        self._filter_dropped = counter("solver.filter_dropped")
        self._leaves = counter("solver.leaves_visited")
        self._accepted = counter("solver.leaves_accepted")
        self._leaf_pruned = counter("solver.leaves_pruned")
        self._budget = counter("solver.budget_trips")
        self._searches = counter("solver.searches")

    def search_started(self, query, candidates) -> None:
        self._searches.inc()

    def node_entered(self, members, slots, remaining) -> None:
        self._nodes.inc()

    def node_exhausted(self, members) -> None:
        self._exhausted.inc()

    def node_pruned(self, members, rule, bound, threshold) -> None:
        if rule == "union":
            self._pruned_union.inc()
        else:
            self._pruned_keyword.inc()

    def candidates_filtered(self, member, before, after) -> None:
        self._filter_calls.inc()
        self._filter_dropped.inc(before - after)

    def leaf_visited(self, members, coverage, outcome) -> None:
        self._leaves.inc()
        if outcome == "accepted":
            self._accepted.inc()
        elif outcome == "pruned":
            self._leaf_pruned.inc()

    def budget_tripped(self, kind, members) -> None:
        self._budget.inc()
