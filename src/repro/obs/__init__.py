"""Observability: solver hooks, instrument registry, bench JSON.

The solver, oracles and service layer are instrumented through three
cooperating pieces:

* :mod:`repro.obs.hooks` — hook points emitted by
  :class:`~repro.core.branch_and_bound.BranchAndBoundSolver` itself
  (node entered / pruned / exhausted, candidates filtered, leaf
  offered/accepted, budget tripped).  Subscribers such as
  :class:`~repro.core.trace.TracingSolver` observe the *actual* search
  instead of re-implementing it.
* :mod:`repro.obs.instruments` — a counter/timer registry with a
  zero-overhead null sink, used by :class:`repro.service.QueryService`
  for per-phase latency histograms.
* :mod:`repro.obs.bench` — the standardized ``BENCH_<name>.json``
  emission/validation path shared by every ``benchmarks/bench_*.py``.

:mod:`repro.obs.report` assembles the per-solve instrument report the
``ktg stats`` subcommand prints.  See ``docs/observability.md``.
"""

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    BenchSchemaError,
    load_bench_report,
    validate_bench_report,
    write_bench_report,
)
from repro.obs.hooks import HookList, InstrumentingHooks, SolverHooks
from repro.obs.instruments import (
    NULL_REGISTRY,
    Counter,
    InstrumentRegistry,
    NullRegistry,
    Timer,
)
from repro.obs.report import (
    oracle_usage_row,
    render_solve_report,
    search_stats_row,
    solve_report,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchSchemaError",
    "Counter",
    "HookList",
    "InstrumentRegistry",
    "InstrumentingHooks",
    "NULL_REGISTRY",
    "NullRegistry",
    "SolverHooks",
    "Timer",
    "load_bench_report",
    "oracle_usage_row",
    "render_solve_report",
    "search_stats_row",
    "solve_report",
    "validate_bench_report",
    "write_bench_report",
]
