"""Counter/timer registry with a zero-overhead null sink.

Call sites obtain their instruments once (at construction) and hold the
references::

    self._solve_timer = instruments.timer("service.solve_ms")
    ...
    self._solve_timer.observe_ms(elapsed_ms)

Against the default :data:`NULL_REGISTRY` the returned objects are
shared no-op singletons, so an un-instrumented deployment pays one
no-op method call per event — no dict lookups, no allocation, and
``report()`` stays empty.  Against a live :class:`InstrumentRegistry`
the same call sites feed named counters and latency histograms that
:func:`InstrumentRegistry.report` exports as one JSON-able dict.

Timers bucket observations into a fixed exponential millisecond grid
(the per-phase latency histograms of ``QueryService``); the grid is
coarse on purpose — percentile-grade latency numbers come from the raw
sample lists ``ServiceStats`` keeps, the histogram is for shape and for
cheap merging across runs.
"""

from __future__ import annotations

import bisect
import threading
from typing import Iterator

__all__ = [
    "Counter",
    "Timer",
    "InstrumentRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]

#: Upper bounds (ms) of the histogram buckets; the last bucket is open.
TIMER_BUCKET_BOUNDS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Timer:
    """A named latency accumulator with an exponential-bucket histogram."""

    __slots__ = ("name", "count", "total_ms", "min_ms", "max_ms", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_ms = 0.0
        self.min_ms = float("inf")
        self.max_ms = 0.0
        self.buckets = [0] * (len(TIMER_BUCKET_BOUNDS_MS) + 1)

    def observe_ms(self, elapsed_ms: float) -> None:
        self.count += 1
        self.total_ms += elapsed_ms
        if elapsed_ms < self.min_ms:
            self.min_ms = elapsed_ms
        if elapsed_ms > self.max_ms:
            self.max_ms = elapsed_ms
        self.buckets[bisect.bisect_left(TIMER_BUCKET_BOUNDS_MS, elapsed_ms)] += 1

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """Flat JSON-able summary of the observations so far."""
        return {
            "count": self.count,
            "total_ms": round(self.total_ms, 4),
            "mean_ms": round(self.mean_ms, 4),
            "min_ms": round(self.min_ms, 4) if self.count else 0.0,
            "max_ms": round(self.max_ms, 4),
            "bucket_bounds_ms": list(TIMER_BUCKET_BOUNDS_MS),
            "buckets": list(self.buckets),
        }

    def __repr__(self) -> str:
        return f"Timer({self.name!r}, count={self.count}, mean_ms={self.mean_ms:.3f})"


class InstrumentRegistry:
    """Create-on-demand registry of named counters and timers.

    Instrument creation is thread-safe; the instruments themselves are
    intentionally lock-free (a torn read costs one miscount, never a
    crash — the trade every metrics library makes on hot paths).
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def timer(self, name: str) -> Timer:
        timer = self._timers.get(name)
        if timer is None:
            with self._lock:
                timer = self._timers.setdefault(name, Timer(name))
        return timer

    # ------------------------------------------------------------------
    def counters(self) -> Iterator[Counter]:
        return iter(list(self._counters.values()))

    def timers(self) -> Iterator[Timer]:
        return iter(list(self._timers.values()))

    def report(self) -> dict:
        """All instruments as one JSON-able dict."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "timers": {name: t.snapshot() for name, t in sorted(self._timers.items())},
        }

    def reset(self) -> None:
        """Drop every instrument (names are re-created on next use)."""
        with self._lock:
            self._counters.clear()
            self._timers.clear()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullTimer(Timer):
    __slots__ = ()

    def observe_ms(self, elapsed_ms: float) -> None:
        pass


class NullRegistry(InstrumentRegistry):
    """The zero-overhead sink: hands out shared no-op instruments.

    ``counter()`` / ``timer()`` always return the same inert singletons,
    so holding a reference from a null registry costs a no-op method
    call per event and ``report()`` is always empty.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_timer = _NullTimer("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def timer(self, name: str) -> Timer:
        return self._null_timer

    def report(self) -> dict:
        return {"counters": {}, "timers": {}}


#: Shared default sink — attach a real :class:`InstrumentRegistry` to
#: opt into collection.
NULL_REGISTRY = NullRegistry()
