"""CLI validator for ``BENCH_<name>.json`` artifacts.

Used by the CI bench-smoke job after running the benchmarks::

    python -m repro.obs.validate BENCH_*.json --expect 15

Exits non-zero (with one line per problem) when any artifact is
missing, unreadable, or violates the ``ktg-bench/1`` schema, or when
``--expect`` is given and the artifact count differs.

Baseline compare mode (CI bench-regression job)::

    python -m repro.obs.validate BENCH_*.json --baseline benchmarks/baselines

With ``--baseline <dir>`` each artifact is additionally diffed against
the committed artifact of the same filename.  Entries are matched by
their ``test`` name and every shared numeric metric in ``extra`` (plus
the ``stats.mean_s`` timing) is compared:

* **time-like metrics** (key ends in ``_s``/``_ms``/``_us``/``_ns``/
  ``_seconds`` or contains ``time``/``latency``) are checked one-sided:
  only a slowdown beyond ``--timing-tolerance`` fails, and readings
  whose normalized values both sit under ``--timing-floor`` seconds are
  skipped as noise.  Absolute timings vary across machines, so the
  default tolerance is generous (regressions of >2x fail).
* **all other numeric metrics** (prune counts, node counts, ratios) are
  checked two-sided against ``--tolerance``: these are deterministic
  functions of the code, so *any* drift beyond the tolerance — faster
  or slower — means behaviour changed and the baseline needs a
  deliberate refresh.

``--ignore GLOB`` (repeatable) excludes metric keys that are known to
be machine- or schedule-dependent (e.g. ``speedup*``).  A fresh
artifact with no committed baseline **fails** with a remediation
message — an uncommitted baseline means a new benchmark is silently
exempt from the regression gate.  Pass ``--allow-missing-baseline`` to
downgrade that to a note (e.g. while iterating locally before the
baseline refresh lands).
"""

from __future__ import annotations

import argparse
import fnmatch
import sys
from pathlib import Path

from repro.obs.bench import BenchSchemaError, load_bench_report

__all__ = ["main", "compare_reports"]

_TIME_SUFFIXES = ("_s", "_ms", "_us", "_ns", "_seconds")
_TIME_SUBSTRINGS = ("time", "latency")

# Normalization factors to seconds, by suffix (for the noise floor).
_UNIT_SCALE = {"_ms": 1e-3, "_us": 1e-6, "_ns": 1e-9}


def _is_time_like(key: str) -> bool:
    lowered = key.lower()
    return lowered.endswith(_TIME_SUFFIXES) or any(
        fragment in lowered for fragment in _TIME_SUBSTRINGS
    )


def _to_seconds(key: str, value: float) -> float:
    for suffix, scale in _UNIT_SCALE.items():
        if key.lower().endswith(suffix):
            return value * scale
    return value


def _numeric_metrics(entry: dict) -> dict[str, float]:
    """Flatten an entry's comparable numeric metrics.

    Pulls every non-bool int/float from ``extra`` plus the benchmark's
    own ``stats.mean_s`` (under that reserved key).
    """
    metrics: dict[str, float] = {}
    for key, value in entry.get("extra", {}).items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        metrics[key] = float(value)
    stats = entry.get("stats")
    if isinstance(stats, dict) and isinstance(stats.get("mean_s"), (int, float)):
        metrics["stats.mean_s"] = float(stats["mean_s"])
    return metrics


def compare_reports(
    current: dict,
    baseline: dict,
    *,
    tolerance: float = 0.25,
    timing_tolerance: float = 1.0,
    timing_floor: float = 0.001,
    ignore: tuple[str, ...] = (),
    source: str = "artifact",
) -> tuple[list[str], list[str]]:
    """Diff two schema-valid payloads; return ``(problems, notes)``.

    ``problems`` are regressions that should fail CI; ``notes`` are
    informational (new entries/metrics with no baseline counterpart).
    """
    problems: list[str] = []
    notes: list[str] = []
    current_by_test = {entry["test"]: entry for entry in current["entries"]}
    baseline_by_test = {entry["test"]: entry for entry in baseline["entries"]}

    for test in current_by_test:
        if test not in baseline_by_test:
            notes.append(f"{source}: entry {test!r} has no baseline (new)")
    for test, base_entry in baseline_by_test.items():
        cur_entry = current_by_test.get(test)
        if cur_entry is None:
            problems.append(f"{source}: baseline entry {test!r} missing from current run")
            continue
        if cur_entry.get("error") and not base_entry.get("error"):
            problems.append(f"{source}: {test!r} now errors (baseline succeeded)")
            continue
        cur_metrics = _numeric_metrics(cur_entry)
        base_metrics = _numeric_metrics(base_entry)
        for key, base_value in sorted(base_metrics.items()):
            if any(fnmatch.fnmatchcase(key, pattern) for pattern in ignore):
                continue
            if key not in cur_metrics:
                problems.append(f"{source}: {test!r} lost metric {key!r}")
                continue
            cur_value = cur_metrics[key]
            if _is_time_like(key):
                cur_s = _to_seconds(key, cur_value)
                base_s = _to_seconds(key, base_value)
                if cur_s <= timing_floor and base_s <= timing_floor:
                    continue  # microbenchmark noise, both effectively instant
                limit = base_value * (1.0 + timing_tolerance)
                if cur_value > limit:
                    problems.append(
                        f"{source}: {test!r} {key} regressed: "
                        f"{cur_value:.6g} > {base_value:.6g} "
                        f"(+{timing_tolerance:.0%} allowed)"
                    )
            else:
                slack = tolerance * max(abs(base_value), 1.0)
                if abs(cur_value - base_value) > slack:
                    problems.append(
                        f"{source}: {test!r} {key} drifted: "
                        f"{cur_value:.6g} vs baseline {base_value:.6g} "
                        f"(±{tolerance:.0%} allowed)"
                    )
    return problems, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Schema-validate BENCH_<name>.json artifacts (ktg-bench/1).",
    )
    parser.add_argument("paths", nargs="+", help="artifact files to validate")
    parser.add_argument(
        "--expect",
        type=int,
        default=None,
        help="fail unless exactly this many artifacts were given",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="DIR",
        help="also diff each artifact against DIR/<same filename>",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative drift allowed for non-timing metrics (default 0.25)",
    )
    parser.add_argument(
        "--timing-tolerance",
        type=float,
        default=1.0,
        help="relative slowdown allowed for time-like metrics (default 1.0 = 2x)",
    )
    parser.add_argument(
        "--timing-floor",
        type=float,
        default=0.001,
        help="skip timing compares when both readings are under this many seconds",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="GLOB",
        help="metric-key glob to exclude from baseline compare (repeatable)",
    )
    parser.add_argument(
        "--allow-missing-baseline",
        action="store_true",
        help="note (instead of fail) artifacts with no committed baseline",
    )
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baseline) if args.baseline else None
    if baseline_dir is not None and not baseline_dir.is_dir():
        print(f"FAIL baseline directory not found: {baseline_dir}", file=sys.stderr)
        return 1

    failures = 0
    compared = 0
    for path in args.paths:
        try:
            payload = load_bench_report(path)
        except BenchSchemaError as exc:
            print(f"FAIL {exc}", file=sys.stderr)
            failures += 1
            continue
        print(
            f"ok   {path}: {len(payload['entries'])} entries"
            + (" (smoke)" if payload["smoke"] else "")
        )
        if baseline_dir is None:
            continue
        baseline_path = baseline_dir / Path(path).name
        if not baseline_path.exists():
            if args.allow_missing_baseline:
                print(f"note {path}: no baseline at {baseline_path} (new benchmark?)")
            else:
                print(
                    f"FAIL {path}: no committed baseline at {baseline_path} — "
                    f"run `pytest benchmarks --smoke` and copy the artifact "
                    f"into {baseline_dir}/, or pass --allow-missing-baseline",
                    file=sys.stderr,
                )
                failures += 1
            continue
        try:
            baseline = load_bench_report(baseline_path)
        except BenchSchemaError as exc:
            print(f"FAIL baseline {exc}", file=sys.stderr)
            failures += 1
            continue
        problems, notes = compare_reports(
            payload,
            baseline,
            tolerance=args.tolerance,
            timing_tolerance=args.timing_tolerance,
            timing_floor=args.timing_floor,
            ignore=tuple(args.ignore),
            source=str(path),
        )
        for note in notes:
            print(f"note {note}")
        for problem in problems:
            print(f"FAIL {problem}", file=sys.stderr)
        failures += len(problems)
        compared += 1

    if args.expect is not None and len(args.paths) != args.expect:
        print(
            f"FAIL expected {args.expect} artifacts, got {len(args.paths)}",
            file=sys.stderr,
        )
        failures += 1

    if failures:
        print(f"{failures} problem(s)", file=sys.stderr)
        return 1
    suffix = f", {compared} diffed against baseline" if baseline_dir else ""
    print(f"all {len(args.paths)} artifact(s) schema-valid{suffix}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
