"""CLI validator for ``BENCH_<name>.json`` artifacts.

Used by the CI bench-smoke job after running the benchmarks::

    python -m repro.obs.validate BENCH_*.json --expect 14

Exits non-zero (with one line per problem) when any artifact is
missing, unreadable, or violates the ``ktg-bench/1`` schema, or when
``--expect`` is given and the artifact count differs.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.bench import BenchSchemaError, load_bench_report

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Schema-validate BENCH_<name>.json artifacts (ktg-bench/1).",
    )
    parser.add_argument("paths", nargs="+", help="artifact files to validate")
    parser.add_argument(
        "--expect",
        type=int,
        default=None,
        help="fail unless exactly this many artifacts were given",
    )
    args = parser.parse_args(argv)

    failures = 0
    for path in args.paths:
        try:
            payload = load_bench_report(path)
        except BenchSchemaError as exc:
            print(f"FAIL {exc}", file=sys.stderr)
            failures += 1
            continue
        print(f"ok   {path}: {len(payload['entries'])} entries" + (" (smoke)" if payload["smoke"] else ""))

    if args.expect is not None and len(args.paths) != args.expect:
        print(
            f"FAIL expected {args.expect} artifacts, got {len(args.paths)}",
            file=sys.stderr,
        )
        failures += 1

    if failures:
        print(f"{failures} problem(s)", file=sys.stderr)
        return 1
    print(f"all {len(args.paths)} artifact(s) schema-valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
