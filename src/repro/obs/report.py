"""Assemble and render a solve's full instrument report.

This is the data behind ``ktg stats --keywords ...``: one JSON-able
dict combining the solver's :class:`SearchStats`, the oracle's usage
counters (probes, expansions, memo hit rate) and — when a live
:class:`~repro.obs.instruments.InstrumentRegistry` was attached — every
named counter and latency histogram.

The renderer reuses :func:`repro.analysis.tables.render_table` so the
report matches the look of every other CLI table.
"""

from __future__ import annotations

from dataclasses import asdict

__all__ = [
    "search_stats_row",
    "oracle_usage_row",
    "solve_report",
    "render_solve_report",
]


def search_stats_row(stats) -> dict:
    """Flatten a :class:`SearchStats` into one JSON-able dict row."""
    row = asdict(stats)
    # first_feasible_node is None when nothing feasible was found;
    # keep it JSON-able but render-friendly.
    if row.get("first_feasible_node") is None:
        row["first_feasible_node"] = "-"
    return row


def oracle_usage_row(oracle) -> dict:
    """Flatten an oracle's :class:`OracleStats` into one dict row."""
    stats = oracle.stats
    return {
        "oracle": oracle.name,
        "entries": stats.entries,
        "build_seconds": round(stats.build_seconds, 4),
        "probes": stats.probes,
        "expansions": stats.expansions,
        "memo_hits": stats.memo_hits,
        "memo_misses": stats.memo_misses,
        "memo_hit_rate": round(stats.memo_hit_rate, 4),
    }


def solve_report(result, oracle=None, instruments=None) -> dict:
    """One JSON-able report for a finished solve.

    Parameters
    ----------
    result:
        The :class:`~repro.core.branch_and_bound.KTGResult`.
    oracle:
        The distance oracle the solver used (optional — usage counters
        are included when given).
    instruments:
        An :class:`~repro.obs.instruments.InstrumentRegistry`; its
        counters/timers are embedded when it is enabled.
    """
    report: dict = {
        "query": result.query.describe(),
        "algorithm": result.algorithm,
        "is_exact": result.is_exact,
        "groups": [
            {"members": list(group.members), "coverage": group.coverage}
            for group in result.groups
        ],
        "search": search_stats_row(result.stats),
    }
    if oracle is not None:
        report["oracle"] = oracle_usage_row(oracle)
    if instruments is not None and instruments.enabled:
        report["instruments"] = instruments.report()
    return report


def render_solve_report(report: dict) -> str:
    """Human-readable rendering of :func:`solve_report` output."""
    # Imported lazily: repro.analysis pulls in the whole solver stack,
    # and repro.obs must stay importable from inside repro.core.
    from repro.analysis.tables import render_table

    lines = [
        f"{report['algorithm']} for {report['query']}",
        f"exact: {report['is_exact']}",
        "",
    ]

    groups = report.get("groups", [])
    if groups:
        lines.append(
            render_table(
                [
                    {
                        "rank": rank,
                        "members": " ".join(f"u{m}" for m in group["members"]),
                        "coverage": group["coverage"],
                    }
                    for rank, group in enumerate(groups, 1)
                ],
                title="result groups",
            )
        )
    else:
        lines.append("result groups: (none feasible)")
    lines.append("")

    lines.append(render_table([report["search"]], title="search counters"))

    oracle = report.get("oracle")
    if oracle is not None:
        lines.append("")
        lines.append(render_table([oracle], title="oracle usage"))

    instruments = report.get("instruments")
    if instruments:
        counters = instruments.get("counters", {})
        if counters:
            lines.append("")
            lines.append(
                render_table(
                    [{"counter": name, "value": value} for name, value in counters.items()],
                    title="instrument counters",
                )
            )
        timers = instruments.get("timers", {})
        if timers:
            lines.append("")
            lines.append(
                render_table(
                    [
                        {
                            "timer": name,
                            "count": snap["count"],
                            "mean_ms": snap["mean_ms"],
                            "min_ms": snap["min_ms"],
                            "max_ms": snap["max_ms"],
                        }
                        for name, snap in timers.items()
                    ],
                    title="instrument timers",
                )
            )
    return "\n".join(lines)
