"""Index-free distance oracle: cutoff breadth-first search.

This is the baseline every index is validated against and the fallback
when index build cost is not worth paying (one-shot queries on small
graphs).  A tiny bounded memo of ``within_k`` frontiers is kept because
k-line filtering tends to re-probe the handful of vertices that the
branch-and-bound search repeatedly pushes into ``S_I``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.core.csr import validate_graph_layout
from repro.index.base import DistanceOracle, GraphLike

__all__ = ["BFSOracle"]


class BFSOracle(DistanceOracle):
    """Answer distance probes with cutoff BFS, no precomputation.

    Parameters
    ----------
    graph:
        The attributed social network (or a frozen
        :class:`~repro.core.csr.CsrGraphView`).
    cache_size:
        Maximum number of ``(vertex, k)`` frontier sets to memoise
        (the LRU budget; overflow evictions are counted in
        ``stats.memo_evictions``).  ``0`` disables the memo entirely
        (useful for measuring raw BFS cost in the oracle ablation
        bench).
    graph_layout:
        ``"adjacency"`` walks the ``list[set[int]]`` adjacency;
        ``"csr"`` walks the flat ``indptr``/``indices`` arrays of the
        graph's CSR snapshot (~1.3x faster ball growth on dense
        graphs, bit-identical results).
    """

    name = "bfs"

    def __init__(
        self,
        graph: GraphLike,
        cache_size: int = 1024,
        graph_layout: str = "adjacency",
    ) -> None:
        super().__init__(graph)
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self._cache_size = cache_size
        self.graph_layout = validate_graph_layout(graph_layout)
        # Flat CSR arrays for the csr layout, materialised lazily per
        # graph version (see _csr_arrays).
        self._csr_version: Optional[int] = None
        self._csr_indptr: Optional[list[int]] = None
        self._csr_indices: Optional[list[int]] = None
        # Memo entries are (seen, frontier, exhausted): *seen* is the
        # 1..k ball (vertex excluded), *frontier* the vertices at exactly
        # depth k (the resume point for a later, larger k), *exhausted*
        # whether BFS saturated before depth k — in which case every
        # larger k has the identical ball.
        self._cache: OrderedDict[
            tuple[int, int], tuple[set[int], list[int], bool]
        ] = OrderedDict()
        # The memo is shared mutable state: concurrent filter_candidates
        # calls from QueryService worker threads would otherwise race
        # move_to_end/popitem mid-iteration.  Cached entries are never
        # mutated after insertion, so readers outside the lock are safe
        # once they hold a reference.
        self._memo_lock = threading.Lock()

    # ------------------------------------------------------------------
    def is_tenuous(self, u: int, v: int, k: int) -> bool:
        self.check_k(k)
        self.stats.probes += 1
        if u == v:
            return False
        if k == 0:
            return True
        # Probe from whichever endpoint is already cached, else the
        # lower-degree endpoint (smaller expected frontier).
        if (u, k) in self._cache:
            return v not in self._grow(u, k)
        if (v, k) in self._cache:
            return u not in self._grow(v, k)
        if self.graph.degree(u) > self.graph.degree(v):
            u, v = v, u
        return v not in self._grow(u, k)

    def within_k(self, vertex: int, k: int) -> set[int]:
        self.check_k(k)
        if k == 0:
            return set()
        return set(self._grow(vertex, k))

    # ------------------------------------------------------------------
    def _grow(self, vertex: int, k: int) -> set[int]:
        """Return (and memoise) the set of vertices at distance 1..k.

        A miss at ``(vertex, k)`` first looks for a memoised smaller-k
        ball of the same vertex and *resumes* BFS from its stored
        frontier instead of restarting from scratch — the solver probes
        the same vertices at growing k (leaf pairwise checks after
        depth-limited filters), so the resume path is common.  Resumes
        (and saturated smaller-k balls served directly) count as
        ``memo_hits``; only a from-scratch BFS is a ``memo_miss``.
        """
        resume: Optional[tuple[int, tuple[set[int], list[int], bool]]] = None
        with self._memo_lock:
            entry = self._cache.get((vertex, k))
            if entry is not None:
                self._cache.move_to_end((vertex, k))
                self.stats.memo_hits += 1
                return entry[0]
            for depth in range(k - 1, 0, -1):
                prev = self._cache.get((vertex, depth))
                if prev is not None:
                    resume = (depth, prev)
                    break
        if resume is not None:
            self.stats.memo_hits += 1
            depth, (prev_seen, prev_frontier, prev_exhausted) = resume
            if prev_exhausted:
                # BFS saturated at or before *depth*: the k-ball is the
                # same set.  Memoise it under (vertex, k) too so the
                # next probe is a direct hit.
                self._store(vertex, k, prev_seen, prev_frontier, True)
                return prev_seen
            seen = set(prev_seen)
            seen.add(vertex)
            frontier: list[int] = prev_frontier
            rounds = k - depth
        else:
            self.stats.memo_misses += 1
            seen = {vertex}
            frontier = [vertex]
            rounds = k
        exhausted = False
        if self.graph_layout == "csr":
            indptr, indices = self._csr_arrays()
            for _ in range(rounds):
                next_frontier = []
                for u in frontier:
                    for w in indices[indptr[u] : indptr[u + 1]]:
                        if w not in seen:
                            seen.add(w)
                            next_frontier.append(w)
                if not next_frontier:
                    exhausted = True
                    break
                frontier = next_frontier
        else:
            adjacency = self.graph.adjacency_view()
            for _ in range(rounds):
                next_frontier = []
                for u in frontier:
                    for w in adjacency[u]:
                        if w not in seen:
                            seen.add(w)
                            next_frontier.append(w)
                if not next_frontier:
                    exhausted = True
                    break
                frontier = next_frontier
        seen.discard(vertex)
        self._store(vertex, k, seen, frontier, exhausted)
        return seen

    def _csr_arrays(self) -> tuple[list[int], list[int]]:
        """Return (indptr, indices) for the current graph version.

        Works against both graph flavours: an ``AttributedGraph`` serves
        its cached per-version snapshot, a ``CsrGraphView`` serves the
        snapshot it wraps.
        """
        if self._csr_indptr is None or self._csr_version != self.graph.version:
            snapshot = getattr(self.graph, "snapshot", None)
            if snapshot is None:
                snapshot = self.graph.csr_snapshot()  # type: ignore[union-attr]
            self._csr_indptr = snapshot.indptr
            self._csr_indices = snapshot.indices
            self._csr_version = self.graph.version
        assert self._csr_indices is not None
        return self._csr_indptr, self._csr_indices

    def _store(
        self, vertex: int, k: int, seen: set[int], frontier: list[int], exhausted: bool
    ) -> None:
        if not self._cache_size:
            return
        with self._memo_lock:
            self._cache[(vertex, k)] = (seen, frontier, exhausted)
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
                self.stats.memo_evictions += 1

    def filter_candidates(self, candidates: list[int], member: int, k: int) -> list[int]:
        if k == 0:
            self.stats.probes += len(candidates)
            return [v for v in candidates if v != member]
        blocked = self._grow(member, k)
        self.stats.probes += len(candidates)
        return [v for v in candidates if v != member and v not in blocked]

    # ------------------------------------------------------------------
    # Dynamic maintenance: the only materialised state is the frontier
    # memo, and a ball B(c, k) can only change if an endpoint of the
    # edited edge lies in it (any new/destroyed path of length <= k
    # through the edge puts that endpoint within k of c).  Evicting just
    # those entries keeps the warm memo alive under a mutation stream.
    # ------------------------------------------------------------------
    def supports_incremental_updates(self) -> bool:
        return True

    def insert_edge(self, u: int, v: int) -> None:
        self.graph.add_edge(u, v)
        self._evict_touching(u, v)

    def delete_edge(self, u: int, v: int) -> None:
        self.graph.remove_edge(u, v)
        self._evict_touching(u, v)

    def insert_vertex(self, labels=()) -> int:
        # An isolated vertex is in no memoised ball; nothing to evict.
        vertex = self.graph.add_vertex(labels)
        self._drop_csr_arrays()
        self._built_version = self.graph.version
        return vertex

    def _evict_touching(self, u: int, v: int) -> None:
        with self._memo_lock:
            stale = [
                key
                for key, (seen, _frontier, _exhausted) in self._cache.items()
                if key[0] == u or key[0] == v or u in seen or v in seen
            ]
            for key in stale:
                del self._cache[key]
        self._drop_csr_arrays()
        self._built_version = self.graph.version

    def _drop_csr_arrays(self) -> None:
        self._csr_version = None
        self._csr_indptr = None
        self._csr_indices = None

    def rebuild(self) -> None:
        with self._memo_lock:
            self._cache.clear()
        self._drop_csr_arrays()
        super().rebuild()

    # ------------------------------------------------------------------
    # Pickling (ProcessPoolExecutor workers): locks are not picklable
    # and the memo is a per-process concern, so both are dropped.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_memo_lock"] = None
        state["_cache"] = OrderedDict()
        # Flat CSR arrays re-materialise lazily in the target process.
        state["_csr_version"] = None
        state["_csr_indptr"] = None
        state["_csr_indices"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._memo_lock = threading.Lock()
