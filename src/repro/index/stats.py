"""Index cost accounting for the Figure 9 comparison.

:func:`measure_footprint` builds an oracle and reports the quantities
Figure 9 plots — stored entries (space proxy), estimated bytes, and
construction seconds.  Bytes are estimated analytically from the entry
count (pointer-sized slots plus per-set overhead) instead of
``sys.getsizeof`` recursion, so numbers are stable across interpreter
versions and reflect the structure the paper costs out (id lists).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.graph import AttributedGraph
from repro.index.base import DistanceOracle
from repro.index.bfs import BFSOracle
from repro.index.nl import NLIndex
from repro.index.nlrnl import NLRNLIndex
from repro.index.pll import PLLIndex

__all__ = ["IndexFootprint", "measure_footprint", "oracle_by_name", "ORACLE_FACTORIES"]

#: Estimated cost of one stored neighbour id (CPython small-int pointer
#: in a set, amortised with set over-allocation).
_BYTES_PER_ENTRY = 16


@dataclass(frozen=True)
class IndexFootprint:
    """Space and construction cost of one oracle on one graph."""

    oracle_name: str
    num_vertices: int
    num_edges: int
    entries: int
    estimated_bytes: int
    build_seconds: float

    @property
    def entries_per_vertex(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.entries / self.num_vertices

    def row(self) -> dict:
        """Flat dict for table/CSV rendering."""
        return {
            "oracle": self.oracle_name,
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "entries": self.entries,
            "estimated_mb": self.estimated_bytes / (1024 * 1024),
            "build_seconds": self.build_seconds,
        }


ORACLE_FACTORIES: dict[str, Callable[[AttributedGraph], DistanceOracle]] = {
    "bfs": BFSOracle,
    "nl": NLIndex,
    "nlrnl": NLRNLIndex,
    "pll": PLLIndex,
}


def oracle_by_name(name: str, graph: AttributedGraph, **options) -> DistanceOracle:
    """Instantiate an oracle by its short name ("bfs", "nl", "nlrnl")."""
    normalized = name.lower()
    factory = ORACLE_FACTORIES.get(normalized)
    if factory is None:
        raise ValueError(
            f"unknown oracle {name!r}; expected one of {sorted(ORACLE_FACTORIES)}"
        )
    return factory(graph, **options)


def measure_footprint(
    graph: AttributedGraph,
    oracle_name: str,
    oracle: Optional[DistanceOracle] = None,
) -> IndexFootprint:
    """Build (or reuse) an oracle and report its footprint.

    When *oracle* is given it must already be built on *graph*; its
    recorded build time is reused.  Otherwise the oracle is constructed
    here and timed end to end (construction includes any auto parameter
    selection, matching how Figure 9(b) times index building).
    """
    if oracle is None:
        started = time.perf_counter()
        oracle = oracle_by_name(oracle_name, graph)
        build_seconds = time.perf_counter() - started
    else:
        build_seconds = oracle.stats.build_seconds
    return IndexFootprint(
        oracle_name=oracle_name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        entries=oracle.stats.entries,
        estimated_bytes=oracle.stats.entries * _BYTES_PER_ENTRY,
        build_seconds=build_seconds,
    )
