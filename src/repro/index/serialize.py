"""Index persistence: save built distance indexes to disk and reload.

NLRNL construction runs one full BFS per vertex; on the larger dataset
profiles that dwarfs query time (Figure 9(b)), so a deployment answers
many query batches against one build.  This module persists built NL /
NLRNL / PLL state as a compact JSON document with an integrity header
(format version, oracle kind, graph shape fingerprint) and restores it
without re-running any BFS.

The fingerprint is a cheap structural hash of the graph (vertex count,
edge count, and a digest over the sorted edge list).  Loading against a
graph with a different fingerprint fails loudly — a stale index
silently returning wrong distances is the worst failure mode an exact
solver can have.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import tempfile
import threading
from pathlib import Path
from typing import Union

from repro.core.errors import IndexBuildError
from repro.core.graph import AttributedGraph
from repro.index.base import DistanceOracle
from repro.index.nl import NLIndex
from repro.index.nlrnl import NLRNLIndex
from repro.index.pll import PLLIndex

__all__ = ["save_index", "load_index", "graph_fingerprint"]

_FORMAT_VERSION = 1
PathLike = Union[str, Path]


def graph_fingerprint(graph: AttributedGraph) -> str:
    """Structural digest: changes iff vertices or edges change."""
    hasher = hashlib.sha256()
    hasher.update(f"{graph.num_vertices}:{graph.num_edges}".encode())
    for u, v in sorted(graph.edges()):
        hasher.update(f"{u},{v};".encode())
    return hasher.hexdigest()[:24]


def save_index(oracle: DistanceOracle, path: PathLike) -> None:
    """Persist a built NL / NLRNL / PLL oracle to *path* (JSON).

    Raises :class:`IndexBuildError` for oracle kinds with no
    materialised state (BFS) or stale oracles.
    """
    if oracle.is_stale():
        raise IndexBuildError("refusing to save a stale index; rebuild first")
    document: dict = {
        "format": _FORMAT_VERSION,
        "kind": oracle.name,
        "fingerprint": graph_fingerprint(oracle.graph),
        "entries": oracle.stats.entries,
    }
    if isinstance(oracle, NLRNLIndex):
        document["payload"] = {
            "c": oracle._c,
            "component": oracle._component,
            "depth_of": [
                {str(w): d for w, d in vertex_map.items()}
                for vertex_map in oracle._depth_of
            ],
        }
    elif isinstance(oracle, NLIndex):
        document["payload"] = {
            "depth": oracle.depth,
            "requested_depth": oracle._requested_depth,
            "rng_state": oracle._rng.getstate(),
            "stored_depth": oracle._stored_depth,
            "exhausted": oracle._exhausted,
            "levels": [
                [sorted(level) for level in vertex_levels]
                for vertex_levels in oracle._levels
            ],
        }
    elif isinstance(oracle, PLLIndex):
        document["payload"] = {
            "order": oracle._order,
            "labels": [
                {str(w): d for w, d in label.items()} for label in oracle._labels
            ],
        }
    else:
        raise IndexBuildError(
            f"oracle kind {oracle.name!r} has no serialisable state"
        )
    _atomic_write_text(Path(path), json.dumps(document, separators=(",", ":")))


def _atomic_write_text(path: Path, text: str) -> None:
    """Write *text* to *path* atomically (temp file + ``os.replace``).

    A crash mid-write must never leave a truncated document at *path*:
    either the previous index survives intact or the new one is fully in
    place.  The temp file lives in the same directory so the final
    rename stays within one filesystem.
    """
    handle = tempfile.NamedTemporaryFile(
        mode="w",
        encoding="utf-8",
        dir=path.parent,
        prefix=f".{path.name}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def load_index(graph: AttributedGraph, path: PathLike) -> DistanceOracle:
    """Restore an oracle saved with :func:`save_index` onto *graph*.

    The graph must fingerprint-match the one the index was built on.
    """
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexBuildError(f"cannot load index from {path}: {exc}") from exc

    if document.get("format") != _FORMAT_VERSION:
        raise IndexBuildError(
            f"unsupported index format {document.get('format')!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    fingerprint = graph_fingerprint(graph)
    if document.get("fingerprint") != fingerprint:
        raise IndexBuildError(
            "index/graph mismatch: the index was built on a structurally "
            "different graph (fingerprint "
            f"{document.get('fingerprint')!r} != {fingerprint!r})"
        )

    kind = document.get("kind")
    payload = document.get("payload", {})
    if kind == "nlrnl":
        return _load_nlrnl(graph, payload, document)
    if kind == "nl":
        return _load_nl(graph, payload, document)
    if kind == "pll":
        return _load_pll(graph, payload, document)
    raise IndexBuildError(f"unknown serialised oracle kind {kind!r}")


def _load_nlrnl(graph: AttributedGraph, payload: dict, document: dict) -> NLRNLIndex:
    index = NLRNLIndex.__new__(NLRNLIndex)
    DistanceOracle.__init__(index, graph)
    index._c = list(payload["c"])
    index._component = list(payload["component"])
    index._depth_of = [
        {int(w): d for w, d in vertex_map.items()}
        for vertex_map in payload["depth_of"]
    ]
    index.stats.entries = document.get("entries", 0)
    return index


def _restore_rng(state_json: object) -> random.Random:
    """Rebuild a ``random.Random`` from its JSON-round-tripped state.

    ``getstate()`` is a nested tuple of ints (plus an optional float);
    JSON turns the tuples into lists, so they are converted back before
    ``setstate``.  A missing/invalid state falls back to the historical
    ``Random(0)`` so documents written before the state was persisted
    still load.
    """
    rng = random.Random(0)
    if isinstance(state_json, (list, tuple)) and len(state_json) == 3:
        version, internal, gauss_next = state_json
        try:
            rng.setstate((version, tuple(internal), gauss_next))
        except (TypeError, ValueError):
            rng = random.Random(0)
    return rng


def _load_nl(graph: AttributedGraph, payload: dict, document: dict) -> NLIndex:
    index = NLIndex.__new__(NLIndex)
    DistanceOracle.__init__(index, graph)
    # graph_layout is a runtime preference, not persisted index data:
    # loaded indexes rebuild with the default set-based kernel.
    index.graph_layout = "adjacency"
    index._requested_depth = payload.get("requested_depth", payload["depth"])
    index._rng = _restore_rng(payload.get("rng_state"))
    index._expand_lock = threading.Lock()
    index.depth = payload["depth"]
    index._stored_depth = list(payload["stored_depth"])
    index._exhausted = list(payload["exhausted"])
    index._levels = [
        [set(level) for level in vertex_levels]
        for vertex_levels in payload["levels"]
    ]
    index.stats.entries = document.get("entries", 0)
    index.stats.extra["depth"] = index.depth
    return index


def _load_pll(graph: AttributedGraph, payload: dict, document: dict) -> PLLIndex:
    index = PLLIndex.__new__(PLLIndex)
    DistanceOracle.__init__(index, graph)
    index.graph_layout = "adjacency"
    index._order = list(payload["order"])
    index._labels = [
        {int(w): d for w, d in label.items()} for label in payload["labels"]
    ]
    index.stats.entries = document.get("entries", 0)
    return index
