"""2-hop label index (pruned landmark labeling).

Section V opens with "Inspired by the 1-hop or 2-hop label index [37]";
this module implements that inspiration directly as a fourth distance
oracle: **pruned landmark labeling** (Akiba-Iwata-Yoshida style) over
unweighted graphs.

Every vertex ``v`` stores a label ``L(v) = {(landmark, dist), ...}``;
the distance of a pair is ``min over common landmarks of
L(u)[w] + L(v)[w]``.  Labels are built by running one BFS per vertex in
degree-descending order with *pruning*: when a BFS from landmark ``w``
reaches ``v`` at distance ``d`` but the already-built labels certify
``dist(w, v) <= d``, the search does not expand ``v``.  On social
networks, high-degree hubs cover most shortest paths, so labels stay
small and probes are fast.

This oracle is exact for all distances (unlike NL, it never expands on
demand; unlike NLRNL, it stores no full BFS levels), giving the
benchmark suite a third point in the space/probe-cost trade-off that
Figure 9 explores.
"""

from __future__ import annotations

import time

from repro.core.csr import validate_graph_layout
from repro.index.base import DistanceOracle, GraphLike

__all__ = ["PLLIndex"]

_INF = float("inf")


class PLLIndex(DistanceOracle):
    """Pruned 2-hop labels for exact hop distances.

    Examples
    --------
    >>> g = AttributedGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    >>> pll = PLLIndex(g)
    >>> pll.query_distance(0, 4)
    4
    >>> pll.is_tenuous(0, 4, 3)
    True
    >>> pll.is_tenuous(0, 4, 4)
    False
    """

    name = "pll"

    def __init__(self, graph: GraphLike, graph_layout: str = "adjacency") -> None:
        # rebuild() (called below) reads this to pick the neighbour scan.
        self.graph_layout = validate_graph_layout(graph_layout)
        super().__init__(graph)
        # _labels[v]: dict landmark -> distance.  Landmarks are vertex
        # ids; every vertex is its own landmark at distance 0 (stored
        # implicitly: the build inserts it explicitly for O(1) probes).
        self._labels: list[dict[int, int]] = []
        self._order: list[int] = []
        self.rebuild()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        started = time.perf_counter()
        graph = self.graph
        n = graph.num_vertices

        # Layout switch: the csr kernel scans the snapshot's flat
        # indptr/indices arrays instead of the per-vertex sets.  Labels
        # come out identical — pruning only consults labels written by
        # earlier landmarks (or the same landmark at shallower depth),
        # never the within-level visit order.
        if self.graph_layout == "csr":
            snapshot = getattr(graph, "snapshot", None)
            if snapshot is None:
                snapshot = graph.csr_snapshot()  # type: ignore[union-attr]
            indptr = snapshot.indptr
            indices = snapshot.indices

            def neighbors_of(vertex: int):
                return indices[indptr[vertex] : indptr[vertex + 1]]

            def degree_of(vertex: int) -> int:
                return indptr[vertex + 1] - indptr[vertex]

        else:
            adjacency = graph.adjacency_view()

            def neighbors_of(vertex: int):
                return adjacency[vertex]

            def degree_of(vertex: int) -> int:
                return len(adjacency[vertex])

        # Degree-descending landmark order: hubs first prune the most.
        order = sorted(range(n), key=lambda v: -degree_of(v))
        labels: list[dict[int, int]] = [dict() for _ in range(n)]

        for landmark in order:
            landmark_label = labels[landmark]
            # BFS from the landmark with label-based pruning.
            distances = {landmark: 0}
            frontier = [landmark]
            depth = 0
            while frontier:
                next_frontier: list[int] = []
                for vertex in frontier:
                    # Prune: if existing labels already certify a path
                    # through an earlier landmark that is as short, the
                    # landmark adds nothing for `vertex` or beyond it.
                    certified = _query(labels[vertex], landmark_label)
                    if certified <= depth:
                        continue
                    labels[vertex][landmark] = depth
                    for neighbor in neighbors_of(vertex):
                        if neighbor not in distances:
                            distances[neighbor] = depth + 1
                            next_frontier.append(neighbor)
                frontier = next_frontier
                depth += 1

        self._labels = labels
        self._order = order
        self._rank = {vertex: position for position, vertex in enumerate(order)}
        self.stats.entries = sum(len(label) for label in labels)
        self.stats.build_seconds = time.perf_counter() - started
        super().rebuild()

    # ------------------------------------------------------------------
    # Dynamic maintenance
    # ------------------------------------------------------------------
    def supports_incremental_updates(self) -> bool:
        return True

    def insert_edge(self, u: int, v: int) -> None:
        """Add edge ``(u, v)`` and repair labels with resumed pruned BFS.

        The incremental-insertion rule for pruned landmark labels: every
        landmark ``w`` that labels one endpoint may now reach vertices
        beyond the *other* endpoint more cheaply, so its pruned BFS is
        resumed from that endpoint at distance ``d(w, endpoint) + 1``.
        Distances only shrink on insertion, so surviving entries stay
        exact and the resumed searches add exactly the labels needed to
        certify every improved pair.  Landmarks are resumed in rank
        order so higher-rank labels prune the lower-rank resumes.
        """
        graph = self.graph
        graph.add_edge(u, v)
        rank = self._rank
        resumes = sorted(
            [(w, d, v) for w, d in self._labels[u].items()]
            + [(w, d, u) for w, d in self._labels[v].items()],
            key=lambda item: rank[item[0]],
        )
        for w, d, start in resumes:
            self._resume_pruned_bfs(w, start, d + 1)
        self._built_version = graph.version

    def _resume_pruned_bfs(self, landmark: int, start: int, start_depth: int) -> None:
        labels = self._labels
        landmark_label = labels[landmark]
        adjacency = self.graph.adjacency_view()
        distances = {start: start_depth}
        frontier = [start]
        depth = start_depth
        added = 0
        while frontier:
            next_frontier: list[int] = []
            for vertex in frontier:
                if _query(labels[vertex], landmark_label) <= depth:
                    continue
                labels[vertex][landmark] = depth
                added += 1
                for neighbor in adjacency[vertex]:
                    if neighbor not in distances:
                        distances[neighbor] = depth + 1
                        next_frontier.append(neighbor)
            frontier = next_frontier
            depth += 1
        self.stats.entries += added

    def delete_edge(self, u: int, v: int) -> None:
        """Remove edge ``(u, v)``; labels are rebuilt from scratch.

        Decremental 2-hop maintenance has no sound local repair: a
        deletion can invalidate entries whose *pruning certificates*
        (labels of unaffected, higher-rank landmarks) pass through the
        affected region, so the damage is not confined to vertices whose
        own distances changed.  The incremental-PLL literature leaves
        deletions to a rebuild, and so do we — counted so operators can
        see the cost.
        """
        self.graph.remove_edge(u, v)
        self.stats.extra["delete_rebuilds"] = (
            self.stats.extra.get("delete_rebuilds", 0) + 1
        )
        self.rebuild()

    def insert_vertex(self, labels=()) -> int:
        """Append an isolated vertex: its label is just itself at 0."""
        vertex = self.graph.add_vertex(labels)
        self._labels.append({vertex: 0})
        self._order.append(vertex)
        self._rank[vertex] = len(self._order) - 1
        self.stats.entries += 1
        self._built_version = self.graph.version
        return vertex

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def query_distance(self, u: int, v: int) -> float:
        """Exact hop distance (``inf`` when unreachable)."""
        if u == v:
            return 0
        return _query(self._labels[u], self._labels[v])

    def is_tenuous(self, u: int, v: int, k: int) -> bool:
        self.check_k(k)
        self.stats.probes += 1
        if u == v:
            return False
        if k == 0:
            return True
        distance = _query(self._labels[u], self._labels[v])
        if distance < _INF:
            self.stats.memo_hits += 1
        else:
            self.stats.memo_misses += 1
        return distance > k

    def within_k(self, vertex: int, k: int) -> set[int]:
        self.check_k(k)
        return {
            other
            for other in range(self.graph.num_vertices)
            if other != vertex and not self.is_tenuous(vertex, other, k)
        }

    def filter_candidates(self, candidates: list[int], member: int, k: int) -> list[int]:
        """k-line filtering with the label intersection inlined."""
        self.stats.probes += len(candidates)
        if k == 0:
            return [v for v in candidates if v != member]
        labels = self._labels
        member_label = labels[member]
        surviving: list[int] = []
        append = surviving.append
        for v in candidates:
            if v == member:
                continue
            if _query(labels[v], member_label) > k:
                append(v)
        return surviving

    # ------------------------------------------------------------------
    def label_of(self, vertex: int) -> dict[int, int]:
        """Copy of a vertex's 2-hop label (for tests/inspection)."""
        return dict(self._labels[vertex])

    def average_label_size(self) -> float:
        """Mean entries per label — the PLL quality number."""
        if not self._labels:
            return 0.0
        return self.stats.entries / len(self._labels)


def _query(label_a: dict[int, int], label_b: dict[int, int]) -> float:
    """Distance certified by two 2-hop labels (inf if no common landmark)."""
    if len(label_a) > len(label_b):
        label_a, label_b = label_b, label_a
    best = _INF
    get = label_b.get
    for landmark, distance_a in label_a.items():
        distance_b = get(landmark)
        if distance_b is not None:
            total = distance_a + distance_b
            if total < best:
                best = total
    return best
