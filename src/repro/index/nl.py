"""NL index: h-hop neighbour lists with on-demand expansion (Section V-A).

The NL index precomputes, for every vertex, the exact set of vertices at
each hop distance ``1..h``.  A tenuity probe ``dist(u, v) > k`` then
becomes at most ``min(k, h)`` set-membership tests (Algorithm 2 of the
paper).  When ``k`` exceeds the stored depth, the missing levels are
*expanded on demand* — the neighbours of the deepest stored level are
explored one hop further — and the expansion is cached so repeated deep
probes pay once.

Depth selection
---------------
The paper selects the stored depth as "the number of m-hop neighbors
with the maximal one", i.e. the hop level whose neighbour count peaks.
``depth="auto"`` reproduces this by sampling BFS level profiles;
``depth=<int>`` pins a global depth for experiments.

Storage is *unhalved* (each of ``u``'s level sets may contain vertices
with any id); the paper's Section VII-C attributes NL's larger footprint
partly to this doubled storage, and Figure 9(a) is reproduced on that
basis.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Literal, Union

from repro.core.csr import validate_graph_layout
from repro.core.errors import IndexBuildError
from repro.index._traversal import bfs_levels, bfs_levels_csr
from repro.index.base import DistanceOracle, GraphLike

__all__ = ["NLIndex", "choose_peak_level"]

#: Sample size for the auto depth heuristic on large graphs.
_AUTO_SAMPLE = 64


def choose_peak_level(level_counts: list[float]) -> int:
    """Return the 1-based hop level with the largest neighbour count.

    Ties favour the smaller level (cheaper storage for the same benefit).
    An empty profile (isolated vertex / empty graph) maps to level 1.
    """
    if not level_counts:
        return 1
    best_level = 1
    best_count = level_counts[0]
    for index, count in enumerate(level_counts[1:], start=2):
        if count > best_count:
            best_count = count
            best_level = index
    return best_level


class NLIndex(DistanceOracle):
    """Precomputed h-hop neighbour lists (NL index of Section V-A).

    Parameters
    ----------
    graph:
        The attributed social network.
    depth:
        Stored hop depth ``h``.  ``"auto"`` (default) picks the hop level
        with the peak average neighbour count, following the paper's
        heuristic; an explicit positive int pins the depth.
    rng:
        Random source for the auto-depth BFS sample (injectable for
        reproducibility).
    graph_layout:
        ``"adjacency"`` (default) builds levels by walking the set
        adjacency; ``"csr"`` walks the graph's flat CSR snapshot
        arrays.  Identical level sets either way — only the build
        speed differs.  On-demand expansion always uses
        ``adjacency_view()`` (a :class:`~repro.core.csr.CsrGraphView`
        materialises one on first use).
    kernel_backend:
        ``"auto"`` (default) routes csr-layout builds through the
        numpy-vectorized BFS of :mod:`repro.kernels.vec` when numpy is
        importable; ``"python"`` keeps the scalar csr kernel and
        ``"numpy"`` forces vectorization.  Level sets, the auto-depth
        choice and :attr:`stats` are identical across backends (the
        vectorized kernel sorts within a level, which the stored sets
        erase).  Ignored for the adjacency layout.

    Examples
    --------
    >>> g = AttributedGraph(4, [(0, 1), (1, 2), (2, 3)])
    >>> nl = NLIndex(g, depth=1)
    >>> nl.is_tenuous(0, 3, 2)   # dist(0,3)=3 > 2, needs one expansion
    True
    >>> nl.is_tenuous(0, 2, 2)   # dist=2, not tenuous
    False
    """

    name = "nl"

    def __init__(
        self,
        graph: GraphLike,
        depth: Union[int, Literal["auto"]] = "auto",
        rng: random.Random | None = None,
        graph_layout: str = "adjacency",
        kernel_backend: str = "auto",
    ) -> None:
        # rebuild() (called at the end of __init__) reads these to pick
        # the traversal kernel.
        self.graph_layout = validate_graph_layout(graph_layout)
        self.kernel_backend = kernel_backend
        super().__init__(graph)
        if depth != "auto" and (not isinstance(depth, int) or depth < 1):
            raise IndexBuildError(f"depth must be a positive int or 'auto', got {depth!r}")
        self._requested_depth = depth
        self._rng = rng if rng is not None else random.Random(0)
        # _levels[v][d-1] is the set of vertices at distance exactly d
        # from v.  _stored_depth[v] counts *materialised* levels,
        # including on-demand expansions.  _exhausted[v] is True once the
        # component of v is fully enumerated (no deeper level exists).
        self._levels: list[list[set[int]]] = []
        self._stored_depth: list[int] = []
        self._exhausted: list[bool] = []
        self.depth: int = 1
        # On-demand expansion mutates the shared level lists; concurrent
        # probes from QueryService worker threads serialise expansions so
        # two threads never materialise (and double-append) the same
        # level.  Read-only probes against already-stored levels do not
        # take the lock.
        self._expand_lock = threading.Lock()
        self.rebuild()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        started = time.perf_counter()
        graph = self.graph
        n = graph.num_vertices

        # Both kernels produce identical level *sets*; the csr variant
        # scans the snapshot's flat arrays instead of the adjacency sets.
        if self.graph_layout == "csr":
            snapshot = getattr(graph, "snapshot", None)
            if snapshot is None:
                snapshot = graph.csr_snapshot()  # type: ignore[union-attr]
            indptr, indices = snapshot.indptr, snapshot.indices
            # Lazy import: repro.index stays importable without pulling
            # the kernels package unless a csr build asks for it.
            from repro.kernels.vec import resolve_kernel_backend

            if resolve_kernel_backend(self.kernel_backend) == "numpy":
                from repro.kernels import vec

                np = vec.numpy_or_none()
                np_indptr = np.asarray(indptr, dtype=np.int64)
                np_indices = np.asarray(indices, dtype=np.int64)

                def run_bfs(
                    vertex: int, max_depth: int | None = None
                ) -> list[list[int]]:
                    return vec.bfs_levels_csr(np_indptr, np_indices, vertex, max_depth)

            else:

                def run_bfs(
                    vertex: int, max_depth: int | None = None
                ) -> list[list[int]]:
                    return bfs_levels_csr(indptr, indices, vertex, max_depth)

        else:
            adjacency = graph.adjacency_view()

            def run_bfs(vertex: int, max_depth: int | None = None) -> list[list[int]]:
                return bfs_levels(adjacency, vertex, max_depth)

        if self._requested_depth == "auto":
            self.depth = self._auto_depth(run_bfs, n)
        else:
            self.depth = int(self._requested_depth)

        levels: list[list[set[int]]] = []
        stored_depth: list[int] = []
        exhausted: list[bool] = []
        entries = 0
        for vertex in range(n):
            vertex_levels = [set(level) for level in run_bfs(vertex, self.depth)]
            entries += sum(len(level) for level in vertex_levels)
            levels.append(vertex_levels)
            stored_depth.append(len(vertex_levels))
            # BFS returned fewer levels than requested only when the
            # component ran out of vertices.
            exhausted.append(len(vertex_levels) < self.depth)
        self._levels = levels
        self._stored_depth = stored_depth
        self._exhausted = exhausted

        self.stats.entries = entries
        self.stats.build_seconds = time.perf_counter() - started
        self.stats.extra["depth"] = self.depth
        super().rebuild()

    def _auto_depth(self, run_bfs, n: int) -> int:
        """Pick ``h`` as the hop level with peak average neighbour count.

        *run_bfs* is the layout-appropriate level kernel; the heuristic
        only consumes level sizes, so both layouts choose the same depth.
        """
        if n == 0:
            return 1
        if n <= _AUTO_SAMPLE:
            sample = list(range(n))
        else:
            sample = self._rng.sample(range(n), _AUTO_SAMPLE)
        totals: list[float] = []
        for vertex in sample:
            for position, level in enumerate(run_bfs(vertex)):
                if position == len(totals):
                    totals.append(0.0)
                totals[position] += len(level)
        averages = [total / len(sample) for total in totals]
        return choose_peak_level(averages)

    # ------------------------------------------------------------------
    # Probing (Algorithm 2)
    # ------------------------------------------------------------------
    def is_tenuous(self, u: int, v: int, k: int) -> bool:
        self.check_k(k)
        self.stats.probes += 1
        if u == v:
            return False
        if k == 0:
            return True
        # Probe against the endpoint whose levels reach deeper, so that
        # on-demand expansion is needed as rarely as possible.
        if self._stored_depth[u] > self._stored_depth[v]:
            u, v = v, u
        levels = self._levels[v]
        upto = min(k, len(levels))
        for depth in range(upto):
            if u in levels[depth]:
                self.stats.memo_hits += 1
                return False
        if len(levels) >= k or self._exhausted[v]:
            self.stats.memo_hits += 1
            return True
        # Case 2 of Algorithm 2: expand (h+1)..k on demand.
        self.stats.memo_misses += 1
        return not self._expand_and_find(v, u, k)

    def within_k(self, vertex: int, k: int) -> set[int]:
        self.check_k(k)
        if k == 0:
            return set()
        self._ensure_depth(vertex, k)
        combined: set[int] = set()
        for level in self._levels[vertex][:k]:
            combined |= level
        return combined

    # ``filter_candidates`` is inherited: the base one-set-subtraction
    # default over :meth:`within_k` is exactly the NL fast path.

    # ------------------------------------------------------------------
    # On-demand expansion
    # ------------------------------------------------------------------
    def _expand_and_find(self, vertex: int, target: int, k: int) -> bool:
        """Expand *vertex*'s levels up to depth *k*, returning whether
        *target* shows up in one of the newly materialised levels."""
        with self._expand_lock:
            return self._expand_and_find_locked(vertex, target, k)

    def _expand_and_find_locked(self, vertex: int, target: int, k: int) -> bool:
        found = False
        levels = self._levels[vertex]
        seen: set[int] = {vertex}
        for position, level in enumerate(levels):
            seen |= level
            if position < k and target in level:
                # Another thread materialised this level between the
                # caller's lock-free scan and acquiring the expansion
                # lock; only levels within depth k count as "found".
                found = True
        adjacency = self.graph.adjacency_view()
        while len(levels) < k and not self._exhausted[vertex]:
            self.stats.expansions += 1
            frontier = levels[-1] if levels else {vertex}
            next_level: set[int] = set()
            for u in frontier:
                next_level |= adjacency[u]
            next_level -= seen
            if not next_level:
                self._exhausted[vertex] = True
                break
            levels.append(next_level)
            self._stored_depth[vertex] = len(levels)
            self.stats.entries += len(next_level)
            seen |= next_level
            if target in next_level:
                found = True
        return found

    def _ensure_depth(self, vertex: int, k: int) -> None:
        if self._stored_depth[vertex] < k and not self._exhausted[vertex]:
            self._expand_and_find(vertex, -1, k)

    # ------------------------------------------------------------------
    # Dynamic maintenance (affected-label repair, Section V-B)
    # ------------------------------------------------------------------
    def supports_incremental_updates(self) -> bool:
        return True

    def insert_edge(self, u: int, v: int) -> None:
        self.graph.add_edge(u, v)
        self._repair_affected(u, v)

    def delete_edge(self, u: int, v: int) -> None:
        self.graph.remove_edge(u, v)
        self._repair_affected(u, v)

    def insert_vertex(self, labels=()) -> int:
        # An isolated vertex changes no existing level set; its own
        # profile is the empty one the full build would produce.
        vertex = self.graph.add_vertex(labels)
        with self._expand_lock:
            self._levels.append([])
            self._stored_depth.append(0)
            self._exhausted.append(True)
            self._built_version = self.graph.version
        return vertex

    def _repair_affected(self, u: int, v: int) -> None:
        """Recompute level sets only where the edited edge can matter.

        A path of length <= d from *x* that the edit created or
        destroyed passes through ``u`` or ``v`` at distance < d, so a
        vertex whose materialised levels contain neither endpoint (and
        is not an endpoint itself) keeps exactly its old levels.
        Affected vertices are rebuilt to the base depth ``h`` —
        on-demand expansions beyond it are cache and re-expand lazily.
        """
        with self._expand_lock:
            adjacency = self.graph.adjacency_view()
            affected = [
                x
                for x in range(len(self._levels))
                if x == u
                or x == v
                or any(u in level or v in level for level in self._levels[x])
            ]
            for x in affected:
                old_entries = sum(len(level) for level in self._levels[x])
                new_levels = [set(level) for level in bfs_levels(adjacency, x, self.depth)]
                self._levels[x] = new_levels
                self._stored_depth[x] = len(new_levels)
                self._exhausted[x] = len(new_levels) < self.depth
                self.stats.entries += (
                    sum(len(level) for level in new_levels) - old_entries
                )
            self.stats.extra["repaired_vertices"] = (
                self.stats.extra.get("repaired_vertices", 0) + len(affected)
            )
            self._built_version = self.graph.version

    # ------------------------------------------------------------------
    def level_sets(self, vertex: int) -> list[frozenset[int]]:
        """Materialised levels of *vertex* (read-only copies, for tests)."""
        return [frozenset(level) for level in self._levels[vertex]]

    # ------------------------------------------------------------------
    # Pickling (ProcessPoolExecutor workers): the expansion lock is
    # per-process state and not picklable.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_expand_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._expand_lock = threading.Lock()
