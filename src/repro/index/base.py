"""Distance-oracle interface used by k-line filtering.

Every KTG algorithm repeatedly asks one question (Section V): *is the
social distance between two members greater than the tenuity constraint
k?*  :class:`DistanceOracle` is the abstract answer-provider; three
implementations exist:

* :class:`repro.index.bfs.BFSOracle` — no precomputation, cutoff BFS per
  query (the "no index" baseline);
* :class:`repro.index.nl.NLIndex` — h-hop neighbour lists with on-demand
  frontier expansion (Section V-A);
* :class:`repro.index.nlrnl.NLRNLIndex` — (c-1)-hop lists plus reverse
  c-hop lists with id-halved storage (Section V-B).

Oracles also expose :meth:`DistanceOracle.within_k` (the vertex set at
distance <= k of a vertex) because incremental k-line filtering is far
cheaper as one bulk set operation than as |S_R| pairwise probes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Union

from repro.core.graph import AttributedGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.csr import CsrGraphView

#: Graphs an oracle can be bound to: the mutable adjacency graph or a
#: frozen CSR view (process workers attach to a shared snapshot and
#: build their oracle stack on the view; see repro.core.csr).
GraphLike = Union[AttributedGraph, "CsrGraphView"]

__all__ = ["DistanceOracle", "OracleStats", "GraphLike"]


@dataclass
class OracleStats:
    """Counters an oracle keeps about its own usage and footprint.

    ``entries`` is the number of (vertex, neighbour) pairs stored, the
    unit Figure 9(a) compares; ``build_seconds`` is construction time,
    the unit of Figure 9(b).  ``probes`` counts pairwise distance checks
    answered, and ``expansions`` counts on-demand frontier expansions
    (only the NL index performs these).

    ``memo_hits`` / ``memo_misses`` count probes answered from the
    oracle's fast path versus its slow path — the BFS frontier memo,
    NL's stored levels vs on-demand expansion, NLRNL's depth maps vs
    the missing-pair convention, PLL's common-landmark lookups.  What
    counts as a "hit" is oracle-specific; the ratio is what the
    instrument report surfaces.
    """

    entries: int = 0
    build_seconds: float = 0.0
    probes: int = 0
    expansions: int = 0
    extra: dict = field(default_factory=dict)
    memo_hits: int = 0
    memo_misses: int = 0
    #: Memo entries dropped by the LRU size budget (BFS frontier memo).
    memo_evictions: int = 0

    @property
    def memo_hit_rate(self) -> float:
        """Fast-path fraction of classified probes (0.0 when none)."""
        total = self.memo_hits + self.memo_misses
        return self.memo_hits / total if total else 0.0

    def reset_usage(self) -> None:
        """Zero the per-run counters, keeping build-time figures."""
        self.probes = 0
        self.expansions = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_evictions = 0


class DistanceOracle(abc.ABC):
    """Answers "is ``dist(u, v) > k``?" for a fixed attributed graph.

    Subclasses must be consistent with plain BFS on the graph passed at
    construction; the property-based tests enforce this.  An oracle is
    bound to one graph *version* — if the graph mutates, the oracle must
    either be rebuilt or support :meth:`apply_edge_insert` /
    :meth:`apply_edge_delete`.
    """

    #: Short name used in benchmark output ("bfs", "nl", "nlrnl").
    name: str = "abstract"

    def __init__(self, graph: GraphLike) -> None:
        self.graph = graph
        self.stats = OracleStats()
        self._built_version = graph.version

    # ------------------------------------------------------------------
    # Required interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def is_tenuous(self, u: int, v: int, k: int) -> bool:
        """Return ``True`` iff ``dist(u, v) > k`` (Definition 2 negated).

        ``u == v`` has distance 0 and is therefore never tenuous for
        ``k >= 0``.  Unreachable pairs have infinite distance and are
        always tenuous.
        """

    @abc.abstractmethod
    def within_k(self, vertex: int, k: int) -> set[int]:
        """Return all vertices at distance ``1..k`` from *vertex*.

        The vertex itself is excluded.  k-line filtering subtracts this
        set from the candidate pool whenever *vertex* joins the partial
        group.
        """

    # ------------------------------------------------------------------
    # Bulk filtering (the k-line filtering primitive, Theorem 3)
    # ------------------------------------------------------------------
    def filter_candidates(self, candidates: list[int], member: int, k: int) -> list[int]:
        """Return the candidates whose distance to *member* exceeds *k*.

        This is exactly the k-line filtering step: when *member* joins
        the intermediate group, every remaining candidate forming a
        k-line with it is dropped.  The default computes *member*'s
        k-ball once via :meth:`within_k` and drops candidates with one
        set subtraction — ``|candidates|`` pairwise ``is_tenuous``
        probes would re-derive that ball from scratch each time.
        Oracles whose ``within_k`` is itself O(n) probing (NLRNL, PLL)
        override this with an inlined pairwise loop instead.
        """
        self.stats.probes += len(candidates)
        if k == 0:
            return [v for v in candidates if v != member]
        blocked = self.within_k(member, k)
        return [v for v in candidates if v != member and v not in blocked]

    # ------------------------------------------------------------------
    # Dynamic maintenance (Section V-B).
    #
    # The oracle drives the graph mutation so it can snapshot whatever
    # pre-mutation state (e.g. old BFS distances) its incremental update
    # rule needs.  The default implementation falls back to a full
    # rebuild, which is always correct.
    # ------------------------------------------------------------------
    def supports_incremental_updates(self) -> bool:
        """Whether edge edits are handled incrementally (vs full rebuild)."""
        return False

    def insert_edge(self, u: int, v: int) -> None:
        """Add edge ``(u, v)`` to the graph and update the index."""
        self.graph.add_edge(u, v)
        self.rebuild()

    def delete_edge(self, u: int, v: int) -> None:
        """Remove edge ``(u, v)`` from the graph and update the index."""
        self.graph.remove_edge(u, v)
        self.rebuild()

    def insert_vertex(self, labels: Iterable[str] = ()) -> int:
        """Append an isolated vertex to the graph and update the index.

        The default rebuilds; indexes with per-vertex state override it
        to append an empty entry instead (an isolated vertex changes no
        existing distance).
        """
        vertex = self.graph.add_vertex(labels)
        self.rebuild()
        return vertex

    def note_keywords_changed(self) -> None:
        """Resync after a keyword-only graph mutation.

        Every oracle here stores distances, not keywords, so a
        ``set_keywords`` bump never invalidates index state — only the
        version stamp needs to follow, lest :meth:`is_stale` trigger a
        pointless full rebuild.
        """
        self._built_version = self.graph.version

    def rebuild(self) -> None:
        """Recompute all index state from the current graph."""
        self._built_version = self.graph.version

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def is_stale(self) -> bool:
        """Whether the graph has mutated since this oracle was built."""
        return self.graph.version != self._built_version

    def check_k(self, k: int) -> None:
        if k < 0:
            raise ValueError(f"tenuity constraint k must be >= 0, got {k}")

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(graph={self.graph!r}, "
            f"entries={self.stats.entries})"
        )
