"""Distance-check indexes (Section V).

k-line filtering needs fast answers to "is dist(u, v) > k?".  Three
oracles implement the same :class:`repro.index.base.DistanceOracle`
interface: plain cutoff BFS, the NL index (h-hop neighbour lists with
on-demand expansion), and the NLRNL index ((c-1)-hop lists plus reverse
c-hop lists with id-halved storage and incremental maintenance).
"""

from repro.index.base import DistanceOracle, OracleStats
from repro.index.bfs import BFSOracle
from repro.index.nl import NLIndex
from repro.index.nlrnl import NLRNLIndex
from repro.index.pll import PLLIndex
from repro.index.serialize import graph_fingerprint, load_index, save_index
from repro.index.stats import IndexFootprint, measure_footprint, oracle_by_name

__all__ = [
    "DistanceOracle",
    "OracleStats",
    "BFSOracle",
    "NLIndex",
    "NLRNLIndex",
    "PLLIndex",
    "save_index",
    "load_index",
    "graph_fingerprint",
    "IndexFootprint",
    "measure_footprint",
    "oracle_by_name",
]
