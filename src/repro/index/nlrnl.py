"""NLRNL index: (c-1)-hop lists + reverse c-hop lists (Section V-B).

For each vertex the paper picks ``c`` — the hop level with the largest
neighbour count — and stores every BFS level *except* level ``c``:

* the **near** lists hold levels ``1..c-1``;
* the **reverse** (far) lists hold levels ``c+1..ecc``.

Skipping the single biggest level is what makes NLRNL smaller than NL
despite covering *all* distances, and covering all distances is what
removes NL's on-demand expansion from the probe path.

Representation note: the two lists are stored jointly as one flat
``neighbour -> depth`` map per vertex (depths ``< c`` are the near list,
depths ``> c`` the reverse list).  The entry count — the unit the
paper's space analysis and Figure 9(a) use — is identical to the
two-list layout, but a probe is a single hash lookup instead of one
membership test per level, which is what lets NLRNL beat NL on probe
latency as reported in Section VII-A.

Two storage rules from the paper are implemented faithfully:

* **Id-halving** — vertex ``v``'s map only contains vertices with id
  greater than ``v``; a probe for the pair ``(u, v)`` always consults
  the smaller id's map ("we only store the hop neighbor whose id is
  greater than the user").
* **Missing-pair convention** — a same-component pair found in no list
  sits at distance exactly ``c``.  The paper leaves the
  "distance == c vs unreachable" ambiguity unaddressed; we disambiguate
  with a per-vertex connected-component id (O(n) extra space), recorded
  as a substitution in DESIGN.md.

Dynamic maintenance (edge insert/delete) follows the paper's sketch:
identify the vertices whose BFS distances may have changed using the
old distances from the edge endpoints, then rebuild exactly those
vertices' maps.  ``c`` values are frozen at build time so the
missing-pair convention stays stable across updates.
"""

from __future__ import annotations

import time

from repro.core.errors import IndexUpdateError
from repro.core.graph import AttributedGraph
from repro.index._traversal import UNREACHABLE, bfs_distance_array, bfs_levels
from repro.index.base import DistanceOracle
from repro.index.nl import choose_peak_level

__all__ = ["NLRNLIndex"]


class NLRNLIndex(DistanceOracle):
    """(c-1)-hop neighbour lists plus reverse c-hop lists, id-halved.

    Examples
    --------
    >>> g = AttributedGraph(4, [(0, 1), (1, 2), (2, 3)])
    >>> idx = NLRNLIndex(g)
    >>> idx.is_tenuous(0, 3, 2)
    True
    >>> idx.is_tenuous(0, 3, 3)
    False
    >>> idx.insert_edge(0, 3)
    >>> idx.is_tenuous(0, 3, 2)
    False
    """

    name = "nlrnl"

    def __init__(self, graph: AttributedGraph) -> None:
        super().__init__(graph)
        # _depth_of[v] maps each neighbour w > v (at any distance except
        # exactly c) to its hop distance.  _c[v] is the skipped level.
        self._depth_of: list[dict[int, int]] = []
        self._c: list[int] = []
        self._component: list[int] = []
        self.rebuild()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        started = time.perf_counter()
        graph = self.graph
        adjacency = graph.adjacency_view()
        n = graph.num_vertices

        depth_of: list[dict[int, int]] = []
        c_values: list[int] = []
        entries = 0
        for vertex in range(n):
            levels = bfs_levels(adjacency, vertex)
            c = choose_peak_level([len(level) for level in levels])
            c_values.append(c)
            vertex_map = self._map_from_levels(vertex, levels, c)
            entries += len(vertex_map)
            depth_of.append(vertex_map)

        self._depth_of = depth_of
        self._c = c_values
        self._component = graph.connected_components()

        self.stats.entries = entries
        self.stats.build_seconds = time.perf_counter() - started
        super().rebuild()

    @staticmethod
    def _map_from_levels(
        vertex: int, levels: list[list[int]], c: int
    ) -> dict[int, int]:
        """Flatten BFS levels into an id-halved neighbour->depth map,
        dropping level ``c`` entirely (the missing-pair convention)."""
        vertex_map: dict[int, int] = {}
        for depth, level in enumerate(levels, start=1):
            if depth == c:
                continue
            for w in level:
                if w > vertex:
                    vertex_map[w] = depth
        return vertex_map

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def is_tenuous(self, u: int, v: int, k: int) -> bool:
        self.check_k(k)
        self.stats.probes += 1
        if u == v:
            return False
        if k == 0:
            return True
        # Id-halving: the smaller id owns the pair.
        if u > v:
            u, v = v, u
        depth = self._depth_of[u].get(v)
        if depth is not None:
            self.stats.memo_hits += 1
            return depth > k
        # Not stored: either distance == c (same component) or
        # unreachable (different component, always tenuous).
        self.stats.memo_misses += 1
        if self._component[u] != self._component[v]:
            return True
        return self._c[u] > k

    def filter_candidates(self, candidates: list[int], member: int, k: int) -> list[int]:
        """k-line filtering with the probe inlined (hot path)."""
        self.stats.probes += len(candidates)
        if k == 0:
            return [v for v in candidates if v != member]
        depth_of = self._depth_of
        component = self._component
        c_values = self._c
        member_component = component[member]
        member_map = depth_of[member]
        member_c = c_values[member]
        surviving: list[int] = []
        append = surviving.append
        for v in candidates:
            if v == member:
                continue
            if v > member:
                depth = member_map.get(v)
                c = member_c
            else:
                depth = depth_of[v].get(member)
                c = c_values[v]
            if depth is None:
                if component[v] != member_component or c > k:
                    append(v)
            elif depth > k:
                append(v)
        return surviving

    def within_k(self, vertex: int, k: int) -> set[int]:
        """All vertices at distance 1..k of *vertex*.

        Id-halving means this cannot be read off one vertex's map; the
        canonical NLRNL usage is pairwise probing.  This method
        reconstructs the set by probing every other vertex and exists
        for API completeness and cross-validation tests.
        """
        self.check_k(k)
        return {
            other
            for other in range(self.graph.num_vertices)
            if other != vertex and not self.is_tenuous(vertex, other, k)
        }

    def distance_class(self, u: int, v: int) -> float:
        """Exact hop distance of the pair (``float('inf')`` if unreachable).

        Decoded purely from index state — used by tests to cross-validate
        against BFS.
        """
        if u == v:
            return 0
        if u > v:
            u, v = v, u
        depth = self._depth_of[u].get(v)
        if depth is not None:
            return depth
        if self._component[u] == self._component[v]:
            return self._c[u]
        return float("inf")

    # ------------------------------------------------------------------
    # Dynamic maintenance (Section V-B)
    # ------------------------------------------------------------------
    def supports_incremental_updates(self) -> bool:
        return True

    def insert_edge(self, u: int, v: int) -> None:
        """Add edge ``(u, v)`` and update affected vertices' maps.

        A vertex ``a`` can see a distance change from an inserted edge
        ``(x, y)`` only if its old distances to the endpoints differ by
        more than one hop (or it could previously reach only one of
        them): otherwise no shortest path can improve through the new
        edge.  Exactly those vertices' maps are rebuilt.
        """
        graph = self.graph
        old_from_u = bfs_distance_array(graph.adjacency_view(), u)
        old_from_v = bfs_distance_array(graph.adjacency_view(), v)
        graph.add_edge(u, v)
        affected = [
            a
            for a in range(graph.num_vertices)
            if _insert_affects(old_from_u[a], old_from_v[a])
        ]
        self._rebuild_vertices(affected)

    def delete_edge(self, u: int, v: int) -> None:
        """Remove edge ``(u, v)`` and update affected vertices' maps.

        A shortest path from ``a`` can traverse the edge ``(x, y)`` only
        when ``|dist(a, x) - dist(a, y)| == 1`` (with the edge present
        the difference is never more than one).  Only those vertices can
        lose a shortest path, so only they are rebuilt.
        """
        graph = self.graph
        if not graph.has_edge(u, v):
            raise IndexUpdateError(f"edge ({u}, {v}) does not exist")
        old_from_u = bfs_distance_array(graph.adjacency_view(), u)
        old_from_v = bfs_distance_array(graph.adjacency_view(), v)
        graph.remove_edge(u, v)
        affected = [
            a
            for a in range(graph.num_vertices)
            if old_from_u[a] != UNREACHABLE
            and abs(old_from_u[a] - old_from_v[a]) == 1
        ]
        self._rebuild_vertices(affected)

    def insert_vertex(self, labels=()) -> int:
        """Append an isolated vertex: empty map, fresh singleton component.

        No existing distance changes, so no map is rebuilt; the new
        vertex's own map is the empty one a full build would produce and
        its ``c`` is the empty-profile peak level.
        """
        vertex = self.graph.add_vertex(labels)
        self._depth_of.append({})
        self._c.append(choose_peak_level([]))
        self._component = self.graph.connected_components()
        self._built_version = self.graph.version
        return vertex

    def _rebuild_vertices(self, vertices: list[int]) -> None:
        """Recompute the maps of *vertices* from fresh BFS runs.

        ``c`` values are kept frozen (see module docstring); components
        are recomputed because inserts can merge and deletes can split.
        """
        adjacency = self.graph.adjacency_view()
        for vertex in vertices:
            old_entries = len(self._depth_of[vertex])
            levels = bfs_levels(adjacency, vertex)
            vertex_map = self._map_from_levels(vertex, levels, self._c[vertex])
            self._depth_of[vertex] = vertex_map
            self.stats.entries += len(vertex_map) - old_entries
        self._component = self.graph.connected_components()
        self._built_version = self.graph.version

    # ------------------------------------------------------------------
    def c_value(self, vertex: int) -> int:
        """The frozen per-vertex ``c`` (peak hop level at build time)."""
        return self._c[vertex]


def _insert_affects(dist_u: int, dist_v: int) -> bool:
    """Whether old endpoint distances imply a possible improvement."""
    if dist_u == UNREACHABLE and dist_v == UNREACHABLE:
        return False
    if dist_u == UNREACHABLE or dist_v == UNREACHABLE:
        return True
    return abs(dist_u - dist_v) > 1
