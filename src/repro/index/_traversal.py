"""Shared breadth-first-search primitives for index construction.

These helpers operate on a raw adjacency list (``Sequence[set[int]]``,
as returned by :meth:`repro.core.graph.AttributedGraph.adjacency_view`)
and use flat integer arrays instead of dicts, which is measurably faster
for the thousands of BFS runs an index build performs.

The ``*_csr`` variants take the flat ``indptr``/``indices`` arrays of a
:class:`repro.core.csr.CsrSnapshot` instead.  Scanning a contiguous list
slice per row avoids the per-set iterator protocol and hash-bucket
walks, which measures ~1.3x faster on the dense synthetic profiles (see
``benchmarks/bench_csr_fanout.py``).  Both variants visit neighbours in
the same order *per level set* but report identical level sets and
distances — every consumer in this package is order-insensitive within
a level.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

__all__ = [
    "bfs_levels",
    "bfs_distance_array",
    "bfs_levels_csr",
    "bfs_distance_array_csr",
    "UNREACHABLE",
]

#: Sentinel distance for unreachable vertices in distance arrays.
UNREACHABLE = -1


def bfs_levels(
    adjacency: Sequence[set[int]],
    source: int,
    max_depth: Optional[int] = None,
) -> list[list[int]]:
    """Return BFS levels from *source*: ``levels[d-1]`` is the vertex list
    at hop distance exactly ``d``.

    The source (distance 0) is not included.  Search stops at *max_depth*
    hops when given, otherwise when the component is exhausted.  Trailing
    empty levels are never produced.
    """
    n = len(adjacency)
    seen = bytearray(n)
    seen[source] = 1
    levels: list[list[int]] = []
    frontier = [source]
    depth = 0
    while frontier and (max_depth is None or depth < max_depth):
        depth += 1
        next_frontier: list[int] = []
        append = next_frontier.append
        for u in frontier:
            for v in adjacency[u]:
                if not seen[v]:
                    seen[v] = 1
                    append(v)
        if not next_frontier:
            break
        levels.append(next_frontier)
        frontier = next_frontier
    return levels


def bfs_distance_array(
    adjacency: Sequence[set[int]],
    source: int,
    max_depth: Optional[int] = None,
) -> list[int]:
    """Return hop distances from *source* to every vertex.

    Unreachable vertices get :data:`UNREACHABLE`; the source gets 0.
    Search stops at *max_depth* hops when given (same semantics as
    :func:`bfs_levels`), so vertices farther than *max_depth* keep
    :data:`UNREACHABLE` instead of forcing a whole-component sweep.
    """
    n = len(adjacency)
    distances = [UNREACHABLE] * n
    distances[source] = 0
    frontier = [source]
    depth = 0
    while frontier and (max_depth is None or depth < max_depth):
        depth += 1
        next_frontier: list[int] = []
        append = next_frontier.append
        for u in frontier:
            for v in adjacency[u]:
                if distances[v] == UNREACHABLE:
                    distances[v] = depth
                    append(v)
        frontier = next_frontier
    return distances


def bfs_levels_csr(
    indptr: Sequence[int],
    indices: Sequence[int],
    source: int,
    max_depth: Optional[int] = None,
) -> list[list[int]]:
    """CSR twin of :func:`bfs_levels` over flat ``indptr``/``indices``."""
    n = len(indptr) - 1
    seen = bytearray(n)
    seen[source] = 1
    levels: list[list[int]] = []
    frontier = [source]
    depth = 0
    while frontier and (max_depth is None or depth < max_depth):
        depth += 1
        next_frontier: list[int] = []
        append = next_frontier.append
        for u in frontier:
            for v in indices[indptr[u] : indptr[u + 1]]:
                if not seen[v]:
                    seen[v] = 1
                    append(v)
        if not next_frontier:
            break
        levels.append(next_frontier)
        frontier = next_frontier
    return levels


def bfs_distance_array_csr(
    indptr: Sequence[int],
    indices: Sequence[int],
    source: int,
    max_depth: Optional[int] = None,
) -> list[int]:
    """CSR twin of :func:`bfs_distance_array` over flat ``indptr``/``indices``."""
    n = len(indptr) - 1
    distances = [UNREACHABLE] * n
    distances[source] = 0
    frontier = [source]
    depth = 0
    while frontier and (max_depth is None or depth < max_depth):
        depth += 1
        next_frontier: list[int] = []
        append = next_frontier.append
        for u in frontier:
            for v in indices[indptr[u] : indptr[u + 1]]:
                if distances[v] == UNREACHABLE:
                    distances[v] = depth
                    append(v)
        frontier = next_frontier
    return distances
