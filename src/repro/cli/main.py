"""Command-line interface: ``ktg`` (or ``python -m repro``).

Subcommands mirror the library's workflow:

``ktg datasets``
    List the built-in dataset profiles and their calibration.
``ktg generate <profile> --edges out.edges --keywords out.kw``
    Materialise a synthetic dataset to disk.
``ktg query <profile> --keywords a,b,c [-p 3 -k 2 -n 3] [--algorithm ...]``
    Answer one KTG query and print the groups.  ``ktg solve`` is an
    alias; ``--jobs N`` fans the branch-and-bound root frontier across
    a parallel worker fleet (results stay bit-identical to serial).
``ktg batch <profile> --queries 50 [--workers 4 --executor thread]``
    Serve a generated query batch through the QueryService (parallel
    workers + result cache + admission control) and print serving
    metrics.
``ktg serve <profile> [--port 8765 --rate-limit 50 --max-inflight 64]``
    Serve KTG queries over HTTP: the asyncio front end with per-client
    rate limiting, identical-query coalescing, deadline propagation and
    degraded-mode responses (``POST /solve``, ``POST /batch``,
    ``GET /stats``, ``GET /healthz``).
``ktg sweep <profile> --parameter group_size``
    Run a Table I parameter sweep and print the figure-shaped table.
``ktg case-study``
    Print the Figure 8 effectiveness comparison.
``ktg index-stats <profile>``
    Compare NL vs NLRNL (and BFS/PLL) footprint and build time (Figure 9).
``ktg stats <profile>``
    Structural statistics of a dataset profile (calibration view).
``ktg trace``
    Render the branch-and-bound search tree of the paper's running
    example (Figure 2).
``ktg reproduce --experiment fig4``
    Re-run one of the paper's experiments at reduced scale and check
    its qualitative findings.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import __version__
from repro.analysis.case_study import render_case_study, run_case_study
from repro.analysis.graphstats import compute_statistics
from repro.analysis.tables import render_series, render_table, write_csv
from repro.core.errors import ReproError
from repro.core.query import DKTGQuery, KTGQuery
from repro.datasets.figure1 import case_study_graph, case_study_query
from repro.datasets.io import write_graph
from repro.datasets.registry import PROFILES, load_dataset
from repro.index.stats import measure_footprint
from repro.core.branch_and_bound import BranchAndBoundSolver
from repro.core.strategies import strategy_by_name
from repro.core.trace import TracingSolver
from repro.datasets.figure1 import figure1_example, figure1_query
from repro.workloads.runner import ALGORITHMS
from repro.workloads.experiments import experiment_ids, reproduce
from repro.workloads.sweep import PARAMETER_TABLE, run_parameter_sweep

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="ktg",
        description="Keyword-based socially tenuous group queries (ICDE 2023 reproduction).",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list built-in dataset profiles")

    generate = commands.add_parser("generate", help="write a synthetic dataset to disk")
    generate.add_argument("profile", choices=sorted(PROFILES))
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument("--edges", required=True, help="output edge-list path")
    generate.add_argument("--keywords", required=True, help="output keyword-table path")

    query = commands.add_parser(
        "query", aliases=["solve"], help="answer one KTG/DKTG query"
    )
    query.add_argument("profile", choices=sorted(PROFILES))
    query.add_argument("--scale", type=float, default=1.0)
    query.add_argument(
        "--keywords",
        required=True,
        help="comma-separated query keywords (use vocabulary labels, e.g. kw003)",
    )
    query.add_argument("-p", "--group-size", type=int, default=3)
    query.add_argument("-k", "--tenuity", type=int, default=2)
    query.add_argument("-n", "--top-n", type=int, default=3)
    query.add_argument(
        "--algorithm",
        default="KTG-VKC-DEG-NLRNL",
        choices=sorted(ALGORITHMS),
    )
    query.add_argument("--gamma", type=float, default=0.5, help="DKTG diversity weight")
    query.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel subproblem workers for the solve (1 = serial)",
    )
    query.add_argument(
        "--jobs-executor",
        default="process",
        choices=["process", "thread", "inline"],
        help="fleet kind used when --jobs > 1 or --shards > 1",
    )
    query.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "partition the graph into N shards and scatter-gather the "
            "solve across per-shard fleets (1 = unsharded; results stay "
            "bit-identical)"
        ),
    )
    query.add_argument(
        "--shard-radius",
        type=int,
        default=None,
        help=(
            "boundary-ball replication radius for --shards > 1 "
            "(default: max(2, tenuity))"
        ),
    )
    query.add_argument(
        "--distance-engine",
        default="oracle",
        choices=["oracle", "bitset"],
        help="tenuity-check engine: direct oracle probes or ball bitsets",
    )
    query.add_argument(
        "--graph-layout",
        default="adjacency",
        choices=["adjacency", "csr"],
        help=(
            "traversal layout: per-vertex adjacency sets or the flat CSR "
            "snapshot (zero-copy shared-memory fan-out with --jobs)"
        ),
    )
    query.add_argument(
        "--kernel-backend",
        default="auto",
        choices=["auto", "numpy", "python"],
        help=(
            "bitset-kernel and batched solver-core vectorization: auto "
            "(numpy when importable), numpy (forced; errors without "
            "numpy) or python (scalar); bit-identical either way"
        ),
    )

    batch = commands.add_parser(
        "batch", help="serve a generated query batch through the QueryService"
    )
    batch.add_argument("profile", choices=sorted(PROFILES))
    batch.add_argument("--scale", type=float, default=0.5)
    batch.add_argument("--queries", type=int, default=50)
    batch.add_argument("--keyword-size", type=int, default=6)
    batch.add_argument("-p", "--group-size", type=int, default=3)
    batch.add_argument("-k", "--tenuity", type=int, default=2)
    batch.add_argument("-n", "--top-n", type=int, default=3)
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument(
        "--algorithm",
        default="KTG-VKC-DEG-NLRNL",
        choices=sorted(ALGORITHMS),
    )
    batch.add_argument("--workers", type=int, default=4)
    batch.add_argument(
        "--executor",
        default="thread",
        choices=["thread", "process"],
        help="worker kind: threads (oracle-bound) or processes (CPU-bound solves)",
    )
    batch.add_argument(
        "--sequential",
        action="store_true",
        help="disable the worker pool (baseline comparison)",
    )
    batch.add_argument(
        "--passes",
        type=int,
        default=2,
        help="times to serve the same workload (pass 2+ exercises the cache)",
    )
    batch.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="per-query wall-clock budget in seconds (graceful degradation)",
    )
    batch.add_argument(
        "--node-budget",
        type=int,
        default=None,
        help="per-query search-node budget (graceful degradation)",
    )
    batch.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "per-query parallel solve workers (1 = serial solves; "
            ">1 serves the batch sequentially, each query using the fleet)"
        ),
    )
    batch.add_argument(
        "--distance-engine",
        default="oracle",
        choices=["oracle", "bitset"],
        help="tenuity-check engine; 'bitset' reuses ball caches across queries",
    )
    batch.add_argument(
        "--graph-layout",
        default="adjacency",
        choices=["adjacency", "csr"],
        help="traversal layout for oracle builds and solver fan-out",
    )
    batch.add_argument(
        "--kernel-backend",
        default="auto",
        choices=["auto", "numpy", "python"],
        help="bitset-kernel and batched solver-core backend for the service",
    )

    serve = commands.add_parser(
        "serve", help="serve KTG queries over HTTP (asyncio front end)"
    )
    serve.add_argument("profile", choices=sorted(PROFILES))
    serve.add_argument("--scale", type=float, default=0.5)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765, help="listen port (0 = ephemeral)"
    )
    serve.add_argument(
        "--algorithm",
        default="KTG-VKC-DEG-NLRNL",
        choices=sorted(ALGORITHMS),
    )
    serve.add_argument("--workers", type=int, default=4, help="solver threads")
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        help="per-client admitted requests/second (0 = unlimited)",
    )
    serve.add_argument(
        "--burst",
        type=float,
        default=0.0,
        help="per-client burst capacity (defaults to one second of rate)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="concurrent solve cap; beyond it requests get 503",
    )
    serve.add_argument(
        "--pressure-threshold",
        type=int,
        default=None,
        help=(
            "in-flight solves at which new solves degrade to "
            "--pressure-time-budget partial answers (default: disabled)"
        ),
    )
    serve.add_argument(
        "--pressure-time-budget",
        type=float,
        default=0.05,
        help="clamped per-solve budget (seconds) inside the pressure band",
    )
    serve.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="service-wide per-query wall-clock budget in seconds",
    )
    serve.add_argument(
        "--node-budget",
        type=int,
        default=None,
        help="service-wide per-query search-node budget",
    )
    serve.add_argument("--cache-capacity", type=int, default=1024)
    serve.add_argument(
        "--distance-engine",
        default="oracle",
        choices=["oracle", "bitset"],
        help="tenuity-check engine for served solves",
    )
    serve.add_argument(
        "--graph-layout",
        default="adjacency",
        choices=["adjacency", "csr"],
        help="traversal layout for oracle builds and solves",
    )
    serve.add_argument(
        "--kernel-backend",
        default="auto",
        choices=["auto", "numpy", "python"],
        help="bitset-kernel and batched solver-core vectorization backend",
    )
    serve.add_argument(
        "--mutations",
        action="store_true",
        help=(
            "accept POST /mutate graph edits: mutations are delta-buffered "
            "against epoch CSR snapshots and served without a restart"
        ),
    )
    serve.add_argument(
        "--rotate-after",
        type=int,
        default=64,
        help="delta depth that triggers a background epoch rotation",
    )
    serve.add_argument(
        "--max-delta",
        type=int,
        default=256,
        help="delta depth that forces a synchronous epoch rotation",
    )
    serve.add_argument(
        "--epoch-shared",
        action="store_true",
        help="place epoch snapshots in shared memory (process fan-out)",
    )
    serve.add_argument(
        "--graphs",
        default=None,
        metavar="PROFILES",
        help=(
            "enable multi-graph serving and preload these comma-separated "
            "dataset profiles as named tenants (e.g. 'brightkite,gowalla'; "
            "adds GET /graphs, POST /graphs/load, POST /graphs/drop and a "
            "'graph' field on /solve, /batch and /mutate)"
        ),
    )

    graphs = commands.add_parser(
        "graphs", help="manage a running server's graph registry over HTTP"
    )
    graphs_commands = graphs.add_subparsers(dest="graphs_command", required=True)
    for action in ("list", "load", "drop"):
        sub = graphs_commands.add_parser(
            action,
            help={
                "list": "list the server's registered graphs",
                "load": "load (or reload) a named graph from a dataset profile",
                "drop": "drop a named graph and release its resources",
            }[action],
        )
        sub.add_argument("--host", default="127.0.0.1")
        sub.add_argument("--port", type=int, default=8765)
        if action in ("load", "drop"):
            sub.add_argument("--name", required=True, help="registry name")
        if action == "load":
            sub.add_argument(
                "--profile", required=True, choices=sorted(PROFILES)
            )
            sub.add_argument("--scale", type=float, default=1.0)
            sub.add_argument("--seed", type=int, default=None)
            sub.add_argument(
                "--shards",
                type=int,
                default=None,
                help="serve this tenant through an N-shard scatter-gather engine",
            )
            sub.add_argument(
                "--algorithm",
                default=None,
                choices=sorted(ALGORITHMS),
            )

    sweep = commands.add_parser("sweep", help="run a Table I parameter sweep")
    sweep.add_argument("profile", choices=sorted(PROFILES))
    sweep.add_argument("--parameter", required=True, choices=sorted(PARAMETER_TABLE))
    sweep.add_argument("--scale", type=float, default=0.5)
    sweep.add_argument("--queries", type=int, default=10)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--algorithms",
        default=None,
        help="comma-separated algorithm names (default: all)",
    )
    sweep.add_argument("--csv", default=None, help="also write rows to this CSV path")

    commands.add_parser("case-study", help="print the Figure 8 effectiveness comparison")

    index_stats = commands.add_parser(
        "index-stats", help="compare NL vs NLRNL footprints (Figure 9)"
    )
    index_stats.add_argument("profile", choices=sorted(PROFILES))
    index_stats.add_argument("--scale", type=float, default=0.5)
    index_stats.add_argument(
        "--all-oracles",
        action="store_true",
        help="also measure the BFS and PLL oracles",
    )

    stats = commands.add_parser(
        "stats",
        help=(
            "structural statistics of a dataset profile; with --keywords, "
            "run one instrumented solve and print its full instrument report"
        ),
    )
    stats.add_argument("profile", choices=sorted(PROFILES))
    stats.add_argument("--scale", type=float, default=0.5)
    stats.add_argument(
        "--keywords",
        default=None,
        help="comma-separated query keywords; switches to the solve report",
    )
    stats.add_argument("-p", "--group-size", type=int, default=3)
    stats.add_argument("-k", "--tenuity", type=int, default=2)
    stats.add_argument("-n", "--top-n", type=int, default=3)
    stats.add_argument(
        "--algorithm",
        default="KTG-VKC-DEG-NLRNL",
        choices=sorted(
            name for name, spec in ALGORITHMS.items() if not spec.diversified
        ),
    )
    stats.add_argument(
        "--distance-engine",
        default="oracle",
        choices=["oracle", "bitset"],
        help="tenuity-check engine for the instrumented solve",
    )
    stats.add_argument(
        "--graph-layout",
        default="adjacency",
        choices=["adjacency", "csr"],
        help="traversal layout for the instrumented solve",
    )
    stats.add_argument(
        "--kernel-backend",
        default="auto",
        choices=["auto", "numpy", "python"],
        help="bitset-kernel and batched solver-core backend for the instrumented solve",
    )
    stats.add_argument(
        "--churn",
        type=int,
        default=0,
        metavar="N",
        help=(
            "apply N random edge mutations through an epoch-mode service "
            "interleaved with solves and print the epoch serving metrics"
        ),
    )

    trace = commands.add_parser(
        "trace", help="render the Figure 2 search tree of the running example"
    )
    trace.add_argument(
        "--strategy",
        default="vkc",
        choices=["qkc", "vkc", "vkc-deg"],
    )
    trace.add_argument("--max-depth", type=int, default=None)

    repro_cmd = commands.add_parser(
        "reproduce", help="re-run a paper experiment and check its findings"
    )
    repro_cmd.add_argument("--experiment", required=True, choices=experiment_ids())
    repro_cmd.add_argument("--dataset", default="gowalla", choices=sorted(PROFILES))
    repro_cmd.add_argument("--scale", type=float, default=0.25)
    repro_cmd.add_argument("--queries", type=int, default=3)
    repro_cmd.add_argument("--seed", type=int, default=0)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like a
        # well-behaved Unix tool.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command in ("query", "solve"):
        return _cmd_query(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "graphs":
        return _cmd_graphs(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "case-study":
        return _cmd_case_study()
    if args.command == "index-stats":
        return _cmd_index_stats(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "reproduce":
        return _cmd_reproduce(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def _cmd_datasets() -> int:
    rows = [
        {
            "name": profile.name,
            "paper_|V|": profile.paper_vertices,
            "paper_|E|": profile.paper_edges,
            "scaled_|V|": profile.scaled_vertices,
            "m": profile.edges_per_vertex,
            "description": profile.description,
        }
        for profile in PROFILES.values()
    ]
    print(render_table(rows, title="Built-in dataset profiles"))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    graph, _ = load_dataset(args.profile, scale=args.scale, seed=args.seed)
    write_graph(graph, args.edges, args.keywords)
    print(
        f"wrote {graph.num_vertices} vertices / {graph.num_edges} edges "
        f"to {args.edges} (+ keywords to {args.keywords})"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    graph, _ = load_dataset(args.profile, scale=args.scale)
    labels = tuple(label.strip() for label in args.keywords.split(",") if label.strip())
    spec = ALGORITHMS[args.algorithm]
    if spec.diversified:
        query: KTGQuery = DKTGQuery(
            keywords=labels,
            group_size=args.group_size,
            tenuity=args.tenuity,
            top_n=args.top_n,
            gamma=args.gamma,
        )
    else:
        query = KTGQuery(
            keywords=labels,
            group_size=args.group_size,
            tenuity=args.tenuity,
            top_n=args.top_n,
        )
    oracle = spec.build_oracle(
        graph, graph_layout=args.graph_layout, kernel_backend=args.kernel_backend
    )
    if args.shards > 1 and not spec.diversified:
        from repro.shard import ShardedBranchAndBoundSolver

        radius = args.shard_radius
        if radius is None:
            radius = max(2, args.tenuity)
        with ShardedBranchAndBoundSolver(
            graph,
            oracle=oracle,
            strategy=strategy_by_name(spec.strategy_name, graph),
            num_shards=args.shards,
            radius=radius,
            executor=args.jobs_executor,
            jobs_per_shard=max(1, args.jobs),
            distance_engine=args.distance_engine,
            kernel_backend=args.kernel_backend,
        ) as engine:
            result = engine.solve(query)
        print(result)
        print(
            f"(latency: {result.stats.elapsed_seconds * 1000:.1f} ms, "
            f"shards={result.shards}, radius={result.radius}, "
            f"executor={result.executor}, subproblems={result.subproblems})"
        )
        return 0
    if args.jobs > 1 and not spec.diversified:
        from repro.core.parallel import ParallelBranchAndBoundSolver

        with ParallelBranchAndBoundSolver(
            graph,
            oracle=oracle,
            strategy=strategy_by_name(spec.strategy_name, graph),
            jobs=args.jobs,
            executor=args.jobs_executor,
            distance_engine=args.distance_engine,
            graph_layout=args.graph_layout,
            kernel_backend=args.kernel_backend,
        ) as engine:
            result = engine.solve(query)
        print(result)
        print(
            f"(latency: {result.stats.elapsed_seconds * 1000:.1f} ms, "
            f"jobs={result.jobs}, executor={result.executor}, "
            f"subproblems={result.subproblems})"
        )
        return 0
    solver = spec.build_solver(
        graph,
        oracle,
        distance_engine=args.distance_engine,
        graph_layout=args.graph_layout,
        kernel_backend=args.kernel_backend,
    )
    result = solver.solve(query)
    print(result)
    print(f"(latency: {result.stats.elapsed_seconds * 1000:.1f} ms)")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    import time as time_module

    from repro.service import QueryService
    from repro.workloads.generator import WorkloadGenerator

    graph, vocabulary = load_dataset(args.profile, scale=args.scale)
    generator = WorkloadGenerator(graph, vocabulary, dataset_name=args.profile)
    workload = generator.generate(
        count=args.queries,
        keyword_size=args.keyword_size,
        group_size=args.group_size,
        tenuity=args.tenuity,
        top_n=args.top_n,
        seed=args.seed,
    )
    with QueryService(
        graph,
        args.algorithm,
        max_workers=args.workers,
        executor=args.executor,
        time_budget=args.time_budget,
        node_budget=args.node_budget,
        jobs=args.jobs,
        distance_engine=args.distance_engine,
        graph_layout=args.graph_layout,
        kernel_backend=args.kernel_backend,
    ) as service:
        pass_rows = []
        for pass_number in range(1, args.passes + 1):
            started = time_module.perf_counter()
            served = service.run_batch(workload, parallel=not args.sequential)
            wall_seconds = time_module.perf_counter() - started
            pass_rows.append(
                {
                    "pass": pass_number,
                    "queries": len(served),
                    "wall_s": round(wall_seconds, 3),
                    "qps": round(len(served) / wall_seconds, 1) if wall_seconds else 0.0,
                    "from_cache": sum(1 for outcome in served if outcome.from_cache),
                    "degraded": sum(1 for outcome in served if outcome.degraded),
                }
            )
        stats = service.stats()
    if args.jobs > 1:
        mode = f"jobs={args.jobs} per query"
    elif args.sequential:
        mode = "sequential"
    else:
        mode = f"{args.workers}x{args.executor}"
    print(
        render_table(
            pass_rows,
            title=f"{args.profile}: {args.algorithm} batch serving ({mode})",
        )
    )
    print(render_table([stats.as_dict()], title="service metrics"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``ktg serve``: run the asyncio HTTP front end until interrupted."""
    import asyncio

    from repro.obs import InstrumentRegistry
    from repro.server import KTGServer
    from repro.service import QueryService

    graph, _ = load_dataset(args.profile, scale=args.scale)
    registry = InstrumentRegistry()
    service = QueryService(
        graph,
        args.algorithm,
        max_workers=args.workers,
        time_budget=args.time_budget,
        node_budget=args.node_budget,
        cache_capacity=args.cache_capacity,
        distance_engine=args.distance_engine,
        graph_layout=args.graph_layout,
        kernel_backend=args.kernel_backend,
        mutations=args.mutations,
        epoch_rotate_after=args.rotate_after,
        epoch_max_delta=args.max_delta,
        epoch_shared=args.epoch_shared,
        instruments=registry,
    )
    graph_registry = None
    if args.graphs is not None:
        from repro.shard import GraphRegistry

        graph_registry = GraphRegistry(
            instruments=registry,
            algorithm=args.algorithm,
            max_workers=args.workers,
            time_budget=args.time_budget,
            node_budget=args.node_budget,
            cache_capacity=args.cache_capacity,
            distance_engine=args.distance_engine,
            graph_layout=args.graph_layout,
            kernel_backend=args.kernel_backend,
        )
        for profile in (p.strip() for p in args.graphs.split(",")):
            if not profile:
                continue
            entry = graph_registry.load(profile, profile, scale=args.scale)
            print(f"loaded graph {entry.graph_id} ({profile}, scale {args.scale})")
    server = KTGServer(
        service,
        registry=graph_registry,
        host=args.host,
        port=args.port,
        rate_limit_qps=args.rate_limit,
        rate_limit_burst=args.burst,
        max_inflight=args.max_inflight,
        pressure_threshold=args.pressure_threshold,
        pressure_time_budget=args.pressure_time_budget,
        solver_threads=args.workers,
        instruments=registry,
    )

    async def _serve() -> None:
        await server.start()
        host, port = server.address
        endpoints = "POST /solve, /batch; GET /stats, /healthz"
        if args.mutations:
            endpoints = "POST /solve, /batch, /mutate; GET /stats, /healthz"
        if args.graphs is not None:
            endpoints += "; GET /graphs, POST /graphs/load, /graphs/drop"
        print(
            f"serving {args.profile} ({args.algorithm}) "
            f"on http://{host}:{port} — {endpoints}"
        )
        try:
            await server.serve_forever()
        finally:
            # Runs inside the same event loop, so teardown can await
            # the live connection tasks before the loop closes.
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted — shutting down")
    finally:
        service.close()
        if graph_registry is not None:
            graph_registry.close()
    return 0


def _cmd_graphs(args: argparse.Namespace) -> int:
    """``ktg graphs list|load|drop``: drive a server's registry over HTTP."""
    from repro.server.client import http_request

    if args.graphs_command == "list":
        status, body = http_request(args.host, args.port, "GET", "/graphs")
        if status != 200 or body is None:
            print(f"error: GET /graphs answered {status}: {body}", file=sys.stderr)
            return 1
        rows = body.get("graphs", [])
        if not rows:
            print("no graphs registered")
            return 0
        print(render_table(rows, title=f"registered graphs ({body.get('count', len(rows))})"))
        return 0
    if args.graphs_command == "load":
        payload: dict = {"name": args.name, "profile": args.profile, "scale": args.scale}
        if args.seed is not None:
            payload["seed"] = args.seed
        if args.shards is not None:
            payload["shards"] = args.shards
        if args.algorithm is not None:
            payload["algorithm"] = args.algorithm
        status, body = http_request(args.host, args.port, "POST", "/graphs/load", payload)
        if status != 200 or body is None:
            print(f"error: POST /graphs/load answered {status}: {body}", file=sys.stderr)
            return 1
        print(
            f"loaded {body['graph_id']}: {body['vertices']} vertices / "
            f"{body['edges']} edges ({body['algorithm']})"
        )
        return 0
    if args.graphs_command == "drop":
        status, body = http_request(
            args.host, args.port, "POST", "/graphs/drop", {"name": args.name}
        )
        if status != 200 or body is None:
            print(f"error: POST /graphs/drop answered {status}: {body}", file=sys.stderr)
            return 1
        print(f"dropped {args.name}")
        return 0
    raise AssertionError(f"unhandled graphs command {args.graphs_command!r}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    graph, vocabulary = load_dataset(args.profile, scale=args.scale)
    algorithms = (
        [name.strip() for name in args.algorithms.split(",")]
        if args.algorithms
        else None
    )
    result = run_parameter_sweep(
        graph,
        args.parameter,
        vocabulary=vocabulary,
        dataset_name=args.profile,
        algorithms=algorithms,
        queries_per_setting=args.queries,
        seed=args.seed,
    )
    series = {name: result.series(name) for name in result.algorithms()}
    print(
        render_series(
            series,
            x_label=args.parameter,
            title=f"{args.profile}: mean latency (ms) vs {args.parameter}",
        )
    )
    if args.csv:
        write_csv(result.rows(), args.csv)
        print(f"rows written to {args.csv}")
    return 0


def _cmd_case_study() -> int:
    outcome = run_case_study(case_study_graph(), case_study_query())
    print(render_case_study(outcome))
    return 0


def _cmd_index_stats(args: argparse.Namespace) -> int:
    graph, _ = load_dataset(args.profile, scale=args.scale)
    oracle_names = ("bfs", "nl", "nlrnl", "pll") if args.all_oracles else ("nl", "nlrnl")
    rows = [measure_footprint(graph, name).row() for name in oracle_names]
    print(render_table(rows, title=f"{args.profile}: index footprint (Figure 9)"))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph, vocabulary = load_dataset(args.profile, scale=args.scale)
    if args.churn:
        return _cmd_stats_churn(args, graph, vocabulary)
    if args.keywords:
        return _cmd_stats_solve(args, graph)
    statistics = compute_statistics(graph)
    print(
        render_table(
            [statistics.row()],
            title=f"{args.profile} (scale {args.scale}): structural statistics",
        )
    )
    fractions = ", ".join(
        f"k={k}: {fraction:.3f}"
        for k, fraction in enumerate(statistics.hop_ball_fractions, start=1)
    )
    print(f"hop-ball fractions: {fractions}")
    print()
    print(render_table([_footprint_row(graph)], title="graph memory footprint"))
    return 0


def _footprint_row(graph) -> dict:
    """Adjacency vs CSR bytes plus snapshot lifecycle status (``ktg stats``)."""
    from repro.core.csr import adjacency_footprint_bytes, counter_totals

    adjacency_bytes = adjacency_footprint_bytes(graph)
    snapshot = graph.csr_snapshot()
    totals = counter_totals()
    return {
        "adjacency_bytes": adjacency_bytes,
        "csr_bytes": snapshot.nbytes,
        "csr_vs_adjacency": f"{snapshot.nbytes / adjacency_bytes:.3f}x"
        if adjacency_bytes
        else "n/a",
        "snapshot": "shared" if snapshot.is_shared else "built (local)",
        "snapshot_version": snapshot.graph_version,
        "builds": totals["builds"],
        "attaches": totals["attaches"],
        "segment_releases": totals["segment_releases"],
    }


def _cmd_stats_churn(args: argparse.Namespace, graph, vocabulary) -> int:
    """``ktg stats <profile> --churn N``: serve under a mutation stream.

    Interleaves solves with N random edge flips through an epoch-mode
    :class:`QueryService`, then prints the service metrics (epoch id,
    delta depth, rotation timings) and the epoch instrument section —
    the quickest way to see snapshot rotation working end to end.
    """
    import random

    from repro.service import QueryService
    from repro.workloads.generator import WorkloadGenerator

    generator = WorkloadGenerator(graph, vocabulary, dataset_name=args.profile)
    workload = generator.generate(
        count=max(4, min(args.churn, 16)),
        keyword_size=4,
        group_size=args.group_size,
        tenuity=args.tenuity,
        top_n=args.top_n,
        seed=0,
    )
    rng = random.Random(0)
    rotate_after = max(1, min(8, args.churn // 4 or 1))
    with QueryService(
        graph,
        args.algorithm,
        mutations=True,
        epoch_rotate_after=rotate_after,
        epoch_max_delta=4 * rotate_after,
        epoch_rotate_sync=True,
        distance_engine=args.distance_engine,
        kernel_backend=args.kernel_backend,
    ) as service:
        n = graph.num_vertices
        for step in range(args.churn):
            u, v = rng.sample(range(n), 2)
            if graph.has_edge(u, v):
                service.remove_edge(u, v)
            else:
                service.add_edge(u, v)
            service.submit(workload.queries[step % len(workload)])
        stats = service.stats()
        report = service.instrument_report()
    print(
        render_table(
            [stats.as_dict()],
            title=(
                f"{args.profile}: service metrics under {args.churn} "
                f"mutations (rotate_after={rotate_after})"
            ),
        )
    )
    print(render_table([report["epoch"]], title="epoch manager"))
    return 0


def _cmd_stats_solve(args: argparse.Namespace, graph) -> int:
    """``ktg stats <profile> --keywords ...``: one instrumented solve."""
    from repro.obs import InstrumentingHooks, InstrumentRegistry
    from repro.obs.report import render_solve_report, solve_report

    labels = tuple(label.strip() for label in args.keywords.split(",") if label.strip())
    spec = ALGORITHMS[args.algorithm]
    query = KTGQuery(
        keywords=labels,
        group_size=args.group_size,
        tenuity=args.tenuity,
        top_n=args.top_n,
    )
    oracle = spec.build_oracle(
        graph, graph_layout=args.graph_layout, kernel_backend=args.kernel_backend
    )
    oracle.stats.reset_usage()
    registry = InstrumentRegistry()
    options: dict = {"graph_layout": args.graph_layout}
    if args.distance_engine == "bitset":
        # Build the kernel against the live registry so its
        # ``kernels.*`` counters land in the rendered report.
        from repro.kernels import BallBitsetEngine

        options["distance_engine"] = "bitset"
        options["kernel"] = BallBitsetEngine(
            oracle,
            instruments=registry,
            graph_layout=args.graph_layout,
            kernel_backend=args.kernel_backend,
        )
    solver = spec.build_solver(graph, oracle, **options)
    result = solver.solve(query, hooks=InstrumentingHooks(registry))
    report = solve_report(result, oracle=oracle, instruments=registry)
    print(render_solve_report(report))
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    outcome = reproduce(
        args.experiment,
        dataset=args.dataset,
        scale=args.scale,
        queries=args.queries,
        seed=args.seed,
    )
    print(outcome.render())
    return 0 if outcome.all_held else 2


def _cmd_trace(args: argparse.Namespace) -> int:
    graph = figure1_example()
    solver = BranchAndBoundSolver(
        graph, strategy=strategy_by_name(args.strategy, graph)
    )
    result, trace = TracingSolver(solver).solve(figure1_query())
    print(trace.render(max_depth=args.max_depth))
    print()
    print(result)
    print(
        f"(nodes={trace.nodes}, pruned={trace.pruned}, accepted={trace.accepted})"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
