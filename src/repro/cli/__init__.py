"""Command-line interface for the KTG reproduction (``ktg`` / ``python -m repro``)."""

from repro.cli.main import build_parser, main

__all__ = ["main", "build_parser"]
