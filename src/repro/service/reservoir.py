"""Bounded latency reservoir for long-running serving statistics.

``QueryService`` originally kept every observed latency in a plain
list: a long-running server leaked memory linearly with traffic and
``stats()`` re-sorted the whole history on every call (O(n log n) per
snapshot).  :class:`LatencyReservoir` replaces that with Vitter's
Algorithm R — a fixed-size uniform random sample of the observation
stream — plus an *exact* running count and mean:

* ``count`` / ``mean`` are exact over the full stream (running sum, no
  sampling error);
* percentiles are computed over the reservoir sample, which is a
  uniform sample of the stream, so the estimator converges to the true
  percentile with the usual ``O(1/sqrt(capacity))`` error — at the
  default capacity of 4096 samples that is well under the nearest-rank
  granularity any dashboard cares about;
* memory is O(capacity) forever, and a ``stats()`` snapshot sorts at
  most ``capacity`` samples.

The reservoir is deliberately *not* thread-safe: ``QueryService`` owns
one behind its stats lock.  The RNG is seeded so repeated runs of a
deterministic workload produce identical snapshots.
"""

from __future__ import annotations

import random

__all__ = ["LatencyReservoir", "DEFAULT_RESERVOIR_CAPACITY"]

#: Default sample size — percentile error ~1.6% at p99, a few KiB of floats.
DEFAULT_RESERVOIR_CAPACITY = 4096


class LatencyReservoir:
    """Fixed-size uniform sample of a latency stream with exact count/mean.

    Examples
    --------
    >>> reservoir = LatencyReservoir(capacity=2)
    >>> for value in (1.0, 2.0, 3.0, 4.0):
    ...     reservoir.observe(value)
    >>> reservoir.count, reservoir.mean
    (4, 2.5)
    >>> len(reservoir.sorted_sample())
    2
    """

    __slots__ = ("capacity", "count", "total", "_samples", "_rng")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR_CAPACITY, seed: int = 0x5EED) -> None:
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self._samples: list[float] = []
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        """Record one observation (Algorithm R replacement step)."""
        self.count += 1
        self.total += value
        if len(self._samples) < self.capacity:
            self._samples.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self._samples[slot] = value

    @property
    def mean(self) -> float:
        """Exact mean of *every* observation (not just the sample)."""
        return self.total / self.count if self.count else 0.0

    @property
    def sample_size(self) -> int:
        """Number of retained samples (== min(count, capacity))."""
        return len(self._samples)

    def sorted_sample(self) -> list[float]:
        """A sorted copy of the retained sample (for percentile queries)."""
        return sorted(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:
        return (
            f"LatencyReservoir(capacity={self.capacity}, count={self.count}, "
            f"sample_size={self.sample_size})"
        )
