"""Batch query serving layer (production-scale path of the ROADMAP).

The solver layer answers one query at a time; deployments answer
*traffic*.  This package adds the serving machinery around the exact
KTG/DKTG solvers:

* :class:`~repro.service.service.QueryService` — answers query batches
  against one shared graph + prebuilt oracle with a worker pool
  (threads by default, processes opt-in for CPU-bound solves);
* :class:`~repro.service.cache.ResultCache` — an LRU result cache keyed
  by ``(graph.version, canonical query)`` so repeated queries are
  amortised and graph mutations implicitly invalidate stale entries;
* :class:`~repro.service.service.ServiceResult` /
  :class:`~repro.service.service.ServiceStats` — per-query provenance
  (exactness, budget exhaustion, cache hit, latency) and aggregate
  serving metrics (hit rate, p50/p95/p99 latency, degraded count).

See ``docs/service.md`` for the architecture and degradation semantics.
"""

from repro.service.cache import CacheStats, ResultCache, canonical_query_key
from repro.service.service import QueryService, ServiceResult, ServiceStats

__all__ = [
    "CacheStats",
    "ResultCache",
    "canonical_query_key",
    "QueryService",
    "ServiceResult",
    "ServiceStats",
]
