"""LRU result cache for the query service.

Cache keys are ``(graph.version, algorithm, canonical query)``.  Keying
by the graph's monotonic mutation counter makes invalidation implicit:
after any ``add_edge``/``remove_edge`` the version changes, every key
minted against the old version can never be produced again, and the
stale entries age out of the LRU window naturally.  No explicit
invalidation callback has to race in-flight queries.

Queries are canonicalised before keying — keyword order and duplicates
do not affect the answer (coverage is mask-based), so ``("a", "b")`` and
``("b", "a", "b")`` share one cache line.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

from repro.core.query import DKTGQuery, KTGQuery

__all__ = ["CacheStats", "ResultCache", "canonical_query_key"]


def canonical_query_key(query: KTGQuery) -> tuple:
    """Canonical, hashable identity of a query's *answer*.

    Two queries map to the same key iff an exact solver must return the
    same result for both: keyword order and multiplicity are erased,
    every answer-affecting field is kept, and DKTG queries are kept
    distinct from KTG queries with the same shape (the result types
    differ even when ``gamma`` would not matter).
    """
    key: tuple = (
        "dktg" if isinstance(query, DKTGQuery) else "ktg",
        tuple(sorted(set(query.keywords))),
        query.group_size,
        query.tenuity,
        query.top_n,
        tuple(sorted(query.excluded_anchors)),
    )
    if isinstance(query, DKTGQuery):
        key += (query.gamma,)
    return key


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions)


class ResultCache:
    """Thread-safe bounded LRU mapping cache keys to query results.

    ``capacity=0`` disables caching entirely (every lookup is a miss and
    nothing is stored) — benchmarks use this to isolate solver cost.
    Stored values are treated as immutable; callers must not mutate
    returned results.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Optional[object]:
        """Return the cached value for *key* (refreshing recency), or
        ``None`` on a miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert *value* under *key*, evicting the least recently used
        entry when full.  ``None`` values are not cacheable (they are
        indistinguishable from misses)."""
        if value is None:
            raise ValueError("cannot cache None (indistinguishable from a miss)")
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"ResultCache({len(self._entries)}/{self.capacity}, "
            f"hits={self.stats.hits}, misses={self.stats.misses}, "
            f"evictions={self.stats.evictions})"
        )
