"""QueryService: parallel batch execution with caching and degradation.

One service instance owns a graph, one algorithm spec, one (lazily
built, shared) distance oracle and one result cache, and answers KTG /
DKTG queries submitted singly or in batches:

* **Parallel batch execution** — ``run_batch`` fans a workload across a
  worker pool.  The default ``executor="thread"`` suits oracle-bound
  work (index probes release no GIL but are memory-bound and cheap);
  ``executor="process"`` ships the graph + prebuilt oracle to worker
  processes once and is the right choice for CPU-bound exact solves.
* **Result caching** — answers are cached under
  ``(graph_id, graph.version, algorithm, canonical query)``.  Only
  *exact* (non-degraded) answers are cached: a budget-truncated answer
  is an artefact of one run's timing, not a property of the query.
  Graph mutations bump the version, so stale entries can never be
  returned; the stable ``graph_id`` keeps cache keys distinct across
  *different* graphs that happen to share a version counter (the
  multi-tenant registry, :class:`repro.shard.GraphRegistry`, issues one
  id per load generation).
* **Admission control / graceful degradation** — service-level
  ``time_budget`` / ``node_budget`` defaults are applied to every
  query (overridable per call).  When a budget trips, the anytime
  answer is returned and flagged: :attr:`ServiceResult.is_exact` is
  False and the degradation is counted in :class:`ServiceStats`.

Thread-safety: concurrent ``submit``/``run_batch`` calls are safe —
every lazily initialized shared structure (oracle, kernel, parallel
engines, worker pools, stats) is built and mutated under a lock, so
racing callers converge on one engine per ``(jobs, version)`` key and
one worker pool.  Mutating the graph concurrently with in-flight
queries is not — mutate between batches (the next call observes the
new version, rebuilds the oracle and re-keys the cache).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from repro.core.dktg import DKTGResult
from repro.core.branch_and_bound import KTGResult
from repro.core.csr import validate_graph_layout
from repro.core.epoch import DEFAULT_MAX_DELTA, DEFAULT_ROTATE_AFTER, EpochManager
from repro.core.errors import EpochError
from repro.core.graph import AttributedGraph
from repro.core.parallel import EXECUTORS, ParallelBranchAndBoundSolver
from repro.core.query import DKTGQuery, KTGQuery
from repro.core.strategies import strategy_by_name
from repro.index.base import DistanceOracle
from repro.obs.instruments import NULL_REGISTRY, InstrumentRegistry
from repro.service.cache import ResultCache, canonical_query_key
from repro.service.reservoir import DEFAULT_RESERVOIR_CAPACITY, LatencyReservoir
from repro.shard.executor import ShardedBranchAndBoundSolver
from repro.shard.partition import DEFAULT_SHARD_RADIUS
from repro.workloads.runner import (
    ALGORITHMS,
    AlgorithmSpec,
    percentile_nearest_rank,
)

__all__ = ["QueryService", "ServiceResult", "ServiceStats"]

AnyResult = Union[KTGResult, DKTGResult]

#: Default number of workers; matches the throughput bench's 4-worker
#: acceptance setup.
DEFAULT_MAX_WORKERS = 4


@dataclass(frozen=True)
class ServiceResult:
    """One served answer plus its serving provenance.

    ``result`` is the underlying solver result (:class:`KTGResult` or
    :class:`DKTGResult`); ``latency_ms`` is the *serving* latency — for
    cache hits the lookup time, for misses the submission-to-completion
    wall time, which includes any worker-pool queue wait (the pure
    solve cost is observable separately via the ``service.solve_ms``
    instrument).
    """

    query: KTGQuery
    result: AnyResult
    latency_ms: float
    from_cache: bool = False

    @property
    def is_exact(self) -> bool:
        """Whether the answer is a certified optimum (no budget tripped)."""
        return not self.result.stats.budget_exhausted

    @property
    def degraded(self) -> bool:
        """Whether admission control truncated the search (anytime answer)."""
        return self.result.stats.budget_exhausted

    def member_sets(self) -> list[tuple[int, ...]]:
        """Member tuples of the result groups, best first."""
        return [group.members for group in self.result.groups]


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate serving metrics, exported flat for benches.

    ``queries_served`` and ``mean_ms`` are exact over the full serving
    history.  Latency percentiles use the ceiling nearest-rank
    definition shared with
    :class:`repro.workloads.runner.LatencyReport`, computed over a
    bounded uniform reservoir sample of the latency stream
    (:class:`repro.service.reservoir.LatencyReservoir`) rather than the
    full history — a long-running server keeps O(capacity) latency
    state instead of growing without bound, at the cost of standard
    sampling error on the percentiles once more than
    ``latency_sample_size`` queries have been served.
    ``latency_sample_size`` reports how many samples back the
    percentiles (== min(queries_served, reservoir capacity)).
    """

    queries_served: int
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    cache_hit_rate: float
    degraded_answers: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    latency_sample_size: int = 0
    #: Epoch-mode serving state (``mutations=True`` services only; all
    #: ``None`` otherwise and omitted from :meth:`as_dict`).
    epoch_id: Optional[int] = None
    delta_depth: Optional[int] = None
    epoch_rotations: Optional[int] = None
    last_rotation_ms: Optional[float] = None

    def as_dict(self) -> dict:
        """Flat dict for table/CSV rendering and bench ``extra_info``."""
        out = {
            "queries_served": self.queries_served,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "degraded_answers": self.degraded_answers,
            "mean_ms": round(self.mean_ms, 3),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "latency_sample_size": self.latency_sample_size,
        }
        if self.epoch_id is not None:
            out["epoch_id"] = self.epoch_id
            out["delta_depth"] = self.delta_depth
            out["epoch_rotations"] = self.epoch_rotations
            out["last_rotation_ms"] = round(self.last_rotation_ms or 0.0, 3)
        return out


# ----------------------------------------------------------------------
# Process-pool plumbing.  Workers receive the graph, spec and prebuilt
# oracle once (at pool start) and keep them in module state; per-task
# traffic is then just (query, budgets) out and result in.
# ----------------------------------------------------------------------
_WORKER_STATE: Optional[tuple] = None


def _process_worker_init(
    graph: AttributedGraph,
    spec: AlgorithmSpec,
    oracle: Optional[DistanceOracle],
    distance_engine: str = "oracle",
    graph_layout: str = "adjacency",
    kernel_backend: str = "auto",
) -> None:
    global _WORKER_STATE
    if oracle is None:
        oracle = spec.build_oracle(
            graph, graph_layout=graph_layout, kernel_backend=kernel_backend
        )
    kernel = None
    if distance_engine == "bitset":
        # One ball cache per worker process, reused across every query
        # the worker serves (the cross-query reuse the kernel exists for).
        from repro.kernels import BallBitsetEngine

        kernel = BallBitsetEngine(
            oracle, graph_layout=graph_layout, kernel_backend=kernel_backend
        )
    _WORKER_STATE = (graph, spec, oracle, kernel, graph_layout)


def _process_solve(
    query: KTGQuery,
    time_budget: Optional[float],
    node_budget: Optional[int],
) -> tuple[AnyResult, float]:
    assert _WORKER_STATE is not None, "worker initializer did not run"
    graph, spec, oracle, kernel, graph_layout = _WORKER_STATE
    options: dict = {
        "time_budget": time_budget,
        "node_budget": node_budget,
        "graph_layout": graph_layout,
    }
    if kernel is not None:
        options["distance_engine"] = "bitset"
        options["kernel"] = kernel
    solver = spec.build_solver(graph, oracle, **options)
    started = time.perf_counter()
    result = solver.solve(query)
    return result, (time.perf_counter() - started) * 1000.0


class QueryService:
    """Answers KTG/DKTG query batches against one shared graph + oracle.

    Parameters
    ----------
    graph:
        The attributed social network being served.
    algorithm:
        Algorithm name from :data:`repro.workloads.runner.ALGORITHMS`
        or an :class:`AlgorithmSpec`.
    oracle:
        Optional prebuilt oracle (must match the spec's kind and the
        graph); built lazily from the spec when omitted.
    max_workers:
        Worker-pool width for parallel batches.
    executor:
        ``"thread"`` (default; shares one oracle and its memoisation)
        or ``"process"`` (copies graph + oracle per worker; opt-in for
        CPU-bound solves).
    time_budget / node_budget:
        Admission-control defaults applied to every query; ``None``
        means unbounded (every answer is exact).
    jobs:
        Default per-query parallelism: with ``jobs > 1`` each *solve*
        fans its branch-and-bound root frontier across a
        :class:`repro.core.parallel.ParallelBranchAndBoundSolver`
        fleet (results stay bit-identical to serial).  Per-query
        parallelism replaces batch-level parallelism — a batch served
        with ``jobs > 1`` runs its queries one after another, each
        using the whole fleet.  Diversified (DKTG) specs ignore it.
    jobs_executor:
        Fleet kind for per-query parallelism: ``"process"`` (default),
        ``"thread"`` or ``"inline"`` (see
        :data:`repro.core.parallel.EXECUTORS`).  Also selects the
        executor of any sharded engine (``shards > 1``).
    graph_id:
        Stable identity of *this* graph, mixed into the result-cache
        and engine-cache keys.  Two services over different graphs that
        share a ``version`` counter (every freshly built graph starts
        at 0) must carry distinct ids or a shared coalescing layer
        could serve one tenant the other's groups.
        :class:`repro.shard.GraphRegistry` issues ``"{name}#{gen}"``
        ids automatically.
    shards / shard_radius:
        Default per-query sharding: with ``shards > 1`` each solve
        scatters its root frontier across per-shard solver fleets
        (:class:`repro.shard.ShardedBranchAndBoundSolver`, bit-identical
        results) built from a community partition with
        ``shard_radius``-hop boundary replication.  Like ``jobs``, the
        default can be overridden per call; diversified specs ignore
        it.  Incompatible with ``mutations=True`` (shard sets freeze
        one version at a time).
    cache_capacity:
        LRU result-cache size; ``0`` disables caching.
    distance_engine:
        ``"oracle"`` (default) probes the distance oracle directly;
        ``"bitset"`` routes tenuity checks through one shared
        :class:`repro.kernels.BallBitsetEngine` ball cache that is
        **reused across queries** with the same tenuity ``k`` — the
        second query over the same keyword universe skips every ball
        rebuild.  Results are bit-identical either way.
    graph_layout:
        ``"adjacency"`` (default) or ``"csr"`` — the traversal layout
        for oracle builds, ball construction and solver fan-out (see
        :class:`repro.core.csr.CsrSnapshot`).  With ``jobs > 1`` and a
        process fleet, ``"csr"`` additionally makes the fan-out
        zero-copy: workers attach to one shared-memory snapshot instead
        of unpickling the graph.  Served answers are bit-identical
        across layouts.
    kernel_backend:
        Vectorization backend for every kernel this service builds
        (the shared one, parallel fleets' and process workers'):
        ``"auto"`` (default) uses the numpy kernels from
        :mod:`repro.kernels.vec` when importable, ``"numpy"`` forces
        them, ``"python"`` forces the scalar path.  On the numpy
        backend the solvers also run the batched node-expansion core
        (:mod:`repro.kernels.solve`).  Served answers are
        bit-identical across backends; :meth:`instrument_report` tags
        the kernel section with the resolved backend.
    instruments:
        An :class:`repro.obs.instruments.InstrumentRegistry` collecting
        per-phase latency histograms (``service.cache_lookup_ms``,
        ``service.solve_ms``, ``service.serve_ms``) and cache hit/miss
        counters.  Defaults to the zero-overhead null sink.

    Examples
    --------
    >>> from repro.core.graph import AttributedGraph
    >>> g = AttributedGraph(4, [(0, 1)], {0: ["a"], 1: ["b"], 2: ["a", "b"], 3: ["b"]})
    >>> service = QueryService(g, algorithm="KTG-VKC-NLRNL", max_workers=2)
    >>> q = KTGQuery(keywords=("a", "b"), group_size=2, tenuity=1, top_n=1)
    >>> first = service.submit(q)
    >>> first.is_exact and not first.from_cache
    True
    >>> again = service.submit(q)
    >>> again.from_cache and again.member_sets() == first.member_sets()
    True
    >>> service.close()
    """

    def __init__(
        self,
        graph: AttributedGraph,
        algorithm: Union[str, AlgorithmSpec] = "KTG-VKC-DEG-NLRNL",
        *,
        oracle: Optional[DistanceOracle] = None,
        max_workers: int = DEFAULT_MAX_WORKERS,
        executor: str = "thread",
        time_budget: Optional[float] = None,
        node_budget: Optional[int] = None,
        jobs: int = 1,
        jobs_executor: str = "process",
        graph_id: str = "default",
        shards: int = 1,
        shard_radius: int = DEFAULT_SHARD_RADIUS,
        cache_capacity: int = 1024,
        distance_engine: str = "oracle",
        graph_layout: str = "adjacency",
        kernel_backend: str = "auto",
        mutations: bool = False,
        epoch_rotate_after: int = DEFAULT_ROTATE_AFTER,
        epoch_max_delta: int = DEFAULT_MAX_DELTA,
        epoch_shared: bool = False,
        epoch_rotate_sync: bool = False,
        instruments: InstrumentRegistry = NULL_REGISTRY,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if executor not in ("thread", "process"):
            raise ValueError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        if mutations and executor != "thread":
            raise ValueError(
                "mutations=True requires executor='thread': process workers "
                "snapshot the graph at pool start and would serve stale answers"
            )
        if mutations and graph_layout != "adjacency":
            raise ValueError(
                "mutations=True requires graph_layout='adjacency': the csr "
                "layout binds traversal to one frozen snapshot per version"
            )
        if distance_engine not in ("oracle", "bitset"):
            raise ValueError(
                f"distance_engine must be 'oracle' or 'bitset', "
                f"got {distance_engine!r}"
            )
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if jobs_executor not in EXECUTORS:
            raise ValueError(
                f"jobs_executor must be one of {EXECUTORS}, got {jobs_executor!r}"
            )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shard_radius < 1:
            raise ValueError(f"shard_radius must be >= 1, got {shard_radius}")
        if mutations and shards > 1:
            raise ValueError(
                "mutations=True is incompatible with shards > 1: shard sets "
                "freeze one graph version per partition build"
            )
        if not graph_id:
            raise ValueError("graph_id must be a non-empty string")
        self.graph = graph
        self.graph_id = graph_id
        self.shards = shards
        self.shard_radius = shard_radius
        self.spec = ALGORITHMS[algorithm] if isinstance(algorithm, str) else algorithm
        self.max_workers = max_workers
        self.executor_kind = executor
        self.time_budget = time_budget
        self.node_budget = node_budget
        self.jobs = jobs
        self.jobs_executor = jobs_executor
        self.cache = ResultCache(cache_capacity)
        self.distance_engine = distance_engine
        self.graph_layout = validate_graph_layout(graph_layout)
        from repro.kernels.vec import validate_kernel_backend

        self.kernel_backend = validate_kernel_backend(kernel_backend)
        self._kernel = None
        self._engines: dict[
            tuple, Union[ParallelBranchAndBoundSolver, ShardedBranchAndBoundSolver]
        ] = {}
        # Lazy-init guards: concurrent submit/run_batch calls race to
        # build the parallel-engine cache and the worker pool; without
        # these locks the losers leaked whole pools (process fleets hold
        # shared-memory segments, so a leaked loser leaks /dev/shm too).
        self._engines_lock = threading.Lock()
        self._pool_lock = threading.RLock()
        self._oracle = oracle
        self._oracle_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._latencies = LatencyReservoir(DEFAULT_RESERVOIR_CAPACITY)
        self._queries_served = 0
        self._degraded_answers = 0
        self._pool: Optional[Union[ThreadPoolExecutor, ProcessPoolExecutor]] = None
        self._pool_graph_version: Optional[int] = None
        # Instruments are resolved once; against the null sink every
        # observe/inc below is a no-op method call.
        # Epoch mode: mutations route through an EpochManager that keeps
        # the live graph, the shared oracle and the kernel in lockstep
        # (incremental repairs) and rotates CSR snapshots in the
        # background.  Solves hold the manager's read gate so a delta
        # apply never interleaves with an in-flight search.
        self.mutations = mutations
        self._epochs: Optional[EpochManager] = None
        if mutations:
            self._epochs = EpochManager(
                graph,
                rotate_after=epoch_rotate_after,
                max_delta=epoch_max_delta,
                shared=epoch_shared,
                rotate_sync=epoch_rotate_sync,
                instruments=instruments,
            )
            self._epochs.set_repair_targets(self._live_oracle, self._live_kernel)
        self.instruments = instruments
        self._cache_lookup_timer = instruments.timer("service.cache_lookup_ms")
        self._solve_timer = instruments.timer("service.solve_ms")
        self._serve_timer = instruments.timer("service.serve_ms")
        self._cache_hit_counter = instruments.counter("service.cache_hits")
        self._cache_miss_counter = instruments.counter("service.cache_misses")
        self._degraded_counter = instruments.counter("service.degraded_answers")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool and any parallel engines (idempotent)."""
        if self._epochs is not None:
            self._epochs.close()
        self._close_pool()
        with self._engines_lock:
            engines = list(self._engines.values())
            self._engines.clear()
        for engine in engines:
            engine.close()

    def _close_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
            self._pool_graph_version = None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(
        self,
        query: KTGQuery,
        *,
        time_budget: Optional[float] = None,
        node_budget: Optional[int] = None,
        jobs: Optional[int] = None,
        shards: Optional[int] = None,
    ) -> ServiceResult:
        """Answer one query (cache-first, sequential).

        ``jobs`` overrides the service-level default for this call only;
        with ``jobs > 1`` the solve fans out across a parallel
        branch-and-bound fleet (bit-identical results, lower latency).
        ``shards`` does the same for the scatter-gather sharded engine
        and takes precedence over ``jobs`` when both exceed 1.
        """
        query = self._lift(query)
        return self._serve_one(
            query,
            time_budget if time_budget is not None else self.time_budget,
            node_budget if node_budget is not None else self.node_budget,
            jobs if jobs is not None else self.jobs,
            shards if shards is not None else self.shards,
        )

    def run_batch(
        self,
        queries: Iterable[KTGQuery],
        *,
        parallel: bool = True,
        time_budget: Optional[float] = None,
        node_budget: Optional[int] = None,
        jobs: Optional[int] = None,
        shards: Optional[int] = None,
    ) -> list[ServiceResult]:
        """Answer a workload (or any query iterable), in input order.

        ``parallel=False`` forces the sequential path (the baseline the
        throughput bench compares against).  Results are deterministic
        and identical across sequential, thread and process execution:
        every solve is an independent exact search over an immutable
        graph, so only scheduling differs.

        ``jobs`` (falling back to the service default) selects
        *per-query* parallelism instead: the batch is served
        sequentially while each individual solve fans its root frontier
        across a worker fleet.  The two pool layers are never nested.
        """
        lifted = [self._lift(query) for query in queries]
        tb = time_budget if time_budget is not None else self.time_budget
        nb = node_budget if node_budget is not None else self.node_budget
        per_query_jobs = jobs if jobs is not None else self.jobs
        per_query_shards = shards if shards is not None else self.shards

        if per_query_jobs > 1 or per_query_shards > 1:
            # Per-query parallelism owns the hardware: queries run one
            # after another, each using the whole fleet.
            return [
                self._serve_one(q, tb, nb, per_query_jobs, per_query_shards)
                for q in lifted
            ]
        if not parallel or self.max_workers == 1 or len(lifted) <= 1:
            return [self._serve_one(query, tb, nb) for query in lifted]
        if self.executor_kind == "process":
            return self._run_batch_processes(lifted, tb, nb)
        pool = self._thread_pool()
        return list(pool.map(lambda q: self._serve_one(q, tb, nb), lifted))

    # ------------------------------------------------------------------
    # Mutation (epoch mode)
    # ------------------------------------------------------------------
    @property
    def epochs(self) -> EpochManager:
        """The epoch manager (mutations mode only).

        Raises :class:`repro.core.errors.EpochError` on a read-only
        service — the server maps that to a 400, so a stray ``/mutate``
        against a statically-served graph fails loudly, not silently.
        """
        if self._epochs is None:
            raise EpochError(
                "service is read-only; construct QueryService(..., "
                "mutations=True) to accept graph mutations"
            )
        return self._epochs

    def add_edge(self, u: int, v: int) -> None:
        """Insert edge ``(u, v)``: delta-buffered, index-repaired."""
        self.epochs.add_edge(u, v)

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``(u, v)``: delta-buffered, index-repaired."""
        self.epochs.remove_edge(u, v)

    def set_keywords(self, vertex: int, labels: Iterable[str]) -> None:
        """Replace *vertex*'s keywords (distance-preserving mutation)."""
        self.epochs.set_keywords(vertex, labels)

    def add_vertex(self, labels: Iterable[str] = ()) -> int:
        """Append an isolated vertex carrying *labels*; return its id."""
        return self.epochs.add_vertex(labels)

    def _live_oracle(self) -> Optional[DistanceOracle]:
        """Repair-target provider: the shared oracle, if built."""
        with self._oracle_lock:
            return self._oracle

    def _live_kernel(self):
        """Repair-target provider: the shared ball kernel, if built."""
        with self._oracle_lock:
            return self._kernel

    def stats(self) -> ServiceStats:
        """Snapshot of the aggregate serving metrics.

        Count and mean are exact; percentiles come from the bounded
        latency reservoir (see :class:`ServiceStats`), so a snapshot
        sorts at most ``reservoir.capacity`` samples no matter how long
        the service has been running.
        """
        with self._stats_lock:
            sample = self._latencies.sorted_sample()
            mean = self._latencies.mean
            served = self._queries_served
            degraded = self._degraded_answers
        cache_stats = self.cache.stats.snapshot()
        epoch_id = delta_depth = rotations = last_rotation_ms = None
        if self._epochs is not None:
            epoch_stats = self._epochs.stats()
            epoch_id = epoch_stats.epoch_id
            delta_depth = epoch_stats.delta_depth
            rotations = epoch_stats.rotations
            last_rotation_ms = epoch_stats.last_rotation_ms
        return ServiceStats(
            queries_served=served,
            cache_hits=cache_stats.hits,
            cache_misses=cache_stats.misses,
            cache_evictions=cache_stats.evictions,
            cache_hit_rate=cache_stats.hit_rate,
            degraded_answers=degraded,
            mean_ms=mean,
            p50_ms=percentile_nearest_rank(sample, 0.50),
            p95_ms=percentile_nearest_rank(sample, 0.95),
            p99_ms=percentile_nearest_rank(sample, 0.99),
            latency_sample_size=len(sample),
            epoch_id=epoch_id,
            delta_depth=delta_depth,
            epoch_rotations=rotations,
            last_rotation_ms=last_rotation_ms,
        )

    def instrument_report(self) -> dict:
        """Full JSON-able observability snapshot for this service.

        Combines the aggregate :meth:`stats`, the cache's own counters,
        the shared oracle's usage (when built) and — with a live
        registry attached — every named counter and latency histogram.
        """
        report: dict = {
            "graph_id": self.graph_id,
            "service": self.stats().as_dict(),
            "cache": {
                "capacity": self.cache.capacity,
                "size": len(self.cache),
                "lookups": self.cache.stats.lookups,
                "hits": self.cache.stats.hits,
                "misses": self.cache.stats.misses,
                "evictions": self.cache.stats.evictions,
                "hit_rate": round(self.cache.stats.hit_rate, 4),
            },
        }
        with self._oracle_lock:
            oracle = self._oracle
            kernel = self._kernel
        if oracle is not None:
            from repro.obs.report import oracle_usage_row

            report["oracle"] = oracle_usage_row(oracle)
        if kernel is not None:
            report["kernel"] = {
                "balls_cached": len(kernel),
                "backend": kernel.backend,
                **kernel.counters(),
            }
        if self.graph_layout == "csr":
            from repro.core.csr import counter_totals

            cached = getattr(self.graph, "_csr_cache", None)
            report["csr"] = {
                "graph_layout": self.graph_layout,
                "snapshot_built": cached is not None
                and cached.graph_version == self.graph.version,
                "snapshot_bytes": cached.nbytes if cached is not None else 0,
                **counter_totals(),
            }
        with self._engines_lock:
            shard_engines = [
                engine
                for engine in self._engines.values()
                if isinstance(engine, ShardedBranchAndBoundSolver)
            ]
        if shard_engines:
            report["shard"] = [
                {
                    "num_shards": engine.num_shards,
                    "radius": engine.radius,
                    "executor": engine.executor_kind,
                    "jobs_per_shard": engine.jobs_per_shard,
                    "built": engine.shard_set is not None,
                    "effective_shards": (
                        engine.shard_set.num_shards if engine.shard_set else 0
                    ),
                    "replica_vertices": (
                        engine.shard_set.replica_vertices if engine.shard_set else 0
                    ),
                    "snapshot_bytes": (
                        engine.shard_set.snapshot_bytes if engine.shard_set else 0
                    ),
                }
                for engine in shard_engines
            ]
        if self._epochs is not None:
            from repro.core.epoch import counter_totals as epoch_counter_totals

            # Manager-scoped stats win on shared keys (rotations,
            # repairs); the process-wide totals contribute the
            # counters only they track (delta_reads, lease_waits).
            report["epoch"] = {
                **epoch_counter_totals(),
                **self._epochs.stats().as_dict(),
            }
        if self.instruments.enabled:
            report["instruments"] = self.instruments.report()
        return report

    def cache_key(self, query: KTGQuery) -> tuple:
        """Canonical identity of *query*'s answer on this service.

        The same ``(graph_id, graph.version, algorithm, canonical
        query)`` tuple the result cache keys by — exposed publicly so
        the serving front end (:mod:`repro.server`) can coalesce
        identical concurrent requests onto one in-flight solve.  The
        leading ``graph_id`` makes the key tenant-safe: the server's
        coalescer spans every registered graph, and without it two
        same-version graphs would collide.
        """
        return self._cache_key(self._lift(query))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _lift(self, query: KTGQuery) -> KTGQuery:
        """Diversified specs require DKTG queries; lift plain ones."""
        if self.spec.diversified and not isinstance(query, DKTGQuery):
            return DKTGQuery(
                keywords=query.keywords,
                group_size=query.group_size,
                tenuity=query.tenuity,
                top_n=query.top_n,
                excluded_anchors=query.excluded_anchors,
            )
        return query

    def _cache_key(self, query: KTGQuery) -> tuple:
        return (
            self.graph_id,
            self.graph.version,
            self.spec.name,
            canonical_query_key(query),
        )

    def _ensure_oracle(self) -> DistanceOracle:
        """Build (or rebuild after graph mutation) the shared oracle."""
        with self._oracle_lock:
            if self._oracle is None or self._oracle.is_stale():
                self._oracle = self.spec.build_oracle(
                    self.graph,
                    graph_layout=self.graph_layout,
                    kernel_backend=self.kernel_backend,
                )
            return self._oracle

    def _ensure_kernel(self, oracle: DistanceOracle):
        """Shared ball-bitset kernel over *oracle* (``None`` in oracle mode).

        Tied to the oracle object: when graph mutation forces
        :meth:`_ensure_oracle` to rebuild, the kernel wrapping the old
        oracle is discarded with it.  The kernel itself is thread-safe,
        so thread-pool batches and parallel fleets share one ball cache.
        """
        if self.distance_engine != "bitset":
            return None
        with self._oracle_lock:
            if self._kernel is None or self._kernel.oracle is not oracle:
                from repro.kernels import BallBitsetEngine

                self._kernel = BallBitsetEngine(
                    oracle,
                    instruments=self.instruments,
                    graph_layout=self.graph_layout,
                    kernel_backend=self.kernel_backend,
                )
            return self._kernel

    def _evict_stale_engines_locked(self) -> None:
        # Engine keys end in the graph version they were built against;
        # a mutation retires them (their worker state snapshots the
        # graph).  Caller holds _engines_lock.
        stale = [k for k in self._engines if k[-1] != self.graph.version]
        for k in stale:
            self._engines.pop(k).close()

    def _parallel_engine(self, jobs: int) -> ParallelBranchAndBoundSolver:
        """Cached parallel engine for this spec at the given fleet size.

        Keyed by ``(graph_id, "jobs", jobs, graph.version)`` so a graph
        mutation retires stale engines and the key can never collide
        with another graph's engines in any shared aggregation.
        Engines are closed by :meth:`close`.  Construction is serialized
        under ``_engines_lock``: racing submits must converge on *one*
        engine per key — the losing duplicate of a process fleet would
        leak worker processes and shared-memory segments.
        """
        key = (self.graph_id, "jobs", jobs, self.graph.version)
        with self._engines_lock:
            engine = self._engines.get(key)
            if engine is None:
                self._evict_stale_engines_locked()
                oracle = self._ensure_oracle()
                engine = ParallelBranchAndBoundSolver(
                    self.graph,
                    oracle=oracle,
                    strategy=strategy_by_name(self.spec.strategy_name, self.graph),
                    jobs=jobs,
                    executor=self.jobs_executor,
                    distance_engine=self.distance_engine,
                    kernel=self._ensure_kernel(oracle),
                    graph_layout=self.graph_layout,
                    kernel_backend=self.kernel_backend,
                    instruments=self.instruments,
                )
                self._engines[key] = engine
        return engine  # type: ignore[return-value]

    def _shard_engine(self, shards: int) -> ShardedBranchAndBoundSolver:
        """Cached scatter-gather engine at the given partition width.

        Keyed by ``(graph_id, "shards", shards, graph.version)`` with
        the same stale-eviction and single-construction guarantees as
        :meth:`_parallel_engine`.  The engine builds its own router
        stack per shard — the service's shared kernel wraps the global
        oracle and cannot serve the shard views.
        """
        key = (self.graph_id, "shards", shards, self.graph.version)
        with self._engines_lock:
            engine = self._engines.get(key)
            if engine is None:
                self._evict_stale_engines_locked()
                oracle = self._ensure_oracle()
                engine = ShardedBranchAndBoundSolver(
                    self.graph,
                    oracle=oracle,
                    strategy=strategy_by_name(self.spec.strategy_name, self.graph),
                    num_shards=shards,
                    radius=self.shard_radius,
                    executor=self.jobs_executor,
                    jobs_per_shard=1,
                    distance_engine=self.distance_engine,
                    graph_layout=self.graph_layout,
                    kernel_backend=self.kernel_backend,
                    instruments=self.instruments,
                )
                self._engines[key] = engine
        return engine  # type: ignore[return-value]

    def _serve_one(
        self,
        query: KTGQuery,
        time_budget: Optional[float],
        node_budget: Optional[int],
        jobs: int = 1,
        shards: int = 1,
    ) -> ServiceResult:
        # Epoch mode: the whole serve (key computation included — it
        # reads graph.version) runs under the manager's read gate, so no
        # delta apply can interleave with an in-flight search.  Reads
        # are shared; only the brief mutation applies exclude them.
        if self._epochs is not None:
            with self._epochs.read():
                return self._serve_one_locked(
                    query, time_budget, node_budget, jobs, shards
                )
        return self._serve_one_locked(query, time_budget, node_budget, jobs, shards)

    def _serve_one_locked(
        self,
        query: KTGQuery,
        time_budget: Optional[float],
        node_budget: Optional[int],
        jobs: int = 1,
        shards: int = 1,
    ) -> ServiceResult:
        started = time.perf_counter()
        key = self._cache_key(query)
        cached = self.cache.get(key)
        lookup_done = time.perf_counter()
        self._cache_lookup_timer.observe_ms((lookup_done - started) * 1000.0)
        if cached is not None:
            self._cache_hit_counter.inc()
            served = ServiceResult(
                query=query,
                result=cached,  # type: ignore[arg-type]
                latency_ms=(lookup_done - started) * 1000.0,
                from_cache=True,
            )
            self._serve_timer.observe_ms(served.latency_ms)
            self._record(served)
            return served
        self._cache_miss_counter.inc()
        if shards > 1 and not self.spec.diversified:
            shard_engine = self._shard_engine(shards)
            solve_started = time.perf_counter()
            result = shard_engine.solve(
                query, node_budget=node_budget, time_budget=time_budget
            )
        elif jobs > 1 and not self.spec.diversified:
            engine = self._parallel_engine(jobs)
            solve_started = time.perf_counter()
            result = engine.solve(
                query, node_budget=node_budget, time_budget=time_budget
            )
        else:
            oracle = self._ensure_oracle()
            options: dict = {
                "time_budget": time_budget,
                "node_budget": node_budget,
                "graph_layout": self.graph_layout,
            }
            kernel = self._ensure_kernel(oracle)
            if kernel is not None:
                options["distance_engine"] = "bitset"
                options["kernel"] = kernel
            solver = self.spec.build_solver(self.graph, oracle, **options)
            solve_started = time.perf_counter()
            result = solver.solve(query)
        self._solve_timer.observe_ms((time.perf_counter() - solve_started) * 1000.0)
        served = ServiceResult(
            query=query,
            result=result,
            latency_ms=(time.perf_counter() - started) * 1000.0,
            from_cache=False,
        )
        self._serve_timer.observe_ms(served.latency_ms)
        self._finish_miss(key, served)
        return served

    def _finish_miss(self, key: tuple, served: ServiceResult) -> None:
        # Only certified-exact answers are cached: a degraded answer
        # reflects one run's budget, not the query's true result set.
        if served.is_exact:
            self.cache.put(key, served.result)
        self._record(served)

    def _record(self, served: ServiceResult) -> None:
        if served.degraded:
            self._degraded_counter.inc()
        with self._stats_lock:
            self._queries_served += 1
            self._latencies.observe(served.latency_ms)
            if served.degraded:
                self._degraded_answers += 1

    # -- thread pool ----------------------------------------------------
    def _thread_pool(self) -> ThreadPoolExecutor:
        # Lazy init is serialized: racing run_batch calls must share one
        # pool (the loser of an unsynchronized race leaked its threads).
        with self._pool_lock:
            if self._pool is not None and not isinstance(
                self._pool, ThreadPoolExecutor
            ):
                self._close_pool()
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="ktg-service",
                )
            return self._pool

    # -- process pool ---------------------------------------------------
    def _process_pool(self) -> ProcessPoolExecutor:
        # Workers snapshot the graph at pool start; a mutation since then
        # would have them answering against a stale graph, so the pool is
        # recycled whenever the version moved.  Same race rules as
        # _thread_pool, with higher stakes: a leaked duplicate process
        # pool holds worker processes and /dev/shm segments.
        with self._pool_lock:
            recycle = (
                self._pool is not None
                and (
                    not isinstance(self._pool, ProcessPoolExecutor)
                    or self._pool_graph_version != self.graph.version
                )
            )
            if recycle:
                self._close_pool()
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=_process_worker_init,
                    initargs=(
                        self.graph,
                        self.spec,
                        self._ensure_oracle(),
                        self.distance_engine,
                        self.graph_layout,
                        self.kernel_backend,
                    ),
                )
                self._pool_graph_version = self.graph.version
            return self._pool

    def _run_batch_processes(
        self,
        queries: Sequence[KTGQuery],
        time_budget: Optional[float],
        node_budget: Optional[int],
    ) -> list[ServiceResult]:
        # The cache lives in the parent: hits are resolved here, misses
        # fan out to the workers, and fresh exact answers are cached on
        # the way back.
        results: list[Optional[ServiceResult]] = [None] * len(queries)
        pending: list[int] = []
        for position, query in enumerate(queries):
            started = time.perf_counter()
            cached = self.cache.get(self._cache_key(query))
            self._cache_lookup_timer.observe_ms(
                (time.perf_counter() - started) * 1000.0
            )
            if cached is not None:
                self._cache_hit_counter.inc()
                served = ServiceResult(
                    query=query,
                    result=cached,  # type: ignore[arg-type]
                    latency_ms=(time.perf_counter() - started) * 1000.0,
                    from_cache=True,
                )
                self._serve_timer.observe_ms(served.latency_ms)
                self._record(served)
                results[position] = served
            else:
                self._cache_miss_counter.inc()
                pending.append(position)
        if pending:
            pool = self._process_pool()
            # Serve latency is submission-to-completion wall time, not
            # the worker-side solve timer: in a saturated pool a task
            # queues before it runs, and that wait is real latency the
            # client observed.  The worker's own timer still feeds the
            # service.solve_ms instrument (pure solve cost), so the gap
            # between the two *is* the queueing delay.  Futures are
            # harvested in completion order so a slow early query does
            # not inflate the recorded wall time of fast later ones.
            submitted: dict[int, float] = {}
            future_position: dict = {}
            for position in pending:
                submitted[position] = time.perf_counter()
                future = pool.submit(
                    _process_solve, queries[position], time_budget, node_budget
                )
                future_position[future] = position
            for future in as_completed(future_position):
                position = future_position[future]
                result, solve_ms = future.result()
                self._solve_timer.observe_ms(solve_ms)
                served = ServiceResult(
                    query=queries[position],
                    result=result,
                    latency_ms=(time.perf_counter() - submitted[position]) * 1000.0,
                    from_cache=False,
                )
                self._serve_timer.observe_ms(served.latency_ms)
                self._finish_miss(self._cache_key(queries[position]), served)
                results[position] = served
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:
        return (
            f"QueryService(algorithm={self.spec.name!r}, "
            f"workers={self.max_workers}x{self.executor_kind}, "
            f"cache={self.cache!r})"
        )
