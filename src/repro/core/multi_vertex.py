"""Multi-query-vertex extension (Section IV-B, Discussion).

"To handle the scenarios in which the authors are familiar with the
reviewers, our techniques can be extended to handle the query including
multiple query vertices (i.e., the authors).  The main idea is to remove
those reviewers who are familiar with the authors, i.e., only reviewers
whose social distance from the authors is greater than k remain."

The solvers already honour :attr:`repro.core.query.KTGQuery.excluded_anchors`;
this module provides the standalone candidate-set transform for callers
who prepare candidate pools themselves (e.g. the DKTG pipeline or custom
workloads), plus a convenience wrapper that builds an anchored query.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.graph import AttributedGraph  # noqa: F401  (doctest namespace)
from repro.core.query import KTGQuery
from repro.index.base import DistanceOracle

__all__ = ["exclude_familiar", "anchored_query"]


def exclude_familiar(
    candidates: Sequence[int],
    anchors: Iterable[int],
    k: int,
    oracle: DistanceOracle,
    kernel=None,
) -> list[int]:
    """Drop candidates within ``k`` hops of any anchor (and the anchors).

    Returns the surviving candidates in their original relative order.
    With a :class:`repro.kernels.BallBitsetEngine` *kernel*, all
    anchors' balls fold into one exclusion bitset and the drop is a
    single mask subtraction instead of one filtering pass per anchor.

    >>> g = AttributedGraph(4, [(0, 1), (1, 2), (2, 3)])
    >>> from repro.index.bfs import BFSOracle
    >>> exclude_familiar([0, 1, 2, 3], anchors=[0], k=1, oracle=BFSOracle(g))
    [2, 3]
    >>> from repro.kernels import BallBitsetEngine
    >>> oracle = BFSOracle(g)
    >>> exclude_familiar([0, 1, 2, 3], [0], 1, oracle, BallBitsetEngine(oracle))
    [2, 3]
    """
    if kernel is not None:
        excluded = kernel.exclusion_mask(list(anchors), k)
        removed = kernel.decode(kernel.encode(candidates) & excluded)
        return [v for v in candidates if v not in removed]
    surviving = list(candidates)
    for anchor in anchors:
        surviving = oracle.filter_candidates(surviving, anchor, k)
        surviving = [v for v in surviving if v != anchor]
    return surviving


def anchored_query(query: KTGQuery, authors: Iterable[int]) -> KTGQuery:
    """Return *query* with *authors* attached as excluded anchors.

    Anchors accumulate: authors already on the query are kept.
    """
    combined = tuple(dict.fromkeys((*query.excluded_anchors, *authors)))
    return query.with_(excluded_anchors=combined)
