"""Frozen CSR (compressed sparse row) snapshots of an attributed graph.

The mutable :class:`~repro.core.graph.AttributedGraph` stores adjacency
as ``list[set[int]]`` — ideal for ``add_edge``/``remove_edge`` and
membership tests, but pointer-heavy for the traversal loops that
dominate index builds, BFS oracles, and ball-bitset construction.  A
:class:`CsrSnapshot` freezes one graph version into four flat sections:

====================  ==========================  =======================
section               storage                     meaning
====================  ==========================  =======================
header                8 × ``int64``               magic, graph version,
                                                  ``n``, ``m``, keyword
                                                  count, mask stride,
                                                  label-blob length,
                                                  total byte size
``indptr``            ``array('i')``, ``n + 1``   row offsets into
                                                  ``indices``
``indices``           ``array('i')``, ``2 m``     neighbour ids, sorted
                                                  within each row
keyword masks         ``array('Q')``,             per-vertex keyword-id
                      ``n × stride``              bitsets (64 ids/word)
label blob            UTF-8, NUL-separated        keyword labels in id
                                                  order
====================  ==========================  =======================

Sections start on 8-byte boundaries; every offset is recomputed from the
header, so a snapshot is fully described by its byte buffer.  That makes
the same bytes valid in two transports:

* **local** — one ``bytes`` object inside the building process, shared
  by reference across threads (the buffer is immutable);
* **shared** — a ``multiprocessing.shared_memory`` segment.  Process
  workers :meth:`~CsrSnapshot.attach` by *name* instead of receiving a
  pickled graph, which is what makes process fan-out zero-copy.

Hot loops do not index the ``array`` buffers directly: boxing an ``int``
per element makes ``array('i')[j]`` slower than a plain list in pure
Python.  Instead :attr:`CsrSnapshot.indptr` / :attr:`CsrSnapshot.indices`
materialise ordinary Python lists once per process (one ``tolist`` pass,
measured at ~0.1 ms for a 13k-edge graph) and traversals scan those.

Lifecycle: the process that builds a shared snapshot *owns* the segment
and must call :meth:`~CsrSnapshot.release` (close + unlink); attached
snapshots only :meth:`~CsrSnapshot.close`.  Both are idempotent.
Attaching to a released segment raises
:class:`~repro.core.errors.SnapshotAttachError`.  See ``docs/graph.md``
for the full protocol.
"""

from __future__ import annotations

import struct
import sys
import threading
from array import array
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING, Optional

from repro.core.errors import SnapshotAttachError, SnapshotError
from repro.core.graph import KeywordTable
from repro.obs.instruments import NULL_REGISTRY, InstrumentRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.graph import AttributedGraph

__all__ = [
    "GRAPH_LAYOUTS",
    "validate_graph_layout",
    "CsrSnapshot",
    "CsrGraphView",
    "counter_totals",
    "reset_counters",
    "adjacency_footprint_bytes",
]

#: Valid values for the ``graph_layout`` switch threaded through solvers,
#: oracles, the service, and the CLI.
GRAPH_LAYOUTS: tuple[str, ...] = ("adjacency", "csr")


def validate_graph_layout(graph_layout: str) -> str:
    """Return *graph_layout* unchanged, raising ``ValueError`` if unknown."""
    if graph_layout not in GRAPH_LAYOUTS:
        raise ValueError(
            f"unknown graph_layout {graph_layout!r}; expected one of {GRAPH_LAYOUTS}"
        )
    return graph_layout


# ----------------------------------------------------------------------
# Binary layout
# ----------------------------------------------------------------------
_MAGIC = 0x43535231  # "CSR1"
_HEADER_STRUCT = struct.Struct("<8q")
_HEADER_BYTES = _HEADER_STRUCT.size  # 64


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def _section_offsets(
    n: int, num_edges: int, kw_stride: int, label_blob_len: int
) -> tuple[int, int, int, int, int]:
    """Return ``(indptr, indices, masks, labels, total)`` byte offsets."""
    off_indptr = _HEADER_BYTES
    off_indices = _align8(off_indptr + 4 * (n + 1))
    off_masks = _align8(off_indices + 4 * (2 * num_edges))
    off_labels = off_masks + 8 * (n * kw_stride)
    total = _align8(off_labels + label_blob_len)
    return off_indptr, off_indices, off_masks, off_labels, total


# ----------------------------------------------------------------------
# Module-level counters (``csr.*`` observability family)
# ----------------------------------------------------------------------
_COUNTER_LOCK = threading.Lock()
_TOTALS = {"builds": 0, "attaches": 0, "bytes": 0, "segment_releases": 0}


def _bump(name: str, amount: int, instruments: InstrumentRegistry) -> None:
    with _COUNTER_LOCK:
        _TOTALS[name] += amount
    instruments.counter(f"csr.{name}").inc(amount)


def counter_totals() -> dict[str, int]:
    """Process-wide ``csr.*`` counter totals (builds/attaches/bytes/releases)."""
    with _COUNTER_LOCK:
        return dict(_TOTALS)


def reset_counters() -> None:
    """Zero the process-wide counters (tests and benchmarks only)."""
    with _COUNTER_LOCK:
        for key in _TOTALS:
            _TOTALS[key] = 0


def adjacency_footprint_bytes(graph: "AttributedGraph") -> int:
    """Estimate the resident bytes of the mutable ``list[set[int]]`` adjacency.

    Sums ``sys.getsizeof`` over the outer list and every neighbour set,
    plus 28 bytes per stored endpoint for the boxed ints themselves
    (small-int interning makes this an upper bound on real graphs).
    Used by ``ktg stats`` to contrast with :attr:`CsrSnapshot.nbytes`.
    """
    adjacency = graph.adjacency_view()
    total = sys.getsizeof(adjacency)
    for row in adjacency:
        total += sys.getsizeof(row) + 28 * len(row)
    return total


def _attach_segment(name: str):
    """Attach to an existing shared-memory segment without tracker churn.

    Python 3.13 grew ``SharedMemory(track=False)``; on older versions the
    resource tracker would unlink the segment when *this* process exits,
    yanking it out from under the owner, so we unregister the attachment
    immediately after connecting.
    """
    from multiprocessing import shared_memory

    try:
        try:
            return shared_memory.SharedMemory(name=name, create=False, track=False)
        except TypeError:  # Python < 3.13: no ``track`` parameter
            pass
        shm = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        raise SnapshotAttachError(
            f"shared CSR segment {name!r} does not exist (already released?)"
        ) from None
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - tracker internals moved
        pass
    return shm


class CsrSnapshot:
    """An immutable flat-array view of one :class:`AttributedGraph` version.

    Build with :meth:`from_graph` (or the cached
    ``AttributedGraph.csr_snapshot``), promote to a shared-memory segment
    with :meth:`share`, and attach from a worker process with
    :meth:`attach`.  Use :meth:`view` for an ``AttributedGraph``-shaped
    read-only facade.
    """

    __slots__ = (
        "_buf",
        "_shm",
        "_owner",
        "_graph_version",
        "_num_vertices",
        "_num_edges",
        "_num_keywords",
        "_kw_stride",
        "_label_blob_len",
        "_nbytes",
        "_indptr",
        "_indices",
        "_kw_masks",
        "_labels",
        "_released",
    )

    def __init__(self) -> None:
        raise SnapshotError(
            "CsrSnapshot cannot be constructed directly; "
            "use CsrSnapshot.from_graph() or CsrSnapshot.attach()"
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def _blank(cls) -> "CsrSnapshot":
        snapshot = object.__new__(cls)
        snapshot._buf = None
        snapshot._shm = None
        snapshot._owner = False
        snapshot._indptr = None
        snapshot._indices = None
        snapshot._kw_masks = None
        snapshot._labels = None
        snapshot._released = False
        return snapshot

    @classmethod
    def from_graph(
        cls,
        graph: "AttributedGraph",
        *,
        instruments: InstrumentRegistry = NULL_REGISTRY,
    ) -> "CsrSnapshot":
        """Serialise *graph* into a fresh local (in-process) snapshot."""
        n = graph.num_vertices
        adjacency = graph.adjacency_view()

        indptr = array("i", bytes(4 * (n + 1)))
        indices = array("i")
        cursor = 0
        for u in range(n):
            row = sorted(adjacency[u])
            indices.extend(row)
            cursor += len(row)
            indptr[u + 1] = cursor

        table = graph.keyword_table
        num_keywords = len(table)
        kw_stride = (num_keywords + 63) >> 6
        masks = array("Q", bytes(8 * n * kw_stride))
        for v in range(n):
            base = v * kw_stride
            for k in graph.keywords_of(v):
                masks[base + (k >> 6)] |= 1 << (k & 63)

        labels = list(table)
        for label in labels:
            if "\x00" in label:
                raise SnapshotError(
                    f"keyword label {label!r} contains NUL; cannot snapshot"
                )
        label_blob = "\x00".join(labels).encode("utf-8")

        offs = _section_offsets(n, graph.num_edges, kw_stride, len(label_blob))
        off_indptr, off_indices, off_masks, off_labels, total = offs

        buf = bytearray(total)
        _HEADER_STRUCT.pack_into(
            buf,
            0,
            _MAGIC,
            graph.version,
            n,
            graph.num_edges,
            num_keywords,
            kw_stride,
            len(label_blob),
            total,
        )
        buf[off_indptr : off_indptr + 4 * (n + 1)] = indptr.tobytes()
        buf[off_indices : off_indices + 4 * len(indices)] = indices.tobytes()
        buf[off_masks : off_masks + 8 * len(masks)] = masks.tobytes()
        buf[off_labels : off_labels + len(label_blob)] = label_blob

        snapshot = cls._blank()
        snapshot._buf = bytes(buf)
        snapshot._load_header()
        _bump("builds", 1, instruments)
        _bump("bytes", total, instruments)
        return snapshot

    @classmethod
    def attach(
        cls,
        name: str,
        *,
        instruments: InstrumentRegistry = NULL_REGISTRY,
    ) -> "CsrSnapshot":
        """Attach to the shared segment *name* created by :meth:`share`.

        Raises :class:`SnapshotAttachError` if the segment was already
        released or does not hold a CSR snapshot.  Any failure after the
        segment handle opens closes that handle before re-raising: an
        attacher that dies between open and view construction must not
        keep the mapping alive, or ``/dev/shm`` stays populated after
        the owner unlinks (the CI leak check catches exactly this).
        """
        shm = _attach_segment(name)
        snapshot = cls._blank()
        try:
            snapshot._shm = shm
            snapshot._buf = shm.buf
            snapshot._load_header()
        except BaseException as exc:
            snapshot._buf = None
            snapshot._shm = None
            shm.close()
            if isinstance(exc, SnapshotError) and not isinstance(
                exc, SnapshotAttachError
            ):
                raise SnapshotAttachError(
                    f"segment {name!r} does not hold a CSR snapshot: {exc}"
                ) from exc
            raise
        _bump("attaches", 1, instruments)
        return snapshot

    def share(
        self, *, instruments: InstrumentRegistry = NULL_REGISTRY
    ) -> "CsrSnapshot":
        """Copy this snapshot into a new owned shared-memory segment.

        The returned snapshot's :attr:`name` is what workers pass to
        :meth:`attach`; the caller owns the segment and must
        :meth:`release` it.
        """
        from multiprocessing import shared_memory

        buf = self._require_buf()
        shm = shared_memory.SharedMemory(create=True, size=self._nbytes)
        shm.buf[: self._nbytes] = bytes(buf[: self._nbytes])
        shared = CsrSnapshot._blank()
        shared._shm = shm
        shared._owner = True
        shared._buf = shm.buf
        shared._load_header()
        _bump("bytes", self._nbytes, instruments)
        return shared

    # ------------------------------------------------------------------
    # Header / sections
    # ------------------------------------------------------------------
    def _load_header(self) -> None:
        buf = self._buf
        if buf is None or len(buf) < _HEADER_BYTES:
            raise SnapshotError("buffer too small to hold a CSR snapshot header")
        (magic, version, n, m, num_kw, stride, blob_len, total) = (
            _HEADER_STRUCT.unpack_from(buf, 0)
        )
        if magic != _MAGIC:
            raise SnapshotError(
                f"bad CSR snapshot magic 0x{magic:x}; segment does not hold a snapshot"
            )
        if len(buf) < total:
            raise SnapshotError(
                f"truncated CSR snapshot: header claims {total} bytes, buffer has {len(buf)}"
            )
        self._graph_version = version
        self._num_vertices = n
        self._num_edges = m
        self._num_keywords = num_kw
        self._kw_stride = stride
        self._label_blob_len = blob_len
        self._nbytes = total

    def _require_buf(self):
        buf = self._buf
        if buf is None:
            raise SnapshotError("CSR snapshot is closed")
        return buf

    def _read_section(self, typecode: str, offset: int, count: int) -> list[int]:
        arr = array(typecode)
        itemsize = arr.itemsize
        buf = self._require_buf()
        arr.frombytes(bytes(buf[offset : offset + count * itemsize]))
        return arr.tolist()

    # ------------------------------------------------------------------
    # Data access (lists materialised once, then owned by this process)
    # ------------------------------------------------------------------
    @property
    def indptr(self) -> list[int]:
        """Row-offset list of length ``n + 1`` (plain ints for hot loops)."""
        if self._indptr is None:
            off = _section_offsets(
                self._num_vertices, self._num_edges, self._kw_stride, self._label_blob_len
            )[0]
            self._indptr = self._read_section("i", off, self._num_vertices + 1)
        return self._indptr

    @property
    def indices(self) -> list[int]:
        """Concatenated sorted neighbour lists (length ``2 m``)."""
        if self._indices is None:
            off = _section_offsets(
                self._num_vertices, self._num_edges, self._kw_stride, self._label_blob_len
            )[1]
            self._indices = self._read_section("i", off, 2 * self._num_edges)
        return self._indices

    @property
    def keyword_masks(self) -> list[int]:
        """Packed per-vertex keyword bitsets, ``kw_stride`` words per vertex."""
        if self._kw_masks is None:
            off = _section_offsets(
                self._num_vertices, self._num_edges, self._kw_stride, self._label_blob_len
            )[2]
            self._kw_masks = self._read_section(
                "Q", off, self._num_vertices * self._kw_stride
            )
        return self._kw_masks

    @property
    def keyword_labels(self) -> list[str]:
        """Keyword labels in interned-id order."""
        if self._labels is None:
            if self._num_keywords == 0:
                self._labels = []
            else:
                off = _section_offsets(
                    self._num_vertices,
                    self._num_edges,
                    self._kw_stride,
                    self._label_blob_len,
                )[3]
                buf = self._require_buf()
                blob = bytes(buf[off : off + self._label_blob_len])
                self._labels = blob.decode("utf-8").split("\x00")
                if len(self._labels) != self._num_keywords:
                    raise SnapshotError(
                        f"label blob holds {len(self._labels)} labels, "
                        f"header claims {self._num_keywords}"
                    )
        return self._labels

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def graph_version(self) -> int:
        """``graph.version`` at the moment the snapshot was built."""
        return self._graph_version

    @property
    def num_keywords(self) -> int:
        return self._num_keywords

    @property
    def kw_stride(self) -> int:
        """Mask words per vertex (``ceil(num_keywords / 64)``)."""
        return self._kw_stride

    @property
    def nbytes(self) -> int:
        """Total serialised size in bytes (header through label blob)."""
        return self._nbytes

    @property
    def name(self) -> Optional[str]:
        """Shared-memory segment name, or ``None`` for a local snapshot."""
        return self._shm.name if self._shm is not None else None

    @property
    def is_shared(self) -> bool:
        return self._shm is not None

    @property
    def is_owner(self) -> bool:
        """Whether this snapshot created (and must unlink) its segment."""
        return self._owner

    @property
    def closed(self) -> bool:
        return self._buf is None

    def keyword_mask(self, vertex: int) -> int:
        """Return the keyword bitset of *vertex* as one arbitrary-width int."""
        stride = self._kw_stride
        if stride == 0:
            return 0
        masks = self.keyword_masks
        base = vertex * stride
        if stride == 1:
            return masks[base]
        bits = 0
        for w in range(stride):
            bits |= masks[base + w] << (64 * w)
        return bits

    def neighbors_list(self, vertex: int) -> list[int]:
        """Sorted neighbour ids of *vertex* (a fresh list slice)."""
        indptr = self.indptr
        return self.indices[indptr[vertex] : indptr[vertex + 1]]

    def view(self) -> "CsrGraphView":
        """Return an :class:`AttributedGraph`-shaped read-only facade."""
        return CsrGraphView(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def materialize(self) -> "CsrSnapshot":
        """Force every lazy section into plain Python objects.

        After this, :meth:`close` does not invalidate reads — used by
        workers that attach, decode, and immediately detach.
        """
        self.indptr
        self.indices
        self.keyword_masks
        self.keyword_labels
        return self

    def close(self) -> None:
        """Detach from the underlying buffer.  Idempotent.

        Already-materialised sections stay readable (they are plain
        lists); unmaterialised sections raise :class:`SnapshotError`.
        """
        self._buf = None
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - exported views alive
                raise SnapshotError(
                    "cannot close CSR snapshot while memoryviews are exported"
                ) from None
            if not self._owner:
                self._shm = None

    def release(
        self, *, instruments: InstrumentRegistry = NULL_REGISTRY
    ) -> None:
        """Close and, when owner, unlink the shared segment.  Idempotent."""
        self.close()
        if self._owner and self._shm is not None and not self._released:
            try:
                # Fork-started workers share this process's resource
                # tracker, and _attach_segment unregistered the name on
                # their behalf; re-register so unlink()'s unregister
                # balances instead of tripping a KeyError in the tracker
                # (registration is a set-add, so this is a no-op when no
                # worker ever attached).
                from multiprocessing import resource_tracker

                resource_tracker.register(
                    self._shm._name, "shared_memory"  # type: ignore[attr-defined]
                )
            except Exception:  # pragma: no cover - tracker internals moved
                pass
            self._shm.unlink()
            self._released = True
            self._shm = None
            _bump("segment_releases", 1, instruments)

    def __enter__(self) -> "CsrSnapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __reduce__(self):
        raise SnapshotError(
            "CsrSnapshot is not picklable by design; ship the segment name "
            "and CsrSnapshot.attach() in the worker instead"
        )

    def __repr__(self) -> str:
        transport = (
            f"shm={self.name!r}{' owner' if self._owner else ''}"
            if self._shm is not None
            else "local"
        )
        state = " closed" if self.closed else ""
        return (
            f"CsrSnapshot(|V|={self._num_vertices}, |E|={self._num_edges}, "
            f"version={self._graph_version}, {self._nbytes}B, {transport}{state})"
        )


class CsrGraphView:
    """Read-only :class:`AttributedGraph` facade over a :class:`CsrSnapshot`.

    Implements the read API that solvers, strategies, coverage contexts,
    and oracles consume — ``num_vertices``, ``neighbors``, ``degrees``,
    ``keywords_of``, ``keyword_table``, … — so worker processes can build
    a full solver stack from an attached segment without ever unpickling
    the original graph.  Mutators raise :class:`SnapshotError`.
    """

    __slots__ = ("_snapshot", "_keyword_table", "_vertex_keywords", "_adjacency_sets")

    def __init__(self, snapshot: CsrSnapshot) -> None:
        self._snapshot = snapshot
        self._keyword_table: Optional[KeywordTable] = None
        self._vertex_keywords: Optional[list[frozenset[int]]] = None
        self._adjacency_sets: Optional[list[frozenset[int]]] = None

    # ------------------------------------------------------------------
    # Identity / metadata
    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> CsrSnapshot:
        return self._snapshot

    @property
    def num_vertices(self) -> int:
        return self._snapshot.num_vertices

    @property
    def num_edges(self) -> int:
        return self._snapshot.num_edges

    @property
    def version(self) -> int:
        """The frozen ``graph.version``; a snapshot never goes stale."""
        return self._snapshot.graph_version

    @property
    def keyword_table(self) -> KeywordTable:
        if self._keyword_table is None:
            self._keyword_table = KeywordTable(self._snapshot.keyword_labels)
        return self._keyword_table

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------
    def vertices(self) -> range:
        return range(self._snapshot.num_vertices)

    def neighbors(self, vertex: int) -> frozenset[int]:
        self._check_vertex(vertex)
        return self.adjacency_view()[vertex]

    def adjacency_view(self) -> Sequence[frozenset[int]]:
        """Per-vertex neighbour sets, materialised once on first use.

        CSR-aware call sites should iterate :attr:`CsrSnapshot.indptr` /
        :attr:`CsrSnapshot.indices` instead; this exists so adjacency-era
        helpers keep working against a view.
        """
        if self._adjacency_sets is None:
            snapshot = self._snapshot
            indptr = snapshot.indptr
            indices = snapshot.indices
            self._adjacency_sets = [
                frozenset(indices[indptr[v] : indptr[v + 1]])
                for v in range(snapshot.num_vertices)
            ]
        return self._adjacency_sets

    def degree(self, vertex: int) -> int:
        self._check_vertex(vertex)
        indptr = self._snapshot.indptr
        return indptr[vertex + 1] - indptr[vertex]

    def degrees(self) -> list[int]:
        indptr = self._snapshot.indptr
        return [
            indptr[v + 1] - indptr[v] for v in range(self._snapshot.num_vertices)
        ]

    def has_edge(self, u: int, v: int) -> bool:
        self._check_vertex(u)
        self._check_vertex(v)
        from bisect import bisect_left

        snapshot = self._snapshot
        indptr = snapshot.indptr
        indices = snapshot.indices
        lo, hi = indptr[u], indptr[u + 1]
        pos = bisect_left(indices, v, lo, hi)
        return pos < hi and indices[pos] == v

    def edges(self) -> Iterator[tuple[int, int]]:
        snapshot = self._snapshot
        indptr = snapshot.indptr
        indices = snapshot.indices
        for u in range(snapshot.num_vertices):
            for v in indices[indptr[u] : indptr[u + 1]]:
                if u < v:
                    yield (u, v)

    def keywords_of(self, vertex: int) -> frozenset[int]:
        self._check_vertex(vertex)
        if self._vertex_keywords is None:
            snapshot = self._snapshot
            stride = snapshot.kw_stride
            decoded: list[frozenset[int]] = []
            if stride == 0:
                decoded = [frozenset()] * snapshot.num_vertices
            else:
                masks = snapshot.keyword_masks
                for v in range(snapshot.num_vertices):
                    ids: list[int] = []
                    base = v * stride
                    for w in range(stride):
                        word = masks[base + w]
                        shift = 64 * w
                        while word:
                            low = word & -word
                            ids.append(shift + low.bit_length() - 1)
                            word ^= low
                    decoded.append(frozenset(ids))
            self._vertex_keywords = decoded
        return self._vertex_keywords[vertex]

    def keyword_labels(self, vertex: int) -> list[str]:
        return self.keyword_table.labels(self.keywords_of(vertex))

    def vertices_with_any_keyword(self, keyword_ids: frozenset[int]) -> list[int]:
        if not keyword_ids:
            return []
        query_mask = 0
        for k in keyword_ids:
            query_mask |= 1 << k
        snapshot = self._snapshot
        stride = snapshot.kw_stride
        if stride == 0:
            return []
        if stride == 1:
            masks = snapshot.keyword_masks
            return [v for v in range(snapshot.num_vertices) if masks[v] & query_mask]
        return [
            v
            for v in range(snapshot.num_vertices)
            if snapshot.keyword_mask(v) & query_mask
        ]

    def degrees_list(self) -> list[int]:  # pragma: no cover - alias
        return self.degrees()

    # ------------------------------------------------------------------
    # Distance primitives (CSR traversal)
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int, max_depth: Optional[int] = None) -> dict[int, int]:
        self._check_vertex(source)
        snapshot = self._snapshot
        indptr = snapshot.indptr
        indices = snapshot.indices
        distances = {source: 0}
        frontier = [source]
        depth = 0
        while frontier and (max_depth is None or depth < max_depth):
            depth += 1
            next_frontier: list[int] = []
            for u in frontier:
                for v in indices[indptr[u] : indptr[u + 1]]:
                    if v not in distances:
                        distances[v] = depth
                        next_frontier.append(v)
            frontier = next_frontier
        return distances

    def hop_distance(self, u: int, v: int, cutoff: Optional[int] = None) -> Optional[int]:
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            return 0
        snapshot = self._snapshot
        indptr = snapshot.indptr
        indices = snapshot.indices
        seen = bytearray(snapshot.num_vertices)
        seen[u] = 1
        frontier = [u]
        depth = 0
        while frontier and (cutoff is None or depth < cutoff):
            depth += 1
            next_frontier: list[int] = []
            for x in frontier:
                for y in indices[indptr[x] : indptr[x + 1]]:
                    if y == v:
                        return depth
                    if not seen[y]:
                        seen[y] = 1
                        next_frontier.append(y)
            frontier = next_frontier
        return None

    # ------------------------------------------------------------------
    # Mutators are forbidden on a frozen view
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> None:
        raise SnapshotError("CsrGraphView is frozen; mutate the source graph instead")

    def remove_edge(self, u: int, v: int) -> None:
        raise SnapshotError("CsrGraphView is frozen; mutate the source graph instead")

    def set_keywords(self, vertex: int, labels: object) -> None:
        raise SnapshotError("CsrGraphView is frozen; mutate the source graph instead")

    # ------------------------------------------------------------------
    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self._snapshot.num_vertices:
            from repro.core.errors import UnknownVertexError

            raise UnknownVertexError(vertex)

    def __repr__(self) -> str:
        return f"CsrGraphView({self._snapshot!r})"
